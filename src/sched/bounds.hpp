// Scheduling lower bounds.
//
// Complements the validator: any kernel schedule for graph G on N PEs obeys
//   p      >= max(ceil(W / N), c_max)                      (resources)
//   R_max  >= ceil(CP / p) - 1                             (pipelining)
// where W is total work, c_max the longest task and CP the execution-time
// critical path. The second bound holds because one iteration's tasks span
// at most (R_max + 1) windows of length p, and no schedule can run a
// dependency chain faster than its summed execution time. These bounds let
// Table 2 report how close the DP's prologue is to the attainable minimum.
#pragma once

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace paraconv::sched {

/// max(ceil(W/N), c_max): no kernel period can be shorter.
TimeUnits period_lower_bound(const graph::TaskGraph& g, int pe_count);

/// ceil(CP/p) - 1 (>= 0): no legal retiming for a period-p kernel can have
/// a smaller maximum retiming value.
int retiming_lower_bound(const graph::TaskGraph& g, TimeUnits period);

}  // namespace paraconv::sched
