#include "sched/prologue.hpp"

namespace paraconv::sched {

std::vector<WindowProfile> prologue_profile(const graph::TaskGraph& g,
                                            const KernelSchedule& kernel,
                                            int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(kernel.retiming.size() == g.node_count(),
                   "kernel schedule does not match graph");
  PARACONV_REQUIRE(kernel.period > TimeUnits{0}, "period must be positive");

  const int r_max = kernel.r_max();
  std::vector<WindowProfile> profile(static_cast<std::size_t>(r_max) + 1);
  for (std::size_t w = 0; w < profile.size(); ++w) {
    profile[w].window = static_cast<std::int64_t>(w);
  }

  const double denom = static_cast<double>(pe_count) *
                       static_cast<double>(kernel.period.value);
  for (const graph::NodeId v : g.nodes()) {
    // Task v is active in window w iff w >= r_max - r(v); within the
    // profile's range that is windows [r_max - r(v), r_max].
    const auto first = static_cast<std::size_t>(r_max - kernel.retiming[v.value]);
    for (std::size_t w = first; w < profile.size(); ++w) {
      ++profile[w].active_tasks;
      profile[w].utilization +=
          static_cast<double>(g.task(v).exec_time.value) / denom;
    }
  }
  return profile;
}

TimeUnits prologue_time(const KernelSchedule& kernel) {
  return kernel.period * kernel.r_max();
}

}  // namespace paraconv::sched
