#include "sched/latency.hpp"

#include <algorithm>
#include <limits>

namespace paraconv::sched {

LatencyReport iteration_latency(const graph::TaskGraph& g,
                                const KernelSchedule& kernel) {
  PARACONV_REQUIRE(kernel.placement.size() == g.node_count() &&
                       kernel.retiming.size() == g.node_count(),
                   "kernel schedule does not match graph");
  PARACONV_REQUIRE(kernel.period > TimeUnits{0}, "period must be positive");

  const int r_max = kernel.r_max();
  std::int64_t earliest = std::numeric_limits<std::int64_t>::max();
  std::int64_t latest = std::numeric_limits<std::int64_t>::min();
  int min_r = std::numeric_limits<int>::max();
  int max_r = std::numeric_limits<int>::min();

  for (const graph::NodeId v : g.nodes()) {
    const int r = kernel.retiming[v.value];
    min_r = std::min(min_r, r);
    max_r = std::max(max_r, r);
    // Iteration L's instance of v runs in window L + r_max - r.
    const std::int64_t offset =
        static_cast<std::int64_t>(r_max - r) * kernel.period.value;
    const std::int64_t start = offset + kernel.placement[v.value].start.value;
    earliest = std::min(earliest, start);
    latest = std::max(latest, start + g.task(v).exec_time.value);
  }

  LatencyReport report;
  report.iteration_latency = TimeUnits{latest - earliest};
  report.windows_spanned = 1 + max_r - min_r;
  report.period = kernel.period;
  return report;
}

}  // namespace paraconv::sched
