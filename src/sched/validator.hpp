// Independent kernel-schedule validator.
//
// Checks every property the scheduler is supposed to guarantee, without
// sharing code with the scheduler: structural consistency, PE exclusivity,
// window containment, retiming legality (Definition 3.1), dependency timing
// under the allocation-dependent transfer latencies, and the aggregate cache
// capacity bound. Returns typed Diagnostics with stable machine-readable
// codes (plus a human-readable rendering); an empty list means valid.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"
#include "pim/config.hpp"
#include "sched/schedule.hpp"

namespace paraconv::sched {

/// Stable identifier of a violated schedule invariant. Codes are part of
/// the tool contract (tests and sweep tooling match on them); add new ones
/// at the end and never renumber or rename existing ones.
enum class DiagCode {
  kPlacementSizeMismatch,
  kRetimingSizeMismatch,
  kDistanceSizeMismatch,
  kAllocationSizeMismatch,
  kNonPositivePeriod,
  kInvalidPe,
  kTaskOutsideWindow,
  kNegativeRetiming,
  kPeOverlap,
  kDistanceNotRealized,
  kNegativeDistance,
  kDataNotReady,
  kCacheOvercommitted,
  kResidencyOvercommit,
};

/// Stable kebab-case rendering of the code ("pe-overlap", "data-not-ready").
const char* to_string(DiagCode code);

enum class DiagSeverity {
  kError,    // the schedule is invalid
  kWarning,  // advisory finding: the schedule is legal but degraded
             // (e.g. residency-overcommit); never aborts the pipeline
};

const char* to_string(DiagSeverity severity);

/// One validator finding: which invariant failed (stable code), how bad it
/// is, where (the offending task/IPR when the check is local to one), and a
/// human-readable message for display.
struct Diagnostic {
  DiagCode code{DiagCode::kPlacementSizeMismatch};
  DiagSeverity severity{DiagSeverity::kError};
  std::string message;
  std::optional<graph::NodeId> node;
  std::optional<graph::EdgeId> edge;
};

/// "error [pe-overlap] tasks A and B overlap on PE 3".
std::string to_string(const Diagnostic& diagnostic);
std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic);

/// True when any diagnostic carries the given code.
bool has_code(const std::vector<Diagnostic>& diagnostics, DiagCode code);

/// True when any diagnostic is error-severity. Warnings alone leave a
/// schedule valid; only errors may fail a pipeline.
bool has_errors(const std::vector<Diagnostic>& diagnostics);

/// "; "-joined rendering of every error-severity diagnostic (all of them,
/// not just the first); empty when none.
std::string render_errors(const std::vector<Diagnostic>& diagnostics);

std::vector<Diagnostic> validate_kernel_schedule(const graph::TaskGraph& g,
                                                 const KernelSchedule& kernel,
                                                 const pim::PimConfig& config,
                                                 Bytes cache_capacity);

inline bool is_valid_kernel_schedule(const graph::TaskGraph& g,
                                     const KernelSchedule& kernel,
                                     const pim::PimConfig& config,
                                     Bytes cache_capacity) {
  return validate_kernel_schedule(g, kernel, config, cache_capacity).empty();
}

}  // namespace paraconv::sched
