// Independent kernel-schedule validator.
//
// Checks every property the scheduler is supposed to guarantee, without
// sharing code with the scheduler: structural consistency, PE exclusivity,
// window containment, retiming legality (Definition 3.1), dependency timing
// under the allocation-dependent transfer latencies, and the aggregate cache
// capacity bound. Returns human-readable issues; an empty list means valid.
#pragma once

#include <string>
#include <vector>

#include "pim/config.hpp"
#include "sched/schedule.hpp"

namespace paraconv::sched {

std::vector<std::string> validate_kernel_schedule(const graph::TaskGraph& g,
                                                  const KernelSchedule& kernel,
                                                  const pim::PimConfig& config,
                                                  Bytes cache_capacity);

inline bool is_valid_kernel_schedule(const graph::TaskGraph& g,
                                     const KernelSchedule& kernel,
                                     const pim::PimConfig& config,
                                     Bytes cache_capacity) {
  return validate_kernel_schedule(g, kernel, config, cache_capacity).empty();
}

}  // namespace paraconv::sched
