#include "sched/packer.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "graph/algorithms.hpp"

namespace paraconv::sched {
namespace {

/// Lazy-deletion min-heap over (load, PE index) pairs. Pop order is
/// lexicographic — lowest load first, lowest PE index among equal loads —
/// which is exactly std::min_element's first-minimum tie-break, so packings
/// stay bit-identical to the previous linear scan while each placement
/// costs O(log PEs) instead of O(PEs).
///
/// Updating a PE pushes a fresh entry and leaves the old one in place;
/// lightest() discards entries whose recorded load no longer matches the
/// live load array. Loads only grow, so a stale (smaller) entry can only
/// surface *before* its fresh replacement, never shadow it.
///
/// The entry buffer is thread_local scratch reused across calls — and
/// across the sweep cells a DSE worker thread evaluates back to back — so
/// steady-state packing does not allocate per call. At most one live
/// instance per thread (the packers below are sequential).
class LoadHeap {
 public:
  explicit LoadHeap(const std::vector<TimeUnits>& load) : entries_(scratch()) {
    entries_.clear();
    entries_.reserve(load.size() * 2);
    for (std::size_t pe = 0; pe < load.size(); ++pe) {
      entries_.push_back({load[pe].value, pe});
    }
    std::make_heap(entries_.begin(), entries_.end(), Later{});
  }

  /// Index of the lightest PE (ties: lowest index) for the current loads.
  std::size_t lightest(const std::vector<TimeUnits>& load) {
    while (true) {
      const Entry top = entries_.front();
      if (load[top.pe].value == top.load) return top.pe;
      std::pop_heap(entries_.begin(), entries_.end(), Later{});
      entries_.pop_back();
    }
  }

  /// Records `pe`'s new load after a placement.
  void update(std::size_t pe, TimeUnits new_load) {
    entries_.push_back({new_load.value, pe});
    std::push_heap(entries_.begin(), entries_.end(), Later{});
  }

 private:
  struct Entry {
    std::int64_t load;
    std::size_t pe;
  };
  /// "a pops after b": std::*_heap keep the Later-wise largest on top, so
  /// ordering by descending (load, pe) surfaces the smallest pair first.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.load != b.load) return a.load > b.load;
      return a.pe > b.pe;
    }
  };

  static std::vector<Entry>& scratch() {
    thread_local std::vector<Entry> storage;
    return storage;
  }

  std::vector<Entry>& entries_;
};

/// Thread-local per-PE load bins, zeroed on acquisition; reused across
/// pack calls (and sweep cells) instead of reallocated.
std::vector<TimeUnits>& load_bins(int pe_count) {
  thread_local std::vector<TimeUnits> bins;
  bins.assign(static_cast<std::size_t>(pe_count), TimeUnits{0});
  return bins;
}

}  // namespace

Packing pack_ignore_dependencies(const graph::TaskGraph& g, int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");

  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              const TimeUnits ca = g.task(a).exec_time;
              const TimeUnits cb = g.task(b).exec_time;
              if (ca != cb) return ca > cb;  // longest first
              return a.value < b.value;
            });

  std::vector<TimeUnits>& load = load_bins(pe_count);
  LoadHeap heap(load);
  Packing result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : order) {
    const std::size_t lightest = heap.lightest(load);
    result.placement[v.value] =
        TaskPlacement{static_cast<int>(lightest), load[lightest]};
    load[lightest] += g.task(v).exec_time;
    heap.update(lightest, load[lightest]);
  }
  result.period = *std::max_element(load.begin(), load.end());
  PARACONV_CHECK(result.period > TimeUnits{0}, "empty packing");
  return result;
}

Packing pack_topological(const graph::TaskGraph& g, int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(),
                   "pack_topological requires an acyclic graph");

  std::vector<TimeUnits>& load = load_bins(pe_count);
  LoadHeap heap(load);
  Packing result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : *topo) {
    const std::size_t lightest = heap.lightest(load);
    result.placement[v.value] =
        TaskPlacement{static_cast<int>(lightest), load[lightest]};
    load[lightest] += g.task(v).exec_time;
    heap.update(lightest, load[lightest]);
  }
  result.period = *std::max_element(load.begin(), load.end());
  PARACONV_CHECK(result.period > TimeUnits{0}, "empty packing");
  return result;
}

Packing pack_locality(const graph::TaskGraph& g,
                      const pim::PimConfig& config) {
  config.validate();
  const int pe_count = config.pe_count;
  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(), "pack_locality requires an acyclic graph");

  // Load slack within which locality may override pure balance: one
  // average task, so the period bound degrades by at most max_exec.
  const TimeUnits slack = g.max_exec_time();

  // Hop distances from one source PE to every candidate PE, computed once
  // per distinct source instead of once per (edge, candidate) pair — the
  // previous inner loop re-derived the same row in_degree * PEs times per
  // node. Rows materialize lazily: only PEs that actually host producers
  // pay for one.
  std::vector<std::vector<int>> hop_rows(static_cast<std::size_t>(pe_count));
  const auto hop_row = [&](int src) -> const std::vector<int>& {
    std::vector<int>& row = hop_rows[static_cast<std::size_t>(src)];
    if (row.empty()) {
      row.resize(static_cast<std::size_t>(pe_count));
      for (int pe = 0; pe < pe_count; ++pe) {
        row[static_cast<std::size_t>(pe)] = config.hop_count(src, pe);
      }
    }
    return row;
  };
  // (hop row, multiplicity) per distinct producer PE of the current node.
  std::vector<std::pair<const int*, std::int64_t>> producers;

  std::vector<TimeUnits>& load = load_bins(pe_count);
  LoadHeap heap(load);
  Packing result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : *topo) {
    const TimeUnits lightest = load[heap.lightest(load)];

    producers.clear();
    for (const graph::EdgeId e : g.in_edges(v)) {
      const int src_pe = result.placement[g.ipr(e).src.value].pe;
      const int* row = hop_row(src_pe).data();
      bool merged = false;
      for (auto& [existing, count] : producers) {
        if (existing == row) {
          ++count;
          merged = true;
          break;
        }
      }
      if (!merged) producers.emplace_back(row, 1);
    }

    int best_pe = -1;
    std::int64_t best_hops = 0;
    for (int pe = 0; pe < pe_count; ++pe) {
      if (load[static_cast<std::size_t>(pe)] > lightest + slack) continue;
      std::int64_t hops = 0;
      for (const auto& [row, count] : producers) {
        hops += count * row[pe];
      }
      if (best_pe < 0 || hops < best_hops ||
          (hops == best_hops &&
           load[static_cast<std::size_t>(pe)] <
               load[static_cast<std::size_t>(best_pe)])) {
        best_pe = pe;
        best_hops = hops;
      }
    }
    PARACONV_CHECK(best_pe >= 0, "no eligible PE found");
    result.placement[v.value] =
        TaskPlacement{best_pe, load[static_cast<std::size_t>(best_pe)]};
    load[static_cast<std::size_t>(best_pe)] += g.task(v).exec_time;
    heap.update(static_cast<std::size_t>(best_pe),
                load[static_cast<std::size_t>(best_pe)]);
  }
  result.period = *std::max_element(load.begin(), load.end());
  PARACONV_CHECK(result.period > TimeUnits{0}, "empty packing");
  return result;
}

ListScheduleResult list_schedule(const graph::TaskGraph& g, int pe_count,
                                 const std::vector<TimeUnits>& edge_transfer) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(edge_transfer.size() == g.edge_count(),
                   "one transfer latency per edge required");

  // Upward rank including transfer latencies: rank(i) = c_i +
  // max over out-edges e=(i,j) of (transfer_e + rank(j)).
  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(), "list_schedule requires an acyclic graph");
  std::vector<TimeUnits> rank(g.node_count(), TimeUnits{0});
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const graph::NodeId v = *it;
    TimeUnits best{0};
    for (const graph::EdgeId e : g.out_edges(v)) {
      const graph::NodeId w = g.ipr(e).dst;
      best = std::max(best, edge_transfer[e.value] + rank[w.value]);
    }
    rank[v.value] = g.task(v).exec_time + best;
  }

  // Priority order: rank descending, node id ascending for determinism.
  // Scheduling in this order is dependency-safe because a producer's rank
  // strictly exceeds every consumer's rank... only along its own paths; we
  // therefore still gate each task on predecessor completion below.
  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (rank[a.value] != rank[b.value]) {
                return rank[a.value] > rank[b.value];
              }
              return a.value < b.value;
            });

  std::vector<TimeUnits> pe_available(static_cast<std::size_t>(pe_count),
                                      TimeUnits{0});
  std::vector<TimeUnits> finish(g.node_count(), TimeUnits{0});
  std::vector<bool> scheduled(g.node_count(), false);

  ListScheduleResult result;
  result.placement.resize(g.node_count());

  for (const graph::NodeId v : order) {
    // All predecessors appear earlier in rank order (their rank is strictly
    // larger along the edge), so they are already scheduled.
    TimeUnits best_finish{0};
    int best_pe = -1;
    TimeUnits best_start{0};
    for (int pe = 0; pe < pe_count; ++pe) {
      TimeUnits ready{0};
      for (const graph::EdgeId e : g.in_edges(v)) {
        const graph::NodeId u = g.ipr(e).src;
        PARACONV_CHECK(scheduled[u.value],
                       "predecessor not yet scheduled in rank order");
        const TimeUnits hand_off =
            result.placement[u.value].pe == pe ? TimeUnits{0}
                                               : edge_transfer[e.value];
        ready = std::max(ready, finish[u.value] + hand_off);
      }
      const TimeUnits start =
          std::max(ready, pe_available[static_cast<std::size_t>(pe)]);
      const TimeUnits fin = start + g.task(v).exec_time;
      if (best_pe < 0 || fin < best_finish) {
        best_pe = pe;
        best_finish = fin;
        best_start = start;
      }
    }
    result.placement[v.value] = TaskPlacement{best_pe, best_start};
    finish[v.value] = best_finish;
    pe_available[static_cast<std::size_t>(best_pe)] = best_finish;
    scheduled[v.value] = true;
    result.makespan = std::max(result.makespan, best_finish);
  }
  return result;
}

ListScheduleResult list_schedule_insertion(
    const graph::TaskGraph& g, int pe_count,
    const std::vector<TimeUnits>& edge_transfer) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(edge_transfer.size() == g.edge_count(),
                   "one transfer latency per edge required");

  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(),
                   "list_schedule_insertion requires an acyclic graph");
  std::vector<TimeUnits> rank(g.node_count(), TimeUnits{0});
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const graph::NodeId v = *it;
    TimeUnits best{0};
    for (const graph::EdgeId e : g.out_edges(v)) {
      best = std::max(best, edge_transfer[e.value] + rank[g.ipr(e).dst.value]);
    }
    rank[v.value] = g.task(v).exec_time + best;
  }

  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (rank[a.value] != rank[b.value]) {
                return rank[a.value] > rank[b.value];
              }
              return a.value < b.value;
            });

  // Per-PE sorted busy intervals [start, end).
  struct Interval {
    TimeUnits start;
    TimeUnits end;
  };
  std::vector<std::vector<Interval>> busy(
      static_cast<std::size_t>(pe_count));
  std::vector<TimeUnits> finish(g.node_count(), TimeUnits{0});

  // Earliest start >= ready on `pe` fitting a task of length `exec`.
  const auto earliest_gap = [&](int pe, TimeUnits ready, TimeUnits exec) {
    TimeUnits candidate = ready;
    for (const Interval& iv : busy[static_cast<std::size_t>(pe)]) {
      if (candidate + exec <= iv.start) break;  // fits before this interval
      candidate = std::max(candidate, iv.end);
    }
    return candidate;
  };
  const auto occupy = [&](int pe, TimeUnits start, TimeUnits exec) {
    auto& intervals = busy[static_cast<std::size_t>(pe)];
    const Interval iv{start, start + exec};
    const auto pos = std::lower_bound(
        intervals.begin(), intervals.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    intervals.insert(pos, iv);
  };

  ListScheduleResult result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : order) {
    int best_pe = -1;
    TimeUnits best_start{0};
    TimeUnits best_finish{0};
    for (int pe = 0; pe < pe_count; ++pe) {
      TimeUnits ready{0};
      for (const graph::EdgeId e : g.in_edges(v)) {
        const graph::NodeId u = g.ipr(e).src;
        const TimeUnits hand_off =
            result.placement[u.value].pe == pe ? TimeUnits{0}
                                               : edge_transfer[e.value];
        ready = std::max(ready, finish[u.value] + hand_off);
      }
      const TimeUnits start = earliest_gap(pe, ready, g.task(v).exec_time);
      const TimeUnits fin = start + g.task(v).exec_time;
      if (best_pe < 0 || fin < best_finish) {
        best_pe = pe;
        best_start = start;
        best_finish = fin;
      }
    }
    result.placement[v.value] = TaskPlacement{best_pe, best_start};
    finish[v.value] = best_finish;
    occupy(best_pe, best_start, g.task(v).exec_time);
    result.makespan = std::max(result.makespan, best_finish);
  }
  return result;
}

}  // namespace paraconv::sched
