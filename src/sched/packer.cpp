#include "sched/packer.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"

namespace paraconv::sched {

Packing pack_ignore_dependencies(const graph::TaskGraph& g, int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");

  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              const TimeUnits ca = g.task(a).exec_time;
              const TimeUnits cb = g.task(b).exec_time;
              if (ca != cb) return ca > cb;  // longest first
              return a.value < b.value;
            });

  std::vector<TimeUnits> load(static_cast<std::size_t>(pe_count),
                              TimeUnits{0});
  Packing result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : order) {
    const auto lightest = static_cast<std::size_t>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    result.placement[v.value] =
        TaskPlacement{static_cast<int>(lightest), load[lightest]};
    load[lightest] += g.task(v).exec_time;
  }
  result.period = *std::max_element(load.begin(), load.end());
  PARACONV_CHECK(result.period > TimeUnits{0}, "empty packing");
  return result;
}

Packing pack_topological(const graph::TaskGraph& g, int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(),
                   "pack_topological requires an acyclic graph");

  std::vector<TimeUnits> load(static_cast<std::size_t>(pe_count),
                              TimeUnits{0});
  Packing result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : *topo) {
    const auto lightest = static_cast<std::size_t>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    result.placement[v.value] =
        TaskPlacement{static_cast<int>(lightest), load[lightest]};
    load[lightest] += g.task(v).exec_time;
  }
  result.period = *std::max_element(load.begin(), load.end());
  PARACONV_CHECK(result.period > TimeUnits{0}, "empty packing");
  return result;
}

Packing pack_locality(const graph::TaskGraph& g,
                      const pim::PimConfig& config) {
  config.validate();
  const int pe_count = config.pe_count;
  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(), "pack_locality requires an acyclic graph");

  // Load slack within which locality may override pure balance: one
  // average task, so the period bound degrades by at most max_exec.
  const TimeUnits slack = g.max_exec_time();

  std::vector<TimeUnits> load(static_cast<std::size_t>(pe_count),
                              TimeUnits{0});
  Packing result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : *topo) {
    const TimeUnits lightest = *std::min_element(load.begin(), load.end());
    int best_pe = -1;
    std::int64_t best_hops = 0;
    for (int pe = 0; pe < pe_count; ++pe) {
      if (load[static_cast<std::size_t>(pe)] > lightest + slack) continue;
      std::int64_t hops = 0;
      for (const graph::EdgeId e : g.in_edges(v)) {
        hops += config.hop_count(result.placement[g.ipr(e).src.value].pe, pe);
      }
      if (best_pe < 0 || hops < best_hops ||
          (hops == best_hops &&
           load[static_cast<std::size_t>(pe)] <
               load[static_cast<std::size_t>(best_pe)])) {
        best_pe = pe;
        best_hops = hops;
      }
    }
    PARACONV_CHECK(best_pe >= 0, "no eligible PE found");
    result.placement[v.value] =
        TaskPlacement{best_pe, load[static_cast<std::size_t>(best_pe)]};
    load[static_cast<std::size_t>(best_pe)] += g.task(v).exec_time;
  }
  result.period = *std::max_element(load.begin(), load.end());
  PARACONV_CHECK(result.period > TimeUnits{0}, "empty packing");
  return result;
}

ListScheduleResult list_schedule(const graph::TaskGraph& g, int pe_count,
                                 const std::vector<TimeUnits>& edge_transfer) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(edge_transfer.size() == g.edge_count(),
                   "one transfer latency per edge required");

  // Upward rank including transfer latencies: rank(i) = c_i +
  // max over out-edges e=(i,j) of (transfer_e + rank(j)).
  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(), "list_schedule requires an acyclic graph");
  std::vector<TimeUnits> rank(g.node_count(), TimeUnits{0});
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const graph::NodeId v = *it;
    TimeUnits best{0};
    for (const graph::EdgeId e : g.out_edges(v)) {
      const graph::NodeId w = g.ipr(e).dst;
      best = std::max(best, edge_transfer[e.value] + rank[w.value]);
    }
    rank[v.value] = g.task(v).exec_time + best;
  }

  // Priority order: rank descending, node id ascending for determinism.
  // Scheduling in this order is dependency-safe because a producer's rank
  // strictly exceeds every consumer's rank... only along its own paths; we
  // therefore still gate each task on predecessor completion below.
  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (rank[a.value] != rank[b.value]) {
                return rank[a.value] > rank[b.value];
              }
              return a.value < b.value;
            });

  std::vector<TimeUnits> pe_available(static_cast<std::size_t>(pe_count),
                                      TimeUnits{0});
  std::vector<TimeUnits> finish(g.node_count(), TimeUnits{0});
  std::vector<bool> scheduled(g.node_count(), false);

  ListScheduleResult result;
  result.placement.resize(g.node_count());

  for (const graph::NodeId v : order) {
    // All predecessors appear earlier in rank order (their rank is strictly
    // larger along the edge), so they are already scheduled.
    TimeUnits best_finish{0};
    int best_pe = -1;
    TimeUnits best_start{0};
    for (int pe = 0; pe < pe_count; ++pe) {
      TimeUnits ready{0};
      for (const graph::EdgeId e : g.in_edges(v)) {
        const graph::NodeId u = g.ipr(e).src;
        PARACONV_CHECK(scheduled[u.value],
                       "predecessor not yet scheduled in rank order");
        const TimeUnits hand_off =
            result.placement[u.value].pe == pe ? TimeUnits{0}
                                               : edge_transfer[e.value];
        ready = std::max(ready, finish[u.value] + hand_off);
      }
      const TimeUnits start =
          std::max(ready, pe_available[static_cast<std::size_t>(pe)]);
      const TimeUnits fin = start + g.task(v).exec_time;
      if (best_pe < 0 || fin < best_finish) {
        best_pe = pe;
        best_finish = fin;
        best_start = start;
      }
    }
    result.placement[v.value] = TaskPlacement{best_pe, best_start};
    finish[v.value] = best_finish;
    pe_available[static_cast<std::size_t>(best_pe)] = best_finish;
    scheduled[v.value] = true;
    result.makespan = std::max(result.makespan, best_finish);
  }
  return result;
}

ListScheduleResult list_schedule_insertion(
    const graph::TaskGraph& g, int pe_count,
    const std::vector<TimeUnits>& edge_transfer) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(edge_transfer.size() == g.edge_count(),
                   "one transfer latency per edge required");

  const auto topo = graph::topological_order(g);
  PARACONV_REQUIRE(topo.has_value(),
                   "list_schedule_insertion requires an acyclic graph");
  std::vector<TimeUnits> rank(g.node_count(), TimeUnits{0});
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const graph::NodeId v = *it;
    TimeUnits best{0};
    for (const graph::EdgeId e : g.out_edges(v)) {
      best = std::max(best, edge_transfer[e.value] + rank[g.ipr(e).dst.value]);
    }
    rank[v.value] = g.task(v).exec_time + best;
  }

  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (rank[a.value] != rank[b.value]) {
                return rank[a.value] > rank[b.value];
              }
              return a.value < b.value;
            });

  // Per-PE sorted busy intervals [start, end).
  struct Interval {
    TimeUnits start;
    TimeUnits end;
  };
  std::vector<std::vector<Interval>> busy(
      static_cast<std::size_t>(pe_count));
  std::vector<TimeUnits> finish(g.node_count(), TimeUnits{0});

  // Earliest start >= ready on `pe` fitting a task of length `exec`.
  const auto earliest_gap = [&](int pe, TimeUnits ready, TimeUnits exec) {
    TimeUnits candidate = ready;
    for (const Interval& iv : busy[static_cast<std::size_t>(pe)]) {
      if (candidate + exec <= iv.start) break;  // fits before this interval
      candidate = std::max(candidate, iv.end);
    }
    return candidate;
  };
  const auto occupy = [&](int pe, TimeUnits start, TimeUnits exec) {
    auto& intervals = busy[static_cast<std::size_t>(pe)];
    const Interval iv{start, start + exec};
    const auto pos = std::lower_bound(
        intervals.begin(), intervals.end(), iv,
        [](const Interval& a, const Interval& b) { return a.start < b.start; });
    intervals.insert(pos, iv);
  };

  ListScheduleResult result;
  result.placement.resize(g.node_count());
  for (const graph::NodeId v : order) {
    int best_pe = -1;
    TimeUnits best_start{0};
    TimeUnits best_finish{0};
    for (int pe = 0; pe < pe_count; ++pe) {
      TimeUnits ready{0};
      for (const graph::EdgeId e : g.in_edges(v)) {
        const graph::NodeId u = g.ipr(e).src;
        const TimeUnits hand_off =
            result.placement[u.value].pe == pe ? TimeUnits{0}
                                               : edge_transfer[e.value];
        ready = std::max(ready, finish[u.value] + hand_off);
      }
      const TimeUnits start = earliest_gap(pe, ready, g.task(v).exec_time);
      const TimeUnits fin = start + g.task(v).exec_time;
      if (best_pe < 0 || fin < best_finish) {
        best_pe = pe;
        best_start = start;
        best_finish = fin;
      }
    }
    result.placement[v.value] = TaskPlacement{best_pe, best_start};
    finish[v.value] = best_finish;
    occupy(best_pe, best_start, g.task(v).exec_time);
    result.makespan = std::max(result.makespan, best_finish);
  }
  return result;
}

}  // namespace paraconv::sched
