// Local-search refinement of the objective packing.
//
// The packers optimize the period alone; the retiming distances (hence the
// prologue) also depend on *where within the window* producers and
// consumers land. This deterministic hill-climb perturbs the packing —
// moving one task to another PE — accepting only moves that keep the
// period from growing and strictly shrink the summed eDRAM-site required
// distances (a cheap upper-bound proxy for the prologue pressure).
#pragma once

#include "pim/config.hpp"
#include "sched/packer.hpp"

namespace paraconv::sched {

struct RefineOptions {
  /// Candidate moves examined (each is O(E) to evaluate).
  int max_steps{256};
  /// Deterministic seed for the move generator.
  std::uint64_t seed{0x5EED};
};

struct RefineResult {
  Packing packing;
  /// Summed eDRAM required distances before/after (after <= before).
  int distance_sum_before{0};
  int distance_sum_after{0};
  int accepted_moves{0};
};

/// Refines `initial`; the returned packing has period <= initial.period and
/// never a larger distance sum.
RefineResult refine_packing(const graph::TaskGraph& g, const Packing& initial,
                            const pim::PimConfig& config,
                            const RefineOptions& options = {});

}  // namespace paraconv::sched
