#include "sched/validator.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "obs/obs.hpp"
#include "pim/cost_model.hpp"
#include "retiming/delta.hpp"

namespace paraconv::sched {
namespace {

std::string describe_edge(const graph::TaskGraph& g, graph::EdgeId e) {
  const graph::Ipr& ipr = g.ipr(e);
  std::ostringstream os;
  os << "I(" << g.task(ipr.src).name << " -> " << g.task(ipr.dst).name << ")";
  return os.str();
}

}  // namespace

const char* to_string(DiagCode code) {
  switch (code) {
    case DiagCode::kPlacementSizeMismatch:
      return "placement-size-mismatch";
    case DiagCode::kRetimingSizeMismatch:
      return "retiming-size-mismatch";
    case DiagCode::kDistanceSizeMismatch:
      return "distance-size-mismatch";
    case DiagCode::kAllocationSizeMismatch:
      return "allocation-size-mismatch";
    case DiagCode::kNonPositivePeriod:
      return "non-positive-period";
    case DiagCode::kInvalidPe:
      return "invalid-pe";
    case DiagCode::kTaskOutsideWindow:
      return "task-outside-window";
    case DiagCode::kNegativeRetiming:
      return "negative-retiming";
    case DiagCode::kPeOverlap:
      return "pe-overlap";
    case DiagCode::kDistanceNotRealized:
      return "distance-not-realized";
    case DiagCode::kNegativeDistance:
      return "negative-distance";
    case DiagCode::kDataNotReady:
      return "data-not-ready";
    case DiagCode::kCacheOvercommitted:
      return "cache-overcommitted";
    case DiagCode::kResidencyOvercommit:
      return "residency-overcommit";
  }
  return "unknown";
}

const char* to_string(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kError:
      return "error";
    case DiagSeverity::kWarning:
      return "warning";
  }
  return "unknown";
}

std::string to_string(const Diagnostic& diagnostic) {
  std::string out = std::string(to_string(diagnostic.severity)) + " [" +
                    to_string(diagnostic.code) + "] " + diagnostic.message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Diagnostic& diagnostic) {
  return os << to_string(diagnostic);
}

bool has_code(const std::vector<Diagnostic>& diagnostics, DiagCode code) {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const Diagnostic& d) { return d.code == code; });
}

bool has_errors(const std::vector<Diagnostic>& diagnostics) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) {
                       return d.severity == DiagSeverity::kError;
                     });
}

std::string render_errors(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != DiagSeverity::kError) continue;
    if (!out.empty()) out += "; ";
    out += to_string(d);
  }
  return out;
}

std::vector<Diagnostic> validate_kernel_schedule(const graph::TaskGraph& g,
                                                 const KernelSchedule& kernel,
                                                 const pim::PimConfig& config,
                                                 Bytes cache_capacity) {
  const obs::ScopedSpan span("validate", g.name().c_str());
  std::vector<Diagnostic> issues;
  const auto add = [&issues](DiagCode code, std::string msg,
                             std::optional<graph::NodeId> node = {},
                             std::optional<graph::EdgeId> edge = {}) {
    Diagnostic d;
    d.code = code;
    d.message = std::move(msg);
    d.node = node;
    d.edge = edge;
    issues.push_back(std::move(d));
  };
  const auto finish = [&issues]() -> std::vector<Diagnostic>& {
    if (!issues.empty()) {
      obs::count("validate.diagnostics",
                 static_cast<std::int64_t>(issues.size()));
    }
    return issues;
  };

  // Structural consistency.
  if (kernel.placement.size() != g.node_count()) {
    add(DiagCode::kPlacementSizeMismatch,
        "placement size does not match node count");
    return finish();
  }
  if (kernel.retiming.size() != g.node_count()) {
    add(DiagCode::kRetimingSizeMismatch,
        "retiming size does not match node count");
    return finish();
  }
  if (kernel.distance.size() != g.edge_count()) {
    add(DiagCode::kDistanceSizeMismatch,
        "distance size does not match edge count");
    return finish();
  }
  if (kernel.allocation.size() != g.edge_count()) {
    add(DiagCode::kAllocationSizeMismatch,
        "allocation size does not match edge count");
    return finish();
  }
  if (kernel.period <= TimeUnits{0}) {
    add(DiagCode::kNonPositivePeriod, "period must be positive");
    return finish();
  }

  // Window containment and PE range.
  for (const graph::NodeId v : g.nodes()) {
    const TaskPlacement& p = kernel.placement[v.value];
    if (p.pe < 0 || p.pe >= config.pe_count) {
      add(DiagCode::kInvalidPe,
          "task " + g.task(v).name + " placed on invalid PE", v);
    }
    if (p.start < TimeUnits{0} ||
        p.start + g.task(v).exec_time > kernel.period) {
      add(DiagCode::kTaskOutsideWindow,
          "task " + g.task(v).name + " does not fit in the kernel window", v);
    }
    if (kernel.retiming[v.value] < 0) {
      add(DiagCode::kNegativeRetiming,
          "task " + g.task(v).name + " has negative retiming value", v);
    }
  }
  if (!issues.empty()) return finish();

  // PE exclusivity within the window. Because every window repeats the same
  // pattern and tasks do not wrap, checking one window suffices.
  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    const TaskPlacement& pa = kernel.placement[a.value];
    const TaskPlacement& pb = kernel.placement[b.value];
    if (pa.pe != pb.pe) return pa.pe < pb.pe;
    if (pa.start != pb.start) return pa.start < pb.start;
    return a.value < b.value;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const graph::NodeId prev = order[i - 1];
    const graph::NodeId cur = order[i];
    const TaskPlacement& pp = kernel.placement[prev.value];
    const TaskPlacement& pc = kernel.placement[cur.value];
    if (pp.pe == pc.pe && pp.start + g.task(prev).exec_time > pc.start) {
      add(DiagCode::kPeOverlap,
          "tasks " + g.task(prev).name + " and " + g.task(cur).name +
              " overlap on PE " + std::to_string(pp.pe),
          cur);
    }
  }

  // Retiming legality and dependency timing, priced by the configured cost
  // model (one instance for every edge).
  const auto cost_model = pim::make_cost_model(config);
  Bytes cached{};
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const int d = kernel.distance[e.value];
    const int realized =
        kernel.retiming[ipr.src.value] - kernel.retiming[ipr.dst.value];
    if (realized < d) {
      add(DiagCode::kDistanceNotRealized,
          "edge " + describe_edge(g, e) +
              ": retiming values do not provide the recorded distance",
          {}, e);
    }
    if (d < 0) {
      add(DiagCode::kNegativeDistance,
          "edge " + describe_edge(g, e) + ": negative distance", {}, e);
      continue;
    }
    const TaskPlacement& prod = kernel.placement[ipr.src.value];
    const TaskPlacement& cons = kernel.placement[ipr.dst.value];
    const TimeUnits transfer = retiming::effective_edge_transfer(
        *cost_model, config, kernel.allocation[e.value], ipr.size, prod.pe,
        cons.pe, kernel.period);
    const std::int64_t lhs = prod.start.value +
                             g.task(ipr.src).exec_time.value + transfer.value;
    const std::int64_t rhs =
        cons.start.value + static_cast<std::int64_t>(realized) *
                               kernel.period.value;
    if (lhs > rhs) {
      add(DiagCode::kDataNotReady,
          "edge " + describe_edge(g, e) + ": data not ready (needs " +
              std::to_string(lhs) + ", available " + std::to_string(rhs) +
              ")",
          {}, e);
    }
    if (kernel.allocation[e.value] == pim::AllocSite::kCache) {
      cached += ipr.size;
    }
  }
  if (cached > cache_capacity) {
    add(DiagCode::kCacheOvercommitted,
        "cached IPR bytes exceed aggregate cache capacity");
  }

  return finish();
}

}  // namespace paraconv::sched
