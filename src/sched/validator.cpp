#include "sched/validator.hpp"

#include <algorithm>
#include <sstream>

#include "retiming/delta.hpp"

namespace paraconv::sched {
namespace {

std::string describe_edge(const graph::TaskGraph& g, graph::EdgeId e) {
  const graph::Ipr& ipr = g.ipr(e);
  std::ostringstream os;
  os << "I(" << g.task(ipr.src).name << " -> " << g.task(ipr.dst).name << ")";
  return os.str();
}

}  // namespace

std::vector<std::string> validate_kernel_schedule(const graph::TaskGraph& g,
                                                  const KernelSchedule& kernel,
                                                  const pim::PimConfig& config,
                                                  Bytes cache_capacity) {
  std::vector<std::string> issues;
  const auto add = [&issues](const std::string& msg) { issues.push_back(msg); };

  // Structural consistency.
  if (kernel.placement.size() != g.node_count()) {
    add("placement size does not match node count");
    return issues;
  }
  if (kernel.retiming.size() != g.node_count()) {
    add("retiming size does not match node count");
    return issues;
  }
  if (kernel.distance.size() != g.edge_count()) {
    add("distance size does not match edge count");
    return issues;
  }
  if (kernel.allocation.size() != g.edge_count()) {
    add("allocation size does not match edge count");
    return issues;
  }
  if (kernel.period <= TimeUnits{0}) {
    add("period must be positive");
    return issues;
  }

  // Window containment and PE range.
  for (const graph::NodeId v : g.nodes()) {
    const TaskPlacement& p = kernel.placement[v.value];
    if (p.pe < 0 || p.pe >= config.pe_count) {
      add("task " + g.task(v).name + " placed on invalid PE");
    }
    if (p.start < TimeUnits{0} ||
        p.start + g.task(v).exec_time > kernel.period) {
      add("task " + g.task(v).name + " does not fit in the kernel window");
    }
    if (kernel.retiming[v.value] < 0) {
      add("task " + g.task(v).name + " has negative retiming value");
    }
  }
  if (!issues.empty()) return issues;

  // PE exclusivity within the window. Because every window repeats the same
  // pattern and tasks do not wrap, checking one window suffices.
  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    const TaskPlacement& pa = kernel.placement[a.value];
    const TaskPlacement& pb = kernel.placement[b.value];
    if (pa.pe != pb.pe) return pa.pe < pb.pe;
    if (pa.start != pb.start) return pa.start < pb.start;
    return a.value < b.value;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const graph::NodeId prev = order[i - 1];
    const graph::NodeId cur = order[i];
    const TaskPlacement& pp = kernel.placement[prev.value];
    const TaskPlacement& pc = kernel.placement[cur.value];
    if (pp.pe == pc.pe && pp.start + g.task(prev).exec_time > pc.start) {
      add("tasks " + g.task(prev).name + " and " + g.task(cur).name +
          " overlap on PE " + std::to_string(pp.pe));
    }
  }

  // Retiming legality and dependency timing.
  Bytes cached{};
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const int d = kernel.distance[e.value];
    const int realized =
        kernel.retiming[ipr.src.value] - kernel.retiming[ipr.dst.value];
    if (realized < d) {
      add("edge " + describe_edge(g, e) +
          ": retiming values do not provide the recorded distance");
    }
    if (d < 0) {
      add("edge " + describe_edge(g, e) + ": negative distance");
      continue;
    }
    const TaskPlacement& prod = kernel.placement[ipr.src.value];
    const TaskPlacement& cons = kernel.placement[ipr.dst.value];
    const TimeUnits transfer = retiming::effective_edge_transfer(
        config, kernel.allocation[e.value], ipr.size, prod.pe, cons.pe,
        kernel.period);
    const std::int64_t lhs = prod.start.value +
                             g.task(ipr.src).exec_time.value + transfer.value;
    const std::int64_t rhs =
        cons.start.value + static_cast<std::int64_t>(realized) *
                               kernel.period.value;
    if (lhs > rhs) {
      add("edge " + describe_edge(g, e) + ": data not ready (needs " +
          std::to_string(lhs) + ", available " + std::to_string(rhs) + ")");
    }
    if (kernel.allocation[e.value] == pim::AllocSite::kCache) {
      cached += ipr.size;
    }
  }
  if (cached > cache_capacity) {
    add("cached IPR bytes exceed aggregate cache capacity");
  }

  return issues;
}

}  // namespace paraconv::sched
