// Resource-constrained task packers.
//
// Para-CONV packs all tasks of one iteration onto the PE array *ignoring*
// intra-iteration precedence (retiming legalizes this), compacting each
// iteration to the minimum execution time (paper Fig. 3(b)). The baseline
// scheduler instead respects intra-iteration dependencies (no retiming) and
// therefore pays the critical path every iteration.
#pragma once

#include <vector>

#include "pim/config.hpp"
#include "sched/schedule.hpp"

namespace paraconv::sched {

struct Packing {
  std::vector<TaskPlacement> placement;
  /// Kernel period p = makespan of the packing.
  TimeUnits period{0};
};

/// Longest-processing-time-first packing onto `pe_count` identical PEs,
/// ignoring precedence. Deterministic: ties break on node id / PE index.
/// Guarantees period <= total_work/pe_count + max_exec (LPT bound) and that
/// every task fits inside [0, period].
Packing pack_ignore_dependencies(const graph::TaskGraph& g, int pe_count);

/// Topology-aware packing: tasks are placed in topological order onto the
/// least-loaded PE. The period matches the greedy load-balancing bound of
/// pack_ignore_dependencies, but producers tend to start before consumers
/// inside the window, so many edges need no retiming distance at all
/// (delta = 0) — shortening the prologue. Used by Para-CONV as the "initial
/// objective task schedule" (paper Sec. 3.3.3).
Packing pack_topological(const graph::TaskGraph& g, int pe_count);

/// Locality-aware topological packing for hop-latency NoCs (mesh/ring):
/// tasks are placed in topological order; among the PEs within `slack` of
/// the lightest load, the one minimizing total hop distance to the task's
/// producers wins. On a crossbar this degenerates to pack_topological
/// (all hop counts equal). Period is at most pack_topological's period
/// plus the slack.
Packing pack_locality(const graph::TaskGraph& g, const pim::PimConfig& config);

struct ListScheduleResult {
  std::vector<TaskPlacement> placement;
  TimeUnits makespan{0};
};

/// Dependency-respecting HEFT-style list scheduler: tasks are prioritized by
/// upward rank (execution + downstream transfer), each scheduled on the PE
/// with the earliest finish time. `edge_transfer[e]` is the hand-off latency
/// of edge e when producer and consumer run on different PEs (same-PE
/// hand-offs are free). Used by the SPARTA-style baseline.
ListScheduleResult list_schedule(const graph::TaskGraph& g, int pe_count,
                                 const std::vector<TimeUnits>& edge_transfer);

/// Insertion-based variant of `list_schedule`: instead of appending after a
/// PE's last task, each task may fill an earlier idle gap on the PE (HEFT's
/// insertion policy). Same priorities and dependency semantics; typically
/// equal or shorter makespans at slightly higher scheduling cost.
ListScheduleResult list_schedule_insertion(
    const graph::TaskGraph& g, int pe_count,
    const std::vector<TimeUnits>& edge_transfer);

}  // namespace paraconv::sched
