#include "sched/modulo.hpp"

#include <algorithm>
#include <optional>

#include "graph/algorithms.hpp"
#include "pim/cost_model.hpp"
#include "sched/bounds.hpp"

namespace paraconv::sched {
namespace {

/// Per-PE occupancy of the modulo reservation table: one flag per
/// (PE, offset) cell.
class ReservationTable {
 public:
  ReservationTable(int pe_count, std::int64_t ii)
      : ii_(ii),
        busy_(static_cast<std::size_t>(pe_count) *
                  static_cast<std::size_t>(ii),
              false) {}

  /// First PE with [offset, offset+exec) free, or nullopt.
  std::optional<int> find_pe(std::int64_t offset, std::int64_t exec,
                             int pe_count) const {
    for (int pe = 0; pe < pe_count; ++pe) {
      bool free = true;
      for (std::int64_t t = offset; t < offset + exec && free; ++t) {
        free = !busy_[index(pe, t)];
      }
      if (free) return pe;
    }
    return std::nullopt;
  }

  void occupy(int pe, std::int64_t offset, std::int64_t exec) {
    for (std::int64_t t = offset; t < offset + exec; ++t) {
      busy_[index(pe, t)] = true;
    }
  }

 private:
  std::size_t index(int pe, std::int64_t t) const {
    return static_cast<std::size_t>(pe) * static_cast<std::size_t>(ii_) +
           static_cast<std::size_t>(t);
  }

  std::int64_t ii_;
  std::vector<bool> busy_;
};

/// One scheduling attempt at a fixed initiation interval; nullopt if some
/// task found no slot within the search budget.
std::optional<Packing> try_schedule(const graph::TaskGraph& g,
                                    const pim::PimConfig& config,
                                    const pim::CostModel& cost_model,
                                    std::int64_t ii,
                                    const ModuloOptions& options,
                                    const std::vector<graph::NodeId>& order) {
  ReservationTable table(config.pe_count, ii);
  std::vector<std::int64_t> absolute(g.node_count(), 0);
  Packing packing;
  packing.placement.resize(g.node_count());
  packing.period = TimeUnits{ii};

  for (const graph::NodeId v : order) {
    const std::int64_t exec = g.task(v).exec_time.value;
    if (exec > ii) return std::nullopt;

    std::int64_t earliest = 0;
    for (const graph::EdgeId e : g.in_edges(v)) {
      const graph::Ipr& ipr = g.ipr(e);
      const std::int64_t latency = std::min<std::int64_t>(
          ii, cost_model.transfer_time(pim::AllocSite::kEdram, ipr.size).value);
      earliest = std::max(earliest, absolute[ipr.src.value] +
                                        g.task(ipr.src).exec_time.value +
                                        latency);
    }

    bool placed = false;
    const std::int64_t budget =
        earliest + static_cast<std::int64_t>(options.search_windows) * ii;
    for (std::int64_t t = earliest; t <= budget && !placed; ++t) {
      const std::int64_t offset = t % ii;
      if (offset + exec > ii) continue;  // tasks must not wrap the window
      const std::optional<int> pe =
          table.find_pe(offset, exec, config.pe_count);
      if (!pe.has_value()) continue;
      table.occupy(*pe, offset, exec);
      absolute[v.value] = t;
      packing.placement[v.value] = TaskPlacement{*pe, TimeUnits{offset}};
      placed = true;
    }
    if (!placed) return std::nullopt;
  }
  return packing;
}

}  // namespace

Packing pack_modulo(const graph::TaskGraph& g, const pim::PimConfig& config,
                    const ModuloOptions& options) {
  config.validate();
  PARACONV_REQUIRE(options.search_windows >= 1 && options.max_ii_growth >= 1,
                   "invalid modulo-scheduling options");
  const auto order = graph::topological_order(g);
  PARACONV_REQUIRE(order.has_value(), "pack_modulo requires an acyclic graph");

  const auto cost_model = pim::make_cost_model(config);
  const std::int64_t mii = period_lower_bound(g, config.pe_count).value;
  for (std::int64_t ii = mii;
       ii <= mii + options.max_ii_growth + g.total_work().value; ++ii) {
    std::optional<Packing> packing =
        try_schedule(g, config, *cost_model, ii, options, *order);
    if (packing.has_value()) return std::move(*packing);
  }
  PARACONV_CHECK(false, "modulo scheduling failed to converge");
  return {};
}

}  // namespace paraconv::sched
