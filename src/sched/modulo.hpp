// Iterative modulo scheduling (Rau-style, simplified).
//
// The compiler-literature alternative to the paper's pack-then-retime
// pipeline: choose *absolute* start times t_i >= t_pred + c_pred + latency
// along dependencies, mapping each task to window t_i / II and offset
// t_i mod II under per-PE resource constraints. Offsets then sit after
// their producers' (modulo the initiation interval II), so the recomputed
// per-edge retiming distances equal the window differences — R_max tracks
// ceil(depth/II) instead of the dependency-oblivious packers' per-edge
// ceiling accumulation. The ablation quantifies the prologue gap.
#pragma once

#include "pim/config.hpp"
#include "sched/packer.hpp"

namespace paraconv::sched {

struct ModuloOptions {
  /// Slot-search window per task (in multiples of II) before the initiation
  /// interval is enlarged and scheduling restarts.
  int search_windows{4};
  /// Upper bound on II growth (multiples of the resource MII) before giving
  /// up; within it, scheduling always succeeds (II = W serializes).
  int max_ii_growth{64};
};

/// Modulo-schedules `g` on `config.pe_count` PEs. The returned period is
/// the achieved initiation interval (>= the resource bound); placements
/// satisfy the usual kernel-window invariants. Hand-off latencies assume
/// the conservative eDRAM site so any later allocation only adds slack.
Packing pack_modulo(const graph::TaskGraph& g, const pim::PimConfig& config,
                    const ModuloOptions& options = {});

}  // namespace paraconv::sched
