// Prologue analysis (paper Sec. 2.3 / 3.2).
//
// The first R_max kernel windows form the prologue: task i only starts
// participating from window R_max - r(i), so early windows run partially
// filled while the pipeline ramps up (Fig. 3(b), time units 0-9). These
// helpers quantify that ramp for reporting and tests.
#pragma once

#include <vector>

#include "sched/schedule.hpp"

namespace paraconv::sched {

struct WindowProfile {
  std::int64_t window{0};
  /// Number of task executions in this window.
  std::size_t active_tasks{0};
  /// Busy PE-time in the window divided by pe_count * period.
  double utilization{0.0};
};

/// Per-window activity for the prologue windows plus the first steady-state
/// window (R_max + 1 entries). Utilization is non-decreasing through the
/// prologue and maximal in steady state.
std::vector<WindowProfile> prologue_profile(const graph::TaskGraph& g,
                                            const KernelSchedule& kernel,
                                            int pe_count);

/// Prologue duration R_max * p.
TimeUnits prologue_time(const KernelSchedule& kernel);

}  // namespace paraconv::sched
