#include "sched/schedule.hpp"

#include <algorithm>

namespace paraconv::sched {

int KernelSchedule::r_max() const {
  int best = 0;
  for (const int r : retiming) best = std::max(best, r);
  return best;
}

std::size_t KernelSchedule::cached_edge_count() const {
  return static_cast<std::size_t>(
      std::count(allocation.begin(), allocation.end(), pim::AllocSite::kCache));
}

ExpandedSchedule expand_schedule(const graph::TaskGraph& g,
                                 const KernelSchedule& kernel,
                                 std::int64_t iterations) {
  PARACONV_REQUIRE(iterations >= 1, "at least one iteration required");
  PARACONV_REQUIRE(kernel.placement.size() == g.node_count(),
                   "kernel schedule does not match graph");
  PARACONV_REQUIRE(kernel.retiming.size() == g.node_count(),
                   "kernel schedule does not match graph");
  PARACONV_REQUIRE(kernel.period > TimeUnits{0}, "period must be positive");

  const int r_max = kernel.r_max();
  ExpandedSchedule out;
  out.prologue = kernel.period * r_max;
  out.instances.reserve(static_cast<std::size_t>(iterations) * g.node_count());

  for (std::int64_t iter = 0; iter < iterations; ++iter) {
    for (const graph::NodeId v : g.nodes()) {
      const std::int64_t window =
          iter + r_max - kernel.retiming[v.value];
      const TaskPlacement& place = kernel.placement[v.value];
      TaskInstance inst;
      inst.node = v;
      inst.iteration = iter;
      inst.window = window;
      inst.pe = place.pe;
      inst.start = TimeUnits{window * kernel.period.value} + place.start;
      out.makespan = std::max(out.makespan,
                              inst.start + g.task(v).exec_time);
      out.instances.push_back(inst);
    }
  }
  std::sort(out.instances.begin(), out.instances.end(),
            [](const TaskInstance& a, const TaskInstance& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.pe != b.pe) return a.pe < b.pe;
              return a.node.value < b.node.value;
            });
  return out;
}

}  // namespace paraconv::sched
