// Schedule representations.
//
// Para-CONV's output is a *kernel schedule*: a periodic steady-state pattern
// of length p in which every task of the (retimed) application executes
// exactly once, together with per-task retiming values and per-edge
// inter-iteration distances and allocation sites. The prologue (paper
// Sec. 2.3) is derived from the retiming values by `expand_schedule`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "graph/task_graph.hpp"
#include "pim/config.hpp"

namespace paraconv::sched {

/// Placement of one task inside the kernel window [0, p).
struct TaskPlacement {
  int pe{0};
  TimeUnits start{0};
};

/// Periodic steady-state schedule for a task graph on a PE array.
struct KernelSchedule {
  /// Kernel period p: the window repeats every p time units.
  TimeUnits period{0};

  /// Per-node placement (indexed by NodeId::value).
  std::vector<TaskPlacement> placement;

  /// Per-node retiming value r(i) >= 0 (indexed by NodeId::value).
  std::vector<int> retiming;

  /// Per-edge inter-iteration distance d_ij = r(i) - r(j) (indexed by
  /// EdgeId::value). Non-negative for any legal retiming.
  std::vector<int> distance;

  /// Per-edge allocation site for the IPR (indexed by EdgeId::value).
  std::vector<pim::AllocSite> allocation;

  /// Maximum retiming value R_max over all tasks; prologue = R_max * p.
  int r_max() const;

  /// Number of edges allocated to on-chip cache.
  std::size_t cached_edge_count() const;
};

/// One concrete task execution in the expanded (prologue + steady-state)
/// timeline.
struct TaskInstance {
  graph::NodeId node;
  /// Application iteration index this execution computes (0-based).
  std::int64_t iteration{0};
  /// Kernel-window index t in which it runs; absolute start is
  /// t * period + placement.start.
  std::int64_t window{0};
  int pe{0};
  TimeUnits start{0};  // absolute
};

/// Fully expanded schedule for `iterations` application iterations.
struct ExpandedSchedule {
  std::vector<TaskInstance> instances;  // sorted by absolute start time
  TimeUnits makespan{0};
  TimeUnits prologue{0};
};

/// Expands a kernel schedule over the given iteration count. Task i of
/// iteration L runs in window L + R_max - r(i); the first R_max windows are
/// the prologue (paper Sec. 3.2: prologue time = R_max * p).
ExpandedSchedule expand_schedule(const graph::TaskGraph& g,
                                 const KernelSchedule& kernel,
                                 std::int64_t iterations);

}  // namespace paraconv::sched
