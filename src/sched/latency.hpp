// Per-iteration latency analysis.
//
// Retiming trades latency for throughput: iteration L's tasks are spread
// over windows [L, L + R_max - min r], so while the array *completes* one
// iteration every p time units, a single input takes up to
// (R_max - r_min + 1) windows from its first task to its last. The paper
// reports only throughput; this analysis quantifies the latency side of
// the trade so users can bound end-to-end response time.
#pragma once

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace paraconv::sched {

struct LatencyReport {
  /// Steady-state span from the start of an iteration's earliest task to
  /// the finish of its latest task.
  TimeUnits iteration_latency{0};
  /// Number of kernel windows one iteration touches
  /// (1 + max r - min r over tasks).
  int windows_spanned{1};
  /// Throughput period for reference (one result per `period`).
  TimeUnits period{0};
};

/// Latency of one application iteration under the retimed kernel schedule.
LatencyReport iteration_latency(const graph::TaskGraph& g,
                                const KernelSchedule& kernel);

}  // namespace paraconv::sched
