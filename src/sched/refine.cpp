#include "sched/refine.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "retiming/delta.hpp"

namespace paraconv::sched {
namespace {

/// Rebuilds compacted placements from a PE assignment: tasks keep node-id
/// order within their PE and run back-to-back from 0.
Packing compact(const graph::TaskGraph& g, const std::vector<int>& pe_of,
                int pe_count) {
  Packing packing;
  packing.placement.resize(g.node_count());
  std::vector<TimeUnits> load(static_cast<std::size_t>(pe_count),
                              TimeUnits{0});
  for (const graph::NodeId v : g.nodes()) {
    const auto pe = static_cast<std::size_t>(pe_of[v.value]);
    packing.placement[v.value] = TaskPlacement{pe_of[v.value], load[pe]};
    load[pe] += g.task(v).exec_time;
  }
  packing.period = *std::max_element(load.begin(), load.end());
  return packing;
}

int distance_sum(const graph::TaskGraph& g, const Packing& packing,
                 const pim::PimConfig& config) {
  int sum = 0;
  for (const retiming::EdgeDelta& d : retiming::compute_edge_deltas(
           g, packing.placement, packing.period, config)) {
    sum += d.edram;
  }
  return sum;
}

}  // namespace

RefineResult refine_packing(const graph::TaskGraph& g, const Packing& initial,
                            const pim::PimConfig& config,
                            const RefineOptions& options) {
  PARACONV_REQUIRE(options.max_steps >= 0, "max_steps must be non-negative");
  PARACONV_REQUIRE(initial.placement.size() == g.node_count(),
                   "packing does not match graph");

  std::vector<int> pe_of(g.node_count());
  for (const graph::NodeId v : g.nodes()) {
    pe_of[v.value] = initial.placement[v.value].pe;
  }

  RefineResult result;
  result.packing = compact(g, pe_of, config.pe_count);
  // Compacting alone must not worsen the period (it only removes gaps).
  PARACONV_CHECK(result.packing.period <= initial.period,
                 "compaction increased the period");
  result.distance_sum_before = distance_sum(g, result.packing, config);
  result.distance_sum_after = result.distance_sum_before;

  Rng rng(options.seed);
  for (int step = 0; step < options.max_steps; ++step) {
    const auto v = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(g.node_count()) - 1));
    const int target_pe =
        static_cast<int>(rng.uniform_int(0, config.pe_count - 1));
    if (pe_of[v] == target_pe) continue;

    const int old_pe = pe_of[v];
    pe_of[v] = target_pe;
    const Packing candidate = compact(g, pe_of, config.pe_count);
    if (candidate.period > result.packing.period) {
      pe_of[v] = old_pe;
      continue;
    }
    const int candidate_sum = distance_sum(g, candidate, config);
    const bool better =
        candidate_sum < result.distance_sum_after ||
        (candidate_sum == result.distance_sum_after &&
         candidate.period < result.packing.period);
    if (!better) {
      pe_of[v] = old_pe;
      continue;
    }
    result.packing = candidate;
    result.distance_sum_after = candidate_sum;
    ++result.accepted_moves;
  }
  return result;
}

}  // namespace paraconv::sched
