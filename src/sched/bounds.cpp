#include "sched/bounds.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace paraconv::sched {

TimeUnits period_lower_bound(const graph::TaskGraph& g, int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  return TimeUnits{std::max(ceil_div(g.total_work().value, pe_count),
                            g.max_exec_time().value)};
}

int retiming_lower_bound(const graph::TaskGraph& g, TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  const TimeUnits cp = graph::critical_path_length(g);
  return static_cast<int>(
      std::max<std::int64_t>(0, ceil_div(cp.value, period.value) - 1));
}

}  // namespace paraconv::sched
