// Iteration unfolding (unrolling).
//
// Classic companion to retiming in periodic dataflow scheduling: schedule
// `factor` consecutive application iterations as one super-iteration. The
// unfolded graph is `factor` disjoint copies of the original (iterations
// are independent in the paper's model — all cross-iteration coupling comes
// from the retiming transformation itself). Unfolding reduces the packing
// quantization loss: the super-period covers `factor` inputs, so the
// effective per-iteration period can drop below the single-iteration
// optimum when task granularity is coarse relative to p.
#pragma once

#include "graph/task_graph.hpp"

namespace paraconv::graph {

/// `factor` disjoint copies of `g`; copy k's task names carry an "@k"
/// suffix. Node/edge ids are copy-major: original id v in copy k maps to
/// k * g.node_count() + v (same for edges).
TaskGraph unfold(const TaskGraph& g, int factor);

/// Maps an unfolded node id back to (original node, copy index).
struct UnfoldedId {
  NodeId original;
  int copy{0};
};

UnfoldedId unfold_origin(const TaskGraph& original, NodeId unfolded_node);

}  // namespace paraconv::graph
