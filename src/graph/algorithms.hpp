// Graph algorithms on TaskGraph: topological ordering, acyclicity, critical
// path, degree statistics. These underpin both the schedulers and the
// retiming analysis.
#pragma once

#include <optional>
#include <vector>

#include "graph/task_graph.hpp"

namespace paraconv::graph {

/// Kahn topological order; std::nullopt if the graph has a cycle.
std::optional<std::vector<NodeId>> topological_order(const TaskGraph& g);

/// True iff the graph has no directed cycle.
bool is_acyclic(const TaskGraph& g);

/// Nodes with no incoming / no outgoing edges.
std::vector<NodeId> sources(const TaskGraph& g);
std::vector<NodeId> sinks(const TaskGraph& g);

/// Length of the longest path measured in summed task execution times
/// (edges contribute zero). This is the dependency-limited lower bound on a
/// single iteration's makespan for any non-pipelined scheduler.
TimeUnits critical_path_length(const TaskGraph& g);

/// Longest path from each node to any sink, measured in execution time of
/// the node itself plus downstream tasks ("upward rank" with zero
/// communication). Used as the SPARTA-style scheduling priority.
std::vector<TimeUnits> upward_rank(const TaskGraph& g);

/// Longest path measured in edge weights supplied per edge (used for the
/// retiming value computation R_max: weights are the per-edge retiming
/// distances d_ij). Returns per-node values r(i) with sinks at 0.
std::vector<int> longest_path_by_edge_weight(const TaskGraph& g,
                                             const std::vector<int>& weight);

struct DegreeStats {
  std::size_t max_in{0};
  std::size_t max_out{0};
  double avg_degree{0.0};  // average total degree (in + out)
};

DegreeStats degree_stats(const TaskGraph& g);

}  // namespace paraconv::graph
