#include "graph/task_graph.hpp"

#include <numeric>

#include "graph/algorithms.hpp"

namespace paraconv::graph {

const char* to_string(TaskKind kind) {
  switch (kind) {
    case TaskKind::kConvolution:
      return "conv";
    case TaskKind::kPooling:
      return "pool";
    case TaskKind::kFullyConnected:
      return "fc";
    case TaskKind::kInput:
      return "input";
    case TaskKind::kOther:
      return "other";
  }
  return "unknown";
}

NodeId TaskGraph::add_task(Task task) {
  PARACONV_REQUIRE(task.exec_time > TimeUnits{0},
                   "task execution time must be positive");
  const NodeId id{static_cast<std::uint32_t>(tasks_.size())};
  tasks_.push_back(std::move(task));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

EdgeId TaskGraph::add_ipr(NodeId src, NodeId dst, Bytes size) {
  PARACONV_REQUIRE(src.value < tasks_.size(), "edge source must exist");
  PARACONV_REQUIRE(dst.value < tasks_.size(), "edge target must exist");
  PARACONV_REQUIRE(src != dst, "self-loops are not allowed");
  PARACONV_REQUIRE(size > Bytes{0}, "IPR size must be positive");
  const EdgeId id{static_cast<std::uint32_t>(iprs_.size())};
  iprs_.push_back(Ipr{src, dst, size});
  out_[src.value].push_back(id);
  in_[dst.value].push_back(id);
  return id;
}

std::vector<NodeId> TaskGraph::nodes() const {
  std::vector<NodeId> ids(tasks_.size());
  for (std::uint32_t i = 0; i < tasks_.size(); ++i) ids[i] = NodeId{i};
  return ids;
}

std::vector<EdgeId> TaskGraph::edges() const {
  std::vector<EdgeId> ids(iprs_.size());
  for (std::uint32_t i = 0; i < iprs_.size(); ++i) ids[i] = EdgeId{i};
  return ids;
}

TimeUnits TaskGraph::total_work() const {
  return std::accumulate(
      tasks_.begin(), tasks_.end(), TimeUnits{0},
      [](TimeUnits acc, const Task& t) { return acc + t.exec_time; });
}

Bytes TaskGraph::total_ipr_bytes() const {
  return std::accumulate(
      iprs_.begin(), iprs_.end(), Bytes{0},
      [](Bytes acc, const Ipr& e) { return acc + e.size; });
}

TimeUnits TaskGraph::max_exec_time() const {
  TimeUnits best{0};
  for (const Task& t : tasks_) best = std::max(best, t.exec_time);
  return best;
}

void TaskGraph::validate() const {
  PARACONV_REQUIRE(!tasks_.empty(), "graph must contain at least one task");
  PARACONV_REQUIRE(is_acyclic(*this), "task graph must be acyclic");
}

}  // namespace paraconv::graph
