#include "graph/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace paraconv::graph {
namespace {

/// Distributes `vertices` nodes across roughly sqrt(vertices) layers, each
/// layer non-empty, with mild random jitter. Returns per-node layer index;
/// node ids are assigned in non-decreasing layer order.
std::vector<std::size_t> assign_layers(std::size_t vertices, Rng& rng) {
  const auto layer_count = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(std::sqrt(
             static_cast<double>(vertices)))));
  // Start from an even split, then jitter by moving nodes between adjacent
  // layers while keeping every layer non-empty.
  std::vector<std::size_t> layer_size(layer_count, vertices / layer_count);
  for (std::size_t i = 0; i < vertices % layer_count; ++i) ++layer_size[i];
  for (std::size_t step = 0; step < layer_count; ++step) {
    const auto from = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(layer_count) - 1));
    const auto to = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(layer_count) - 1));
    if (layer_size[from] > 1) {
      --layer_size[from];
      ++layer_size[to];
    }
  }

  std::vector<std::size_t> layer_of;
  layer_of.reserve(vertices);
  for (std::size_t l = 0; l < layer_count; ++l) {
    layer_of.insert(layer_of.end(), layer_size[l], l);
  }
  return layer_of;
}

std::uint64_t edge_key(std::size_t i, std::size_t j, std::size_t n) {
  return static_cast<std::uint64_t>(i) * n + j;
}

}  // namespace

TaskGraph generate_layered_dag(const GeneratorConfig& config) {
  const std::size_t n = config.vertices;
  const std::size_t m = config.edges;
  PARACONV_REQUIRE(n >= 2, "generator requires at least two vertices");
  PARACONV_REQUIRE(m + 1 >= n, "need at least vertices-1 edges to connect");
  PARACONV_REQUIRE(m <= n * (n - 1) / 2, "edge count exceeds DAG capacity");
  PARACONV_REQUIRE(config.min_exec >= 1 && config.min_exec <= config.max_exec,
                   "invalid execution-time range");
  PARACONV_REQUIRE(
      config.min_ipr_bytes >= 1 && config.min_ipr_bytes <= config.max_ipr_bytes,
      "invalid IPR size range");

  Rng rng(config.seed);
  const std::vector<std::size_t> layer_of = assign_layers(n, rng);
  const std::size_t layer_count = layer_of.back() + 1;

  // First node index of each layer, for sampling within a layer.
  std::vector<std::size_t> layer_begin(layer_count + 1, n);
  for (std::size_t v = n; v-- > 0;) layer_begin[layer_of[v]] = v;
  layer_begin[layer_count] = n;

  TaskGraph g(config.name);
  for (std::size_t v = 0; v < n; ++v) {
    Task t;
    t.name = config.name + "_T" + std::to_string(v + 1);
    t.kind = rng.bernoulli(config.pooling_fraction) ? TaskKind::kPooling
                                                    : TaskKind::kConvolution;
    t.exec_time =
        t.kind == TaskKind::kPooling
            ? TimeUnits{4}
            : TimeUnits{rng.uniform_int(config.min_exec, config.max_exec)};
    g.add_task(std::move(t));
  }

  const auto draw_size = [&] {
    const std::int64_t raw =
        rng.uniform_int(config.min_ipr_bytes, config.max_ipr_bytes);
    return Bytes{std::max<std::int64_t>(64, (raw / 64) * 64)};
  };

  std::unordered_set<std::uint64_t> used;
  used.reserve(m * 2);
  std::size_t added = 0;

  // Connectivity backbone: every node beyond layer 0 receives one in-edge
  // from a uniformly random node in the previous layer.
  for (std::size_t v = layer_begin[1]; v < n; ++v) {
    const std::size_t l = layer_of[v];
    const std::size_t lo = layer_begin[l - 1];
    const std::size_t hi = layer_begin[l] - 1;
    const auto u = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(hi)));
    used.insert(edge_key(u, v, n));
    g.add_ipr(NodeId{static_cast<std::uint32_t>(u)},
              NodeId{static_cast<std::uint32_t>(v)}, draw_size());
    ++added;
  }
  PARACONV_CHECK(added <= m, "backbone exceeded requested edge budget");

  // Extra edges: rejection-sample forward pairs, biased toward adjacent
  // layers (CNN locality), falling back to exhaustive enumeration if the
  // random phase stalls near saturation.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 60 * (m + 16);
  while (added < m && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    std::size_t v;
    if (rng.bernoulli(config.adjacent_layer_bias) &&
        layer_of[u] + 1 < layer_count) {
      const std::size_t l = layer_of[u] + 1;
      v = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(layer_begin[l]),
                          static_cast<std::int64_t>(layer_begin[l + 1]) - 1));
    } else {
      v = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    }
    if (u >= v) continue;  // keep node-id order == topological order
    if (!used.insert(edge_key(u, v, n)).second) continue;
    g.add_ipr(NodeId{static_cast<std::uint32_t>(u)},
              NodeId{static_cast<std::uint32_t>(v)}, draw_size());
    ++added;
  }
  if (added < m) {
    // Deterministic sweep over all remaining forward pairs.
    for (std::size_t u = 0; u < n && added < m; ++u) {
      for (std::size_t v = u + 1; v < n && added < m; ++v) {
        if (!used.insert(edge_key(u, v, n)).second) continue;
        g.add_ipr(NodeId{static_cast<std::uint32_t>(u)},
                  NodeId{static_cast<std::uint32_t>(v)}, draw_size());
        ++added;
      }
    }
  }
  PARACONV_CHECK(added == m, "generator failed to reach requested edge count");

  g.validate();
  return g;
}

namespace {

/// Shared sampling helpers for the structured generators.
class TaskSampler {
 public:
  TaskSampler(const GeneratorConfig& config, Rng& rng)
      : config_(config), rng_(rng) {
    PARACONV_REQUIRE(
        config.min_exec >= 1 && config.min_exec <= config.max_exec,
        "invalid execution-time range");
    PARACONV_REQUIRE(config.min_ipr_bytes >= 1 &&
                         config.min_ipr_bytes <= config.max_ipr_bytes,
                     "invalid IPR size range");
  }

  Task task(const std::string& name) {
    Task t;
    t.name = config_.name + "_" + name;
    t.kind = rng_.bernoulli(config_.pooling_fraction)
                 ? TaskKind::kPooling
                 : TaskKind::kConvolution;
    t.exec_time = t.kind == TaskKind::kPooling
                      ? TimeUnits{4}
                      : TimeUnits{rng_.uniform_int(config_.min_exec,
                                                   config_.max_exec)};
    return t;
  }

  Bytes ipr() {
    const std::int64_t raw =
        rng_.uniform_int(config_.min_ipr_bytes, config_.max_ipr_bytes);
    return Bytes{std::max<std::int64_t>(64, (raw / 64) * 64)};
  }

 private:
  const GeneratorConfig& config_;
  Rng& rng_;
};

}  // namespace

TaskGraph generate_fork_join(const GeneratorConfig& config, int stages,
                             int branches, int branch_length) {
  PARACONV_REQUIRE(stages >= 1 && branches >= 1 && branch_length >= 1,
                   "fork-join shape parameters must be positive");
  Rng rng(config.seed);
  TaskSampler sampler(config, rng);

  TaskGraph g(config.name);
  NodeId previous_join{};
  bool has_previous = false;
  for (int s = 0; s < stages; ++s) {
    const std::string stage = "s" + std::to_string(s);
    const NodeId fork = g.add_task(sampler.task(stage + "_fork"));
    if (has_previous) g.add_ipr(previous_join, fork, sampler.ipr());

    std::vector<NodeId> branch_tails;
    for (int b = 0; b < branches; ++b) {
      NodeId prev = fork;
      for (int k = 0; k < branch_length; ++k) {
        const NodeId cur = g.add_task(sampler.task(
            stage + "_b" + std::to_string(b) + "_" + std::to_string(k)));
        g.add_ipr(prev, cur, sampler.ipr());
        prev = cur;
      }
      branch_tails.push_back(prev);
    }

    const NodeId join = g.add_task(sampler.task(stage + "_join"));
    for (const NodeId tail : branch_tails) {
      g.add_ipr(tail, join, sampler.ipr());
    }
    previous_join = join;
    has_previous = true;
  }
  g.validate();
  return g;
}

TaskGraph generate_diamond_chain(const GeneratorConfig& config, int stages,
                                 int width) {
  PARACONV_REQUIRE(stages >= 1 && width >= 1,
                   "diamond shape parameters must be positive");
  Rng rng(config.seed);
  TaskSampler sampler(config, rng);

  TaskGraph g(config.name);
  NodeId neck = g.add_task(sampler.task("neck0"));
  for (int s = 0; s < stages; ++s) {
    std::vector<NodeId> belly;
    for (int w = 0; w < width; ++w) {
      const NodeId n = g.add_task(sampler.task(
          "d" + std::to_string(s) + "_" + std::to_string(w)));
      g.add_ipr(neck, n, sampler.ipr());
      belly.push_back(n);
    }
    const NodeId next = g.add_task(sampler.task(
        "neck" + std::to_string(s + 1)));
    for (const NodeId n : belly) g.add_ipr(n, next, sampler.ipr());
    neck = next;
  }
  g.validate();
  return g;
}

}  // namespace paraconv::graph
