#include "graph/serialize.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace paraconv::graph {
namespace {

TaskKind parse_kind(const std::string& word, int line) {
  if (word == "conv") return TaskKind::kConvolution;
  if (word == "pool") return TaskKind::kPooling;
  if (word == "fc") return TaskKind::kFullyConnected;
  if (word == "input") return TaskKind::kInput;
  if (word == "other") return TaskKind::kOther;
  PARACONV_REQUIRE(false, "line " + std::to_string(line) +
                              ": unknown task kind '" + word + "'");
  return TaskKind::kOther;
}

std::int64_t parse_int(const std::string& word, int line) {
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(word, &consumed);
    PARACONV_REQUIRE(consumed == word.size(),
                     "line " + std::to_string(line) + ": trailing characters");
    return value;
  } catch (const std::logic_error&) {
    throw ContractViolation("line " + std::to_string(line) +
                            ": expected an integer, got '" + word + "'");
  }
}

}  // namespace

void write_graph(std::ostream& os, const TaskGraph& g) {
  os << "paraconv-graph 1\n";
  os << "name " << g.name() << "\n";
  for (const NodeId v : g.nodes()) {
    const Task& t = g.task(v);
    os << "task " << t.name << " " << to_string(t.kind) << " "
       << t.exec_time.value;
    if (t.weights > Bytes{0}) os << " " << t.weights.value;
    os << "\n";
  }
  for (const EdgeId e : g.edges()) {
    const Ipr& ipr = g.ipr(e);
    os << "ipr " << ipr.src.value << " " << ipr.dst.value << " "
       << ipr.size.value << "\n";
  }
}

std::string write_graph_string(const TaskGraph& g) {
  std::ostringstream os;
  write_graph(os, g);
  return os.str();
}

TaskGraph read_graph(std::istream& is) {
  std::string line;
  int line_no = 0;

  const auto next_meaningful = [&](std::string* out) {
    while (std::getline(is, line)) {
      ++line_no;
      if (line.empty() || line[0] == '#') continue;
      *out = line;
      return true;
    }
    return false;
  };

  std::string current;
  PARACONV_REQUIRE(next_meaningful(&current), "empty graph file");
  PARACONV_REQUIRE(current == "paraconv-graph 1",
                   "line " + std::to_string(line_no) +
                       ": missing 'paraconv-graph 1' header");

  TaskGraph g;
  while (next_meaningful(&current)) {
    const std::vector<std::string> words = split(current, ' ');
    PARACONV_REQUIRE(!words.empty(), "line " + std::to_string(line_no) +
                                         ": empty record");
    if (words[0] == "name") {
      PARACONV_REQUIRE(words.size() == 2, "line " + std::to_string(line_no) +
                                              ": name takes one word");
      g.set_name(words[1]);
    } else if (words[0] == "task") {
      PARACONV_REQUIRE(words.size() == 4 || words.size() == 5,
                       "line " + std::to_string(line_no) +
                           ": task expects <name> <kind> <exec> [weights]");
      Task t;
      t.name = words[1];
      t.kind = parse_kind(words[2], line_no);
      t.exec_time = TimeUnits{parse_int(words[3], line_no)};
      if (words.size() == 5) {
        t.weights = Bytes{parse_int(words[4], line_no)};
      }
      g.add_task(std::move(t));
    } else if (words[0] == "ipr") {
      PARACONV_REQUIRE(words.size() == 4,
                       "line " + std::to_string(line_no) +
                           ": ipr expects <src> <dst> <bytes>");
      const std::int64_t src = parse_int(words[1], line_no);
      const std::int64_t dst = parse_int(words[2], line_no);
      PARACONV_REQUIRE(src >= 0 && dst >= 0 &&
                           src < static_cast<std::int64_t>(g.node_count()) &&
                           dst < static_cast<std::int64_t>(g.node_count()),
                       "line " + std::to_string(line_no) +
                           ": ipr endpoint out of range");
      g.add_ipr(NodeId{static_cast<std::uint32_t>(src)},
                NodeId{static_cast<std::uint32_t>(dst)},
                Bytes{parse_int(words[3], line_no)});
    } else {
      PARACONV_REQUIRE(false, "line " + std::to_string(line_no) +
                                  ": unknown record '" + words[0] + "'");
    }
  }
  g.validate();
  return g;
}

TaskGraph read_graph_string(const std::string& text) {
  std::istringstream is(text);
  return read_graph(is);
}

}  // namespace paraconv::graph
