#include "graph/dot.hpp"

#include <sstream>

namespace paraconv::graph {

std::string to_dot(const TaskGraph& g) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box];\n";
  for (const NodeId v : g.nodes()) {
    const Task& t = g.task(v);
    os << "  n" << v.value << " [label=\"" << t.name << "\\n"
       << to_string(t.kind) << " c=" << t.exec_time.value << "\"];\n";
  }
  for (const EdgeId e : g.edges()) {
    const Ipr& ipr = g.ipr(e);
    os << "  n" << ipr.src.value << " -> n" << ipr.dst.value << " [label=\""
       << format_bytes(ipr.size) << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace paraconv::graph
