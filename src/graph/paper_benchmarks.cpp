#include "graph/paper_benchmarks.hpp"

#include <algorithm>

#include "graph/generator.hpp"

namespace paraconv::graph {

const std::vector<PaperBenchmark>& paper_benchmarks() {
  // Vertex/edge counts transcribed from Table 1 of the paper. Seeds are
  // arbitrary but fixed; they were chosen once and never tuned.
  static const std::vector<PaperBenchmark> kTable{
      {"cat", 9, 21, 0xC0FFEE01},
      {"car", 13, 28, 0xC0FFEE02},
      {"flower", 21, 51, 0xC0FFEE03},
      {"character-1", 46, 121, 0xC0FFEE04},
      {"character-2", 52, 130, 0xC0FFEE05},
      {"image-compress", 70, 178, 0xC0FFEE06},
      {"stock-predict", 83, 218, 0xC0FFEE07},
      {"string-matching", 102, 267, 0xC0FFEE08},
      {"shortest-path", 191, 506, 0xC0FFEE09},
      {"speech-1", 247, 652, 0xC0FFEE0A},
      {"speech-2", 369, 981, 0xC0FFEE0B},
      {"protein", 546, 1449, 0xC0FFEE0C},
  };
  return kTable;
}

const PaperBenchmark& paper_benchmark(const std::string& name) {
  const auto& table = paper_benchmarks();
  const auto it = std::find_if(
      table.begin(), table.end(),
      [&](const PaperBenchmark& b) { return b.name == name; });
  PARACONV_REQUIRE(it != table.end(), "unknown paper benchmark: " + name);
  return *it;
}

TaskGraph build_paper_benchmark(const PaperBenchmark& bench) {
  GeneratorConfig config;
  config.name = bench.name;
  config.vertices = bench.vertices;
  config.edges = bench.edges;
  config.seed = bench.seed;
  return generate_layered_dag(config);
}

TaskGraph motivational_example(Bytes ipr_bytes) {
  PARACONV_REQUIRE(ipr_bytes > Bytes{0}, "IPR size must be positive");
  TaskGraph g("motivational");
  const NodeId t1 = g.add_task({"T1", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId t2 = g.add_task({"T2", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId t3 = g.add_task({"T3", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId t4 = g.add_task({"T4", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId t5 = g.add_task({"T5", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(t1, t2, ipr_bytes);
  g.add_ipr(t1, t3, ipr_bytes);
  g.add_ipr(t2, t4, ipr_bytes);  // I_{2,4}
  g.add_ipr(t2, t5, ipr_bytes);  // I_{2,5}
  g.add_ipr(t3, t4, ipr_bytes);  // I_{3,4}
  g.add_ipr(t3, t5, ipr_bytes);  // I_{3,5}
  return g;
}

}  // namespace paraconv::graph
