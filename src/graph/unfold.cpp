#include "graph/unfold.hpp"

namespace paraconv::graph {

TaskGraph unfold(const TaskGraph& g, int factor) {
  PARACONV_REQUIRE(factor >= 1, "unfold factor must be positive");
  g.validate();

  TaskGraph out(g.name() + "_x" + std::to_string(factor));
  for (int k = 0; k < factor; ++k) {
    for (const NodeId v : g.nodes()) {
      Task task = g.task(v);
      task.name += "@" + std::to_string(k);
      out.add_task(std::move(task));
    }
  }
  const auto n = static_cast<std::uint32_t>(g.node_count());
  for (int k = 0; k < factor; ++k) {
    const std::uint32_t base = static_cast<std::uint32_t>(k) * n;
    for (const EdgeId e : g.edges()) {
      const Ipr& ipr = g.ipr(e);
      out.add_ipr(NodeId{base + ipr.src.value}, NodeId{base + ipr.dst.value},
                  ipr.size);
    }
  }
  return out;
}

UnfoldedId unfold_origin(const TaskGraph& original, NodeId unfolded_node) {
  const auto n = static_cast<std::uint32_t>(original.node_count());
  PARACONV_REQUIRE(n > 0, "original graph must be non-empty");
  UnfoldedId id;
  id.original = NodeId{unfolded_node.value % n};
  id.copy = static_cast<int>(unfolded_node.value / n);
  return id;
}

}  // namespace paraconv::graph
