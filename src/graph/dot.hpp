// Graphviz DOT export for task graphs and annotated allocations.
#pragma once

#include <string>

#include "graph/task_graph.hpp"

namespace paraconv::graph {

/// Renders the graph in Graphviz DOT syntax. Node labels show the task name
/// and execution time; edge labels show the IPR byte size.
std::string to_dot(const TaskGraph& g);

}  // namespace paraconv::graph
