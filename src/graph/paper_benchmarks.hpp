// The twelve benchmark task graphs of the paper's evaluation (Table 1).
//
// Each benchmark is reconstructed with the published vertex/edge counts via
// the seeded layered-DAG generator; seeds are fixed per benchmark so every
// run of every harness sees identical graphs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace paraconv::graph {

struct PaperBenchmark {
  std::string name;
  std::size_t vertices;
  std::size_t edges;
  std::uint64_t seed;
};

/// All twelve benchmarks in the paper's Table 1 order
/// (cat 9/21 ... protein 546/1449).
const std::vector<PaperBenchmark>& paper_benchmarks();

/// Looks up a benchmark by name; throws ContractViolation if unknown.
const PaperBenchmark& paper_benchmark(const std::string& name);

/// Builds the reconstructed task graph for one benchmark.
TaskGraph build_paper_benchmark(const PaperBenchmark& bench);

/// The paper's motivational example (Figs. 2(b)/3, Sec. 2.3): five
/// unit-time convolutions T1..T5 where T1 feeds T2/T3 and both feed T4/T5
/// through the IPRs I_{2,4}, I_{2,5}, I_{3,4}, I_{3,5}. `ipr_bytes` sizes
/// every IPR (the example assumes one IPR fills one PE cache).
TaskGraph motivational_example(Bytes ipr_bytes = Bytes{8 * 1024});

}  // namespace paraconv::graph
