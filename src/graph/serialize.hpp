// Plain-text serialization of task graphs.
//
// Line-oriented format, stable across versions:
//
//   paraconv-graph 1
//   name <graph name>
//   task <name> <kind> <exec_time>
//   ...
//   ipr <src_index> <dst_index> <bytes>
//   ...
//
// Task indices refer to `task` line order. Blank lines and lines starting
// with '#' are ignored. Used to snapshot benchmark graphs and to feed
// externally-generated applications into the scheduler.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

namespace paraconv::graph {

void write_graph(std::ostream& os, const TaskGraph& g);
std::string write_graph_string(const TaskGraph& g);

/// Parses a graph; throws ContractViolation with a line number on malformed
/// input.
TaskGraph read_graph(std::istream& is);
TaskGraph read_graph_string(const std::string& text);

}  // namespace paraconv::graph
