#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace paraconv::graph {

std::optional<std::vector<NodeId>> topological_order(const TaskGraph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> in_degree(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    in_degree[v] = g.in_edges(NodeId{v}).size();
  }

  std::queue<NodeId> ready;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) ready.push(NodeId{v});
  }

  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (const EdgeId e : g.out_edges(v)) {
      const NodeId w = g.ipr(e).dst;
      if (--in_degree[w.value] == 0) ready.push(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool is_acyclic(const TaskGraph& g) { return topological_order(g).has_value(); }

std::vector<NodeId> sources(const TaskGraph& g) {
  std::vector<NodeId> out;
  for (const NodeId v : g.nodes()) {
    if (g.in_edges(v).empty()) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> sinks(const TaskGraph& g) {
  std::vector<NodeId> out;
  for (const NodeId v : g.nodes()) {
    if (g.out_edges(v).empty()) out.push_back(v);
  }
  return out;
}

TimeUnits critical_path_length(const TaskGraph& g) {
  const auto ranks = upward_rank(g);
  TimeUnits best{0};
  for (const TimeUnits r : ranks) best = std::max(best, r);
  return best;
}

std::vector<TimeUnits> upward_rank(const TaskGraph& g) {
  const auto order = topological_order(g);
  PARACONV_REQUIRE(order.has_value(), "upward_rank requires an acyclic graph");

  std::vector<TimeUnits> rank(g.node_count(), TimeUnits{0});
  // Process in reverse topological order: each node's rank is its own
  // execution time plus the best successor rank.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    TimeUnits best_succ{0};
    for (const EdgeId e : g.out_edges(v)) {
      best_succ = std::max(best_succ, rank[g.ipr(e).dst.value]);
    }
    rank[v.value] = g.task(v).exec_time + best_succ;
  }
  return rank;
}

std::vector<int> longest_path_by_edge_weight(const TaskGraph& g,
                                             const std::vector<int>& weight) {
  PARACONV_REQUIRE(weight.size() == g.edge_count(),
                   "one weight per edge required");
  const auto order = topological_order(g);
  PARACONV_REQUIRE(order.has_value(),
                   "longest_path_by_edge_weight requires an acyclic graph");

  std::vector<int> value(g.node_count(), 0);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId v = *it;
    int best = 0;
    for (const EdgeId e : g.out_edges(v)) {
      best = std::max(best, value[g.ipr(e).dst.value] + weight[e.value]);
    }
    value[v.value] = best;
  }
  return value;
}

DegreeStats degree_stats(const TaskGraph& g) {
  DegreeStats s;
  std::size_t total = 0;
  for (const NodeId v : g.nodes()) {
    const std::size_t in = g.in_edges(v).size();
    const std::size_t out = g.out_edges(v).size();
    s.max_in = std::max(s.max_in, in);
    s.max_out = std::max(s.max_out, out);
    total += in + out;
  }
  if (g.node_count() > 0) {
    s.avg_degree =
        static_cast<double>(total) / static_cast<double>(g.node_count());
  }
  return s;
}

}  // namespace paraconv::graph
