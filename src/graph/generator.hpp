// Seeded synthetic task-graph generator.
//
// The paper evaluates on task graphs extracted from CNN applications
// (GoogLeNet-derived plus nine applications from `cat` to `protein`), only
// characterizing each by its vertex and edge counts (Table 1). The graphs
// themselves are not published, so we reconstruct them with a layered-DAG
// generator that hits the published (|V|, |E|) exactly, with a CNN-like
// layered topology and deterministic seeding. See DESIGN.md Sec. 2.
#pragma once

#include <cstdint>
#include <string>

#include "graph/task_graph.hpp"

namespace paraconv::graph {

struct GeneratorConfig {
  std::string name{"synthetic"};
  std::size_t vertices{16};
  std::size_t edges{32};
  std::uint64_t seed{1};

  /// Task execution times are drawn uniformly from [min_exec, max_exec]
  /// (abstract time units). The default range keeps transfers (1-16 units
  /// under the default PIM config) comparable to but not dominating
  /// execution, as in the paper's examples.
  std::int64_t min_exec{8};
  std::int64_t max_exec{32};

  /// IPR sizes are drawn uniformly from [min_ipr_bytes, max_ipr_bytes] and
  /// rounded to 64-byte lines.
  std::int64_t min_ipr_bytes{2 * 1024};
  std::int64_t max_ipr_bytes{16 * 1024};

  /// Fraction of non-sink tasks that are pooling (executed in 4 time units).
  double pooling_fraction{0.2};

  /// Probability that an extra edge connects adjacent layers (vs. a longer
  /// skip connection), mimicking CNN locality.
  double adjacent_layer_bias{0.7};
};

/// Generates a connected layered DAG with exactly `vertices` nodes and
/// `edges` edges. Node ids are a valid topological order by construction.
///
/// Requires: vertices >= 2, vertices - 1 <= edges <= vertices*(vertices-1)/2.
TaskGraph generate_layered_dag(const GeneratorConfig& config);

/// Fork-join (inception-style) DAG: a chain of `stages` blocks, each a fork
/// task, `branches` parallel branch chains of `branch_length` tasks, and a
/// join task. Mirrors GoogLeNet's repeated inception modules. Exec/size
/// parameters come from `config`; its vertices/edges fields are ignored.
TaskGraph generate_fork_join(const GeneratorConfig& config, int stages,
                             int branches, int branch_length);

/// Wide-then-narrow "diamond chain": alternating expansion to `width`
/// parallel tasks and contraction to one — the maximally width-oscillating
/// family, stressing packers and the retiming analysis differently from
/// the layered generator. Exec/size parameters come from `config`.
TaskGraph generate_diamond_chain(const GeneratorConfig& config, int stages,
                                 int width);

}  // namespace paraconv::graph
