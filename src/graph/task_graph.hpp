// Task-graph application model (paper Sec. 2.2).
//
// A CNN application is a weighted DAG G = (V, E, P, R): each vertex is a
// convolution/pooling task executed once per iteration (period p); each
// directed edge (V_i, V_j) is an *intermediate processing result* (IPR)
// I_{i,j} produced by V_i and consumed by V_j. IPRs carry a byte size used by
// the cache-capacity-constrained allocation (paper Sec. 3.3) and the PIM
// machine model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace paraconv::graph {

/// Strongly-typed vertex handle.
struct NodeId {
  std::uint32_t value{0};
  friend constexpr auto operator<=>(NodeId, NodeId) = default;
};

/// Strongly-typed edge (IPR) handle.
struct EdgeId {
  std::uint32_t value{0};
  friend constexpr auto operator<=>(EdgeId, EdgeId) = default;
};

/// Functional role of a task (paper partitions applications by
/// convolution/pooling functionality, Sec. 4.1).
enum class TaskKind : std::uint8_t {
  kConvolution,
  kPooling,
  kFullyConnected,
  kInput,
  kOther,
};

const char* to_string(TaskKind kind);

/// One convolution/pooling operation V_i with execution time c_i.
struct Task {
  std::string name;
  TaskKind kind{TaskKind::kConvolution};
  TimeUnits exec_time{1};
  /// Filter-weight footprint the task reads each execution (0 = weightless
  /// or pinned; populated by the CNN lowering, consumed by the machine
  /// model when PimConfig::weights_resident is false).
  Bytes weights{0};
};

/// One intermediate processing result I_{i,j} (directed edge).
struct Ipr {
  NodeId src;
  NodeId dst;
  Bytes size{1};
};

/// Directed acyclic task graph with byte-weighted edges.
///
/// Invariants: no self-loops; endpoints of every edge are valid node ids.
/// Acyclicity is a property of how callers build the graph; it is checked by
/// `paraconv::graph::is_acyclic` and enforced by `validate`.
class TaskGraph {
 public:
  TaskGraph() = default;
  explicit TaskGraph(std::string name) : name_(std::move(name)) {}

  /// Adds a task; returns its id. Execution time must be positive.
  NodeId add_task(Task task);

  /// Adds an IPR edge from src to dst; returns its id.
  /// Requires valid, distinct endpoints and positive size.
  EdgeId add_ipr(NodeId src, NodeId dst, Bytes size);

  std::size_t node_count() const { return tasks_.size(); }
  std::size_t edge_count() const { return iprs_.size(); }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const Task& task(NodeId id) const {
    PARACONV_REQUIRE(id.value < tasks_.size(), "invalid node id");
    return tasks_[id.value];
  }
  Task& task(NodeId id) {
    PARACONV_REQUIRE(id.value < tasks_.size(), "invalid node id");
    return tasks_[id.value];
  }
  const Ipr& ipr(EdgeId id) const {
    PARACONV_REQUIRE(id.value < iprs_.size(), "invalid edge id");
    return iprs_[id.value];
  }

  /// Edge ids leaving / entering a node.
  const std::vector<EdgeId>& out_edges(NodeId id) const {
    PARACONV_REQUIRE(id.value < out_.size(), "invalid node id");
    return out_[id.value];
  }
  const std::vector<EdgeId>& in_edges(NodeId id) const {
    PARACONV_REQUIRE(id.value < in_.size(), "invalid node id");
    return in_[id.value];
  }

  /// All node ids in insertion order.
  std::vector<NodeId> nodes() const;
  /// All edge ids in insertion order.
  std::vector<EdgeId> edges() const;

  /// Sum of task execution times (the per-iteration work W).
  TimeUnits total_work() const;
  /// Sum of IPR byte sizes.
  Bytes total_ipr_bytes() const;
  /// Largest single task execution time.
  TimeUnits max_exec_time() const;

  /// Throws ContractViolation if the graph contains a cycle or has no nodes.
  void validate() const;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Ipr> iprs_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace paraconv::graph
