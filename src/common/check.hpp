// Contract-checking support for the paraconv library.
//
// Preconditions and invariants are enforced with PARACONV_CHECK /
// PARACONV_REQUIRE; violations throw ContractViolation so that tests can
// assert on misuse and library consumers get a diagnosable error instead of
// undefined behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace paraconv {

/// Thrown when a library precondition or internal invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_failure(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace paraconv

/// Precondition check: validates arguments at public API boundaries.
#define PARACONV_REQUIRE(expr, message)                                     \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::paraconv::detail::contract_failure("precondition", #expr, __FILE__, \
                                           __LINE__, (message));            \
    }                                                                       \
  } while (false)

/// Internal invariant check: validates library-internal consistency.
#define PARACONV_CHECK(expr, message)                                     \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::paraconv::detail::contract_failure("invariant", #expr, __FILE__,  \
                                           __LINE__, (message));          \
    }                                                                     \
  } while (false)
