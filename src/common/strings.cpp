#include "common/strings.hpp"

#include <cstdio>

namespace paraconv {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  if (n < 0) return {};
  if (n < static_cast<int>(sizeof(buf))) return std::string(buf);
  // Values like 1e300 need ~305 characters; retry with the exact size
  // instead of returning a silently truncated number.
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, "%.*f", decimals, v);
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string(width - s.size(), ' ') + std::string{s};
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string{s} + std::string(width - s.size(), ' ');
}

}  // namespace paraconv
