#include "common/strings.hpp"

#include <cstdio>

namespace paraconv {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string format_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string(width - s.size(), ' ') + std::string{s};
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string{s};
  return std::string{s} + std::string(width - s.size(), ' ');
}

}  // namespace paraconv
