#include "common/stats.hpp"

namespace paraconv {

double percentile(std::vector<double> sample, double p) {
  PARACONV_REQUIRE(!sample.empty(), "percentile of empty sample");
  PARACONV_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(sample.begin(), sample.end());
  if (p == 0.0) return sample.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.size())));
  return sample[std::min(rank, sample.size()) - 1];
}

}  // namespace paraconv
