#include "common/stats.hpp"

namespace paraconv {

double percentile(std::vector<double> sample, double p) {
  PARACONV_REQUIRE(!sample.empty(), "percentile of empty sample");
  PARACONV_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(sample.begin(), sample.end());
  if (p == 0.0) return sample.front();
  // Nearest-rank: the smallest rank r (1-based) with 100*r >= p*n.
  // ceil(p/100*n) alone is off by one at small n whenever p/100 rounds up
  // before the multiply (p7 of 100 samples would read the 8th element), so
  // correct the candidate by comparing in the scaled domain, where both
  // sides are exact for the integer ranks that matter.
  const double target = p * static_cast<double>(sample.size());
  auto rank = static_cast<std::size_t>(std::ceil(target / 100.0));
  if (rank > 1 && 100.0 * static_cast<double>(rank - 1) >= target) --rank;
  if (100.0 * static_cast<double>(rank) < target) ++rank;
  return sample[std::min(rank, sample.size()) - 1];
}

}  // namespace paraconv
