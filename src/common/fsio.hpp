// Filesystem durability helpers shared by the spill and checkpoint writers.
//
// POSIX fsync(2) on a file descriptor makes the file's *contents* durable,
// but the directory entry naming the file is metadata of the parent
// directory: "Calling fsync() does not necessarily ensure that the entry in
// the directory containing the file has also reached disk. For that an
// explicit fsync() on a file descriptor for the directory is also needed."
// Without it, a crash just after create or rename can lose the file
// entirely even though its bytes were synced.
#pragma once

#include <string>

namespace paraconv {

/// Makes the directory entry for `path` durable by fsync'ing the parent
/// directory (the current directory for a bare file name). Call after
/// creating a file or renaming one into place. No-op on non-POSIX
/// platforms; throws ContractViolation when the parent directory cannot be
/// opened or synced — a durability promise that cannot be kept must fail
/// loudly, not silently.
void fsync_parent_directory(const std::string& path);

}  // namespace paraconv
