// Plain-text table printer used by the per-table/per-figure bench harnesses
// to print the same rows the paper reports.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace paraconv {

/// Column-aligned ASCII table with an optional title, printed to a stream.
///
/// Usage:
///   TablePrinter t{"Table 1"};
///   t.set_header({"Benchmark", "SPARTA", "Para-CONV"});
///   t.add_row({"cat", "4.7", "4.0"});
///   t.print(std::cout);
class TablePrinter {
 public:
  TablePrinter() = default;
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next row (e.g. above an "Average"
  /// summary line).
  void add_rule();

  void print(std::ostream& os) const;
  /// Comma-separated dump (header + rows) for downstream plotting.
  void print_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before{false};
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_{false};
};

}  // namespace paraconv
