#include "common/parse.hpp"

#include <charconv>
#include <limits>

#include "common/strings.hpp"

namespace paraconv {

std::optional<std::int64_t> parse_int64(std::string_view s) {
  std::int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || s.empty()) return std::nullopt;
  return value;
}

std::optional<std::vector<int>> parse_positive_int_list(std::string_view csv,
                                                        std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  std::vector<int> values;
  for (const std::string& token : split(csv, ',')) {
    const std::optional<std::int64_t> parsed = parse_int64(token);
    if (!parsed.has_value()) {
      return fail("'" + token + "' is not an integer in range");
    }
    if (*parsed < 1) {
      return fail("'" + token + "' is not a positive integer");
    }
    if (*parsed > std::numeric_limits<int>::max()) {
      return fail("'" + token + "' is out of range");
    }
    values.push_back(static_cast<int>(*parsed));
  }
  if (values.empty()) return fail("the list is empty");
  return values;
}

}  // namespace paraconv
