#include "common/flags.hpp"

#include <charconv>
#include <sstream>

namespace paraconv {

void FlagParser::add_string(const std::string& name,
                            std::string default_value, std::string doc) {
  PARACONV_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  Flag f;
  f.kind = Kind::kString;
  f.doc = std::move(doc);
  f.string_value = std::move(default_value);
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void FlagParser::add_int(const std::string& name, std::int64_t default_value,
                         std::string doc) {
  PARACONV_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  Flag f;
  f.kind = Kind::kInt;
  f.doc = std::move(doc);
  f.int_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

void FlagParser::add_bool(const std::string& name, bool default_value,
                          std::string doc) {
  PARACONV_REQUIRE(!flags_.contains(name), "duplicate flag: " + name);
  Flag f;
  f.kind = Kind::kBool;
  f.doc = std::move(doc);
  f.bool_value = default_value;
  flags_.emplace(name, std::move(f));
  order_.push_back(name);
}

bool FlagParser::parse(const std::vector<std::string>& args,
                       std::string* error) {
  PARACONV_REQUIRE(error != nullptr, "error output required");
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }

    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (const std::size_t eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
    }

    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      *error = "unknown flag: --" + name;
      return false;
    }
    Flag& f = it->second;

    if (f.kind == Kind::kBool && !inline_value.has_value()) {
      f.bool_value = true;
      continue;
    }

    std::string value;
    if (inline_value.has_value()) {
      value = *inline_value;
    } else if (i + 1 < args.size()) {
      value = args[++i];
    } else {
      *error = "flag --" + name + " expects a value";
      return false;
    }

    switch (f.kind) {
      case Kind::kString:
        f.string_value = value;
        break;
      case Kind::kInt: {
        std::int64_t parsed = 0;
        const auto [ptr, ec] = std::from_chars(
            value.data(), value.data() + value.size(), parsed);
        if (ec != std::errc{} || ptr != value.data() + value.size()) {
          *error = "flag --" + name + " expects an integer, got '" + value +
                   "'";
          return false;
        }
        f.int_value = parsed;
        break;
      }
      case Kind::kBool: {
        if (value == "true" || value == "1") {
          f.bool_value = true;
        } else if (value == "false" || value == "0") {
          f.bool_value = false;
        } else {
          *error = "flag --" + name + " expects true/false, got '" + value +
                   "'";
          return false;
        }
        break;
      }
    }
  }
  return true;
}

const FlagParser::Flag& FlagParser::flag(const std::string& name,
                                         Kind kind) const {
  const auto it = flags_.find(name);
  PARACONV_REQUIRE(it != flags_.end(), "undeclared flag: " + name);
  PARACONV_REQUIRE(it->second.kind == kind, "flag type mismatch: " + name);
  return it->second;
}

const std::string& FlagParser::get_string(const std::string& name) const {
  return flag(name, Kind::kString).string_value;
}

std::int64_t FlagParser::get_int(const std::string& name) const {
  return flag(name, Kind::kInt).int_value;
}

bool FlagParser::get_bool(const std::string& name) const {
  return flag(name, Kind::kBool).bool_value;
}

std::string FlagParser::usage() const {
  std::ostringstream os;
  for (const std::string& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.kind) {
      case Kind::kString:
        os << " <string> (default: " << f.string_value << ")";
        break;
      case Kind::kInt:
        os << " <int> (default: " << f.int_value << ")";
        break;
      case Kind::kBool:
        os << " (default: " << (f.bool_value ? "true" : "false") << ")";
        break;
    }
    os << "\n      " << f.doc << "\n";
  }
  return os.str();
}

}  // namespace paraconv
