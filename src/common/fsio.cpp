#include "common/fsio.hpp"

#include <filesystem>

#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define PARACONV_FSIO_POSIX 1
#endif

namespace paraconv {

void fsync_parent_directory(const std::string& path) {
  PARACONV_REQUIRE(!path.empty(), "fsync_parent_directory needs a path");
#ifdef PARACONV_FSIO_POSIX
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  const int fd = ::open(parent.c_str(), O_RDONLY);
  PARACONV_REQUIRE(fd >= 0,
                   "cannot open parent directory for fsync: " +
                       parent.string());
  const int rc = ::fsync(fd);
  ::close(fd);
  PARACONV_REQUIRE(rc == 0,
                   "fsync of parent directory failed: " + parent.string());
#else
  (void)path;
#endif
}

}  // namespace paraconv
