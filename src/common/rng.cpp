#include "common/rng.hpp"

// Header-only implementation; this translation unit anchors the component in
// the build so that ODR-used symbols have a home if any are added later.
