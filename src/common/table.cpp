#include "common/table.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace paraconv {

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  PARACONV_REQUIRE(header_.empty() || row.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(Row{std::move(row), pending_rule_});
  pending_rule_ = false;
}

void TablePrinter::add_rule() { pending_rule_ = true; }

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    widths.resize(std::max(widths.size(), row.cells.size()), 0);
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto rule = [&] {
    std::string line = "+";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    os << line << "\n";
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << " " << pad_right(cell, widths[c]) << " |";
    }
    os << "\n";
  };

  if (!title_.empty()) os << title_ << "\n";
  rule();
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const Row& row : rows_) {
    if (row.rule_before) rule();
    emit(row.cells);
  }
  rule();
}

void TablePrinter::print_csv(std::ostream& os) const {
  if (!header_.empty()) os << join(header_, ",") << "\n";
  for (const Row& row : rows_) os << join(row.cells, ",") << "\n";
}

}  // namespace paraconv
