#include "common/units.hpp"

#include <array>
#include <cstdio>
#include <string>

namespace paraconv {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 4> kSuffix{"B", "KiB", "MiB",
                                                      "GiB"};
  double v = static_cast<double>(b.value);
  std::size_t idx = 0;
  while (v >= 1024.0 && idx + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%lld B",
                  static_cast<long long>(b.value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kSuffix[idx]);
  }
  return buf;
}

}  // namespace paraconv
