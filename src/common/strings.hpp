// Small string helpers shared by table printers and DOT export.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace paraconv {

/// Join elements with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Split on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Fixed-precision decimal formatting ("12.34").
std::string format_fixed(double v, int decimals);

/// Left-pad / right-pad to a width with spaces (no-op if already wider).
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

}  // namespace paraconv
