// Deterministic random number generation.
//
// All synthetic workloads in this repository are generated from explicit
// seeds so every experiment is exactly reproducible. We use splitmix64 for
// seeding and xoshiro256** as the main generator (both public-domain
// algorithms by Blackman & Vigna), rather than std::mt19937, so that the
// stream is identical across standard library implementations.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace paraconv {

/// splitmix64 step; used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic pseudo-random generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    PARACONV_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
  }

  /// Uniform double in [0, 1).
  double uniform_real() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return uniform_real() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace paraconv
