// Strict numeric parsing for user-facing input paths (CLI flags, config
// strings).
//
// Unlike std::stol, these helpers never throw and never accept partial
// tokens: the whole string must be a decimal integer within range, so
// overflow ("99999999999999999999") and trailing junk ("16x") are ordinary
// parse failures the caller can turn into a usage error instead of an
// uncaught std::out_of_range abort.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace paraconv {

/// Parses a full decimal token (optional leading '-') into int64.
/// Returns nullopt on empty input, junk, partial parse or overflow.
std::optional<std::int64_t> parse_int64(std::string_view s);

/// Parses a comma-separated list of strictly positive ints (each in
/// [1, INT_MAX]). On failure returns nullopt and, when `error` is non-null,
/// describes the offending token.
std::optional<std::vector<int>> parse_positive_int_list(std::string_view csv,
                                                        std::string* error);

}  // namespace paraconv
