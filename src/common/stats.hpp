// Streaming summary statistics (Welford) and percentiles, used by the
// multi-seed synthetic benchmark harness to report mean +- stddev series.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace paraconv {

/// Numerically stable streaming accumulator for mean/variance/extrema.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = count_ == 1 ? x : std::min(min_, x);
    max_ = count_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return count_; }
  double mean() const {
    PARACONV_REQUIRE(count_ > 0, "mean of empty sample");
    return mean_;
  }
  /// Sample variance (n - 1 denominator); 0 for a single observation.
  double variance() const {
    PARACONV_REQUIRE(count_ > 0, "variance of empty sample");
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    PARACONV_REQUIRE(count_ > 0, "min of empty sample");
    return min_;
  }
  double max() const {
    PARACONV_REQUIRE(count_ > 0, "max of empty sample");
    return max_;
  }

 private:
  std::size_t count_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Nearest-rank percentile (p in [0, 100]) of a sample; does not require
/// the input to be sorted.
double percentile(std::vector<double> sample, double p);

}  // namespace paraconv
