// Minimal command-line flag parser for the CLI tool and examples.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms, plus
// positional arguments. Unknown flags are an error (catches typos);
// repeated flags keep the last value.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace paraconv {

class FlagParser {
 public:
  /// Declare flags before parsing. `doc` feeds the usage text.
  void add_string(const std::string& name, std::string default_value,
                  std::string doc);
  void add_int(const std::string& name, std::int64_t default_value,
               std::string doc);
  void add_bool(const std::string& name, bool default_value, std::string doc);

  /// Parses argv (excluding argv[0]). Returns false and fills `error` on
  /// malformed input or unknown flags.
  bool parse(const std::vector<std::string>& args, std::string* error);

  const std::string& get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per declared flag: "--name (default: ...)  doc".
  std::string usage() const;

 private:
  enum class Kind { kString, kInt, kBool };
  struct Flag {
    Kind kind;
    std::string doc;
    std::string string_value;
    std::int64_t int_value{0};
    bool bool_value{false};
  };

  const Flag& flag(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace paraconv
