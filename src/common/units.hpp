// Strong unit types used across the library.
//
// The paper's model works in abstract "time units" (one unit ~= the execution
// slot of a convolution task) and bytes for intermediate-processing-result
// (IPR) sizes. Energy is tracked in picojoules by the PIM machine model.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace paraconv {

/// Discrete scheduling time, in abstract time units (paper Sec. 2.2).
/// Signed so that slack arithmetic (e.g. `finish - start - latency`) is safe.
struct TimeUnits {
  std::int64_t value{0};

  constexpr TimeUnits() = default;
  constexpr explicit TimeUnits(std::int64_t v) : value(v) {}

  friend constexpr auto operator<=>(TimeUnits, TimeUnits) = default;
  friend constexpr TimeUnits operator+(TimeUnits a, TimeUnits b) {
    return TimeUnits{a.value + b.value};
  }
  friend constexpr TimeUnits operator-(TimeUnits a, TimeUnits b) {
    return TimeUnits{a.value - b.value};
  }
  constexpr TimeUnits& operator+=(TimeUnits o) {
    value += o.value;
    return *this;
  }
  friend constexpr TimeUnits operator*(TimeUnits a, std::int64_t k) {
    return TimeUnits{a.value * k};
  }
};

inline std::ostream& operator<<(std::ostream& os, TimeUnits t) {
  return os << t.value << "tu";
}

/// Data volume in bytes.
struct Bytes {
  std::int64_t value{0};

  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t v) : value(v) {}

  friend constexpr auto operator<=>(Bytes, Bytes) = default;
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.value + b.value};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.value - b.value};
  }
  constexpr Bytes& operator+=(Bytes o) {
    value += o.value;
    return *this;
  }
};

constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v)};
}
constexpr Bytes operator""_KiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024};
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1024 * 1024};
}

inline std::ostream& operator<<(std::ostream& os, Bytes b) {
  return os << b.value << "B";
}

/// Energy in picojoules (accumulated by the PIM energy model).
struct Picojoules {
  double value{0.0};

  constexpr Picojoules() = default;
  constexpr explicit Picojoules(double v) : value(v) {}

  friend constexpr auto operator<=>(Picojoules, Picojoules) = default;
  friend constexpr Picojoules operator+(Picojoules a, Picojoules b) {
    return Picojoules{a.value + b.value};
  }
  constexpr Picojoules& operator+=(Picojoules o) {
    value += o.value;
    return *this;
  }
  friend constexpr Picojoules operator*(Picojoules a, double k) {
    return Picojoules{a.value * k};
  }
};

inline std::ostream& operator<<(std::ostream& os, Picojoules e) {
  return os << e.value << "pJ";
}

/// Ceiling division for non-negative numerator and positive denominator.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a >= 0) ? (a + b - 1) / b : -((-a) / b);
}

/// Human-readable byte formatting ("3.2 KiB").
std::string format_bytes(Bytes b);

}  // namespace paraconv
