#include "common/check.hpp"

#include <sstream>

namespace paraconv::detail {

void contract_failure(const char* kind, const char* expr, const char* file,
                      int line, const std::string& message) {
  std::ostringstream oss;
  oss << kind << " violated: " << message << " [" << expr << "] at " << file
      << ":" << line;
  throw ContractViolation(oss.str());
}

}  // namespace paraconv::detail
