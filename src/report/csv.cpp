#include "report/csv.hpp"

#include "common/strings.hpp"

namespace paraconv::report {

std::string csv_escape(const std::string& field) {
  // '\r' must quote too: an unquoted CR (e.g. from an exception message
  // relayed into an error_message column) tears the row on readers that
  // treat CRLF as a record separator.
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv_table(std::ostream& os, const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows) {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) os << ',';
    os << csv_escape(header[i]);
  }
  os << '\n';
  for (const std::vector<std::string>& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  }
}

void write_experiment_csv(
    std::ostream& os,
    const std::vector<bench_support::ExperimentRow>& rows) {
  const std::vector<std::string> header{
      "benchmark", "vertices", "edges", "pe_count",
      "sparta_iteration_time", "sparta_total_time", "sparta_cached_iprs",
      "para_iteration_time", "para_r_max", "para_prologue_time",
      "para_total_time", "para_cached_iprs", "para_offchip_bytes",
      "ratio_percent", "reduction_percent"};
  std::vector<std::vector<std::string>> table;
  table.reserve(rows.size());
  for (const bench_support::ExperimentRow& row : rows) {
    table.push_back(
        {row.benchmark, std::to_string(row.vertices),
         std::to_string(row.edges), std::to_string(row.pe_count),
         std::to_string(row.sparta.iteration_time.value),
         std::to_string(row.sparta.total_time.value),
         std::to_string(row.sparta.cached_iprs),
         std::to_string(row.para_conv.iteration_time.value),
         std::to_string(row.para_conv.r_max),
         std::to_string(row.para_conv.prologue_time.value),
         std::to_string(row.para_conv.total_time.value),
         std::to_string(row.para_conv.cached_iprs),
         std::to_string(row.para_conv.offchip_bytes_per_iteration.value),
         format_fixed(core::time_ratio_percent(row.sparta, row.para_conv), 2),
         format_fixed(
             core::time_reduction_percent(row.sparta, row.para_conv), 2)});
  }
  write_csv_table(os, header, table);
}

}  // namespace paraconv::report
