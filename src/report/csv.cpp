#include "report/csv.hpp"

#include "common/strings.hpp"

namespace paraconv::report {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_experiment_csv(
    std::ostream& os,
    const std::vector<bench_support::ExperimentRow>& rows) {
  os << "benchmark,vertices,edges,pe_count,"
        "sparta_iteration_time,sparta_total_time,sparta_cached_iprs,"
        "para_iteration_time,para_r_max,para_prologue_time,para_total_time,"
        "para_cached_iprs,para_offchip_bytes,ratio_percent,"
        "reduction_percent\n";
  for (const bench_support::ExperimentRow& row : rows) {
    os << csv_escape(row.benchmark) << ',' << row.vertices << ','
       << row.edges << ',' << row.pe_count << ','
       << row.sparta.iteration_time.value << ','
       << row.sparta.total_time.value << ',' << row.sparta.cached_iprs << ','
       << row.para_conv.iteration_time.value << ',' << row.para_conv.r_max
       << ',' << row.para_conv.prologue_time.value << ','
       << row.para_conv.total_time.value << ',' << row.para_conv.cached_iprs
       << ',' << row.para_conv.offchip_bytes_per_iteration.value << ','
       << format_fixed(core::time_ratio_percent(row.sparta, row.para_conv), 2)
       << ','
       << format_fixed(
              core::time_reduction_percent(row.sparta, row.para_conv), 2)
       << '\n';
  }
}

}  // namespace paraconv::report
