#include "report/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/strings.hpp"

namespace paraconv::report {
namespace {

/// A canvas of rows x columns characters, initialized to '.', with helpers
/// for stamping labelled blocks.
class Canvas {
 public:
  Canvas(std::size_t rows, std::size_t cols)
      : cols_(cols), cells_(rows, std::string(cols, '.')) {}

  void stamp(std::size_t row, std::int64_t col_begin, std::int64_t col_end,
             const std::string& label) {
    if (row >= cells_.size()) return;
    const auto begin =
        static_cast<std::size_t>(std::max<std::int64_t>(0, col_begin));
    const auto end = static_cast<std::size_t>(std::clamp<std::int64_t>(
        col_end, 0, static_cast<std::int64_t>(cols_)));
    for (std::size_t c = begin; c < end; ++c) {
      const std::size_t offset = c - begin;
      cells_[row][c] = offset < label.size() ? label[offset] : '=';
    }
  }

  std::string render(const std::vector<std::string>& row_labels,
                     bool truncated) const {
    PARACONV_CHECK(row_labels.size() == cells_.size(),
                   "one label per canvas row");
    std::size_t label_width = 0;
    for (const std::string& l : row_labels) {
      label_width = std::max(label_width, l.size());
    }
    std::ostringstream os;
    for (std::size_t r = 0; r < cells_.size(); ++r) {
      os << pad_right(row_labels[r], label_width) << " |" << cells_[r]
         << (truncated ? "..." : "|") << "\n";
    }
    return os.str();
  }

 private:
  std::size_t cols_;
  std::vector<std::string> cells_;
};

std::string task_label(const graph::TaskGraph& g, graph::NodeId v,
                       int label_width) {
  std::string name = g.task(v).name;
  // Keep the distinguishing tail of hierarchical names (e.g. "..._T12").
  const std::size_t slash = name.find_last_of("/_");
  if (slash != std::string::npos && slash + 1 < name.size()) {
    name = name.substr(slash + 1);
  }
  if (static_cast<int>(name.size()) > label_width) {
    name.resize(static_cast<std::size_t>(label_width));
  }
  return name;
}

}  // namespace

std::string render_kernel_gantt(const graph::TaskGraph& g,
                                const sched::KernelSchedule& kernel,
                                int pe_count, const GanttOptions& options) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(kernel.placement.size() == g.node_count(),
                   "kernel schedule does not match graph");
  PARACONV_REQUIRE(options.max_width >= 1 && options.label_width >= 1,
                   "invalid gantt options");

  const bool truncated = kernel.period.value > options.max_width;
  const std::size_t width = static_cast<std::size_t>(
      std::min(kernel.period.value, options.max_width));
  Canvas canvas(static_cast<std::size_t>(pe_count), width);

  for (const graph::NodeId v : g.nodes()) {
    const sched::TaskPlacement& p = kernel.placement[v.value];
    canvas.stamp(static_cast<std::size_t>(p.pe), p.start.value,
                 p.start.value + g.task(v).exec_time.value,
                 task_label(g, v, options.label_width));
  }

  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    labels.push_back("PE" + std::to_string(pe));
  }
  std::ostringstream os;
  os << "kernel period p = " << kernel.period.value << " time units, R_max = "
     << kernel.r_max() << "\n";
  os << canvas.render(labels, truncated);
  return os.str();
}

std::string render_expanded_gantt(const graph::TaskGraph& g,
                                  const sched::KernelSchedule& kernel,
                                  int pe_count, std::int64_t windows,
                                  const GanttOptions& options) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(windows >= 1, "at least one window required");

  // Expand enough iterations to cover the requested windows.
  const std::int64_t iterations = windows;  // upper bound: one per window
  const sched::ExpandedSchedule expanded =
      sched::expand_schedule(g, kernel, iterations);

  const std::int64_t span =
      std::min(windows * kernel.period.value, options.max_width);
  const bool truncated = windows * kernel.period.value > options.max_width;
  Canvas canvas(static_cast<std::size_t>(pe_count),
                static_cast<std::size_t>(span));

  for (const sched::TaskInstance& inst : expanded.instances) {
    if (inst.start.value >= span) continue;
    canvas.stamp(static_cast<std::size_t>(inst.pe), inst.start.value,
                 inst.start.value + g.task(inst.node).exec_time.value,
                 task_label(g, inst.node, options.label_width));
  }

  std::vector<std::string> labels;
  labels.reserve(static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    labels.push_back("PE" + std::to_string(pe));
  }
  std::ostringstream os;
  os << "prologue: " << kernel.r_max() << " windows ("
     << kernel.r_max() * kernel.period.value << " time units)\n";
  os << canvas.render(labels, truncated);
  return os.str();
}

}  // namespace paraconv::report
