// CSV export of experiment grids — the machine-readable companion of the
// table harnesses, for plotting Figure 5/6 series externally.
#pragma once

#include <ostream>
#include <vector>

#include "bench_support/experiments.hpp"

namespace paraconv::report {

/// RFC-4180 field quoting (quotes fields containing separators/quotes).
std::string csv_escape(const std::string& field);

/// Generic CSV table: one header line, then one line per row, every field
/// escaped. All CSV artifacts (experiment grids, sweeps, frontiers) funnel
/// through this single writer.
void write_csv_table(std::ostream& os, const std::vector<std::string>& header,
                     const std::vector<std::vector<std::string>>& rows);

/// One row per (benchmark, pe_count) cell with both schedulers' metrics.
void write_experiment_csv(std::ostream& os,
                          const std::vector<bench_support::ExperimentRow>& rows);

}  // namespace paraconv::report
