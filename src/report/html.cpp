#include "report/html.hpp"

#include <algorithm>
#include <sstream>

#include "common/strings.hpp"
#include "report/json.hpp"

namespace paraconv::report {
namespace {

/// Evenly-spaced hues for retiming values; fixed saturation/lightness keeps
/// the lanes readable on white.
std::string color_for_retiming(int r, int r_max) {
  const int hue = r_max == 0 ? 210 : 210 + (130 * r) / std::max(1, r_max);
  return "hsl(" + std::to_string(hue) + ",60%,62%)";
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_html_report(const graph::TaskGraph& g,
                               const pim::PimConfig& config,
                               const core::ParaConvResult& result,
                               const HtmlReportOptions& options) {
  PARACONV_REQUIRE(options.px_per_unit >= 1, "pixel scale must be positive");
  const sched::KernelSchedule& kernel = result.kernel;
  const int r_max = kernel.r_max();
  const std::int64_t windows =
      options.windows > 0 ? options.windows : r_max + 3;

  const core::ScheduleAnalysis analysis = core::analyze(g, config, result);
  const sched::ExpandedSchedule expanded =
      sched::expand_schedule(g, kernel, windows);

  const int lane_height = 22;
  const int label_gutter = 48;
  const std::int64_t span = windows * kernel.period.value;
  const std::int64_t svg_width = label_gutter + span * options.px_per_unit + 8;
  const int svg_height = (config.pe_count + 1) * lane_height + 24;

  std::ostringstream os;
  os << "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>"
     << html_escape(g.name()) << " — Para-CONV schedule</title>"
     << "<style>body{font:14px sans-serif;margin:24px}"
     << "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
     << "padding:4px 10px;text-align:left}rect:hover{opacity:.7}"
     << "</style></head><body>";
  os << "<h1>" << html_escape(g.name()) << " on " << config.pe_count
     << " PEs</h1>";

  // Metrics summary.
  os << "<table><tr><th>metric</th><th>value</th></tr>"
     << "<tr><td>kernel period p</td><td>" << kernel.period.value
     << " tu (optimality "
     << format_fixed(analysis.period_optimality * 100.0, 1)
     << "%)</td></tr>"
     << "<tr><td>R_max / prologue</td><td>" << r_max << " windows / "
     << result.metrics.prologue_time.value << " tu</td></tr>"
     << "<tr><td>iteration latency</td><td>"
     << analysis.latency.iteration_latency.value << " tu across "
     << analysis.latency.windows_spanned << " windows</td></tr>"
     << "<tr><td>IPRs cached</td><td>" << analysis.cached_iprs << " of "
     << analysis.sensitive_iprs << " sensitive (" << g.edge_count()
     << " total)</td></tr>"
     << "<tr><td>peak cache residency</td><td>"
     << format_bytes(analysis.residency.peak) << " / PE (capacity "
     << format_bytes(config.pe_cache_bytes) << ")</td></tr></table>";

  // SVG Gantt.
  os << "<h2>Timeline (first " << windows << " windows; colour = retiming "
     << "value)</h2>";
  os << "<svg width=\"" << svg_width << "\" height=\"" << svg_height
     << "\" xmlns=\"http://www.w3.org/2000/svg\">";
  // Window separators.
  for (std::int64_t w = 0; w <= windows; ++w) {
    const std::int64_t x =
        label_gutter + w * kernel.period.value * options.px_per_unit;
    os << "<line x1=\"" << x << "\" y1=\"0\" x2=\"" << x << "\" y2=\""
       << config.pe_count * lane_height << "\" stroke=\"#ddd\"/>";
  }
  // Lane labels.
  for (int pe = 0; pe < config.pe_count; ++pe) {
    os << "<text x=\"2\" y=\"" << pe * lane_height + 15
       << "\" fill=\"#555\">PE" << pe << "</text>";
  }
  // Task blocks.
  for (const sched::TaskInstance& inst : expanded.instances) {
    if (inst.start.value >= span) continue;
    const graph::Task& task = g.task(inst.node);
    const std::int64_t x = label_gutter + inst.start.value * options.px_per_unit;
    const std::int64_t width =
        std::max<std::int64_t>(1, task.exec_time.value * options.px_per_unit -
                                      1);
    const int y = inst.pe * lane_height + 2;
    const int r = kernel.retiming[inst.node.value];
    os << "<rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << width
       << "\" height=\"" << lane_height - 4 << "\" fill=\""
       << color_for_retiming(r, r_max) << "\"><title>"
       << html_escape(task.name) << " (iter " << inst.iteration << ", r="
       << r << ", " << task.exec_time.value << " tu)</title></rect>";
  }
  os << "</svg>";

  // Case census footer.
  os << "<h2>Fig.-4 case census</h2><table><tr>";
  for (int c = 1; c <= 6; ++c) os << "<th>case " << c << "</th>";
  os << "</tr><tr>";
  for (const std::size_t count : analysis.case_census) {
    os << "<td>" << count << "</td>";
  }
  os << "</tr></table></body></html>";
  return os.str();
}

}  // namespace paraconv::report
