#include "report/trace.hpp"

#include "common/check.hpp"
#include "report/json.hpp"

namespace paraconv::report {
namespace {

JsonValue compute_events(const graph::TaskGraph& g,
                         const sched::KernelSchedule& kernel,
                         const TraceOptions& options) {
  const sched::ExpandedSchedule expanded =
      sched::expand_schedule(g, kernel, options.iterations);
  const double us_per_unit =
      static_cast<double>(options.ns_per_time_unit) / 1000.0;

  JsonValue events = JsonValue::array();
  for (const sched::TaskInstance& inst : expanded.instances) {
    const graph::Task& task = g.task(inst.node);
    JsonValue ev = JsonValue::object();
    ev.set("name", task.name);
    ev.set("cat", graph::to_string(task.kind));
    ev.set("ph", "X");
    ev.set("ts", static_cast<double>(inst.start.value) * us_per_unit);
    ev.set("dur", static_cast<double>(task.exec_time.value) * us_per_unit);
    ev.set("pid", 0);
    ev.set("tid", inst.pe);
    JsonValue args = JsonValue::object();
    args.set("iteration", inst.iteration);
    args.set("window", inst.window);
    args.set("retiming", kernel.retiming[inst.node.value]);
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace

std::string to_chrome_trace(const graph::TaskGraph& g,
                            const sched::KernelSchedule& kernel,
                            const TraceOptions& options) {
  PARACONV_REQUIRE(options.iterations >= 1, "at least one iteration required");
  PARACONV_REQUIRE(options.ns_per_time_unit >= 1,
                   "time scale must be positive");
  return compute_events(g, kernel, options).dump();
}

std::string to_chrome_trace_with_memory(const graph::TaskGraph& g,
                                        const sched::KernelSchedule& kernel,
                                        const pim::PimConfig& config,
                                        const TraceOptions& options) {
  PARACONV_REQUIRE(options.iterations >= 1, "at least one iteration required");
  PARACONV_REQUIRE(options.ns_per_time_unit >= 1,
                   "time scale must be positive");

  JsonValue events = compute_events(g, kernel, options);
  const double us_per_unit =
      static_cast<double>(options.ns_per_time_unit) / 1000.0;

  pim::Machine machine(config);
  pim::MachineRunOptions run;
  run.iterations = options.iterations;
  run.strict = false;  // traces are diagnostics; never abort mid-capture
  run.observer = [&](const pim::MemoryEvent& mem) {
    JsonValue ev = JsonValue::object();
    const graph::Ipr* ipr = mem.kind == pim::MemoryEvent::Kind::kWeightFetch
                                ? nullptr
                                : &g.ipr(mem.edge);
    std::string name = pim::to_string(mem.kind);
    if (ipr != nullptr) {
      name += " " + g.task(ipr->src).name + "->" + g.task(ipr->dst).name;
    }
    ev.set("name", std::move(name));
    ev.set("cat", "memory");
    ev.set("ph", "i");  // instant event
    ev.set("s", "t");   // thread-scoped
    ev.set("ts", static_cast<double>(mem.time.value) * us_per_unit);
    ev.set("pid", 1);
    // One row per event kind keeps the memory lanes readable.
    ev.set("tid", static_cast<int>(mem.kind));
    JsonValue args = JsonValue::object();
    args.set("pe", mem.pe);
    args.set("bytes", mem.bytes.value);
    ev.set("args", std::move(args));
    events.push_back(std::move(ev));
  };
  machine.run(g, kernel, run);
  return events.dump();
}

}  // namespace paraconv::report
