// ASCII Gantt rendering of kernel schedules.
//
// Renders the steady-state kernel window (one row per PE, one column per
// time unit) and the prologue ramp-up, in the style of the paper's Fig. 3
// timelines. Used by the CLI and examples for human inspection of
// schedules.
#pragma once

#include <string>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace paraconv::report {

struct GanttOptions {
  /// Maximum rendered width in time units; longer kernels are truncated
  /// with an ellipsis marker.
  std::int64_t max_width{120};
  /// Label width per task cell (task names are truncated/padded to this).
  int label_width{3};
};

/// Renders one kernel window: each PE row shows its tasks at their start
/// offsets, with '.' for idle time units.
std::string render_kernel_gantt(const graph::TaskGraph& g,
                                const sched::KernelSchedule& kernel,
                                int pe_count,
                                const GanttOptions& options = {});

/// Renders the first `windows` windows of the expanded schedule (prologue
/// ramp plus early steady state) as one timeline per PE.
std::string render_expanded_gantt(const graph::TaskGraph& g,
                                  const sched::KernelSchedule& kernel,
                                  int pe_count, std::int64_t windows,
                                  const GanttOptions& options = {});

}  // namespace paraconv::report
