// Minimal dependency-free JSON writer plus serializers for schedules,
// metrics and machine statistics. The CLI and downstream analysis scripts
// consume these dumps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "pim/machine.hpp"
#include "sched/schedule.hpp"

namespace paraconv::report {

/// Tiny write-only JSON value. Supports the subset the library emits:
/// null, bool, int64, double, string, array, object (insertion-ordered).
class JsonValue {
 public:
  JsonValue() = default;  // null
  // NOLINTBEGIN(google-explicit-constructor): implicit conversion from the
  // scalar types is the ergonomic point of this builder — set("k", 3) must
  // work without a JsonValue(...) wrapper at every call site.
  JsonValue(bool b);
  JsonValue(std::int64_t i);
  JsonValue(int i) : JsonValue(static_cast<std::int64_t>(i)) {}
  JsonValue(double d);
  JsonValue(const char* s);
  JsonValue(std::string s);
  // NOLINTEND(google-explicit-constructor)

  static JsonValue array();
  static JsonValue object();

  /// Array append; requires array kind (converts a null value in place).
  JsonValue& push_back(JsonValue v);
  /// Object insert/overwrite; requires object kind (converts null).
  JsonValue& set(const std::string& key, JsonValue v);

  /// Compact serialization (no whitespace); `pretty` adds 2-space indent.
  std::string dump(bool pretty = false) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  void dump_to(std::string& out, bool pretty, int indent) const;

  Kind kind_{Kind::kNull};
  bool bool_{false};
  std::int64_t int_{0};
  double double_{0.0};
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escapes a string per RFC 8259 (quotes, backslash, control characters).
std::string json_escape(const std::string& s);

JsonValue to_json(const core::RunResult& metrics);
JsonValue to_json(const graph::TaskGraph& g,
                  const sched::KernelSchedule& kernel);
JsonValue to_json(const pim::MachineStats& stats);

}  // namespace paraconv::report
