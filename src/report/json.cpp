#include "report/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace paraconv::report {

JsonValue::JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
JsonValue::JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
JsonValue::JsonValue(double d) : kind_(Kind::kDouble), double_(d) {}
JsonValue::JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
JsonValue::JsonValue(std::string s)
    : kind_(Kind::kString), string_(std::move(s)) {}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  PARACONV_REQUIRE(kind_ == Kind::kArray, "push_back requires an array");
  array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  PARACONV_REQUIRE(kind_ == Kind::kObject, "set requires an object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(v));
  return *this;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out, bool pretty, int indent) const {
  const auto newline = [&](int level) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(level) * 2, ' ');
  };
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      PARACONV_REQUIRE(std::isfinite(double_),
                       "JSON cannot represent non-finite numbers");
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", double_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline(indent + 1);
        array_[i].dump_to(out, pretty, indent + 1);
      }
      if (!array_.empty()) newline(indent);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i != 0) out += ',';
        newline(indent + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += pretty ? "\": " : "\":";
        object_[i].second.dump_to(out, pretty, indent + 1);
      }
      if (!object_.empty()) newline(indent);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(bool pretty) const {
  std::string out;
  dump_to(out, pretty, 0);
  return out;
}

JsonValue to_json(const core::RunResult& metrics) {
  JsonValue v = JsonValue::object();
  v.set("scheduler", metrics.scheduler);
  v.set("iteration_time", metrics.iteration_time.value);
  v.set("r_max", metrics.r_max);
  v.set("prologue_time", metrics.prologue_time.value);
  v.set("total_time", metrics.total_time.value);
  v.set("cached_iprs", static_cast<std::int64_t>(metrics.cached_iprs));
  v.set("cache_bytes_used", metrics.cache_bytes_used.value);
  v.set("offchip_bytes_per_iteration",
        metrics.offchip_bytes_per_iteration.value);
  v.set("pe_utilization", metrics.pe_utilization);
  v.set("residency_overcommit_bytes", metrics.residency_overcommit_bytes.value);
  return v;
}

JsonValue to_json(const graph::TaskGraph& g,
                  const sched::KernelSchedule& kernel) {
  PARACONV_REQUIRE(kernel.placement.size() == g.node_count(),
                   "kernel schedule does not match graph");
  JsonValue v = JsonValue::object();
  v.set("graph", g.name());
  v.set("period", kernel.period.value);
  v.set("r_max", kernel.r_max());

  JsonValue tasks = JsonValue::array();
  for (const graph::NodeId n : g.nodes()) {
    JsonValue t = JsonValue::object();
    t.set("name", g.task(n).name);
    t.set("pe", kernel.placement[n.value].pe);
    t.set("start", kernel.placement[n.value].start.value);
    t.set("exec_time", g.task(n).exec_time.value);
    t.set("retiming", kernel.retiming[n.value]);
    tasks.push_back(std::move(t));
  }
  v.set("tasks", std::move(tasks));

  JsonValue edges = JsonValue::array();
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    JsonValue t = JsonValue::object();
    t.set("src", g.task(ipr.src).name);
    t.set("dst", g.task(ipr.dst).name);
    t.set("bytes", ipr.size.value);
    t.set("distance", kernel.distance[e.value]);
    t.set("site", pim::to_string(kernel.allocation[e.value]));
    edges.push_back(std::move(t));
  }
  v.set("iprs", std::move(edges));
  return v;
}

JsonValue to_json(const pim::MachineStats& stats) {
  JsonValue v = JsonValue::object();
  v.set("makespan", stats.makespan.value);
  v.set("tasks_executed", stats.tasks_executed);
  v.set("cache_hits", stats.cache_hits);
  v.set("cache_misses", stats.cache_misses);
  v.set("cache_evictions", stats.cache_evictions);
  v.set("cache_fallbacks", stats.cache_fallbacks);
  v.set("edram_accesses", stats.edram_accesses);
  v.set("edram_bytes", stats.edram_bytes.value);
  v.set("noc_bytes", stats.noc_bytes.value);
  v.set("readiness_violations", stats.readiness_violations);
  JsonValue energy = JsonValue::object();
  energy.set("cache_pj", stats.energy.cache.value);
  energy.set("edram_pj", stats.energy.edram.value);
  energy.set("noc_pj", stats.energy.noc.value);
  energy.set("compute_pj", stats.energy.compute.value);
  energy.set("total_pj", stats.energy.total().value);
  v.set("energy", std::move(energy));
  JsonValue util = JsonValue::array();
  for (const double u : stats.pe_utilization) util.push_back(u);
  v.set("pe_utilization", std::move(util));
  return v;
}

}  // namespace paraconv::report
