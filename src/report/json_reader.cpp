#include "report/json_reader.hpp"

#include <cctype>
#include <cstddef>
#include <exception>

#include "common/check.hpp"

namespace paraconv::report {

namespace {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool parse(JsonDoc* doc, std::string* error) {
    if (!parse_value(doc, error)) return false;
    skip_ws();
    if (pos_ != text_.size()) {
      *error = "trailing characters after the top-level value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::string* error) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) {
      *error = "malformed literal at offset " + std::to_string(pos_);
      return false;
    }
    pos_ += n;
    return true;
  }

  bool parse_string(std::string* out, std::string* error) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      *error = "expected string at offset " + std::to_string(pos_);
      return false;
    }
    for (++pos_; pos_ < text_.size(); ++pos_) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        *out += text_[pos_];
      } else {
        *out += c;
      }
    }
    *error = "unterminated string";
    return false;
  }

  bool parse_value(JsonDoc* doc, std::string* error) {
    skip_ws();
    if (pos_ >= text_.size()) {
      *error = "unexpected end of document";
      return false;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      doc->kind = JsonDoc::Kind::kNull;
      return literal("null", error);
    }
    if (c == 't' || c == 'f') {
      doc->kind = JsonDoc::Kind::kBool;
      doc->boolean = c == 't';
      return literal(c == 't' ? "true" : "false", error);
    }
    if (c == '"') {
      doc->kind = JsonDoc::Kind::kString;
      return parse_string(&doc->text, error);
    }
    if (c == '[') {
      doc->kind = JsonDoc::Kind::kArray;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonDoc item;
        if (!parse_value(&item, error)) return false;
        doc->items.push_back(std::move(item));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        *error = "expected ',' or ']' at offset " + std::to_string(pos_);
        return false;
      }
    }
    if (c == '{') {
      doc->kind = JsonDoc::Kind::kObject;
      ++pos_;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key, error)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          *error = "expected ':' at offset " + std::to_string(pos_);
          return false;
        }
        ++pos_;
        JsonDoc value;
        if (!parse_value(&value, error)) return false;
        doc->members.emplace_back(std::move(key), std::move(value));
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        *error = "expected ',' or '}' at offset " + std::to_string(pos_);
        return false;
      }
    }
    // Number: accept the JSON grammar loosely; strtod validates the rest.
    const std::size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (begin == pos_) {
      *error = "unexpected character at offset " + std::to_string(pos_);
      return false;
    }
    try {
      doc->number = std::stod(text_.substr(begin, pos_ - begin));
    } catch (const std::exception&) {
      *error = "malformed number at offset " + std::to_string(begin);
      return false;
    }
    doc->kind = JsonDoc::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  std::size_t pos_{0};
};

}  // namespace

const JsonDoc* JsonDoc::find(const std::string& key) const {
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

bool parse_json(const std::string& text, JsonDoc* doc, std::string* error) {
  PARACONV_REQUIRE(doc != nullptr, "document sink required");
  PARACONV_REQUIRE(error != nullptr, "error sink required");
  error->clear();
  *doc = JsonDoc{};
  return JsonReader(text).parse(doc, error);
}

}  // namespace paraconv::report
