// Chrome-tracing export of expanded schedules.
//
// Emits the chrome://tracing / Perfetto "trace event" JSON array format:
// one complete event ("ph":"X") per task instance, with the PE as the
// thread id — load the output in a trace viewer to inspect prologue
// ramp-up and steady-state pipelining visually.
#pragma once

#include <string>

#include "graph/task_graph.hpp"
#include "pim/machine.hpp"
#include "sched/schedule.hpp"

namespace paraconv::report {

struct TraceOptions {
  /// Iterations to expand into the trace.
  std::int64_t iterations{4};
  /// Nanoseconds per abstract time unit (trace timestamps are in
  /// microseconds; 1000 keeps unit boundaries readable).
  std::int64_t ns_per_time_unit{1000};
};

/// Trace of the kernel schedule (prologue + steady state).
std::string to_chrome_trace(const graph::TaskGraph& g,
                            const sched::KernelSchedule& kernel,
                            const TraceOptions& options = {});

/// Compute lanes (pid 0) plus the machine model's memory-system events as
/// instant events (pid 1, one thread row per event kind): cache traffic,
/// vault reads/writes, NoC hand-offs, fallbacks, weight streaming. Runs the
/// machine internally with the given config.
std::string to_chrome_trace_with_memory(const graph::TaskGraph& g,
                                        const sched::KernelSchedule& kernel,
                                        const pim::PimConfig& config,
                                        const TraceOptions& options = {});

}  // namespace paraconv::report
