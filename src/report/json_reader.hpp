// Minimal read-only JSON document model: just enough structure for the
// bench-harness schema validator and the serve request parser. Not a
// general parser — no \uXXXX decoding (neither producer emits any), but
// it does reject malformed documents with an offset-bearing error.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace paraconv::report {

struct JsonDoc {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string text;
  std::vector<JsonDoc> items;
  std::vector<std::pair<std::string, JsonDoc>> members;

  /// First member with `key`, or nullptr. Objects only.
  const JsonDoc* find(const std::string& key) const;
};

/// Parses `text` into `*doc`. Returns false and fills `*error` on malformed
/// input (including trailing characters after the top-level value).
bool parse_json(const std::string& text, JsonDoc* doc, std::string* error);

}  // namespace paraconv::report
