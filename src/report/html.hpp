// Self-contained HTML/SVG schedule report.
//
// Renders a kernel schedule as an interactive-free, dependency-free HTML
// page: an SVG Gantt of the prologue + early steady-state windows (one lane
// per PE, tasks colored by retiming value), plus a metrics summary table.
// Open the output in any browser; nothing external is loaded.
#pragma once

#include <string>

#include "core/analysis.hpp"
#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace paraconv::report {

struct HtmlReportOptions {
  /// Windows to render (prologue + a few steady ones by default).
  std::int64_t windows{0};  // 0 = R_max + 3
  /// Pixels per time unit.
  int px_per_unit{6};
};

std::string render_html_report(const graph::TaskGraph& g,
                               const pim::PimConfig& config,
                               const core::ParaConvResult& result,
                               const HtmlReportOptions& options = {});

}  // namespace paraconv::report
