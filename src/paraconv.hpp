// Umbrella header: the full public API of the Para-CONV library.
//
// Quick start:
//
//   #include "paraconv.hpp"
//
//   auto g = paraconv::graph::build_paper_benchmark(
//       paraconv::graph::paper_benchmark("flower"));
//   paraconv::core::ParaConv scheduler(
//       paraconv::pim::PimConfig::neurocube(32));
//   auto result = scheduler.schedule(g);
//   // result.kernel    — validated periodic schedule (period, placement,
//   //                    retiming, per-IPR cache/eDRAM allocation)
//   // result.metrics   — throughput / prologue / cache metrics
#pragma once

#include "alloc/critical_path.hpp"
#include "alloc/energy_aware.hpp"
#include "alloc/greedy.hpp"
#include "alloc/item.hpp"
#include "alloc/knapsack.hpp"
#include "alloc/residency.hpp"
#include "alloc/residency_constrained.hpp"
#include "alloc/optimal.hpp"
#include "cnn/builders.hpp"
#include "cnn/layer.hpp"
#include "cnn/lowering.hpp"
#include "cnn/network.hpp"
#include "cnn/reference_ops.hpp"
#include "cnn/shape.hpp"
#include "cnn/tensor.hpp"
#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/parse.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/analysis.hpp"
#include "core/colocate.hpp"
#include "core/metrics.hpp"
#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "dse/frontier.hpp"
#include "dse/memo_cache.hpp"
#include "dse/sweep.hpp"
#include "dse/thread_pool.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/generator.hpp"
#include "graph/paper_benchmarks.hpp"
#include "graph/serialize.hpp"
#include "graph/unfold.hpp"
#include "graph/task_graph.hpp"
#include "obs/obs.hpp"
#include "obs/writer.hpp"
#include "pim/cache.hpp"
#include "pim/config.hpp"
#include "pim/energy.hpp"
#include "pim/interconnect.hpp"
#include "pim/machine.hpp"
#include "pim/vault.hpp"
#include "retiming/cases.hpp"
#include "retiming/delta.hpp"
#include "retiming/retiming.hpp"
#include "retiming/transform.hpp"
#include "report/csv.hpp"
#include "report/gantt.hpp"
#include "report/json.hpp"
#include "report/trace.hpp"
#include "sched/bounds.hpp"
#include "sched/latency.hpp"
#include "sched/modulo.hpp"
#include "sched/packer.hpp"
#include "sched/prologue.hpp"
#include "sched/refine.hpp"
#include "sched/schedule.hpp"
#include "sched/validator.hpp"
