// Per-PE data cache model with LRU replacement and access statistics.
//
// The cache holds intermediate processing results between their production
// and their (last) consumption. The allocator treats the PE-array cache as a
// single capacity-S pool (paper Sec. 3.3); the machine model additionally
// tracks per-PE residency and counts spills when the static allocation
// over-commits a PE at runtime.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/check.hpp"
#include "common/units.hpp"

namespace paraconv::pim {

struct CacheStats {
  std::int64_t hits{0};
  std::int64_t misses{0};
  std::int64_t insertions{0};
  std::int64_t evictions{0};
  Bytes bytes_inserted{};
  Bytes bytes_evicted{};
  /// High-water mark of concurrent occupancy (for cross-checking the
  /// analytic residency profile).
  Bytes peak_used{};
};

/// LRU cache keyed by an opaque 64-bit block id (IPR instance id).
class Cache {
 public:
  explicit Cache(Bytes capacity) : capacity_(capacity) {
    PARACONV_REQUIRE(capacity > Bytes{0}, "cache capacity must be positive");
  }

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }

  /// True iff the block is resident; refreshes LRU position and counts a
  /// hit/miss.
  bool access(std::uint64_t block);

  /// Non-mutating residency probe (no stats, no LRU update).
  bool contains(std::uint64_t block) const {
    return index_.contains(block);
  }

  /// Inserts a block, evicting LRU entries as needed. Blocks larger than
  /// the capacity are rejected (returns false) — they can only live in
  /// eDRAM. Re-inserting a resident block refreshes it.
  bool insert(std::uint64_t block, Bytes size);

  /// Removes a block if resident (a consumed IPR frees its space).
  void erase(std::uint64_t block);

  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t block;
    Bytes size;
  };

  void evict_lru();

  Bytes capacity_;
  Bytes used_{};
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace paraconv::pim
