#include "pim/machine.hpp"

#include <algorithm>
#include <tuple>

#include "pim/cost_model.hpp"
#include "retiming/delta.hpp"

namespace paraconv::pim {
namespace {

/// One timed event in the replay: an IPR instance being produced (stored)
/// or consumed (loaded), or a task executing.
struct Event {
  enum class Kind : std::uint8_t { kProduce, kConsume, kExecute };

  TimeUnits time{};
  Kind kind{Kind::kExecute};
  graph::EdgeId edge{};
  graph::NodeId node{};
  std::int64_t iteration{0};
  int pe{0};
};

std::uint64_t block_id(graph::EdgeId edge, std::int64_t iteration) {
  return (static_cast<std::uint64_t>(edge.value) << 32) ^
         static_cast<std::uint64_t>(iteration);
}

}  // namespace

const char* to_string(MemoryEvent::Kind kind) {
  switch (kind) {
    case MemoryEvent::Kind::kCacheInsert:
      return "cache-insert";
    case MemoryEvent::Kind::kCacheHit:
      return "cache-hit";
    case MemoryEvent::Kind::kCacheFallback:
      return "cache-fallback";
    case MemoryEvent::Kind::kVaultWrite:
      return "vault-write";
    case MemoryEvent::Kind::kVaultRead:
      return "vault-read";
    case MemoryEvent::Kind::kNocTransfer:
      return "noc-transfer";
    case MemoryEvent::Kind::kWeightFetch:
      return "weight-fetch";
  }
  return "unknown";
}

Machine::Machine(const PimConfig& config) : config_(config) {
  config_.validate();
}

MachineStats Machine::run(const graph::TaskGraph& g,
                          const sched::KernelSchedule& kernel,
                          const MachineRunOptions& options) {
  PARACONV_REQUIRE(options.iterations >= 1,
                   "at least one iteration required");
  PARACONV_REQUIRE(kernel.allocation.size() == g.edge_count(),
                   "kernel schedule does not match graph");

  const sched::ExpandedSchedule expanded =
      sched::expand_schedule(g, kernel, options.iterations);

  // Components.
  std::vector<Cache> caches;
  caches.reserve(static_cast<std::size_t>(config_.pe_count));
  for (int pe = 0; pe < config_.pe_count; ++pe) {
    caches.emplace_back(config_.pe_cache_bytes);
  }
  std::vector<Vault> vaults;
  vaults.reserve(static_cast<std::size_t>(config_.vault_count));
  for (int v = 0; v < config_.vault_count; ++v) {
    vaults.emplace_back(v, config_.edram_bytes_per_unit);
  }
  Interconnect noc(config_.pe_count, config_.cache_bytes_per_unit);
  EnergyModel energy(config_);
  const auto cost_model = make_cost_model(config_);

  // Build the event timeline: per task instance one execute event, per
  // in-edge one consume event at the instance start, and per out-edge one
  // produce event at the instance finish.
  std::vector<Event> events;
  events.reserve(expanded.instances.size() * 3);
  std::vector<TimeUnits> pe_busy(static_cast<std::size_t>(config_.pe_count),
                                 TimeUnits{0});

  for (const sched::TaskInstance& inst : expanded.instances) {
    const TimeUnits finish = inst.start + g.task(inst.node).exec_time;
    events.push_back(Event{inst.start, Event::Kind::kExecute, {}, inst.node,
                           inst.iteration, inst.pe});
    for (const graph::EdgeId e : g.in_edges(inst.node)) {
      events.push_back(Event{inst.start, Event::Kind::kConsume, e, inst.node,
                             inst.iteration, inst.pe});
    }
    for (const graph::EdgeId e : g.out_edges(inst.node)) {
      events.push_back(Event{finish, Event::Kind::kProduce, e, inst.node,
                             inst.iteration, inst.pe});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    // Produces before consumes at equal timestamps: a hand-off completing
    // exactly at a consumer's start is legal. The remaining keys make the
    // order total — std::sort is unstable, so a (time, kind)-only
    // comparator would leave same-time same-kind events in unspecified
    // order, and that order reaches the observer stream (--timeline trace
    // bytes) and the vault busy-until diagnostics.
    if (a.kind != b.kind) {
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    return std::tie(a.iteration, a.edge.value, a.node.value, a.pe) <
           std::tie(b.iteration, b.edge.value, b.node.value, b.pe);
  });

  MachineStats stats;
  const int r_max = kernel.r_max();

  const auto notify = [&options](MemoryEvent::Kind kind, graph::EdgeId edge,
                                 int pe, Bytes bytes, TimeUnits time) {
    if (options.observer) {
      options.observer(MemoryEvent{time, kind, edge, pe, bytes});
    }
  };

  // Vault queueing diagnostics: busy-until horizon per vault.
  std::vector<TimeUnits> vault_busy_until(
      static_cast<std::size_t>(config_.vault_count), TimeUnits{0});
  const auto vault_access = [&](std::size_t vault_idx, TimeUnits at,
                                TimeUnits service) {
    TimeUnits& busy = vault_busy_until[vault_idx];
    if (busy > at) {
      ++stats.vault_contention_events;
      stats.vault_wait_time += busy - at;
      busy += service;
    } else {
      busy = at + service;
    }
  };

  for (const Event& ev : events) {
    switch (ev.kind) {
      case Event::Kind::kExecute: {
        ++stats.tasks_executed;
        const graph::Task& task = g.task(ev.node);
        pe_busy[static_cast<std::size_t>(ev.pe)] += task.exec_time;
        energy.on_compute(task.exec_time);
        if (!config_.weights_resident && task.weights > Bytes{0}) {
          const std::size_t vault_idx =
              ev.node.value % static_cast<std::size_t>(config_.vault_count);
          const TimeUnits service = vaults[vault_idx].read(task.weights);
          vault_access(vault_idx, ev.time, service);
          ++stats.edram_accesses;
          stats.edram_bytes += task.weights;
          stats.weight_bytes += task.weights;
          energy.on_edram_access(task.weights);
          notify(MemoryEvent::Kind::kWeightFetch, graph::EdgeId{}, ev.pe,
                 task.weights, ev.time);
        }
        break;
      }
      case Event::Kind::kProduce: {
        const graph::Ipr& ipr = g.ipr(ev.edge);
        if (kernel.allocation[ev.edge.value] == AllocSite::kCache) {
          caches[static_cast<std::size_t>(ev.pe)].insert(
              block_id(ev.edge, ev.iteration), ipr.size);
          energy.on_cache_access(ipr.size);
          notify(MemoryEvent::Kind::kCacheInsert, ev.edge, ev.pe, ipr.size,
                 ev.time);
        } else {
          const std::size_t vault_idx =
              ev.edge.value % static_cast<std::size_t>(config_.vault_count);
          const TimeUnits service = vaults[vault_idx].write(ipr.size);
          vault_access(vault_idx, ev.time, service);
          ++stats.edram_accesses;
          stats.edram_bytes += ipr.size;
          energy.on_edram_access(ipr.size);
          notify(MemoryEvent::Kind::kVaultWrite, ev.edge, ev.pe, ipr.size,
                 ev.time);
        }
        break;
      }
      case Event::Kind::kConsume: {
        const graph::Ipr& ipr = g.ipr(ev.edge);
        // Readiness: the producing instance is the same application
        // iteration; its window precedes the consumer's by the realized
        // retiming distance.
        const std::int64_t producer_window =
            ev.iteration + r_max - kernel.retiming[ipr.src.value];
        const sched::TaskPlacement& prod = kernel.placement[ipr.src.value];
        const TimeUnits produce_finish =
            TimeUnits{producer_window * kernel.period.value} + prod.start +
            g.task(ipr.src).exec_time;
        const TimeUnits transfer = retiming::effective_edge_transfer(
            *cost_model, config_, kernel.allocation[ev.edge.value], ipr.size,
            prod.pe, ev.pe, kernel.period);
        if (produce_finish + transfer > ev.time) {
          if (options.strict) {
            PARACONV_CHECK(false, "data-readiness violation for IPR " +
                                      g.task(ipr.src).name + " -> " +
                                      g.task(ipr.dst).name);
          }
          ++stats.readiness_violations;
        }

        if (kernel.allocation[ev.edge.value] == AllocSite::kCache) {
          auto& producer_cache = caches[static_cast<std::size_t>(prod.pe)];
          const std::uint64_t block = block_id(ev.edge, ev.iteration);
          if (producer_cache.access(block)) {
            energy.on_cache_access(ipr.size);
            producer_cache.erase(block);  // consumed; free the space
            notify(MemoryEvent::Kind::kCacheHit, ev.edge, ev.pe, ipr.size,
                   ev.time);
          } else {
            // The static allocation over-committed this PE's cache and the
            // block was evicted: fall back to eDRAM.
            ++stats.cache_fallbacks;
            const std::size_t vault_idx =
                ev.edge.value % static_cast<std::size_t>(config_.vault_count);
            const TimeUnits service = vaults[vault_idx].read(ipr.size);
            vault_access(vault_idx, ev.time, service);
            ++stats.edram_accesses;
            stats.edram_bytes += ipr.size;
            energy.on_edram_access(ipr.size);
            notify(MemoryEvent::Kind::kCacheFallback, ev.edge, ev.pe,
                   ipr.size, ev.time);
          }
          if (prod.pe != ev.pe) {
            noc.transfer(prod.pe, ev.pe, ipr.size);
            stats.noc_bytes += ipr.size;
            energy.on_noc_transfer(ipr.size);
            notify(MemoryEvent::Kind::kNocTransfer, ev.edge, ev.pe, ipr.size,
                   ev.time);
          }
        } else {
          const std::size_t vault_idx =
              ev.edge.value % static_cast<std::size_t>(config_.vault_count);
          const TimeUnits service = vaults[vault_idx].read(ipr.size);
          vault_access(vault_idx, ev.time, service);
          ++stats.edram_accesses;
          stats.edram_bytes += ipr.size;
          energy.on_edram_access(ipr.size);
          notify(MemoryEvent::Kind::kVaultRead, ev.edge, ev.pe, ipr.size,
                 ev.time);
        }
        break;
      }
    }
  }

  stats.makespan = expanded.makespan;
  for (const Cache& c : caches) {
    stats.cache_hits += c.stats().hits;
    stats.cache_misses += c.stats().misses;
    stats.cache_evictions += c.stats().evictions;
    stats.cache_peak_per_pe.push_back(c.stats().peak_used);
  }
  stats.energy = energy.breakdown();
  stats.pe_utilization.resize(static_cast<std::size_t>(config_.pe_count));
  for (int pe = 0; pe < config_.pe_count; ++pe) {
    stats.pe_utilization[static_cast<std::size_t>(pe)] =
        static_cast<double>(pe_busy[static_cast<std::size_t>(pe)].value) /
        static_cast<double>(stats.makespan.value);
  }
  return stats;
}

}  // namespace paraconv::pim
