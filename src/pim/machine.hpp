// Event-driven PIM machine model.
//
// Executes an expanded (prologue + steady-state) schedule on the modelled
// PE array: every IPR hand-off is replayed against per-PE LRU caches, eDRAM
// vaults and the crossbar, with data-readiness enforced *independently* of
// the analytic scheduler. This is the dynamic cross-check for the static
// model — if the scheduler's arithmetic is right, the machine observes zero
// readiness violations and a steady-state period equal to the analytic p —
// and the source of the movement/energy numbers reported by the examples
// and ablations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/task_graph.hpp"
#include "pim/cache.hpp"
#include "pim/config.hpp"
#include "pim/energy.hpp"
#include "pim/interconnect.hpp"
#include "pim/vault.hpp"
#include "sched/schedule.hpp"

namespace paraconv::pim {

struct MachineStats {
  TimeUnits makespan{};
  std::int64_t tasks_executed{0};

  /// Aggregated over all PE caches.
  std::int64_t cache_hits{0};
  std::int64_t cache_misses{0};
  std::int64_t cache_evictions{0};

  /// eDRAM vault traffic (includes refetches of evicted cache-resident IPRs).
  std::int64_t edram_accesses{0};
  Bytes edram_bytes{};

  /// Filter-weight streaming volume (only when !config.weights_resident).
  Bytes weight_bytes{};

  /// Cross-PE crossbar traffic.
  Bytes noc_bytes{};

  /// Consumptions that found their cached IPR evicted and fell back to
  /// eDRAM (the runtime cost of an over-committed static allocation).
  std::int64_t cache_fallbacks{0};

  /// Vault bandwidth contention diagnostics: accesses that arrived while
  /// their vault was still servicing an earlier request, and the total
  /// queueing delay they would have observed. The static model assumes
  /// uncontended vaults; a large value here flags that assumption.
  std::int64_t vault_contention_events{0};
  TimeUnits vault_wait_time{};

  /// Data-readiness violations observed (0 for any valid schedule; only
  /// populated when running with strict = false).
  std::int64_t readiness_violations{0};

  EnergyBreakdown energy{};

  /// Per-PE busy fraction over the simulated makespan.
  std::vector<double> pe_utilization;

  /// Per-PE high-water mark of concurrent cache occupancy (cross-checks
  /// the analytic alloc::cache_residency profile).
  std::vector<Bytes> cache_peak_per_pe;
};

/// One observable memory-system event during replay (for tracing tools).
struct MemoryEvent {
  enum class Kind : std::uint8_t {
    kCacheInsert,    // IPR produced into the producer's cache
    kCacheHit,       // IPR consumed from cache
    kCacheFallback,  // cached IPR found evicted; refetched from eDRAM
    kVaultWrite,     // IPR produced into an eDRAM vault
    kVaultRead,      // IPR consumed from an eDRAM vault
    kNocTransfer,    // cross-PE hand-off over the crossbar/mesh/ring
    kWeightFetch,    // filter weights streamed from a vault
  };

  TimeUnits time{};
  Kind kind{Kind::kCacheInsert};
  /// Edge for IPR events; the consuming/producing node's PE either way.
  graph::EdgeId edge{};
  int pe{0};
  Bytes bytes{};
};

const char* to_string(MemoryEvent::Kind kind);

struct MachineRunOptions {
  std::int64_t iterations{8};
  /// Strict mode throws ContractViolation on the first data-readiness
  /// violation; otherwise violations are counted in the stats.
  bool strict{true};
  /// Optional observer invoked for every memory-system event, in time
  /// order. Same-time events arrive in a fixed total order — produces
  /// before consumes before executes, then by (iteration, edge, node,
  /// pe) — so the event stream (and anything derived from it, like the
  /// --timeline trace) is byte-identical across runs. Null disables
  /// observation (no overhead).
  std::function<void(const MemoryEvent&)> observer{};
};

class Machine {
 public:
  explicit Machine(const PimConfig& config);

  /// Replays `kernel` over the requested iterations.
  MachineStats run(const graph::TaskGraph& g,
                   const sched::KernelSchedule& kernel,
                   const MachineRunOptions& options);

 private:
  PimConfig config_;
};

}  // namespace paraconv::pim
