#include "pim/cost_model.hpp"

#include <algorithm>

namespace paraconv::pim {
namespace {

class ConstantCostModel final : public CostModel {
 public:
  explicit ConstantCostModel(const PimConfig& config) : config_(config) {}

  CostModelKind kind() const override { return CostModelKind::kConstant; }

  TimeUnits transfer_time(AllocSite site, Bytes size) const override {
    return config_.transfer_time(site, size);
  }

  BankStats contention(std::vector<TransferRequest>) const override {
    // The paper's model has no bank structure: every counter stays zero.
    return BankStats{};
  }

 private:
  const PimConfig& config_;
};

class BankedCostModel final : public CostModel {
 public:
  explicit BankedCostModel(const PimConfig& config) : config_(config) {}

  CostModelKind kind() const override { return CostModelKind::kBanked; }

  TimeUnits transfer_time(AllocSite site, Bytes size) const override {
    // A transfer owns exactly one bank at full vault bandwidth, so the
    // per-transfer latency is the constant model's. Keeping the two equal
    // means the banked model never perturbs packing/allocation/retiming —
    // it only adds the contention diagnostics below.
    return config_.transfer_time(site, size);
  }

  BankStats contention(std::vector<TransferRequest> requests) const override;

 private:
  const PimConfig& config_;
};

struct BankedRequest {
  std::int64_t start{0};
  std::int64_t duration{0};
  std::uint32_t key{0};
  int bank{0};  // global bank id: vault * edram_banks + in-vault bank
};

BankStats BankedCostModel::contention(
    std::vector<TransferRequest> requests) const {
  BankStats stats;
  stats.banks = config_.edram_banks;

  // Only eDRAM streams live in the banked vaults; cache hand-offs stay on
  // the PE array. Zero-size requests cost zero units and cannot conflict.
  std::vector<BankedRequest> banked;
  banked.reserve(requests.size());
  // Vault mapping matches the machine model (edge -> edge % vault_count);
  // the in-vault stream index then picks a bank per the configured policy.
  // Block mapping needs the stream-space extent, so find it first.
  std::uint32_t max_stream = 0;
  for (const TransferRequest& req : requests) {
    if (req.site != AllocSite::kEdram || req.size.value == 0) continue;
    max_stream = std::max(
        max_stream,
        req.key / static_cast<std::uint32_t>(config_.vault_count));
  }
  const std::int64_t streams = static_cast<std::int64_t>(max_stream) + 1;
  for (const TransferRequest& req : requests) {
    if (req.site != AllocSite::kEdram || req.size.value == 0) continue;
    const auto vault =
        req.key % static_cast<std::uint32_t>(config_.vault_count);
    const auto stream =
        req.key / static_cast<std::uint32_t>(config_.vault_count);
    std::int64_t bank = 0;
    switch (config_.bank_policy) {
      case BankPolicy::kInterleave:
        bank = stream % static_cast<std::uint32_t>(config_.edram_banks);
        break;
      case BankPolicy::kBlock:
        // Contiguous runs of streams share a bank (ceil partition so every
        // stream maps inside [0, banks)).
        bank = static_cast<std::int64_t>(stream) * config_.edram_banks /
               streams;
        break;
    }
    BankedRequest entry;
    entry.start = req.start;
    entry.duration = transfer_time(req.site, req.size).value;
    entry.key = req.key;
    entry.bank = static_cast<int>(vault) * config_.edram_banks +
                 static_cast<int>(bank);
    banked.push_back(entry);
  }

  // Deterministic service order: by requested start, keys break ties.
  std::sort(banked.begin(), banked.end(),
            [](const BankedRequest& a, const BankedRequest& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.bank != b.bank) return a.bank < b.bank;
              return a.key < b.key;
            });

  // Conflict-serialize each bank: a transfer that arrives while its bank is
  // busy waits for the in-flight one (DNNsim GlobalBuffer semantics).
  const std::size_t bank_count =
      static_cast<std::size_t>(config_.vault_count) *
      static_cast<std::size_t>(config_.edram_banks);
  std::vector<std::int64_t> free_until(bank_count, 0);
  for (const BankedRequest& req : banked) {
    const auto bank = static_cast<std::size_t>(req.bank);
    const std::int64_t begin = std::max(req.start, free_until[bank]);
    if (begin > req.start) {
      ++stats.conflicts;
      stats.stall_units += begin - req.start;
    }
    free_until[bank] = begin + req.duration;
  }

  // Peak occupancy: the most transfers simultaneously *wanting* one bank
  // (requested intervals, before serialization). Event sweep per bank;
  // ends sort before starts at the same instant (back-to-back != overlap).
  std::vector<std::vector<std::pair<std::int64_t, int>>> per_bank(bank_count);
  for (const BankedRequest& req : banked) {
    auto& bank_events = per_bank[static_cast<std::size_t>(req.bank)];
    bank_events.emplace_back(req.start, +1);
    bank_events.emplace_back(req.start + req.duration, -1);
  }
  for (auto& bank_events : per_bank) {
    std::sort(bank_events.begin(), bank_events.end());
    std::int64_t live = 0;
    for (const auto& [time, delta] : bank_events) {
      live += delta;
      stats.peak_occupancy = std::max(stats.peak_occupancy, live);
    }
  }
  return stats;
}

}  // namespace

std::unique_ptr<const CostModel> make_cost_model(const PimConfig& config) {
  switch (config.cost_model) {
    case CostModelKind::kConstant:
      return std::make_unique<ConstantCostModel>(config);
    case CostModelKind::kBanked:
      return std::make_unique<BankedCostModel>(config);
  }
  PARACONV_CHECK(false, "unknown cost model kind");
  return nullptr;
}

}  // namespace paraconv::pim
