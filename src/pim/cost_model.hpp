// Pluggable data-movement cost model.
//
// The paper (Sec. 2.2) collapses transfer cost to two bandwidth constants
// (cache vs eDRAM); DNNsim-style simulators instead model a banked global
// buffer where concurrent accesses to the same bank are conflict-serialized.
// `CostModel` makes that choice a runtime knob:
//   * kConstant — the paper's model, and the default. Byte-identical
//     behaviour to calling `PimConfig::transfer_time` directly.
//   * kBanked — every eDRAM vault exposes `PimConfig::edram_banks` banks.
//     A single transfer still takes the constant-model latency (it occupies
//     exactly one bank at full vault bandwidth), so packings, allocations
//     and schedules are unchanged; what the banked model adds is the
//     *contention* analysis: per-bank conflict/stall/occupancy counters over
//     the steady-state transfer streams (see `contention`).
//
// pim sits at the bottom of the layering (no graph/sched types), so the
// contention input is a neutral request list; core/analysis.hpp builds it
// from a kernel schedule.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pim/config.hpp"

namespace paraconv::pim {

/// One steady-state eDRAM access stream event. `key` is a stable stream id
/// (the producing edge); requests with the same key hit the same bank.
struct TransferRequest {
  /// Requested start, in time units within the kernel window [0, p].
  std::int64_t start{0};
  Bytes size{};
  AllocSite site{AllocSite::kEdram};
  std::uint32_t key{0};
};

/// Per-run bank-contention diagnostics. All counters are zero under the
/// constant model (no banks to conflict on).
struct BankStats {
  /// Banks per vault the analysis used (0 = constant model).
  int banks{0};
  /// Number of transfers that found their bank busy and had to wait.
  std::int64_t conflicts{0};
  /// Total time units transfers spent waiting on busy banks.
  std::int64_t stall_units{0};
  /// Maximum number of transfers simultaneously wanting one bank.
  std::int64_t peak_occupancy{0};
};

class CostModel {
 public:
  CostModel() = default;
  CostModel(const CostModel&) = delete;
  CostModel& operator=(const CostModel&) = delete;
  virtual ~CostModel() = default;

  virtual CostModelKind kind() const = 0;

  /// Latency of one transfer of `size` bytes from `site`. Identical across
  /// models by construction (a transfer owns one bank at full bandwidth);
  /// see the header comment.
  virtual TimeUnits transfer_time(AllocSite site, Bytes size) const = 0;

  /// Conflict-serializes the eDRAM requests over the configured banks and
  /// returns the per-run counters. Deterministic: ties are broken by `key`.
  virtual BankStats contention(std::vector<TransferRequest> requests) const = 0;
};

/// Builds the cost model `config` selects. `config` must outlive the model.
std::unique_ptr<const CostModel> make_cost_model(const PimConfig& config);

}  // namespace paraconv::pim
