#include "pim/config.hpp"

#include <algorithm>
#include <cmath>

namespace paraconv::pim {

const char* to_string(NocTopology topology) {
  switch (topology) {
    case NocTopology::kCrossbar:
      return "crossbar";
    case NocTopology::kMesh2D:
      return "mesh2d";
    case NocTopology::kRing:
      return "ring";
  }
  return "unknown";
}

const char* to_string(AllocSite site) {
  switch (site) {
    case AllocSite::kCache:
      return "cache";
    case AllocSite::kEdram:
      return "edram";
  }
  return "unknown";
}

std::optional<AllocSite> alloc_site_from_string(const std::string& name) {
  if (name == "cache") return AllocSite::kCache;
  if (name == "edram") return AllocSite::kEdram;
  return std::nullopt;
}

const char* to_string(CostModelKind kind) {
  switch (kind) {
    case CostModelKind::kConstant:
      return "constant";
    case CostModelKind::kBanked:
      return "banked";
  }
  return "unknown";
}

std::optional<CostModelKind> cost_model_kind_from_string(
    const std::string& name) {
  if (name == "constant") return CostModelKind::kConstant;
  if (name == "banked") return CostModelKind::kBanked;
  return std::nullopt;
}

const char* to_string(BankPolicy policy) {
  switch (policy) {
    case BankPolicy::kInterleave:
      return "interleave";
    case BankPolicy::kBlock:
      return "block";
  }
  return "unknown";
}

std::optional<BankPolicy> bank_policy_from_string(const std::string& name) {
  if (name == "interleave") return BankPolicy::kInterleave;
  if (name == "block") return BankPolicy::kBlock;
  return std::nullopt;
}

TimeUnits PimConfig::transfer_time(AllocSite site, Bytes size) const {
  PARACONV_REQUIRE(size >= Bytes{0}, "transfer size must be non-negative");
  // Zero-size contract (shared with Interconnect::transfer): moving nothing
  // takes no time. The old max(1, ...) floor only applies to real payloads.
  if (size.value == 0) return TimeUnits{0};
  const std::int64_t bw = site == AllocSite::kCache ? cache_bytes_per_unit
                                                    : edram_bytes_per_unit;
  return TimeUnits{std::max<std::int64_t>(1, ceil_div(size.value, bw))};
}

int PimConfig::hop_count(int src_pe, int dst_pe) const {
  PARACONV_REQUIRE(src_pe >= 0 && src_pe < pe_count, "invalid source PE");
  PARACONV_REQUIRE(dst_pe >= 0 && dst_pe < pe_count, "invalid destination PE");
  if (src_pe == dst_pe) return 0;
  switch (topology) {
    case NocTopology::kCrossbar:
      return 1;
    case NocTopology::kMesh2D: {
      // Exact integer ceil(sqrt(pe_count)): the smallest width whose square
      // covers the PE array. Round-tripping through double rounds the wrong
      // way for large perfect squares (e.g. sqrt(x*x) can land just below
      // x), which would widen the mesh and shrink every hop distance.
      int width = 1;
      while (static_cast<std::int64_t>(width) * width < pe_count) ++width;
      const int dx = std::abs(src_pe % width - dst_pe % width);
      const int dy = std::abs(src_pe / width - dst_pe / width);
      return dx + dy;
    }
    case NocTopology::kRing: {
      const int direct = std::abs(src_pe - dst_pe);
      return std::min(direct, pe_count - direct);
    }
  }
  return 1;
}

TimeUnits PimConfig::noc_latency(int src_pe, int dst_pe) const {
  if (topology == NocTopology::kCrossbar || src_pe == dst_pe) {
    return TimeUnits{0};
  }
  return TimeUnits{hop_count(src_pe, dst_pe) * noc_hop_units};
}

void PimConfig::validate() const {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(pe_cache_bytes > Bytes{0}, "PE cache must be non-empty");
  PARACONV_REQUIRE(vault_count >= 1, "at least one vault required");
  PARACONV_REQUIRE(cache_bytes_per_unit >= 1 && edram_bytes_per_unit >= 1,
                   "bandwidths must be positive");
  PARACONV_REQUIRE(cache_bytes_per_unit >= edram_bytes_per_unit,
                   "cache must be at least as fast as eDRAM");
  // Per-field energy checks: the access energies must be strictly positive,
  // but zero NoC / compute energy is a legal ablation point — one combined
  // "must be positive" message misdescribed (and hid) which field failed.
  PARACONV_REQUIRE(cache_pj_per_byte > 0, "cache energy must be positive");
  PARACONV_REQUIRE(edram_pj_per_byte > 0, "eDRAM energy must be positive");
  PARACONV_REQUIRE(noc_pj_per_byte >= 0, "NoC energy must be non-negative");
  PARACONV_REQUIRE(compute_pj_per_unit >= 0,
                   "compute energy must be non-negative");
  PARACONV_REQUIRE(edram_pj_per_byte >= cache_pj_per_byte,
                   "eDRAM access must cost at least as much as cache");
  PARACONV_REQUIRE(noc_hop_units >= 0, "hop latency must be non-negative");
  PARACONV_REQUIRE(edram_banks >= 1, "at least one bank per vault required");
}

PimConfig PimConfig::neurocube(int pe_count) {
  PimConfig cfg;
  cfg.pe_count = pe_count;
  cfg.vault_count = std::max(16, pe_count / 4);
  cfg.validate();
  return cfg;
}

}  // namespace paraconv::pim
