// eDRAM vault model: stacked-memory storage reached through TSVs.
//
// The vault services IPR reads/writes with a bandwidth-derived latency; it
// tracks traffic so that the machine model can report off-PE fetch volume
// (the quantity Para-CONV minimizes).
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "pim/config.hpp"

namespace paraconv::pim {

struct VaultStats {
  std::int64_t reads{0};
  std::int64_t writes{0};
  Bytes bytes_read{};
  Bytes bytes_written{};
};

class Vault {
 public:
  Vault(int id, std::int64_t bytes_per_unit)
      : id_(id), bytes_per_unit_(bytes_per_unit) {
    PARACONV_REQUIRE(bytes_per_unit >= 1, "vault bandwidth must be positive");
  }

  int id() const { return id_; }

  /// Latency to read `size` bytes; records traffic.
  TimeUnits read(Bytes size);
  /// Latency to write `size` bytes; records traffic.
  TimeUnits write(Bytes size);

  const VaultStats& stats() const { return stats_; }

 private:
  TimeUnits latency(Bytes size) const {
    return TimeUnits{std::max<std::int64_t>(
        1, ceil_div(size.value, bytes_per_unit_))};
  }

  int id_;
  std::int64_t bytes_per_unit_;
  VaultStats stats_;
};

}  // namespace paraconv::pim
