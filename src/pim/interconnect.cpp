#include "pim/interconnect.hpp"

namespace paraconv::pim {

TimeUnits Interconnect::transfer(int src, int dst, Bytes size) {
  PARACONV_REQUIRE(src >= 0 && src < pe_count_, "invalid source PE");
  PARACONV_REQUIRE(dst >= 0 && dst < pe_count_, "invalid destination PE");
  PARACONV_REQUIRE(size >= Bytes{0}, "transfer size must be non-negative");
  // Zero-size contract (shared with PimConfig::transfer_time): moving
  // nothing takes no time and is not a message.
  if (src == dst || size.value == 0) return TimeUnits{0};
  ++stats_.messages;
  stats_.bytes_moved += size;
  return TimeUnits{std::max<std::int64_t>(
      1, ceil_div(size.value, bytes_per_unit_))};
}

}  // namespace paraconv::pim
