#include "pim/cache.hpp"

#include <algorithm>

namespace paraconv::pim {

bool Cache::access(std::uint64_t block) {
  const auto it = index_.find(block);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

bool Cache::insert(std::uint64_t block, Bytes size) {
  PARACONV_REQUIRE(size > Bytes{0}, "block size must be positive");
  if (size > capacity_) return false;

  if (const auto it = index_.find(block); it != index_.end()) {
    // Refresh: remove the old copy, fall through to re-insert.
    used_ = used_ - it->second->size;
    lru_.erase(it->second);
    index_.erase(it);
  }

  while (used_ + size > capacity_) evict_lru();

  lru_.push_front(Entry{block, size});
  index_[block] = lru_.begin();
  used_ += size;
  stats_.peak_used = std::max(stats_.peak_used, used_);
  ++stats_.insertions;
  stats_.bytes_inserted += size;
  return true;
}

void Cache::erase(std::uint64_t block) {
  const auto it = index_.find(block);
  if (it == index_.end()) return;
  used_ = used_ - it->second->size;
  lru_.erase(it->second);
  index_.erase(it);
}

void Cache::evict_lru() {
  PARACONV_CHECK(!lru_.empty(), "evicting from an empty cache");
  const Entry victim = lru_.back();
  lru_.pop_back();
  index_.erase(victim.block);
  used_ = used_ - victim.size;
  ++stats_.evictions;
  stats_.bytes_evicted += victim.size;
}

}  // namespace paraconv::pim
