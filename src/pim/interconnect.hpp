// Crossbar interconnect between PEs (paper Sec. 4.1: "up to 64 processing
// engines with cross-bar interconnection"). A crossbar gives uniform
// single-hop latency between any pair of distinct PEs; same-PE transfers are
// free (register-file/pFIFO local).
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"

namespace paraconv::pim {

struct InterconnectStats {
  std::int64_t messages{0};
  Bytes bytes_moved{};
};

class Interconnect {
 public:
  Interconnect(int pe_count, std::int64_t bytes_per_unit)
      : pe_count_(pe_count), bytes_per_unit_(bytes_per_unit) {
    PARACONV_REQUIRE(pe_count >= 1, "interconnect needs at least one PE");
    PARACONV_REQUIRE(bytes_per_unit >= 1, "link bandwidth must be positive");
  }

  /// Latency to move `size` bytes from PE `src` to PE `dst`.
  /// Zero for src == dst and for size == 0 (the shared zero-size contract
  /// with PimConfig::transfer_time; zero-size moves are not counted).
  TimeUnits transfer(int src, int dst, Bytes size);

  const InterconnectStats& stats() const { return stats_; }

 private:
  int pe_count_;
  std::int64_t bytes_per_unit_;
  InterconnectStats stats_;
};

}  // namespace paraconv::pim
