// Energy accounting for the PIM machine model.
//
// The paper defers energy study to future work (Sec. 5); we implement the
// straightforward model its architecture implies — per-byte costs for cache,
// eDRAM and crossbar traffic plus amortized compute energy — so the
// `energy_explorer` example and the memory-ratio ablation can quantify it.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "pim/config.hpp"

namespace paraconv::pim {

struct EnergyBreakdown {
  Picojoules cache{};
  Picojoules edram{};
  Picojoules noc{};
  Picojoules compute{};

  Picojoules total() const { return cache + edram + noc + compute; }
};

/// Accumulates energy events against a fixed configuration.
class EnergyModel {
 public:
  explicit EnergyModel(const PimConfig& config) : config_(config) {}

  void on_cache_access(Bytes size) {
    breakdown_.cache +=
        Picojoules{config_.cache_pj_per_byte * static_cast<double>(size.value)};
  }
  void on_edram_access(Bytes size) {
    breakdown_.edram +=
        Picojoules{config_.edram_pj_per_byte * static_cast<double>(size.value)};
  }
  void on_noc_transfer(Bytes size) {
    breakdown_.noc +=
        Picojoules{config_.noc_pj_per_byte * static_cast<double>(size.value)};
  }
  void on_compute(TimeUnits busy) {
    breakdown_.compute += Picojoules{config_.compute_pj_per_unit *
                                     static_cast<double>(busy.value)};
  }

  const EnergyBreakdown& breakdown() const { return breakdown_; }

 private:
  PimConfig config_;
  EnergyBreakdown breakdown_;
};

}  // namespace paraconv::pim
