#include "pim/energy.hpp"

// Header-only; translation unit anchors the component in the build.
