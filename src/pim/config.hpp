// PIM architecture configuration (paper Sec. 2.1 / Sec. 4.1).
//
// Models a Neurocube-class 3D-stacked memory: an array of processing engines
// (each with pFIFO, ALU datapath, register file and a small data cache) on
// the logic die, connected by a crossbar and through TSVs to eDRAM vaults in
// the stacked tiers. The paper's key architectural facts:
//   * the whole PE array has only 100-300 KB of cache (Sec. 2.3),
//   * an eDRAM fetch costs 2-10x the time/energy of an on-chip cache access
//     (Sec. 2.2, refs [7,14]),
//   * up to 64 PEs with crossbar interconnection (Sec. 4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/check.hpp"
#include "common/units.hpp"

namespace paraconv::pim {

/// Where an intermediate processing result lives (paper: on-chip cache in
/// the PE array, or eDRAM in the 3D-stacked memory).
enum class AllocSite : std::uint8_t { kCache, kEdram };

const char* to_string(AllocSite site);

/// Parses the report tokens emitted by `to_string(AllocSite)` ("cache",
/// "edram"); nullopt on unknown names. Encoder and decoder share the one
/// lowercase token set (lint-checked).
std::optional<AllocSite> alloc_site_from_string(const std::string& name);

/// Which data-movement cost model the run uses (see pim/cost_model.hpp):
/// the paper's two-constant model, or a banked-eDRAM contention model.
enum class CostModelKind : std::uint8_t { kConstant, kBanked };

const char* to_string(CostModelKind kind);

/// Parses the stable spellings shared by the CLI and the sweep schema
/// ("constant", "banked"); nullopt on unknown names.
std::optional<CostModelKind> cost_model_kind_from_string(
    const std::string& name);

/// How eDRAM access streams map onto the banks of their vault: interleaved
/// round-robin (successive streams hit successive banks) or block (the
/// stream space is split into contiguous runs, one run per bank).
enum class BankPolicy : std::uint8_t { kInterleave, kBlock };

const char* to_string(BankPolicy policy);

/// Parses the stable spellings shared by the CLI and the sweep schema
/// ("interleave", "block"); nullopt on unknown names.
std::optional<BankPolicy> bank_policy_from_string(const std::string& name);

/// On-chip network joining the PEs. The paper evaluates a crossbar
/// (Sec. 4.1); mesh and ring model the "other emerging PIM architectures"
/// of its future-work section. A crossbar delivers any hand-off in the
/// base transfer time; mesh/ring add per-hop router latency that the
/// retiming analysis sees and compensates for.
enum class NocTopology : std::uint8_t { kCrossbar, kMesh2D, kRing };

const char* to_string(NocTopology topology);

struct PimConfig {
  /// Number of processing engines (16/32/64 in the evaluation).
  int pe_count{16};

  /// Data-cache capacity per PE. 16 KiB x 16 PEs = 256 KiB, inside the
  /// paper's 100-300 KB envelope for the whole array.
  Bytes pe_cache_bytes{16 * 1024};

  /// Number of eDRAM vaults reachable over TSVs.
  int vault_count{16};

  /// Transfer bandwidth used to derive IPR transfer times, in bytes per
  /// abstract time unit. The cache:eDRAM ratio is the paper's 2-10x knob
  /// (default 8x, inside the envelope of [7,14]).
  std::int64_t cache_bytes_per_unit{4 * 1024};
  std::int64_t edram_bytes_per_unit{512};

  /// Energy model (DESTINY-flavoured constants, pJ per byte moved).
  double cache_pj_per_byte{0.11};
  double edram_pj_per_byte{0.66};
  /// Crossbar hop energy between distinct PEs.
  double noc_pj_per_byte{0.05};
  /// Compute energy per task time unit (amortized MAC array activity).
  double compute_pj_per_unit{640.0};

  /// PE-to-PE network shape and per-hop router latency (time units).
  /// Crossbar hand-offs add nothing beyond the base transfer time.
  NocTopology topology{NocTopology::kCrossbar};
  std::int64_t noc_hop_units{1};

  /// Data-movement cost model. kConstant (the default) is the paper's
  /// two-constant model and keeps every report byte-identical to builds
  /// that predate the knob; kBanked adds per-bank contention diagnostics.
  CostModelKind cost_model{CostModelKind::kConstant};

  /// Banks per eDRAM vault (banked model only; ignored under kConstant).
  int edram_banks{8};

  /// Stream-to-bank mapping policy (banked model only).
  BankPolicy bank_policy{BankPolicy::kInterleave};

  /// When true (default), filter weights are pinned in PE-local storage
  /// and cost nothing at runtime; when false, every task execution streams
  /// its weight footprint from the eDRAM vaults (the paper's "several
  /// hundreds of megabytes for filter weight storage" pressure).
  bool weights_resident{true};

  /// Aggregate cache capacity of the PE array — the knapsack capacity S.
  Bytes total_cache_bytes() const {
    return Bytes{static_cast<std::int64_t>(pe_count) * pe_cache_bytes.value};
  }

  /// Transfer time of `size` bytes from the given site, in time units.
  /// Zero bytes cost zero units (the shared zero-size contract with
  /// `Interconnect::transfer`); any real transfer costs at least 1.
  TimeUnits transfer_time(AllocSite site, Bytes size) const;

  /// Router hops between two PEs under the configured topology
  /// (0 for src == dst; crossbar counts any remote PE as one hop).
  int hop_count(int src_pe, int dst_pe) const;

  /// Extra on-chip-network latency of a cross-PE hand-off: zero for the
  /// crossbar (folded into the base transfer), hops * noc_hop_units for
  /// mesh/ring.
  TimeUnits noc_latency(int src_pe, int dst_pe) const;

  /// Throws ContractViolation if any field is out of range.
  void validate() const;

  /// The three evaluation configurations of the paper (16/32/64 PEs).
  static PimConfig neurocube(int pe_count);
};

}  // namespace paraconv::pim
