#include "pim/vault.hpp"

namespace paraconv::pim {

TimeUnits Vault::read(Bytes size) {
  PARACONV_REQUIRE(size > Bytes{0}, "read size must be positive");
  ++stats_.reads;
  stats_.bytes_read += size;
  return latency(size);
}

TimeUnits Vault::write(Bytes size) {
  PARACONV_REQUIRE(size > Bytes{0}, "write size must be positive");
  ++stats_.writes;
  stats_.bytes_written += size;
  return latency(size);
}

}  // namespace paraconv::pim
