// Crash-safe sweep checkpointing.
//
// A checkpoint is a line-oriented append-only file: one header line naming
// the sweep fingerprint and cell count, then one record per settled cell,
// appended (flushed + fsync'd) as the cell completes. A crash can at worst
// leave a torn final line, which the loader ignores — every fully-written
// record survives. Records store only the *computed* fields of a cell
// (metrics, energy, status); identity fields (benchmark, config, packer,
// allocator, seed) are reconstructed from the grid on resume, which both
// keeps records compact and guarantees a resumed cell is bit-equal to a
// freshly evaluated one. Doubles round-trip exactly via shortest-form
// std::to_chars.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "dse/sweep.hpp"

namespace paraconv::dse {

/// Header field a checkpoint was rejected on (see CheckpointMismatch).
enum class CheckpointField : std::uint8_t {
  kMagic,
  kVersion,
  kFingerprint,
  kCells,
};

/// Stable kebab-case code per field: "checkpoint-bad-magic",
/// "checkpoint-version-mismatch", "checkpoint-fingerprint-mismatch",
/// "checkpoint-cell-count-mismatch".
const char* to_string(CheckpointField field);

/// Typed header rejection. The loader parses the header *fields* (magic,
/// format version, fingerprint, cell count) and compares values — benign
/// formatting drift between writer versions (extra whitespace, trailing
/// annotations) never masquerades as a fingerprint error, and callers like
/// the shard merge can tell exactly which field disagreed. Subclasses
/// ContractViolation so existing resume callers that treat any mismatch as
/// fatal keep working unchanged.
class CheckpointMismatch : public ContractViolation {
 public:
  CheckpointMismatch(CheckpointField field, const std::string& what)
      : ContractViolation(what), field_(field) {}
  CheckpointField field() const { return field_; }

 private:
  CheckpointField field_;
};

/// Stable fingerprint of everything that determines a sweep's results:
/// the grid (graph structures + names, config fields, packer/allocator
/// axes, iterations, refinement) plus the sweep seed and baseline toggle.
/// Execution knobs (jobs, fail_fast, checkpoint/resume) are excluded — a
/// checkpoint taken at --jobs 1 resumes fine at --jobs 8.
std::uint64_t sweep_fingerprint(const GridSpec& spec,
                                const SweepOptions& options);

/// One checkpoint line for a settled cell (no trailing newline).
std::string encode_cell_record(const CellResult& cell);

/// Parses one record line. Returns a CellResult with only the computed
/// fields (index, status, metrics, energy, error code/message) populated,
/// or nullopt for a malformed/torn line.
std::optional<CellResult> decode_cell_record(const std::string& line);

/// What load_checkpoint recovered.
struct CheckpointLoad {
  /// Last ok record per grid index; empty slots (missing, errored, torn)
  /// mean the cell must be (re-)evaluated.
  std::vector<std::optional<CellResult>> ok_cells;
  /// Records parsed (ok + error).
  std::size_t records_read{0};
  /// File offset just past the last fully-parsed line. Appending must
  /// start here so a torn trailing line never corrupts the next record.
  std::int64_t valid_bytes{0};
  /// False when the file does not exist (an empty checkpoint).
  bool file_found{false};
};

/// Reads a checkpoint previously written for `fingerprint` and a grid of
/// `cells` cells. A missing file is an empty checkpoint; a header for a
/// different fingerprint or cell count throws CheckpointMismatch (resuming
/// someone else's sweep would silently fabricate results).
CheckpointLoad load_checkpoint(const std::string& path,
                               std::uint64_t fingerprint, std::size_t cells);

/// Full-fidelity load for the shard merge: the last record per grid index,
/// ok and error alike (a merged report must reproduce typed error rows just
/// as a single-process run would). Same header validation as
/// load_checkpoint (throws CheckpointMismatch on any field disagreement).
struct CheckpointRecords {
  std::vector<std::optional<CellResult>> cells;
  std::size_t records_read{0};
  bool file_found{false};
};

CheckpointRecords load_checkpoint_records(const std::string& path,
                                          std::uint64_t fingerprint,
                                          std::size_t cells);

/// Serialized, fsync'd appender. Thread-safe: sweep workers settle cells
/// concurrently and funnel through one mutex here.
class CheckpointWriter {
 public:
  /// Opens `path`. With resume_from_bytes set, keeps the existing file and
  /// truncates it to that offset (dropping a torn trailing line) before
  /// appending; otherwise truncates everything and writes a fresh header.
  /// Throws ContractViolation when the file cannot be opened.
  CheckpointWriter(const std::string& path, std::uint64_t fingerprint,
                   std::size_t cells,
                   std::optional<std::int64_t> resume_from_bytes);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// Appends one record and forces it to disk before returning.
  void append(const CellResult& cell);

 private:
  void write_line(const std::string& line);

  std::mutex mu_;
  std::FILE* file_{nullptr};
};

}  // namespace paraconv::dse
