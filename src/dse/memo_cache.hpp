// Memoization cache for the allocator-independent scheduling prefix.
//
// A sweep cell's packing and per-edge delta pairs depend only on (graph,
// PIM configuration, packer, refinement) — not on the allocator, iteration
// count or knapsack quantum. Ablation grids that vary the allocator
// therefore recompute identical packings per cell; this cache keys the
// PackedSchedule by a canonical fingerprint of exactly the inputs the
// prefix reads, sharded and mutex-striped so concurrent sweep workers
// don't serialize on one lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/para_conv.hpp"
#include "graph/task_graph.hpp"
#include "pim/config.hpp"

namespace paraconv::dse {

/// Canonical 64-bit structural fingerprint of a task graph (FNV-1a over
/// task kinds/times/weights and edge endpoints/sizes; the name is ignored).
/// Equal graphs hash equal on every platform and run.
std::uint64_t graph_fingerprint(const graph::TaskGraph& g);

/// Full key of the allocator-independent prefix. Compared field-by-field,
/// so two configurations that differ in any packing- or delta-relevant
/// input never share an entry (the hash only picks the shard/bucket).
struct PackingKey {
  std::uint64_t graph{0};
  int pe_count{0};
  std::int64_t pe_cache_bytes{0};
  std::int64_t cache_bytes_per_unit{0};
  std::int64_t edram_bytes_per_unit{0};
  std::uint8_t topology{0};
  std::int64_t noc_hop_units{0};
  std::uint8_t packer{0};
  int refine_steps{0};
  std::uint64_t refine_seed{0};

  friend bool operator==(const PackingKey&, const PackingKey&) = default;
};

PackingKey make_packing_key(const graph::TaskGraph& g,
                            const pim::PimConfig& config,
                            core::PackerKind packer, int refine_steps,
                            std::uint64_t refine_seed);

std::uint64_t hash_key(const PackingKey& key);

class MemoCache {
 public:
  using Value = std::shared_ptr<const core::PackedSchedule>;

  explicit MemoCache(std::size_t shard_count = 16);

  MemoCache(const MemoCache&) = delete;
  MemoCache& operator=(const MemoCache&) = delete;

  /// Returns the resident value or nullptr; counts a hit or a miss.
  Value find(const PackingKey& key) const;

  /// Inserts unless the key is already resident; either way returns the
  /// resident value (first insert wins, so concurrent duplicate computes
  /// converge on one shared schedule).
  Value insert(const PackingKey& key, core::PackedSchedule value);

  /// find-or-(compute outside the lock)-then-insert. Racing callers may
  /// compute the same value twice; the loser's copy is discarded.
  Value get_or_compute(const PackingKey& key,
                       const std::function<core::PackedSchedule()>& compute);

  /// Every resident entry in a deterministic (field-wise key) order, so
  /// two caches with equal contents snapshot identically regardless of
  /// insertion order — the persistence layer depends on this for
  /// byte-stable spill files.
  std::vector<std::pair<PackingKey, Value>> snapshot() const;

  struct Stats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t entries{0};
    /// Cumulative entries written to / restored from disk over the cache's
    /// lifetime (see dse/memo_store.hpp).
    std::uint64_t spilled{0};
    std::uint64_t loaded{0};

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const;

  void note_spilled(std::uint64_t entries) const;
  void note_loaded(std::uint64_t entries) const;

  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const PackingKey& key) const {
      return static_cast<std::size_t>(hash_key(key));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PackingKey, Value, KeyHash> map;  // GUARDED-BY(mu)
  };

  Shard& shard_for(const PackingKey& key) const;

  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> spilled_{0};
  mutable std::atomic<std::uint64_t> loaded_{0};
};

}  // namespace paraconv::dse
