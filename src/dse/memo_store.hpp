// Persistence for the packing memo cache (dse/memo_cache.hpp).
//
// The serve daemon keeps one MemoCache warm across requests; this layer
// makes that warmth outlive the process. Entries spill to a line-oriented
// text file following the checkpoint codec's discipline
// (dse/checkpoint.cpp): a magic+version header that is rejected on any
// mismatch, space-separated tokens parsed with full-token from_chars
// strictness, and fsync'd writes. Every payload field is an integer
// (PE index, start time, retiming deltas), so the round trip is exact by
// construction. Unlike the sweep checkpoint — which tolerates a torn tail
// because it is append-only — a spill file is written atomically
// (tmp + rename) and carries a trailing fingerprint over the entry bytes;
// a truncated or edited file fails validation instead of silently warming
// the cache with partial state.
#pragma once

#include <cstddef>
#include <string>

#include "dse/memo_cache.hpp"

namespace paraconv::dse {

/// Writes every resident entry of `cache` to `path` (tmp file + atomic
/// rename), in the deterministic snapshot order so equal caches produce
/// byte-identical files. Returns the number of entries written, records
/// them in the cache's `spilled` stat, and emits the `dse.memo.spilled`
/// obs counter. Throws ContractViolation on I/O failure.
std::size_t save_memo_cache(const MemoCache& cache, const std::string& path);

/// Loads `path` into `cache`. A missing file is a cold start and returns 0;
/// an unreadable, truncated, corrupted, or fingerprint-mismatched file
/// throws ContractViolation. Returns the number of entries restored,
/// records them in the cache's `loaded` stat, and emits the
/// `dse.memo.loaded` obs counter.
std::size_t load_memo_cache(MemoCache* cache, const std::string& path);

}  // namespace paraconv::dse
