// Pareto-frontier extraction and serialization of sweep results.
//
// A sweep cell is judged on three objectives: throughput (1 / kernel
// period, maximized), maximum retiming value R_max (prologue pressure,
// minimized) and estimated energy per iteration (minimized). The frontier
// is the set of non-dominated cells; serialization reuses the report/
// writers (JsonValue, the generic CSV table writer) and emits only
// deterministic fields, so parallel and serial sweeps dump byte-identical
// artifacts.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "dse/sweep.hpp"
#include "report/json.hpp"

namespace paraconv::dse {

/// Indices (into `cells`, ascending) of the non-dominated cells. A cell is
/// dominated when another is no worse on all three objectives and strictly
/// better on at least one; objective ties keep both cells.
std::vector<std::size_t> pareto_frontier(
    const std::vector<CellResult>& cells);

/// One CSV row per cell, grid order, with a final `frontier` column.
/// Deterministic: no wall-clock, job-count or cache fields.
void write_sweep_csv(std::ostream& os, const SweepResult& sweep);

/// Frontier cells only, grid order.
void write_frontier_csv(std::ostream& os, const SweepResult& sweep);

/// {"cells": [...], "frontier": [indices]} with the same determinism
/// guarantee as the CSV writers.
/// One cell rendered as the sweep JSON "cells" array element. Shared by
/// sweep_to_json and the serve daemon so a served schedule result is
/// byte-identical to the one-shot sweep path by construction.
report::JsonValue cell_to_json(const CellResult& cell);

report::JsonValue sweep_to_json(const SweepResult& sweep);

}  // namespace paraconv::dse
