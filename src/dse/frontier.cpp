#include "dse/frontier.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "core/metrics.hpp"
#include "report/csv.hpp"

namespace paraconv::dse {

namespace {

// True when `a` is at least as good as `b` on every objective and strictly
// better on one. Throughput is 1/period, so "better" is a smaller period.
bool dominates(const CellResult& a, const CellResult& b) {
  const bool no_worse = a.para.iteration_time <= b.para.iteration_time &&
                        a.para.r_max <= b.para.r_max &&
                        a.energy_uj <= b.energy_uj;
  const bool strictly_better = a.para.iteration_time < b.para.iteration_time ||
                               a.para.r_max < b.para.r_max ||
                               a.energy_uj < b.energy_uj;
  return no_worse && strictly_better;
}

// The banked-eDRAM cost model extends the sweep schema. The extension is
// all-or-nothing per report: a sweep with at least one banked config emits
// the banked header/keys for *every* row (mixed grids stay rectangular),
// and a purely constant sweep emits the legacy schema so its artifacts stay
// byte-identical to pre-cost-model builds.
bool banked_schema(const std::vector<CellResult>& cells) {
  return std::any_of(cells.begin(), cells.end(), [](const CellResult& cell) {
    return cell.config.cost_model != pim::CostModelKind::kConstant;
  });
}

// The batch axis follows the same all-or-nothing discipline: a sweep with
// at least one batched case carries the `batch` identity column for every
// row, and a batch-free sweep keeps the legacy schema byte for byte.
bool batch_schema(const std::vector<CellResult>& cells) {
  return std::any_of(cells.begin(), cells.end(),
                     [](const CellResult& cell) { return cell.batch != 1; });
}

// Inserts the `batch` column right after `benchmark`. The base headers stay
// untouched so legacy artifacts keep their exact bytes.
std::vector<std::string> header_with_batch(std::vector<std::string> header) {
  header.insert(header.begin() + 2, "batch");
  return header;
}

std::vector<std::string> cell_row(const CellResult& cell, bool on_frontier,
                                  bool banked, bool batched) {
  // Error rows keep their identity columns (what failed) but leave every
  // metric column empty — an empty cell reads as "no data", a zero would
  // read as a perfect score.
  const bool ok = cell.status == CellStatus::kOk;
  // Bank counters are only measured for banked cells; a constant cell in a
  // mixed grid reports no data there, not a perfect zero.
  const bool measured =
      ok && cell.config.cost_model != pim::CostModelKind::kConstant;
  std::vector<std::string> row{std::to_string(cell.index), cell.benchmark};
  if (batched) row.push_back(std::to_string(cell.batch));
  const std::vector<std::string> identity{
      std::to_string(cell.vertices),
      std::to_string(cell.edges),
      std::to_string(cell.config.pe_count),
      std::to_string(cell.config.pe_cache_bytes.value),
      pim::to_string(cell.config.topology),
      core::to_string(cell.packer),
      core::to_string(cell.allocator)};
  row.insert(row.end(), identity.begin(), identity.end());
  if (banked) {
    row.push_back(pim::to_string(cell.config.cost_model));
    row.push_back(std::to_string(cell.config.edram_banks));
    row.push_back(pim::to_string(cell.config.bank_policy));
  }
  const std::vector<std::string> metrics{
      ok ? std::to_string(cell.para.iteration_time.value) : std::string{},
      ok ? std::to_string(cell.para.r_max) : std::string{},
      ok ? std::to_string(cell.para.prologue_time.value) : std::string{},
      ok ? std::to_string(cell.para.total_time.value) : std::string{},
      ok ? std::to_string(cell.para.cached_iprs) : std::string{},
      ok ? std::to_string(cell.para.offchip_bytes_per_iteration.value)
         : std::string{},
      ok ? format_fixed(cell.energy_uj, 3) : std::string{},
      ok ? std::to_string(cell.sparta.total_time.value) : std::string{},
      ok && cell.sparta.total_time.value > 0
          ? format_fixed(core::speedup(cell.sparta, cell.para), 2)
          : std::string{}};
  row.insert(row.end(), metrics.begin(), metrics.end());
  if (banked) {
    row.push_back(measured ? std::to_string(cell.bank.conflicts)
                           : std::string{});
    row.push_back(measured ? std::to_string(cell.bank.stall_units)
                           : std::string{});
    row.push_back(measured ? std::to_string(cell.bank.peak_occupancy)
                           : std::string{});
  }
  row.push_back(on_frontier ? "1" : "0");
  row.push_back(to_string(cell.status));
  row.push_back(cell.error_code);
  row.push_back(cell.error_message);
  return row;
}

const std::vector<std::string>& cell_header() {
  static const std::vector<std::string> kHeader{
      "index",          "benchmark",      "vertices",
      "edges",          "pe_count",       "cache_per_pe_bytes",
      "topology",       "packer",         "allocator",
      "iteration_time", "r_max",          "prologue_time",
      "total_time",     "cached_iprs",    "offchip_bytes",
      "energy_uj",      "sparta_total_time", "speedup",
      "frontier",       "status",         "error_code",
      "error_message"};
  return kHeader;
}

const std::vector<std::string>& banked_cell_header() {
  static const std::vector<std::string> kBankedHeader{
      "index",          "benchmark",      "vertices",
      "edges",          "pe_count",       "cache_per_pe_bytes",
      "topology",       "packer",         "allocator",
      "cost_model",     "banks",          "bank_policy",
      "iteration_time", "r_max",          "prologue_time",
      "total_time",     "cached_iprs",    "offchip_bytes",
      "energy_uj",      "sparta_total_time", "speedup",
      "bank_conflicts", "bank_stall_units", "bank_peak_occupancy",
      "frontier",       "status",         "error_code",
      "error_message"};
  return kBankedHeader;
}

std::vector<bool> frontier_mask(const SweepResult& sweep) {
  const std::vector<std::size_t> frontier = pareto_frontier(sweep.cells);
  std::vector<bool> mask(sweep.cells.size(), false);
  for (const std::size_t index : frontier) mask[index] = true;
  return mask;
}

}  // namespace

std::vector<std::size_t> pareto_frontier(
    const std::vector<CellResult>& cells) {
  // Error cells carry no metrics: they neither join the frontier nor
  // dominate anything (a default-zero metric vector would dominate every
  // real design point).
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].status != CellStatus::kOk) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < cells.size() && !dominated; ++j) {
      dominated = j != i && cells[j].status == CellStatus::kOk &&
                  dominates(cells[j], cells[i]);
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

void write_sweep_csv(std::ostream& os, const SweepResult& sweep) {
  const bool banked = banked_schema(sweep.cells);
  const bool batched = batch_schema(sweep.cells);
  const std::vector<bool> mask = frontier_mask(sweep);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(sweep.cells.size());
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    rows.push_back(cell_row(sweep.cells[i], mask[i], banked, batched));
  }
  std::vector<std::string> header =
      banked ? banked_cell_header() : cell_header();
  if (batched) header = header_with_batch(std::move(header));
  report::write_csv_table(os, header, rows);
}

void write_frontier_csv(std::ostream& os, const SweepResult& sweep) {
  const bool banked = banked_schema(sweep.cells);
  const bool batched = batch_schema(sweep.cells);
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t index : pareto_frontier(sweep.cells)) {
    rows.push_back(cell_row(sweep.cells[index], true, banked, batched));
  }
  std::vector<std::string> header =
      banked ? banked_cell_header() : cell_header();
  if (batched) header = header_with_batch(std::move(header));
  report::write_csv_table(os, header, rows);
}

report::JsonValue cell_to_json(const CellResult& cell) {
  report::JsonValue c = report::JsonValue::object();
  c.set("index", static_cast<std::int64_t>(cell.index));
  c.set("benchmark", cell.benchmark);
  // Batched cells carry the `batch` key; batch-1 cells omit it so legacy
  // sweeps stay byte-identical (per-cell, like the banked keys below).
  if (cell.batch != 1) c.set("batch", cell.batch);
  c.set("vertices", static_cast<std::int64_t>(cell.vertices));
  c.set("edges", static_cast<std::int64_t>(cell.edges));
  c.set("pe_count", cell.config.pe_count);
  c.set("cache_per_pe_bytes", cell.config.pe_cache_bytes.value);
  c.set("topology", pim::to_string(cell.config.topology));
  c.set("packer", core::to_string(cell.packer));
  c.set("allocator", core::to_string(cell.allocator));
  // Banked-model cells carry the extra schema keys; constant cells omit
  // them so purely constant sweeps stay byte-identical to pre-cost-model
  // builds (the JSON schema extension is per cell — see banked_schema for
  // the rectangular CSV rule).
  const bool banked = cell.config.cost_model != pim::CostModelKind::kConstant;
  if (banked) {
    c.set("cost_model", pim::to_string(cell.config.cost_model));
    c.set("banks", cell.config.edram_banks);
    c.set("bank_policy", pim::to_string(cell.config.bank_policy));
  }
  c.set("status", to_string(cell.status));
  if (cell.status == CellStatus::kOk) {
    c.set("energy_uj", cell.energy_uj);
    if (banked) {
      c.set("bank_conflicts", cell.bank.conflicts);
      c.set("bank_stall_units", cell.bank.stall_units);
      c.set("bank_peak_occupancy", cell.bank.peak_occupancy);
    }
    c.set("para_conv", report::to_json(cell.para));
    if (cell.sparta.total_time.value > 0) {
      c.set("sparta", report::to_json(cell.sparta));
    }
  } else {
    c.set("error_code", cell.error_code);
    c.set("error_message", cell.error_message);
  }
  return c;
}

report::JsonValue sweep_to_json(const SweepResult& sweep) {
  report::JsonValue cells = report::JsonValue::array();
  for (const CellResult& cell : sweep.cells) {
    cells.push_back(cell_to_json(cell));
  }
  report::JsonValue frontier = report::JsonValue::array();
  for (const std::size_t index : pareto_frontier(sweep.cells)) {
    frontier.push_back(static_cast<std::int64_t>(index));
  }
  report::JsonValue out = report::JsonValue::object();
  out.set("cells", std::move(cells));
  out.set("frontier", std::move(frontier));
  return out;
}

}  // namespace paraconv::dse
