#include "dse/frontier.hpp"

#include "common/strings.hpp"
#include "core/metrics.hpp"
#include "report/csv.hpp"

namespace paraconv::dse {

namespace {

// True when `a` is at least as good as `b` on every objective and strictly
// better on one. Throughput is 1/period, so "better" is a smaller period.
bool dominates(const CellResult& a, const CellResult& b) {
  const bool no_worse = a.para.iteration_time <= b.para.iteration_time &&
                        a.para.r_max <= b.para.r_max &&
                        a.energy_uj <= b.energy_uj;
  const bool strictly_better = a.para.iteration_time < b.para.iteration_time ||
                               a.para.r_max < b.para.r_max ||
                               a.energy_uj < b.energy_uj;
  return no_worse && strictly_better;
}

std::vector<std::string> cell_row(const CellResult& cell, bool on_frontier) {
  // Error rows keep their identity columns (what failed) but leave every
  // metric column empty — an empty cell reads as "no data", a zero would
  // read as a perfect score.
  const bool ok = cell.status == CellStatus::kOk;
  std::vector<std::string> row{
      std::to_string(cell.index),
      cell.benchmark,
      std::to_string(cell.vertices),
      std::to_string(cell.edges),
      std::to_string(cell.config.pe_count),
      std::to_string(cell.config.pe_cache_bytes.value),
      pim::to_string(cell.config.topology),
      core::to_string(cell.packer),
      core::to_string(cell.allocator),
      ok ? std::to_string(cell.para.iteration_time.value) : std::string{},
      ok ? std::to_string(cell.para.r_max) : std::string{},
      ok ? std::to_string(cell.para.prologue_time.value) : std::string{},
      ok ? std::to_string(cell.para.total_time.value) : std::string{},
      ok ? std::to_string(cell.para.cached_iprs) : std::string{},
      ok ? std::to_string(cell.para.offchip_bytes_per_iteration.value)
         : std::string{},
      ok ? format_fixed(cell.energy_uj, 3) : std::string{},
      ok ? std::to_string(cell.sparta.total_time.value) : std::string{},
      ok && cell.sparta.total_time.value > 0
          ? format_fixed(core::speedup(cell.sparta, cell.para), 2)
          : std::string{},
      on_frontier ? "1" : "0",
      to_string(cell.status),
      cell.error_code,
      cell.error_message};
  return row;
}

const std::vector<std::string>& cell_header() {
  static const std::vector<std::string> kHeader{
      "index",          "benchmark",      "vertices",
      "edges",          "pe_count",       "cache_per_pe_bytes",
      "topology",       "packer",         "allocator",
      "iteration_time", "r_max",          "prologue_time",
      "total_time",     "cached_iprs",    "offchip_bytes",
      "energy_uj",      "sparta_total_time", "speedup",
      "frontier",       "status",         "error_code",
      "error_message"};
  return kHeader;
}

std::vector<bool> frontier_mask(const SweepResult& sweep) {
  const std::vector<std::size_t> frontier = pareto_frontier(sweep.cells);
  std::vector<bool> mask(sweep.cells.size(), false);
  for (const std::size_t index : frontier) mask[index] = true;
  return mask;
}

}  // namespace

std::vector<std::size_t> pareto_frontier(
    const std::vector<CellResult>& cells) {
  // Error cells carry no metrics: they neither join the frontier nor
  // dominate anything (a default-zero metric vector would dominate every
  // real design point).
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].status != CellStatus::kOk) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < cells.size() && !dominated; ++j) {
      dominated = j != i && cells[j].status == CellStatus::kOk &&
                  dominates(cells[j], cells[i]);
    }
    if (!dominated) frontier.push_back(i);
  }
  return frontier;
}

void write_sweep_csv(std::ostream& os, const SweepResult& sweep) {
  const std::vector<bool> mask = frontier_mask(sweep);
  std::vector<std::vector<std::string>> rows;
  rows.reserve(sweep.cells.size());
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    rows.push_back(cell_row(sweep.cells[i], mask[i]));
  }
  report::write_csv_table(os, cell_header(), rows);
}

void write_frontier_csv(std::ostream& os, const SweepResult& sweep) {
  std::vector<std::vector<std::string>> rows;
  for (const std::size_t index : pareto_frontier(sweep.cells)) {
    rows.push_back(cell_row(sweep.cells[index], true));
  }
  report::write_csv_table(os, cell_header(), rows);
}

report::JsonValue cell_to_json(const CellResult& cell) {
  report::JsonValue c = report::JsonValue::object();
  c.set("index", static_cast<std::int64_t>(cell.index));
  c.set("benchmark", cell.benchmark);
  c.set("vertices", static_cast<std::int64_t>(cell.vertices));
  c.set("edges", static_cast<std::int64_t>(cell.edges));
  c.set("pe_count", cell.config.pe_count);
  c.set("cache_per_pe_bytes", cell.config.pe_cache_bytes.value);
  c.set("topology", pim::to_string(cell.config.topology));
  c.set("packer", core::to_string(cell.packer));
  c.set("allocator", core::to_string(cell.allocator));
  c.set("status", to_string(cell.status));
  if (cell.status == CellStatus::kOk) {
    c.set("energy_uj", cell.energy_uj);
    c.set("para_conv", report::to_json(cell.para));
    if (cell.sparta.total_time.value > 0) {
      c.set("sparta", report::to_json(cell.sparta));
    }
  } else {
    c.set("error_code", cell.error_code);
    c.set("error_message", cell.error_message);
  }
  return c;
}

report::JsonValue sweep_to_json(const SweepResult& sweep) {
  report::JsonValue cells = report::JsonValue::array();
  for (const CellResult& cell : sweep.cells) {
    cells.push_back(cell_to_json(cell));
  }
  report::JsonValue frontier = report::JsonValue::array();
  for (const std::size_t index : pareto_frontier(sweep.cells)) {
    frontier.push_back(static_cast<std::int64_t>(index));
  }
  report::JsonValue out = report::JsonValue::object();
  out.set("cells", std::move(cells));
  out.set("frontier", std::move(frontier));
  return out;
}

}  // namespace paraconv::dse
