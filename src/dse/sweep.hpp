// Parallel design-space sweep engine.
//
// A sweep is a declarative grid (cases x configs x packers x allocators)
// whose cells are evaluated independently: Para-CONV (and optionally the
// SPARTA baseline) on one graph under one configuration. Cells fan out
// across a work-stealing ThreadPool and land in a pre-sized vector at their
// grid index — a deterministic ordered reduction, so the result (and any
// serialization of it) is byte-identical whatever the job count or the
// completion order. Per-cell randomness (the packing refinement seed) is
// derived from the grid index, never from a shared stateful generator.
//
// Enumeration order is case-major: case, then config, then packer, with
// the allocator fastest — consecutive cells of an allocator ablation share
// their (graph, config, packer) prefix and hit the MemoCache.
//
// Failures are isolated at the cell boundary: a cell that throws becomes a
// typed error row (CellStatus::kError + code + message) instead of sinking
// the sweep, on the sequential and the parallel path alike. Sweeps can
// checkpoint each settled cell to an fsync'd append-only file and resume
// after a crash, re-evaluating only missing or errored cells — the final
// reports are byte-identical to an uninterrupted run (see checkpoint.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "dse/memo_cache.hpp"
#include "graph/task_graph.hpp"
#include "pim/config.hpp"
#include "pim/cost_model.hpp"

namespace paraconv::dse {

/// One named application graph of the sweep. `batch` records how many
/// images per iteration the graph was lowered with (cnn workload cases;
/// see cnn::LoweringOptions::batch) — it is identity metadata carried into
/// reports and checkpoints, not a re-lowering knob: `graph` must already be
/// the batched graph.
struct SweepCase {
  std::string name;
  graph::TaskGraph graph;
  int batch{1};
};

/// Declarative grid specification. Every axis must be non-empty.
struct GridSpec {
  std::vector<SweepCase> cases;
  std::vector<pim::PimConfig> configs;
  std::vector<core::PackerKind> packers{core::PackerKind::kTopological};
  std::vector<core::AllocatorKind> allocators{
      core::AllocatorKind::kKnapsackDp};
  std::int64_t iterations{100};
  /// Packing refinement steps applied per cell (0 disables).
  int refine_steps{0};

  std::size_t cell_count() const;

  /// Axis indices of one flat grid index (allocator fastest).
  struct Coordinates {
    std::size_t case_index{0};
    std::size_t config_index{0};
    std::size_t packer_index{0};
    std::size_t allocator_index{0};
  };
  Coordinates coordinates(std::size_t index) const;

  /// Throws ContractViolation on an empty axis or bad shape. Per-case
  /// graphs and per-config fields are deliberately NOT deep-validated
  /// here: an invalid config or graph fails its own cells at evaluation
  /// time (fault isolation), not the whole sweep upfront.
  void validate() const;
};

/// The paper's evaluation grid: the twelve Table-1 benchmarks on a
/// Neurocube configuration per PE count.
GridSpec paper_grid(const std::vector<int>& pe_counts,
                    std::int64_t iterations = 100);

/// Outcome of one cell. Failure is data, not a sweep abort: an error cell
/// keeps its identity columns (benchmark/config/packer/allocator), carries
/// a typed code + message, and is excluded from the Pareto frontier and
/// summary statistics.
enum class CellStatus : std::uint8_t { kOk, kError };

/// Stable rendering: "ok" / "error".
const char* to_string(CellStatus status);

/// One evaluated grid cell.
struct CellResult {
  std::size_t index{0};
  std::string benchmark;
  /// Images per iteration of the case's graph (SweepCase::batch); 1 for
  /// every non-workload case. Reported via the conditional all-or-nothing
  /// `batch` column (see frontier.cpp) and checkpointed as an optional
  /// tagged segment, so batch-free sweeps keep their legacy bytes.
  int batch{1};
  std::size_t vertices{0};
  std::size_t edges{0};
  pim::PimConfig config;
  core::PackerKind packer{core::PackerKind::kTopological};
  core::AllocatorKind allocator{core::AllocatorKind::kKnapsackDp};
  /// Deterministic per-cell seed: mix(sweep seed, grid index).
  std::uint64_t cell_seed{0};
  core::RunResult para;
  /// Populated when SweepOptions::with_baseline.
  core::RunResult sparta;
  /// Analytic steady-state energy per iteration (see estimate_energy_uj).
  double energy_uj{0.0};
  /// Banked-eDRAM contention counters (all zero under the constant cost
  /// model; see pim/cost_model.hpp and core::analyze_bank_contention).
  pim::BankStats bank;
  CellStatus status{CellStatus::kOk};
  /// Stable machine-readable failure class when status == kError
  /// ("contract-violation" or "exception"); empty when ok.
  std::string error_code{};
  /// Human-readable failure detail (the exception's what()); empty when ok.
  std::string error_message{};
};

struct SweepOptions {
  /// Worker threads; 1 = run inline on the caller, 0 = hardware threads.
  int jobs{1};
  /// Also run the SPARTA baseline per cell (the Table-1 comparison needs
  /// it; pure Para-CONV ablations can skip the extra list schedule).
  bool with_baseline{true};
  /// Folded with each grid index into CellResult::cell_seed.
  std::uint64_t seed{0};
  /// Shared packing cache; nullptr = a sweep-local cache.
  MemoCache* cache{nullptr};
  /// Keep-going (default): a failing cell becomes an error row and every
  /// other cell still settles — identically for any jobs count. Fail-fast:
  /// no new cells start after the first failure; once in-flight cells
  /// settle, run_sweep rethrows the lowest-grid-index failure.
  bool fail_fast{false};
  /// When non-empty, append one fsync'd record per settled cell to this
  /// file (crash-safe: a record either fully lands or is a torn last line
  /// the loader ignores).
  std::string checkpoint_path{};
  /// Load checkpoint_path first and skip cells it records as ok; missing
  /// and errored cells are (re-)evaluated and appended. The final reports
  /// are byte-identical to an uninterrupted run. Requires checkpoint_path;
  /// a missing file is an empty checkpoint, a file written for a different
  /// grid or seed throws ContractViolation.
  bool resume{false};
  /// This worker's contiguous slice of the grid index space: slice
  /// shard_index of shard_count (see dse/shard.hpp). The default 0/1 is
  /// the whole grid. Sharding is an execution knob like jobs — excluded
  /// from the sweep fingerprint, per-cell seeds still derive from the
  /// global grid index, and a shard's checkpoint header names the full
  /// grid — so N shard checkpoints merge back into a report byte-identical
  /// to an unsharded run (dse::merge_checkpoints).
  std::size_t shard_index{0};
  std::size_t shard_count{1};
};

struct SweepResult {
  /// Grid order, independent of jobs/completion. A whole-grid sweep has
  /// index i at cells[i]; a sharded sweep (shard_count > 1) carries only
  /// the owned slice, each cell keeping its *global* grid index.
  std::vector<CellResult> cells;
  MemoCache::Stats cache_stats;
  double wall_seconds{0.0};
  int jobs_used{1};
  /// Cells that settled ok (evaluated or resumed) / settled as errors.
  std::size_t cells_ok{0};
  std::size_t cells_failed{0};
  /// Cells restored from the checkpoint instead of being evaluated.
  std::size_t cells_resumed{0};
};

/// Deterministic per-cell seed derivation (exposed for tests).
std::uint64_t cell_seed(std::uint64_t sweep_seed, std::size_t index);

/// Fills the identity columns of grid cell `index` (benchmark, graph
/// shape, config, packer, allocator, per-cell seed) that a checkpoint
/// record omits. Shared by run_sweep's resume path and merge_checkpoints
/// so a restored cell is bit-equal to a freshly evaluated one by
/// construction.
void fill_cell_identity(const GridSpec& spec, const SweepOptions& options,
                        std::size_t index, CellResult* cell);

/// Evaluates one cell; the single-cell path `bench_support::run_cell` and
/// the grid engine share this so there is exactly one evaluation code path.
CellResult evaluate_cell(const SweepCase& sweep_case,
                         const pim::PimConfig& config,
                         core::PackerKind packer,
                         core::AllocatorKind allocator,
                         std::int64_t iterations, int refine_steps,
                         std::uint64_t seed, bool with_baseline,
                         MemoCache* cache);

/// Runs the full grid. Per-cell failures (ContractViolation or any other
/// exception thrown while evaluating one cell) are caught at the cell
/// boundary and recorded as error cells; successful cells are unaffected.
/// With fail_fast, the lowest-grid-index failure is rethrown after every
/// in-flight cell settles. Grid-shape errors (empty axes) still throw
/// upfront; a bad config or graph fails only its own cells.
SweepResult run_sweep(const GridSpec& spec, const SweepOptions& options = {});

/// Analytic steady-state energy estimate of one kernel iteration, in
/// microjoules: every IPR is written and read once at its allocation
/// site's per-byte cost, cross-PE hand-offs pay the NoC cost, and compute
/// charges the graph's total work. Cheaper than a machine replay and
/// deterministic, which is what a Pareto sweep needs.
double estimate_energy_uj(const graph::TaskGraph& g,
                          const pim::PimConfig& config,
                          const sched::KernelSchedule& kernel);

}  // namespace paraconv::dse
