#include "dse/memo_cache.hpp"

#include <algorithm>
#include <tuple>

#include "common/check.hpp"

namespace paraconv::dse {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xFFU;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::TaskGraph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, g.node_count());
  mix(h, g.edge_count());
  for (const graph::NodeId n : g.nodes()) {
    const graph::Task& task = g.task(n);
    mix(h, static_cast<std::uint64_t>(task.kind));
    mix(h, static_cast<std::uint64_t>(task.exec_time.value));
    mix(h, static_cast<std::uint64_t>(task.weights.value));
  }
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    mix(h, ipr.src.value);
    mix(h, ipr.dst.value);
    mix(h, static_cast<std::uint64_t>(ipr.size.value));
  }
  return h;
}

PackingKey make_packing_key(const graph::TaskGraph& g,
                            const pim::PimConfig& config,
                            core::PackerKind packer, int refine_steps,
                            std::uint64_t refine_seed) {
  PackingKey key;
  key.graph = graph_fingerprint(g);
  key.pe_count = config.pe_count;
  key.pe_cache_bytes = config.pe_cache_bytes.value;
  key.cache_bytes_per_unit = config.cache_bytes_per_unit;
  key.edram_bytes_per_unit = config.edram_bytes_per_unit;
  key.topology = static_cast<std::uint8_t>(config.topology);
  key.noc_hop_units = config.noc_hop_units;
  key.packer = static_cast<std::uint8_t>(packer);
  key.refine_steps = refine_steps;
  key.refine_seed = refine_steps > 0 ? refine_seed : 0;
  return key;
}

std::uint64_t hash_key(const PackingKey& key) {
  std::uint64_t h = kFnvOffset;
  mix(h, key.graph);
  mix(h, static_cast<std::uint64_t>(key.pe_count));
  mix(h, static_cast<std::uint64_t>(key.pe_cache_bytes));
  mix(h, static_cast<std::uint64_t>(key.cache_bytes_per_unit));
  mix(h, static_cast<std::uint64_t>(key.edram_bytes_per_unit));
  mix(h, key.topology);
  mix(h, static_cast<std::uint64_t>(key.noc_hop_units));
  mix(h, key.packer);
  mix(h, static_cast<std::uint64_t>(key.refine_steps));
  mix(h, key.refine_seed);
  return h;
}

MemoCache::MemoCache(std::size_t shard_count) : shards_(shard_count) {
  PARACONV_REQUIRE(shard_count >= 1, "at least one shard required");
}

MemoCache::Shard& MemoCache::shard_for(const PackingKey& key) const {
  // The map hashes with the low bits; pick the shard with the high ones so
  // one shard's keys don't all collide into one bucket.
  return shards_[(hash_key(key) >> 48) % shards_.size()];
}

MemoCache::Value MemoCache::find(const PackingKey& key) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    // ANALYZE-ALLOW(atomic): hit/miss tallies are monotonic statistics;
    // readers (stats()) tolerate any interleaving, so no ordering is
    // required beyond atomicity.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // ANALYZE-ALLOW(atomic): same tally argument as the miss counter above.
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

MemoCache::Value MemoCache::insert(const PackingKey& key,
                                   core::PackedSchedule value) {
  auto holder =
      std::make_shared<const core::PackedSchedule>(std::move(value));
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    it = shard.map.emplace(key, std::move(holder)).first;
  }
  return it->second;
}

MemoCache::Value MemoCache::get_or_compute(
    const PackingKey& key,
    const std::function<core::PackedSchedule()>& compute) {
  if (Value found = find(key)) return found;
  return insert(key, compute());
}

std::vector<std::pair<PackingKey, MemoCache::Value>> MemoCache::snapshot()
    const {
  std::vector<std::pair<PackingKey, Value>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    entries.reserve(entries.size() + shard.map.size());
    for (const auto& [key, value] : shard.map) {
      entries.emplace_back(key, value);
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              const PackingKey& x = a.first;
              const PackingKey& y = b.first;
              return std::tie(x.graph, x.pe_count, x.pe_cache_bytes,
                              x.cache_bytes_per_unit, x.edram_bytes_per_unit,
                              x.topology, x.noc_hop_units, x.packer,
                              x.refine_steps, x.refine_seed) <
                     std::tie(y.graph, y.pe_count, y.pe_cache_bytes,
                              y.cache_bytes_per_unit, y.edram_bytes_per_unit,
                              y.topology, y.noc_hop_units, y.packer,
                              y.refine_steps, y.refine_seed);
            });
  return entries;
}

MemoCache::Stats MemoCache::stats() const {
  Stats stats;
  // ANALYZE-ALLOW-BEGIN(atomic): a stats snapshot is advisory by contract
  // — callers sample between sweeps (after the pool join, which orders
  // everything) or accept a racy point-in-time reading.
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.spilled = spilled_.load(std::memory_order_relaxed);
  stats.loaded = loaded_.load(std::memory_order_relaxed);
  // ANALYZE-ALLOW-END(atomic)
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.entries += shard.map.size();
  }
  return stats;
}

void MemoCache::note_spilled(std::uint64_t entries) const {
  // ANALYZE-ALLOW(atomic): monotonic tally, same argument as hits_.
  spilled_.fetch_add(entries, std::memory_order_relaxed);
}

void MemoCache::note_loaded(std::uint64_t entries) const {
  // ANALYZE-ALLOW(atomic): monotonic tally, same argument as hits_.
  loaded_.fetch_add(entries, std::memory_order_relaxed);
}

void MemoCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
  // ANALYZE-ALLOW-BEGIN(atomic): clear() is documented single-threaded
  // (between sweeps); the zeroing needs atomicity only so a concurrent
  // stats() sampler reads torn-free values, not ordering.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  spilled_.store(0, std::memory_order_relaxed);
  loaded_.store(0, std::memory_order_relaxed);
  // ANALYZE-ALLOW-END(atomic)
}

}  // namespace paraconv::dse
