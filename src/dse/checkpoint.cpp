#include "dse/checkpoint.hpp"

#include <bit>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/fsio.hpp"
#include "common/rng.hpp"
#include "dse/memo_cache.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PARACONV_CHECKPOINT_POSIX 1
#endif

namespace paraconv::dse {
namespace {

constexpr const char* kHeaderMagic = "paraconv-sweep-checkpoint";
constexpr int kFormatVersion = 1;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t state = h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
  return splitmix64(state);
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  // FNV-1a over the bytes, then folded into the running hash.
  std::uint64_t fnv = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    fnv ^= static_cast<unsigned char>(c);
    fnv *= 0x100000001B3ULL;
  }
  return mix(mix(h, fnv), s.size());
}

std::uint64_t mix_double(std::uint64_t h, double d) {
  return mix(h, std::bit_cast<std::uint64_t>(d));
}

/// Shortest decimal form that round-trips exactly (to_chars guarantee).
std::string double_token(double d) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), d);
  return std::string(buf, r.ptr);
}

bool parse_double(const std::string& token, double* out) {
  const auto r = std::from_chars(token.data(), token.data() + token.size(),
                                 *out);
  return r.ec == std::errc{} && r.ptr == token.data() + token.size();
}

/// Tokens must contain no whitespace (the decoder splits on it); escape
/// space/tab/newline/backslash, "-" = empty.
std::string escape_token(const std::string& s) {
  if (s.empty()) return "-";
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == ' ') {
      out += "\\s";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_token(const std::string& s) {
  if (s == "-") return {};
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 's':
        out += ' ';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        out += s[i];
        break;
    }
  }
  return out;
}

/// Free-text tail field: spaces survive, newlines/backslashes are escaped
/// so the record stays one line.
std::string escape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_text(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        out += s[i];
        break;
    }
  }
  return out;
}

void append_run_result(std::ostringstream& os, const core::RunResult& m) {
  os << ' ' << escape_token(m.scheduler) << ' ' << m.iteration_time.value
     << ' ' << m.r_max << ' ' << m.prologue_time.value << ' '
     << m.total_time.value << ' ' << m.cached_iprs << ' '
     << m.cache_bytes_used.value << ' '
     << m.offchip_bytes_per_iteration.value << ' '
     << double_token(m.pe_utilization) << ' '
     << m.residency_overcommit_bytes.value;
}

bool parse_run_result(std::istringstream& is, core::RunResult* m) {
  std::string scheduler;
  std::string utilization;
  std::int64_t iteration = 0;
  std::int64_t prologue = 0;
  std::int64_t total = 0;
  std::int64_t cache_bytes = 0;
  std::int64_t offchip = 0;
  std::int64_t overcommit = 0;
  if (!(is >> scheduler >> iteration >> m->r_max >> prologue >> total >>
        m->cached_iprs >> cache_bytes >> offchip >> utilization >>
        overcommit)) {
    return false;
  }
  m->scheduler = unescape_token(scheduler);
  m->iteration_time = TimeUnits{iteration};
  m->prologue_time = TimeUnits{prologue};
  m->total_time = TimeUnits{total};
  m->cache_bytes_used = Bytes{cache_bytes};
  m->offchip_bytes_per_iteration = Bytes{offchip};
  m->residency_overcommit_bytes = Bytes{overcommit};
  return parse_double(utilization, &m->pe_utilization);
}

std::string header_line(std::uint64_t fingerprint, std::size_t cells) {
  std::ostringstream os;
  os << kHeaderMagic << ' ' << kFormatVersion << ' ' << fingerprint << ' '
     << cells;
  return os.str();
}

/// Validates the header field by field (never by exact string compare, so
/// benign formatting drift between writer versions cannot masquerade as a
/// fingerprint error) and throws a CheckpointMismatch naming the first
/// field that disagrees. Extra trailing tokens are tolerated.
void require_header(const std::string& line, const std::string& path,
                    std::uint64_t fingerprint, std::size_t cells) {
  std::istringstream is(line);
  std::string magic;
  if (!(is >> magic) || magic != kHeaderMagic) {
    throw CheckpointMismatch(
        CheckpointField::kMagic,
        "[checkpoint-bad-magic] '" + path +
            "' is not a paraconv sweep checkpoint (header starts with '" +
            magic + "', expected '" + kHeaderMagic + "')");
  }
  std::int64_t version = -1;
  if (!(is >> version) || version != kFormatVersion) {
    throw CheckpointMismatch(
        CheckpointField::kVersion,
        "[checkpoint-version-mismatch] '" + path + "' uses format version " +
            std::to_string(version) + "; this reader supports version " +
            std::to_string(kFormatVersion));
  }
  std::uint64_t file_fingerprint = 0;
  if (!(is >> file_fingerprint) || file_fingerprint != fingerprint) {
    throw CheckpointMismatch(
        CheckpointField::kFingerprint,
        "[checkpoint-fingerprint-mismatch] '" + path +
            "' was written for a different sweep (grid/seed/options "
            "mismatch: file fingerprint " +
            std::to_string(file_fingerprint) + ", expected " +
            std::to_string(fingerprint) + ")");
  }
  std::uint64_t file_cells = 0;
  if (!(is >> file_cells) || file_cells != cells) {
    throw CheckpointMismatch(
        CheckpointField::kCells,
        "[checkpoint-cell-count-mismatch] '" + path +
            "' records a grid of " + std::to_string(file_cells) +
            " cells, expected " + std::to_string(cells));
  }
}

/// Shared line walk behind load_checkpoint and load_checkpoint_records:
/// last record per index wins (a resumed sweep re-appends), ok and error
/// records alike; a torn or corrupt tail keeps the valid prefix.
struct RawCheckpoint {
  std::vector<std::optional<CellResult>> cells;
  std::size_t records_read{0};
  std::int64_t valid_bytes{0};
  bool file_found{false};
};

RawCheckpoint read_checkpoint(const std::string& path,
                              std::uint64_t fingerprint, std::size_t cells) {
  RawCheckpoint raw;
  raw.cells.resize(cells);

  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return raw;  // missing file = empty checkpoint
  raw.file_found = true;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();

  std::size_t offset = 0;
  bool saw_header = false;
  while (offset < contents.size()) {
    const std::size_t newline = contents.find('\n', offset);
    if (newline == std::string::npos) break;  // torn trailing line
    const std::string line = contents.substr(offset, newline - offset);
    if (!saw_header) {
      require_header(line, path, fingerprint, cells);
      saw_header = true;
    } else {
      const std::optional<CellResult> cell = decode_cell_record(line);
      if (!cell.has_value()) break;  // corrupt tail: keep the valid prefix
      ++raw.records_read;
      if (cell->index < cells) raw.cells[cell->index] = *cell;
    }
    offset = newline + 1;
    raw.valid_bytes = static_cast<std::int64_t>(offset);
  }
  PARACONV_REQUIRE(saw_header || contents.empty(),
                   "checkpoint '" + path + "' has no valid header");
  return raw;
}

}  // namespace

const char* to_string(CheckpointField field) {
  switch (field) {
    case CheckpointField::kMagic:
      return "checkpoint-bad-magic";
    case CheckpointField::kVersion:
      return "checkpoint-version-mismatch";
    case CheckpointField::kFingerprint:
      return "checkpoint-fingerprint-mismatch";
    case CheckpointField::kCells:
      return "checkpoint-cell-count-mismatch";
  }
  return "checkpoint-bad-magic";
}

std::uint64_t sweep_fingerprint(const GridSpec& spec,
                                const SweepOptions& options) {
  std::uint64_t h = 0x5EEDC0DE;
  h = mix(h, spec.cases.size());
  for (const SweepCase& sweep_case : spec.cases) {
    h = mix_string(h, sweep_case.name);
    h = mix(h, graph_fingerprint(sweep_case.graph));
    // Batch joins the fingerprint only when != 1: batch-free grids keep the
    // fingerprint they had before the axis existed, so their checkpoints
    // stay resumable.
    if (sweep_case.batch != 1) {
      h = mix(h, static_cast<std::uint64_t>(sweep_case.batch));
    }
  }
  h = mix(h, spec.configs.size());
  for (const pim::PimConfig& config : spec.configs) {
    h = mix(h, static_cast<std::uint64_t>(config.pe_count));
    h = mix(h, static_cast<std::uint64_t>(config.pe_cache_bytes.value));
    h = mix(h, static_cast<std::uint64_t>(config.vault_count));
    h = mix(h, static_cast<std::uint64_t>(config.cache_bytes_per_unit));
    h = mix(h, static_cast<std::uint64_t>(config.edram_bytes_per_unit));
    h = mix_double(h, config.cache_pj_per_byte);
    h = mix_double(h, config.edram_pj_per_byte);
    h = mix_double(h, config.noc_pj_per_byte);
    h = mix_double(h, config.compute_pj_per_unit);
    h = mix(h, static_cast<std::uint64_t>(config.topology));
    h = mix(h, static_cast<std::uint64_t>(config.noc_hop_units));
    h = mix(h, config.weights_resident ? 1 : 0);
    // Cost-model fields join the fingerprint only for non-constant models:
    // a constant-model grid must keep the fingerprint (and therefore every
    // pre-cost-model checkpoint) it had before the knob existed.
    if (config.cost_model != pim::CostModelKind::kConstant) {
      h = mix(h, static_cast<std::uint64_t>(config.cost_model));
      h = mix(h, static_cast<std::uint64_t>(config.edram_banks));
      h = mix(h, static_cast<std::uint64_t>(config.bank_policy));
    }
  }
  h = mix(h, spec.packers.size());
  for (const core::PackerKind packer : spec.packers) {
    h = mix(h, static_cast<std::uint64_t>(packer));
  }
  h = mix(h, spec.allocators.size());
  for (const core::AllocatorKind allocator : spec.allocators) {
    h = mix(h, static_cast<std::uint64_t>(allocator));
  }
  h = mix(h, static_cast<std::uint64_t>(spec.iterations));
  h = mix(h, static_cast<std::uint64_t>(spec.refine_steps));
  h = mix(h, options.seed);
  h = mix(h, options.with_baseline ? 1 : 0);
  return h;
}

std::string encode_cell_record(const CellResult& cell) {
  std::ostringstream os;
  os << "cell " << cell.index << ' ' << to_string(cell.status);
  if (cell.status == CellStatus::kOk) {
    os << ' ' << double_token(cell.energy_uj);
    append_run_result(os, cell.para);
    append_run_result(os, cell.sparta);
    // Banked-model cells append their contention counters as a tagged
    // trailing segment; constant cells write the legacy record bytes, so
    // constant-model checkpoints stay byte-identical to pre-cost-model
    // files (and old files still decode — the segment is optional).
    if (cell.config.cost_model != pim::CostModelKind::kConstant) {
      os << " bank " << cell.bank.banks << ' ' << cell.bank.conflicts << ' '
         << cell.bank.stall_units << ' ' << cell.bank.peak_occupancy;
    }
    // Batched cells append a second tagged segment under the same
    // discipline: batch-1 records keep their legacy bytes and old files
    // still decode.
    if (cell.batch != 1) {
      os << " batch " << cell.batch;
    }
  } else {
    os << ' ' << escape_token(cell.error_code) << ' '
       << escape_text(cell.error_message);
  }
  return os.str();
}

std::optional<CellResult> decode_cell_record(const std::string& line) {
  std::istringstream is(line);
  std::string tag;
  std::string status;
  CellResult cell;
  if (!(is >> tag >> cell.index >> status) || tag != "cell") {
    return std::nullopt;
  }
  if (status == "ok") {
    std::string energy;
    if (!(is >> energy) || !parse_double(energy, &cell.energy_uj)) {
      return std::nullopt;
    }
    if (!parse_run_result(is, &cell.para)) return std::nullopt;
    if (!parse_run_result(is, &cell.sparta)) return std::nullopt;
    // Optional tagged segments (see encode_cell_record): "bank" counters
    // and/or a "batch" value. A present tag with missing fields is a
    // torn/corrupt record, not a legacy one.
    std::string segment;
    while (is >> segment) {
      if (segment == "bank") {
        if (!(is >> cell.bank.banks >> cell.bank.conflicts >>
              cell.bank.stall_units >> cell.bank.peak_occupancy)) {
          return std::nullopt;
        }
      } else if (segment == "batch") {
        if (!(is >> cell.batch) || cell.batch < 1) return std::nullopt;
      } else {
        return std::nullopt;
      }
    }
    cell.status = CellStatus::kOk;
    return cell;
  }
  if (status == "error") {
    std::string code;
    if (!(is >> code)) return std::nullopt;
    cell.status = CellStatus::kError;
    cell.error_code = unescape_token(code);
    std::string message;
    std::getline(is >> std::ws, message);
    cell.error_message = unescape_text(message);
    return cell;
  }
  return std::nullopt;
}

CheckpointLoad load_checkpoint(const std::string& path,
                               std::uint64_t fingerprint, std::size_t cells) {
  RawCheckpoint raw = read_checkpoint(path, fingerprint, cells);
  CheckpointLoad load;
  load.ok_cells.resize(cells);
  for (std::size_t index = 0; index < cells; ++index) {
    // Resume re-evaluates errored cells, so only ok records mark one done.
    if (raw.cells[index].has_value() &&
        raw.cells[index]->status == CellStatus::kOk) {
      load.ok_cells[index] = std::move(raw.cells[index]);
    }
  }
  load.records_read = raw.records_read;
  load.valid_bytes = raw.valid_bytes;
  load.file_found = raw.file_found;
  return load;
}

CheckpointRecords load_checkpoint_records(const std::string& path,
                                          std::uint64_t fingerprint,
                                          std::size_t cells) {
  RawCheckpoint raw = read_checkpoint(path, fingerprint, cells);
  CheckpointRecords records;
  records.cells = std::move(raw.cells);
  records.records_read = raw.records_read;
  records.file_found = raw.file_found;
  return records;
}

CheckpointWriter::CheckpointWriter(
    const std::string& path, std::uint64_t fingerprint, std::size_t cells,
    std::optional<std::int64_t> resume_from_bytes) {
  if (resume_from_bytes.has_value()) {
    file_ = std::fopen(path.c_str(), "r+b");
    PARACONV_REQUIRE(file_ != nullptr,
                     "cannot reopen checkpoint file: " + path);
#ifdef PARACONV_CHECKPOINT_POSIX
    // Drop a torn trailing line before appending after it.
    if (::ftruncate(::fileno(file_),
                    static_cast<off_t>(*resume_from_bytes)) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      PARACONV_REQUIRE(false, "cannot truncate checkpoint file: " + path);
    }
#endif
    std::fseek(file_, 0, SEEK_END);
  } else {
    file_ = std::fopen(path.c_str(), "wb");
    PARACONV_REQUIRE(file_ != nullptr,
                     "cannot open checkpoint file: " + path);
    try {
      write_line(header_line(fingerprint, cells));
      // write_line fsyncs the file, but the *directory entry* of a freshly
      // created checkpoint is parent-directory metadata — without its own
      // fsync a crash could lose the whole file despite the synced header
      // (fsync(2)). The resume path skips this: its entry already exists.
      fsync_parent_directory(path);
    } catch (...) {
      std::fclose(file_);  // the destructor never runs when the ctor throws
      file_ = nullptr;
      throw;
    }
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CheckpointWriter::append(const CellResult& cell) {
  const std::string line = encode_cell_record(cell);
  const std::lock_guard<std::mutex> lock(mu_);
  write_line(line);
}

void CheckpointWriter::write_line(const std::string& line) {
  // A checkpoint exists to promise durability; swallowing a short write
  // (disk full, quota) would let a crash-resume fabricate a shorter sweep.
  const bool wrote =
      std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
      std::fputc('\n', file_) != EOF && std::fflush(file_) == 0;
  PARACONV_REQUIRE(wrote, "checkpoint write failed (disk full or I/O error)");
#ifdef PARACONV_CHECKPOINT_POSIX
  ::fsync(::fileno(file_));
#endif
}

}  // namespace paraconv::dse
