#include "dse/thread_pool.hpp"

#include "common/check.hpp"

namespace paraconv::dse {

namespace {

// Identifies the pool (if any) the current thread belongs to, so nested
// submissions can bypass the back-pressure cap (blocking a worker on its
// own pool's full queue would deadlock).
thread_local ThreadPool* t_pool = nullptr;
thread_local std::size_t t_index = 0;

}  // namespace

ThreadPool::ThreadPool(Options options) {
  PARACONV_REQUIRE(options.threads >= 0, "thread count must be >= 0");
  PARACONV_REQUIRE(options.queue_capacity >= 1,
                   "queue capacity must be >= 1");
  queue_capacity_ = options.queue_capacity;
  const int threads =
      options.threads == 0 ? hardware_threads() : options.threads;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start only after every deque exists: a fast first worker may steal.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::jthread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  space_ready_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::submit(std::function<void()> task) {
  PARACONV_REQUIRE(task != nullptr, "cannot submit an empty task");
  if (t_pool == this) {
    // Nested submission: the worker's own deque, exempt from the cap.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    Worker& own = *workers_[t_index];
    {
      std::lock_guard<std::mutex> lock(own.mu);
      own.tasks.push_back(std::move(task));
    }
    work_ready_.notify_one();
    return;
  }
  std::size_t target = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_ready_.wait(
        lock, [&] { return stopping_ || pending_ < queue_capacity_; });
    // A pool being destroyed discards new work; memory-safety over
    // completeness (submitting into a dying pool is a caller bug).
    if (stopping_) return;
    ++pending_;
    target = next_worker_++ % workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_front(std::move(task));
  }
  work_ready_.notify_one();
}

bool ThreadPool::take_task(std::size_t self, std::function<void()>& out) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.back());
      own.tasks.pop_back();
      std::lock_guard<std::mutex> stats(mu_);
      --pending_;
      ++executed_;
      return true;
    }
  }
  for (std::size_t offset = 1; offset < workers_.size(); ++offset) {
    Worker& victim = *workers_[(self + offset) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    out = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    std::lock_guard<std::mutex> stats(mu_);
    --pending_;
    ++executed_;
    ++stolen_;
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_pool = this;
  t_index = self;
  for (;;) {
    std::function<void()> task;
    if (take_task(self, task)) {
      space_ready_.notify_one();
      task();
      // Stop after the in-flight task, even with work still queued: the
      // destructor must never wait for a long grid to drain.
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_ready_.wait(lock, [&] { return stopping_ || pending_ > 0; });
    if (stopping_) return;
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Stats{executed_, stolen_};
}

}  // namespace paraconv::dse
