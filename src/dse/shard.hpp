// Grid sharding and checkpoint merging for distributed sweeps.
//
// A shard is one of N contiguous, balanced slices of the sweep grid's flat
// cell index space: shard i of N owns [i*cells/N, (i+1)*cells/N). The
// arithmetic gives every worker the same partition with no coordination —
// the union of the N slices covers every cell exactly once — and
// contiguity preserves the memo-cache prefix locality of the
// allocator-fastest enumeration order inside each worker.
//
// Workers run `sweep --shard i/N --checkpoint ckpt.i`, writing disjoint,
// independently resumable checkpoint files. Sharding is an execution knob
// like --jobs: it is excluded from the sweep fingerprint, per-cell seeds
// derive from the *global* grid index, and every shard's checkpoint header
// names the full grid. merge_checkpoints then fingerprint-validates each
// file, rejects overlapping or missing cells with typed MergeErrors, and
// reconstructs the SweepResult an unsharded run would have produced — the
// CSV/JSON/frontier reports are byte-identical to a single-process run.
#pragma once

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dse/sweep.hpp"

namespace paraconv::dse {

/// Slice `index` of `count` contiguous grid slices ("i/N" on the CLI).
struct ShardSpec {
  std::size_t index{0};
  std::size_t count{1};
};

/// Parses "i/N" with 0 <= i < N (decimal, strict). Returns nullopt on
/// malformed or out-of-range input; `error` (when non-null) explains why.
std::optional<ShardSpec> parse_shard(const std::string& text,
                                     std::string* error);

/// Half-open global-index range [first, last) owned by the shard.
/// Balanced (sizes differ by at most one) and exhaustive: concatenating
/// the ranges of shards 0..count-1 yields exactly [0, cells).
std::pair<std::size_t, std::size_t> shard_bounds(const ShardSpec& shard,
                                                 std::size_t cells);

/// Typed merge rejection with a stable kebab-case code:
///   merge-no-inputs            no checkpoint files given
///   merge-file-missing         an input file does not exist
///   merge-bad-header           an input is not a sweep checkpoint
///   merge-version-mismatch     written by an incompatible format version
///   merge-fingerprint-mismatch written for a different grid/seed/options
///   merge-cell-count-mismatch  header cell count disagrees with the grid
///   merge-overlap              two inputs settle the same cell
///   merge-missing-cells        some grid cells are settled by no input
///   merge-corrupt-record       a record violates the cell contract
/// The CLI maps MergeError to exit code 2: the inputs are wrong, the way a
/// bad flag value is, not the library.
class MergeError : public std::runtime_error {
 public:
  MergeError(std::string code, const std::string& message)
      : std::runtime_error(message), code_(std::move(code)) {}
  const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Merges finished shard checkpoint files into the SweepResult an
/// unsharded run_sweep(spec, options) would return. Every file is
/// validated against the full grid's fingerprint; each grid cell must be
/// settled by exactly one input (ok and error records both count as
/// settled). Throws MergeError on any violation.
SweepResult merge_checkpoints(const GridSpec& spec,
                              const SweepOptions& options,
                              const std::vector<std::string>& paths);

}  // namespace paraconv::dse
