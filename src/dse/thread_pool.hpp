// Work-stealing thread pool for the design-space exploration engine.
//
// Each worker owns a deque: it pops its own back (LIFO, cache-friendly for
// nested submissions) while idle workers steal from the front (FIFO, oldest
// task first). External submissions are dealt round-robin across the worker
// deques and bounded by `queue_capacity` — a full pool applies back-pressure
// to the submitter instead of buffering an unbounded grid. Workers are
// std::jthreads; destroying the pool stops them after their current task,
// discards still-queued tasks (pending `async` futures observe
// std::future_errc::broken_promise) and joins.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace paraconv::dse {

class ThreadPool {
 public:
  struct Options {
    /// Worker count; 0 means one per hardware thread.
    int threads{0};
    /// Bound on tasks pending across all deques; `submit` blocks at the cap.
    std::size_t queue_capacity{4096};
  };

  explicit ThreadPool(Options options);
  ThreadPool() : ThreadPool(Options{}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Blocks while the pool already holds `queue_capacity`
  /// pending tasks; never blocks when called from a worker thread (nested
  /// submissions go to the worker's own deque). Tasks must not throw —
  /// use `async` for exception propagation.
  void submit(std::function<void()> task);

  /// `submit` with a future carrying the result or the thrown exception.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    submit([task]() mutable { (*task)(); });
    return future;
  }

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1.
  static int hardware_threads();

  struct Stats {
    std::uint64_t executed{0};
    /// Tasks a worker took from another worker's deque.
    std::uint64_t stolen{0};
  };
  Stats stats() const;

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;  // GUARDED-BY(mu)
    std::jthread thread;  // started last, after every deque exists
  };

  void worker_loop(std::size_t self);
  bool take_task(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;

  /// Guards sleeping/back-pressure; the per-worker deques have their own
  /// locks so steals don't serialize on one mutex.
  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable space_ready_;
  std::size_t pending_{0};  // GUARDED-BY(mu_)
  std::size_t queue_capacity_{0};  // set once in the constructor, then const
  bool stopping_{false};           // GUARDED-BY(mu_)
  std::size_t next_worker_{0};     // GUARDED-BY(mu_)

  std::uint64_t executed_{0};  // GUARDED-BY(mu_)
  std::uint64_t stolen_{0};    // GUARDED-BY(mu_)
};

}  // namespace paraconv::dse
