#include "dse/sweep.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <future>
#include <iterator>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "dse/checkpoint.hpp"
#include "dse/shard.hpp"
#include "dse/thread_pool.hpp"
#include "graph/paper_benchmarks.hpp"
#include "obs/obs.hpp"

namespace paraconv::dse {

std::size_t GridSpec::cell_count() const {
  return cases.size() * configs.size() * packers.size() * allocators.size();
}

GridSpec::Coordinates GridSpec::coordinates(std::size_t index) const {
  PARACONV_REQUIRE(index < cell_count(), "grid index out of range");
  Coordinates c;
  c.allocator_index = index % allocators.size();
  index /= allocators.size();
  c.packer_index = index % packers.size();
  index /= packers.size();
  c.config_index = index % configs.size();
  c.case_index = index / configs.size();
  return c;
}

void GridSpec::validate() const {
  PARACONV_REQUIRE(!cases.empty(), "grid needs at least one case");
  PARACONV_REQUIRE(!configs.empty(), "grid needs at least one config");
  PARACONV_REQUIRE(!packers.empty(), "grid needs at least one packer");
  PARACONV_REQUIRE(!allocators.empty(), "grid needs at least one allocator");
  PARACONV_REQUIRE(iterations >= 1, "at least one iteration required");
  PARACONV_REQUIRE(refine_steps >= 0, "refine_steps must be >= 0");
  // Graphs and configs are deliberately not deep-validated here: a bad
  // config or graph must fail its own cells (typed error rows), not veto
  // every other cell of the sweep.
}

const char* to_string(CellStatus status) {
  switch (status) {
    case CellStatus::kOk:
      return "ok";
    case CellStatus::kError:
      return "error";
  }
  return "unknown";
}

GridSpec paper_grid(const std::vector<int>& pe_counts,
                    std::int64_t iterations) {
  GridSpec spec;
  spec.iterations = iterations;
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    spec.cases.push_back({bench.name, graph::build_paper_benchmark(bench)});
  }
  for (const int pe_count : pe_counts) {
    spec.configs.push_back(pim::PimConfig::neurocube(pe_count));
  }
  return spec;
}

std::uint64_t cell_seed(std::uint64_t sweep_seed, std::size_t index) {
  std::uint64_t state = sweep_seed ^ (static_cast<std::uint64_t>(index) + 1);
  return splitmix64(state);
}

void fill_cell_identity(const GridSpec& spec, const SweepOptions& options,
                        std::size_t index, CellResult* cell) {
  PARACONV_REQUIRE(cell != nullptr, "fill_cell_identity needs a cell");
  const GridSpec::Coordinates at = spec.coordinates(index);
  cell->index = index;
  cell->benchmark = spec.cases[at.case_index].name;
  cell->batch = spec.cases[at.case_index].batch;
  cell->vertices = spec.cases[at.case_index].graph.node_count();
  cell->edges = spec.cases[at.case_index].graph.edge_count();
  cell->config = spec.configs[at.config_index];
  cell->packer = spec.packers[at.packer_index];
  cell->allocator = spec.allocators[at.allocator_index];
  cell->cell_seed = cell_seed(options.seed, index);
}

double estimate_energy_uj(const graph::TaskGraph& g,
                          const pim::PimConfig& config,
                          const sched::KernelSchedule& kernel) {
  double pj = config.compute_pj_per_unit *
              static_cast<double>(g.total_work().value);
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const double size = static_cast<double>(ipr.size.value);
    const double per_byte =
        kernel.allocation[e.value] == pim::AllocSite::kCache
            ? config.cache_pj_per_byte
            : config.edram_pj_per_byte;
    pj += 2.0 * per_byte * size;  // one write by the producer, one read
    const int src_pe = kernel.placement[ipr.src.value].pe;
    const int dst_pe = kernel.placement[ipr.dst.value].pe;
    if (src_pe != dst_pe) pj += config.noc_pj_per_byte * size;
  }
  return pj / 1e6;
}

CellResult evaluate_cell(const SweepCase& sweep_case,
                         const pim::PimConfig& config,
                         core::PackerKind packer,
                         core::AllocatorKind allocator,
                         std::int64_t iterations, int refine_steps,
                         std::uint64_t seed, bool with_baseline,
                         MemoCache* cache) {
  // Compose the per-cell label only when tracing is on; the disabled path
  // must stay allocation-free.
  const obs::ScopedSpan cell_span(
      "cell", obs::active_registry() != nullptr
                  ? sweep_case.name + "/" +
                        std::to_string(config.pe_count) + "pe/" +
                        core::to_string(packer) + "/" +
                        core::to_string(allocator)
                  : std::string{});
  CellResult cell;
  cell.benchmark = sweep_case.name;
  cell.batch = sweep_case.batch;
  cell.vertices = sweep_case.graph.node_count();
  cell.edges = sweep_case.graph.edge_count();
  cell.config = config;
  cell.packer = packer;
  cell.allocator = allocator;
  cell.cell_seed = seed;

  core::ParaConvOptions options;
  options.iterations = iterations;
  options.allocator = allocator;
  options.packer = packer;
  options.refine_steps = refine_steps;
  options.refine_seed = seed;
  const core::ParaConv scheduler(config, options);

  core::ParaConvResult result;
  if (cache != nullptr) {
    const PackingKey key = make_packing_key(sweep_case.graph, config, packer,
                                            refine_steps, seed);
    const MemoCache::Value packed = cache->get_or_compute(
        key, [&] { return scheduler.pack(sweep_case.graph); });
    result = scheduler.schedule_packed(sweep_case.graph, *packed);
  } else {
    result = scheduler.schedule(sweep_case.graph);
  }
  cell.para = result.metrics;
  cell.energy_uj = estimate_energy_uj(sweep_case.graph, config, result.kernel);

  // Bank-contention diagnostics are a banked-model extra: the constant
  // model has no banks, and skipping the analysis keeps the constant path
  // (and its reports) bit-for-bit identical to pre-cost-model builds.
  if (config.cost_model != pim::CostModelKind::kConstant) {
    cell.bank =
        core::analyze_bank_contention(sweep_case.graph, result.kernel, config);
    obs::count("dse.bank.conflicts", cell.bank.conflicts);
    obs::count("dse.bank.stalls", cell.bank.stall_units);
  }

  if (with_baseline) {
    core::SpartaOptions base_options;
    base_options.iterations = iterations;
    cell.sparta =
        core::Sparta(config, base_options).schedule(sweep_case.graph).metrics;
  }
  return cell;
}

SweepResult run_sweep(const GridSpec& spec, const SweepOptions& options) {
  spec.validate();
  PARACONV_REQUIRE(options.jobs >= 0, "jobs must be >= 0");
  PARACONV_REQUIRE(!options.resume || !options.checkpoint_path.empty(),
                   "resume requires a checkpoint path");
  const int jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;

  MemoCache local_cache;
  MemoCache* cache =
      options.cache != nullptr ? options.cache : &local_cache;

  const std::size_t cells = spec.cell_count();
  // The owned slice [shard_first, shard_last): the whole grid by default.
  // Everything downstream — checkpoint header, per-cell seeds, record
  // indices — still speaks global grid indices, which is what lets N shard
  // checkpoints merge back byte-identically.
  const auto [shard_first, shard_last] = shard_bounds(
      ShardSpec{options.shard_index, options.shard_count}, cells);
  SweepResult result;
  result.jobs_used = jobs;
  result.cells.resize(cells);

  std::vector<char> resumed(cells, 0);
  std::unique_ptr<CheckpointWriter> checkpoint;
  if (!options.checkpoint_path.empty()) {
    const std::uint64_t fingerprint = sweep_fingerprint(spec, options);
    std::optional<std::int64_t> resume_from;
    if (options.resume) {
      CheckpointLoad load =
          load_checkpoint(options.checkpoint_path, fingerprint, cells);
      for (std::size_t index = shard_first; index < shard_last; ++index) {
        if (!load.ok_cells[index].has_value()) continue;
        CellResult cell = std::move(*load.ok_cells[index]);
        fill_cell_identity(spec, options, index, &cell);
        result.cells[index] = std::move(cell);
        resumed[index] = 1;
      }
      if (load.file_found) resume_from = load.valid_bytes;
    }
    checkpoint = std::make_unique<CheckpointWriter>(
        options.checkpoint_path, fingerprint, cells, resume_from);
  }

  // Keep-going is the default: a failing cell becomes a typed error row and
  // the sweep continues. With fail-fast the flag stops cells that have not
  // started yet; cells already in flight settle normally, and the
  // lowest-grid-index failure is rethrown after the join (its exception is
  // parked per slot so the choice never depends on completion order).
  std::atomic<bool> stop{false};
  std::vector<std::exception_ptr> errors(cells);
  std::atomic<std::size_t> evaluated{0};

  const auto evaluate = [&](std::size_t index) {
    // ANALYZE-ALLOW(atomic): the stop flag is advisory — a cell that
    // misses the store merely evaluates once more; the pool join is the
    // happens-before edge for everything the cells wrote.
    if (stop.load(std::memory_order_relaxed)) return;
    // ANALYZE-ALLOW(atomic): pure tally; read only after the pool join,
    // which orders it.
    evaluated.fetch_add(1, std::memory_order_relaxed);
    CellResult cell;
    fill_cell_identity(spec, options, index, &cell);
    const GridSpec::Coordinates at = spec.coordinates(index);
    std::exception_ptr thrown;
    try {
      CellResult computed = evaluate_cell(
          spec.cases[at.case_index], spec.configs[at.config_index],
          spec.packers[at.packer_index], spec.allocators[at.allocator_index],
          spec.iterations, spec.refine_steps, cell_seed(options.seed, index),
          options.with_baseline, cache);
      computed.index = index;
      cell = std::move(computed);
    } catch (const ContractViolation& violation) {
      cell.status = CellStatus::kError;
      cell.error_code = "contract-violation";
      cell.error_message = violation.what();
      thrown = std::current_exception();
    } catch (const std::exception& error) {
      cell.status = CellStatus::kError;
      cell.error_code = "exception";
      cell.error_message = error.what();
      thrown = std::current_exception();
    }
    if (thrown != nullptr && options.fail_fast) {
      errors[index] = thrown;
      // ANALYZE-ALLOW(atomic): advisory stop (see the load above); the
      // parked exception travels through errors[index], whose visibility
      // the pool join guarantees.
      stop.store(true, std::memory_order_relaxed);
    }
    // Ordered reduction: each cell owns exactly slot `index`, so the
    // assembled vector never depends on completion order.
    result.cells[index] = std::move(cell);
    if (checkpoint != nullptr) checkpoint->append(result.cells[index]);
  };

  const MemoCache::Stats cache_before = cache->stats();
  // ANALYZE-ALLOW(nondet): wall_seconds is advisory throughput telemetry;
  // it is excluded from the byte-identity contract (report writers never
  // emit it into CSV/JSON rows or checkpoints).
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t pool_executed = 0;
  std::uint64_t pool_stolen = 0;
  if (jobs == 1) {
    for (std::size_t index = shard_first; index < shard_last; ++index) {
      if (resumed[index]) continue;
      evaluate(index);
    }
    // ANALYZE-ALLOW(atomic): single-threaded path — the loop above ran on
    // this thread, so program order is the happens-before argument.
    pool_executed = evaluated.load(std::memory_order_relaxed);
  } else {
    ThreadPool pool({.threads = jobs});
    std::vector<std::future<void>> futures;
    futures.reserve(shard_last - shard_first);
    for (std::size_t index = shard_first; index < shard_last; ++index) {
      if (resumed[index]) continue;
      futures.push_back(pool.async([&evaluate, index] { evaluate(index); }));
    }
    for (std::future<void>& future : futures) future.get();
    const ThreadPool::Stats pool_stats = pool.stats();
    pool_executed = pool_stats.executed;
    pool_stolen = pool_stats.stolen;
  }
  // ANALYZE-ALLOW(nondet): see the matching read above — advisory only.
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  result.cache_stats = cache->stats();

  for (std::size_t index = shard_first; index < shard_last; ++index) {
    if (resumed[index]) {
      ++result.cells_resumed;
      ++result.cells_ok;
    } else if (result.cells[index].status == CellStatus::kOk) {
      ++result.cells_ok;
    } else {
      ++result.cells_failed;
    }
  }

  if (options.shard_count > 1) {
    // The report carries only the owned slice; each cell keeps its global
    // grid index, and the cell records (hence the checkpoint) match the
    // unsharded run's byte for byte. A shard's own CSV/JSON is advisory:
    // its frontier column is local to the slice, so the authoritative
    // report is the one merge_checkpoints rebuilds over the full grid.
    std::vector<CellResult> owned(
        std::make_move_iterator(result.cells.begin() +
                                static_cast<std::ptrdiff_t>(shard_first)),
        std::make_move_iterator(result.cells.begin() +
                                static_cast<std::ptrdiff_t>(shard_last)));
    result.cells = std::move(owned);
    obs::count("dse.shard.cells",
               static_cast<std::int64_t>(shard_last - shard_first));
    obs::count("dse.shard.skipped",
               static_cast<std::int64_t>(cells - (shard_last - shard_first)));
  }

  // Counters land on the sequential and the parallel path alike, and
  // before any fail-fast rethrow — an aborted sweep is still observable.
  obs::count("dse.cells", static_cast<std::int64_t>(cells));
  obs::count("dse.cells.failed",
             static_cast<std::int64_t>(result.cells_failed));
  obs::count("dse.cells.resumed",
             static_cast<std::int64_t>(result.cells_resumed));
  obs::count("dse.pool.executed", static_cast<std::int64_t>(pool_executed));
  obs::count("dse.pool.stolen", static_cast<std::int64_t>(pool_stolen));
  obs::count("dse.memo.hits",
             static_cast<std::int64_t>(result.cache_stats.hits -
                                       cache_before.hits));
  obs::count("dse.memo.misses",
             static_cast<std::int64_t>(result.cache_stats.misses -
                                       cache_before.misses));

  if (options.fail_fast) {
    for (std::size_t index = 0; index < cells; ++index) {
      if (errors[index] != nullptr) std::rethrow_exception(errors[index]);
    }
  }
  return result;
}

}  // namespace paraconv::dse
