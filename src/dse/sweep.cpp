#include "dse/sweep.hpp"

#include <chrono>
#include <exception>
#include <future>
#include <utility>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "dse/thread_pool.hpp"
#include "graph/paper_benchmarks.hpp"
#include "obs/obs.hpp"

namespace paraconv::dse {

std::size_t GridSpec::cell_count() const {
  return cases.size() * configs.size() * packers.size() * allocators.size();
}

GridSpec::Coordinates GridSpec::coordinates(std::size_t index) const {
  PARACONV_REQUIRE(index < cell_count(), "grid index out of range");
  Coordinates c;
  c.allocator_index = index % allocators.size();
  index /= allocators.size();
  c.packer_index = index % packers.size();
  index /= packers.size();
  c.config_index = index % configs.size();
  c.case_index = index / configs.size();
  return c;
}

void GridSpec::validate() const {
  PARACONV_REQUIRE(!cases.empty(), "grid needs at least one case");
  PARACONV_REQUIRE(!configs.empty(), "grid needs at least one config");
  PARACONV_REQUIRE(!packers.empty(), "grid needs at least one packer");
  PARACONV_REQUIRE(!allocators.empty(), "grid needs at least one allocator");
  PARACONV_REQUIRE(iterations >= 1, "at least one iteration required");
  PARACONV_REQUIRE(refine_steps >= 0, "refine_steps must be >= 0");
  for (const SweepCase& sweep_case : cases) sweep_case.graph.validate();
  for (const pim::PimConfig& config : configs) config.validate();
}

GridSpec paper_grid(const std::vector<int>& pe_counts,
                    std::int64_t iterations) {
  GridSpec spec;
  spec.iterations = iterations;
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    spec.cases.push_back({bench.name, graph::build_paper_benchmark(bench)});
  }
  for (const int pe_count : pe_counts) {
    spec.configs.push_back(pim::PimConfig::neurocube(pe_count));
  }
  return spec;
}

std::uint64_t cell_seed(std::uint64_t sweep_seed, std::size_t index) {
  std::uint64_t state = sweep_seed ^ (static_cast<std::uint64_t>(index) + 1);
  return splitmix64(state);
}

double estimate_energy_uj(const graph::TaskGraph& g,
                          const pim::PimConfig& config,
                          const sched::KernelSchedule& kernel) {
  double pj = config.compute_pj_per_unit *
              static_cast<double>(g.total_work().value);
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const double size = static_cast<double>(ipr.size.value);
    const double per_byte =
        kernel.allocation[e.value] == pim::AllocSite::kCache
            ? config.cache_pj_per_byte
            : config.edram_pj_per_byte;
    pj += 2.0 * per_byte * size;  // one write by the producer, one read
    const int src_pe = kernel.placement[ipr.src.value].pe;
    const int dst_pe = kernel.placement[ipr.dst.value].pe;
    if (src_pe != dst_pe) pj += config.noc_pj_per_byte * size;
  }
  return pj / 1e6;
}

CellResult evaluate_cell(const SweepCase& sweep_case,
                         const pim::PimConfig& config,
                         core::PackerKind packer,
                         core::AllocatorKind allocator,
                         std::int64_t iterations, int refine_steps,
                         std::uint64_t seed, bool with_baseline,
                         MemoCache* cache) {
  // Compose the per-cell label only when tracing is on; the disabled path
  // must stay allocation-free.
  const obs::ScopedSpan cell_span(
      "cell", obs::active_registry() != nullptr
                  ? sweep_case.name + "/" +
                        std::to_string(config.pe_count) + "pe/" +
                        core::to_string(packer) + "/" +
                        core::to_string(allocator)
                  : std::string{});
  CellResult cell;
  cell.benchmark = sweep_case.name;
  cell.vertices = sweep_case.graph.node_count();
  cell.edges = sweep_case.graph.edge_count();
  cell.config = config;
  cell.packer = packer;
  cell.allocator = allocator;
  cell.cell_seed = seed;

  core::ParaConvOptions options;
  options.iterations = iterations;
  options.allocator = allocator;
  options.packer = packer;
  options.refine_steps = refine_steps;
  options.refine_seed = seed;
  const core::ParaConv scheduler(config, options);

  core::ParaConvResult result;
  if (cache != nullptr) {
    const PackingKey key = make_packing_key(sweep_case.graph, config, packer,
                                            refine_steps, seed);
    const MemoCache::Value packed = cache->get_or_compute(
        key, [&] { return scheduler.pack(sweep_case.graph); });
    result = scheduler.schedule_packed(sweep_case.graph, *packed);
  } else {
    result = scheduler.schedule(sweep_case.graph);
  }
  cell.para = result.metrics;
  cell.energy_uj = estimate_energy_uj(sweep_case.graph, config, result.kernel);

  if (with_baseline) {
    core::SpartaOptions base_options;
    base_options.iterations = iterations;
    cell.sparta =
        core::Sparta(config, base_options).schedule(sweep_case.graph).metrics;
  }
  return cell;
}

SweepResult run_sweep(const GridSpec& spec, const SweepOptions& options) {
  spec.validate();
  PARACONV_REQUIRE(options.jobs >= 0, "jobs must be >= 0");
  const int jobs =
      options.jobs == 0 ? ThreadPool::hardware_threads() : options.jobs;

  MemoCache local_cache;
  MemoCache* cache =
      options.cache != nullptr ? options.cache : &local_cache;

  const std::size_t cells = spec.cell_count();
  SweepResult result;
  result.jobs_used = jobs;
  result.cells.resize(cells);

  const auto evaluate = [&](std::size_t index) {
    const GridSpec::Coordinates at = spec.coordinates(index);
    CellResult cell = evaluate_cell(
        spec.cases[at.case_index], spec.configs[at.config_index],
        spec.packers[at.packer_index], spec.allocators[at.allocator_index],
        spec.iterations, spec.refine_steps, cell_seed(options.seed, index),
        options.with_baseline, cache);
    cell.index = index;
    // Ordered reduction: each cell owns exactly slot `index`, so the
    // assembled vector never depends on completion order.
    result.cells[index] = std::move(cell);
  };

  const MemoCache::Stats cache_before = cache->stats();
  const auto start = std::chrono::steady_clock::now();
  if (jobs == 1) {
    for (std::size_t index = 0; index < cells; ++index) evaluate(index);
  } else {
    ThreadPool pool({.threads = jobs});
    std::vector<std::future<void>> futures;
    futures.reserve(cells);
    for (std::size_t index = 0; index < cells; ++index) {
      futures.push_back(pool.async([&evaluate, index] { evaluate(index); }));
    }
    // Surface the first failure in grid order (deterministic), but only
    // after every cell settled — futures joined in order guarantee that.
    std::exception_ptr first_error;
    for (std::future<void>& future : futures) {
      try {
        future.get();
      } catch (...) {
        if (first_error == nullptr) first_error = std::current_exception();
      }
    }
    const ThreadPool::Stats pool_stats = pool.stats();
    obs::count("dse.pool.executed",
               static_cast<std::int64_t>(pool_stats.executed));
    obs::count("dse.pool.stolen",
               static_cast<std::int64_t>(pool_stats.stolen));
    if (first_error != nullptr) std::rethrow_exception(first_error);
  }
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  result.cache_stats = cache->stats();
  obs::count("dse.cells", static_cast<std::int64_t>(cells));
  obs::count("dse.memo.hits",
             static_cast<std::int64_t>(result.cache_stats.hits -
                                       cache_before.hits));
  obs::count("dse.memo.misses",
             static_cast<std::int64_t>(result.cache_stats.misses -
                                       cache_before.misses));
  return result;
}

}  // namespace paraconv::dse
