#include "dse/memo_store.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>
#include <system_error>
#include <vector>

#include "common/check.hpp"
#include "common/fsio.hpp"
#include "obs/obs.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define PARACONV_MEMO_STORE_POSIX 1
#endif

namespace paraconv::dse {
namespace {

constexpr const char* kHeaderMagic = "paraconv-memo-cache";
constexpr int kFormatVersion = 1;

std::string header_line(std::size_t entries) {
  std::ostringstream os;
  os << kHeaderMagic << ' ' << kFormatVersion << ' ' << entries;
  return os.str();
}

/// FNV-1a over the raw bytes of every entry line (newlines included), so
/// any bit flip, truncation, or reordering changes the trailer.
std::uint64_t fingerprint_bytes(std::uint64_t h, std::string_view bytes) {
  constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;

std::string entry_line(const PackingKey& key,
                       const core::PackedSchedule& value) {
  std::ostringstream os;
  os << "entry " << key.graph << ' ' << key.pe_count << ' '
     << key.pe_cache_bytes << ' ' << key.cache_bytes_per_unit << ' '
     << key.edram_bytes_per_unit << ' ' << static_cast<int>(key.topology)
     << ' ' << key.noc_hop_units << ' ' << static_cast<int>(key.packer)
     << ' ' << key.refine_steps << ' ' << key.refine_seed;
  os << ' ' << value.packing.period.value;
  os << ' ' << value.packing.placement.size();
  for (const sched::TaskPlacement& placement : value.packing.placement) {
    os << ' ' << placement.pe << ' ' << placement.start.value;
  }
  os << ' ' << value.deltas.size();
  for (const retiming::EdgeDelta& delta : value.deltas) {
    os << ' ' << delta.cache << ' ' << delta.edram;
  }
  return os.str();
}

/// Strict space-separated token cursor: every token must parse in full
/// (from_chars consuming all characters), mirroring the checkpoint codec.
class TokenCursor {
 public:
  explicit TokenCursor(std::string_view line) : rest_(line) {}

  template <typename Int>
  bool next(Int* out) {
    while (!rest_.empty() && rest_.front() == ' ') rest_.remove_prefix(1);
    if (rest_.empty()) return false;
    const std::size_t end = rest_.find(' ');
    const std::string_view token =
        end == std::string_view::npos ? rest_ : rest_.substr(0, end);
    rest_.remove_prefix(token.size());
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), *out);
    return result.ec == std::errc() &&
           result.ptr == token.data() + token.size();
  }

  bool exhausted() const {
    return rest_.find_first_not_of(' ') == std::string_view::npos;
  }

 private:
  std::string_view rest_;
};

bool decode_entry_line(std::string_view line, PackingKey* key,
                       core::PackedSchedule* value) {
  constexpr std::string_view kTag = "entry ";
  if (line.substr(0, kTag.size()) != kTag) return false;
  TokenCursor cursor(line.substr(kTag.size()));
  int topology = 0;
  int packer = 0;
  if (!cursor.next(&key->graph) || !cursor.next(&key->pe_count) ||
      !cursor.next(&key->pe_cache_bytes) ||
      !cursor.next(&key->cache_bytes_per_unit) ||
      !cursor.next(&key->edram_bytes_per_unit) || !cursor.next(&topology) ||
      !cursor.next(&key->noc_hop_units) || !cursor.next(&packer) ||
      !cursor.next(&key->refine_steps) || !cursor.next(&key->refine_seed)) {
    return false;
  }
  if (topology < 0 || topology > std::numeric_limits<std::uint8_t>::max() ||
      packer < 0 || packer > std::numeric_limits<std::uint8_t>::max()) {
    return false;
  }
  key->topology = static_cast<std::uint8_t>(topology);
  key->packer = static_cast<std::uint8_t>(packer);

  std::int64_t period = 0;
  std::uint64_t placements = 0;
  if (!cursor.next(&period) || !cursor.next(&placements)) return false;
  value->packing.period = TimeUnits{period};
  value->packing.placement.clear();
  value->packing.placement.reserve(placements);
  for (std::uint64_t i = 0; i < placements; ++i) {
    sched::TaskPlacement placement;
    std::int64_t start = 0;
    if (!cursor.next(&placement.pe) || !cursor.next(&start)) return false;
    placement.start = TimeUnits{start};
    value->packing.placement.push_back(placement);
  }
  std::uint64_t deltas = 0;
  if (!cursor.next(&deltas)) return false;
  value->deltas.clear();
  value->deltas.reserve(deltas);
  for (std::uint64_t i = 0; i < deltas; ++i) {
    retiming::EdgeDelta delta;
    if (!cursor.next(&delta.cache) || !cursor.next(&delta.edram)) {
      return false;
    }
    value->deltas.push_back(delta);
  }
  return cursor.exhausted();
}

void write_all(std::FILE* file, const std::string& text,
               const std::string& path) {
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), file) == text.size();
  PARACONV_REQUIRE(ok, "failed writing memo cache file: " + path);
}

}  // namespace

std::size_t save_memo_cache(const MemoCache& cache, const std::string& path) {
  PARACONV_REQUIRE(!path.empty(), "memo cache path must be non-empty");
  const auto entries = cache.snapshot();

  std::string body;
  std::uint64_t fingerprint = kFnvOffset;
  for (const auto& [key, value] : entries) {
    std::string line = entry_line(key, *value);
    line += '\n';
    fingerprint = fingerprint_bytes(fingerprint, line);
    body += line;
  }

  // Spill to a sibling tmp file, fsync, then atomically rename into place
  // so a crash mid-spill never leaves a half-written cache behind.
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  PARACONV_REQUIRE(file != nullptr,
                   "cannot open memo cache file for writing: " + tmp);
  try {
    write_all(file, header_line(entries.size()) + "\n", tmp);
    write_all(file, body, tmp);
    write_all(file, "fingerprint " + std::to_string(fingerprint) + "\n", tmp);
    PARACONV_REQUIRE(std::fflush(file) == 0,
                     "failed flushing memo cache file: " + tmp);
#ifdef PARACONV_MEMO_STORE_POSIX
    ::fsync(::fileno(file));
#endif
  } catch (...) {
    std::fclose(file);
    throw;
  }
  PARACONV_REQUIRE(std::fclose(file) == 0,
                   "failed closing memo cache file: " + tmp);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  PARACONV_REQUIRE(!ec, "failed renaming memo cache file into place: " +
                            path + " (" + ec.message() + ")");
  // The rename updated a directory entry, and fsync on the file alone does
  // not make that entry durable (fsync(2)): sync the parent directory too,
  // or a crash here could lose the freshly renamed cache outright.
  fsync_parent_directory(path);

  cache.note_spilled(entries.size());
  obs::count("dse.memo.spilled", static_cast<std::int64_t>(entries.size()));
  return entries.size();
}

std::size_t load_memo_cache(MemoCache* cache, const std::string& path) {
  PARACONV_REQUIRE(cache != nullptr, "memo cache required");
  PARACONV_REQUIRE(!path.empty(), "memo cache path must be non-empty");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return 0;  // cold start

  std::string line;
  PARACONV_REQUIRE(static_cast<bool>(std::getline(in, line)),
                   "memo cache file is empty: " + path);

  // Accept only an exact header for this format version; anything else is
  // another tool's file or a corrupted one.
  std::string_view view(line);
  const std::string magic_prefix = std::string(kHeaderMagic) + " ";
  PARACONV_REQUIRE(view.substr(0, magic_prefix.size()) == magic_prefix,
                   "memo cache header mismatch in " + path + ": " + line);
  std::uint64_t declared = 0;
  {
    TokenCursor tail(view.substr(magic_prefix.size()));
    int version = 0;
    PARACONV_REQUIRE(tail.next(&version) && tail.next(&declared) &&
                         tail.exhausted(),
                     "memo cache header malformed in " + path + ": " + line);
    PARACONV_REQUIRE(version == kFormatVersion,
                     "memo cache version mismatch in " + path + ": " + line);
  }

  std::vector<std::pair<PackingKey, core::PackedSchedule>> entries;
  // The declared count is untrusted until the fingerprint validates; bound
  // the pre-allocation so a corrupt header can't trigger a huge reserve.
  entries.reserve(std::min<std::uint64_t>(declared, 4096));
  std::uint64_t fingerprint = kFnvOffset;
  for (std::uint64_t i = 0; i < declared; ++i) {
    PARACONV_REQUIRE(static_cast<bool>(std::getline(in, line)),
                     "memo cache file truncated at entry " +
                         std::to_string(i) + ": " + path);
    fingerprint = fingerprint_bytes(fingerprint, line + "\n");
    PackingKey key;
    core::PackedSchedule value;
    PARACONV_REQUIRE(decode_entry_line(line, &key, &value),
                     "memo cache entry " + std::to_string(i) +
                         " is corrupt in " + path);
    entries.emplace_back(key, std::move(value));
  }

  PARACONV_REQUIRE(static_cast<bool>(std::getline(in, line)),
                   "memo cache fingerprint trailer missing: " + path);
  std::uint64_t recorded = 0;
  {
    constexpr std::string_view kTag = "fingerprint ";
    std::string_view trailer(line);
    PARACONV_REQUIRE(trailer.substr(0, kTag.size()) == kTag,
                     "memo cache fingerprint trailer malformed in " + path +
                         ": " + line);
    TokenCursor tail(trailer.substr(kTag.size()));
    PARACONV_REQUIRE(tail.next(&recorded) && tail.exhausted(),
                     "memo cache fingerprint trailer malformed in " + path +
                         ": " + line);
  }
  PARACONV_REQUIRE(recorded == fingerprint,
                   "memo cache fingerprint mismatch in " + path +
                       " (file edited or corrupted)");
  PARACONV_REQUIRE(!static_cast<bool>(std::getline(in, line)),
                   "memo cache file has trailing data after the "
                   "fingerprint: " +
                       path);

  for (auto& [key, value] : entries) {
    cache->insert(key, std::move(value));
  }
  cache->note_loaded(entries.size());
  obs::count("dse.memo.loaded", static_cast<std::int64_t>(entries.size()));
  return entries.size();
}

}  // namespace paraconv::dse
