#include "dse/shard.hpp"

#include <cstdint>
#include <utility>

#include "common/check.hpp"
#include "common/parse.hpp"
#include "dse/checkpoint.hpp"
#include "obs/obs.hpp"

namespace paraconv::dse {
namespace {

std::optional<ShardSpec> shard_parse_failure(std::string* error,
                                             const std::string& why) {
  if (error != nullptr) *error = why;
  return std::nullopt;
}

/// A header field rejection surfaces as the matching merge code so the CLI
/// can report one stable taxonomy for every way a merge input can be wrong.
const char* merge_code(CheckpointField field) {
  switch (field) {
    case CheckpointField::kMagic:
      return "merge-bad-header";
    case CheckpointField::kVersion:
      return "merge-version-mismatch";
    case CheckpointField::kFingerprint:
      return "merge-fingerprint-mismatch";
    case CheckpointField::kCells:
      return "merge-cell-count-mismatch";
  }
  return "merge-bad-header";
}

}  // namespace

std::optional<ShardSpec> parse_shard(const std::string& text,
                                     std::string* error) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    return shard_parse_failure(
        error, "expected i/N (e.g. 0/3), got '" + text + "'");
  }
  const std::optional<std::int64_t> index = parse_int64(text.substr(0, slash));
  const std::optional<std::int64_t> count =
      parse_int64(text.substr(slash + 1));
  if (!index.has_value() || !count.has_value()) {
    return shard_parse_failure(
        error, "expected two decimal integers i/N, got '" + text + "'");
  }
  if (*count < 1) {
    return shard_parse_failure(error, "shard count must be >= 1, got " +
                                          std::to_string(*count));
  }
  if (*index < 0 || *index >= *count) {
    return shard_parse_failure(
        error, "shard index must be in [0, " + std::to_string(*count) +
                   "), got " + std::to_string(*index));
  }
  return ShardSpec{static_cast<std::size_t>(*index),
                   static_cast<std::size_t>(*count)};
}

std::pair<std::size_t, std::size_t> shard_bounds(const ShardSpec& shard,
                                                 std::size_t cells) {
  PARACONV_REQUIRE(shard.count >= 1, "shard count must be >= 1");
  PARACONV_REQUIRE(shard.index < shard.count,
                   "shard index must be < shard count");
  // i*cells/N with integer division: shard i ends exactly where shard i+1
  // begins, so the N ranges tile [0, cells) with sizes differing by <= 1.
  const std::size_t first = shard.index * cells / shard.count;
  const std::size_t last = (shard.index + 1) * cells / shard.count;
  return {first, last};
}

SweepResult merge_checkpoints(const GridSpec& spec,
                              const SweepOptions& options,
                              const std::vector<std::string>& paths) {
  spec.validate();
  if (paths.empty()) {
    throw MergeError("merge-no-inputs",
                     "merge needs at least one shard checkpoint file");
  }
  const std::size_t cells = spec.cell_count();
  const std::uint64_t fingerprint = sweep_fingerprint(spec, options);

  SweepResult result;
  result.cells.resize(cells);
  // owner[i] = position in `paths` of the input that settled cell i; a
  // second claim is an overlap (including the same file listed twice).
  std::vector<std::ptrdiff_t> owner(cells, -1);
  std::size_t adopted = 0;
  for (std::size_t file = 0; file < paths.size(); ++file) {
    CheckpointRecords records;
    try {
      records = load_checkpoint_records(paths[file], fingerprint, cells);
    } catch (const CheckpointMismatch& mismatch) {
      throw MergeError(merge_code(mismatch.field()), mismatch.what());
    }
    if (!records.file_found) {
      throw MergeError("merge-file-missing",
                       "shard checkpoint does not exist: " + paths[file]);
    }
    for (std::size_t index = 0; index < cells; ++index) {
      if (!records.cells[index].has_value()) continue;
      if (owner[index] >= 0) {
        throw MergeError(
            "merge-overlap",
            "cell " + std::to_string(index) + " is settled by both '" +
                paths[static_cast<std::size_t>(owner[index])] + "' and '" +
                paths[file] +
                "' — shards must cover disjoint slices (was a file listed "
                "twice?)");
      }
      owner[index] = static_cast<std::ptrdiff_t>(file);
      CellResult cell = std::move(*records.cells[index]);
      PARACONV_CHECK(cell.index == index, "merge record index drift");
      fill_cell_identity(spec, options, index, &cell);
      // Adoption-boundary contract, re-asserted where foreign files enter
      // the report: an error record must carry its typed code, an ok
      // record must carry no error fields.
      if (cell.status == CellStatus::kError) {
        if (cell.error_code.empty()) {
          throw MergeError("merge-corrupt-record",
                           "error record for cell " + std::to_string(index) +
                               " in '" + paths[file] +
                               "' carries no error_code");
        }
        ++result.cells_failed;
      } else {
        PARACONV_CHECK(cell.error_code.empty() && cell.error_message.empty(),
                       "ok record carries error fields");
        ++result.cells_ok;
      }
      result.cells[index] = std::move(cell);
      ++adopted;
    }
  }
  if (adopted < cells) {
    std::string missing;
    std::size_t shown = 0;
    for (std::size_t index = 0; index < cells && shown < 8; ++index) {
      if (owner[index] >= 0) continue;
      missing += (shown == 0 ? "" : ", ") + std::to_string(index);
      ++shown;
    }
    throw MergeError(
        "merge-missing-cells",
        std::to_string(cells - adopted) + " of " + std::to_string(cells) +
            " grid cells are settled by no input (first missing: " + missing +
            ") — was a shard checkpoint truncated, or a worker's slice never "
            "run?");
  }
  // Every merged cell was restored from a checkpoint rather than evaluated;
  // none of these tallies reach the deterministic CSV/JSON writers.
  result.cells_resumed = adopted;
  obs::count("dse.shard.merge.files",
             static_cast<std::int64_t>(paths.size()));
  obs::count("dse.shard.merge.cells", static_cast<std::int64_t>(adopted));
  return result;
}

}  // namespace paraconv::dse
