// Graph transformations induced by retiming.
//
// Retiming turns intra-iteration dependencies into inter-iteration
// dependencies (paper Sec. 3.1). `unroll` materializes that transformation:
// it builds the explicit DAG of task *instances* over a finite horizon of
// iterations, where the instance of consumer j for iteration L depends on
// the producer instance of iteration L executed d_ij windows earlier.
// Dependencies reaching before the horizon (the prologue's warm-up reads)
// are recorded separately. Used for verification and visualization.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "retiming/retiming.hpp"

namespace paraconv::retiming {

struct UnrolledInstance {
  graph::NodeId node;
  std::int64_t window{0};
};

struct UnrolledDag {
  /// Instances in window-major order; instance index = window * node_count
  /// + node id.
  std::vector<UnrolledInstance> instances;
  /// Dependency pairs (producer instance index, consumer instance index).
  std::vector<std::pair<std::size_t, std::size_t>> dependencies;
  /// Edges whose producer instance falls before window 0 (prologue
  /// boundary reads), one count per original edge id.
  std::vector<std::int64_t> boundary_reads;
};

/// Unrolls `windows` windows of the retimed execution. In window w, every
/// task executes once; the consumer of edge (i, j) with distance
/// d = r(i) - r(j) reads the output produced in window w - d.
/// Requires a legal retiming (all realized distances non-negative).
UnrolledDag unroll(const graph::TaskGraph& g, const Retiming& retiming,
                   std::int64_t windows);

/// True iff the unrolled dependence relation is acyclic *and* every
/// dependency points backward or sideways in window order with a positive
/// distance, i.e. the retimed steady state is executable window by window.
bool unrolled_is_executable(const graph::TaskGraph& g,
                            const Retiming& retiming);

}  // namespace paraconv::retiming
