#include "retiming/delta.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace paraconv::retiming {

TimeUnits effective_transfer(const pim::PimConfig& config, pim::AllocSite site,
                             Bytes size, TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  const TimeUnits raw = config.transfer_time(site, size);
  return std::min(raw, period);
}

TimeUnits effective_edge_transfer(const pim::PimConfig& config,
                                  pim::AllocSite site, Bytes size, int src_pe,
                                  int dst_pe, TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  // A same-PE hand-off stays in the producer's register file / pFIFO
  // (paper Fig. 1) and costs nothing — matching the baseline list
  // scheduler's semantics, so both schedulers replay identically on the
  // machine model.
  if (src_pe == dst_pe) return TimeUnits{0};
  const TimeUnits raw =
      config.transfer_time(site, size) + config.noc_latency(src_pe, dst_pe);
  return std::min(raw, period);
}

int required_distance(TimeUnits producer_start, TimeUnits producer_exec,
                      TimeUnits transfer, TimeUnits consumer_start,
                      TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  const std::int64_t slack_deficit = producer_start.value +
                                     producer_exec.value + transfer.value -
                                     consumer_start.value;
  if (slack_deficit <= 0) return 0;
  return static_cast<int>(ceil_div(slack_deficit, period.value));
}

std::vector<EdgeDelta> compute_edge_deltas(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const pim::PimConfig& config) {
  const obs::ScopedSpan span("retime", "deltas");
  PARACONV_REQUIRE(placement.size() == g.node_count(),
                   "one placement per node required");
  for (const graph::NodeId v : g.nodes()) {
    PARACONV_REQUIRE(placement[v.value].start >= TimeUnits{0} &&
                         placement[v.value].start + g.task(v).exec_time <=
                             period,
                     "every task must fit inside the kernel window");
  }

  std::vector<EdgeDelta> deltas(g.edge_count());
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const sched::TaskPlacement& prod = placement[ipr.src.value];
    const sched::TaskPlacement& cons = placement[ipr.dst.value];
    const TimeUnits exec = g.task(ipr.src).exec_time;

    EdgeDelta d;
    d.cache = required_distance(
        prod.start, exec,
        effective_edge_transfer(config, pim::AllocSite::kCache, ipr.size,
                                prod.pe, cons.pe, period),
        cons.start, period);
    d.edram = required_distance(
        prod.start, exec,
        effective_edge_transfer(config, pim::AllocSite::kEdram, ipr.size,
                                prod.pe, cons.pe, period),
        cons.start, period);

    // Theorem 3.1: with s_i + c_i <= p and c_ij <= p, the deficit is at most
    // 2p, so both distances are bounded by 2. The cache distance can never
    // exceed the eDRAM distance because cache transfers are no slower.
    PARACONV_CHECK(d.cache >= 0 && d.edram >= 0, "negative retiming distance");
    PARACONV_CHECK(d.cache <= d.edram, "cache distance exceeds eDRAM distance");
    PARACONV_CHECK(d.edram <= 2, "Theorem 3.1 bound violated");
    deltas[e.value] = d;
  }
  return deltas;
}

}  // namespace paraconv::retiming
