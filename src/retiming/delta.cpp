#include "retiming/delta.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace paraconv::retiming {

TimeUnits effective_transfer(const pim::CostModel& model, pim::AllocSite site,
                             Bytes size, TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  const TimeUnits raw = model.transfer_time(site, size);
  return std::min(raw, period);
}

TimeUnits effective_transfer(const pim::PimConfig& config, pim::AllocSite site,
                             Bytes size, TimeUnits period) {
  return effective_transfer(*pim::make_cost_model(config), site, size, period);
}

TimeUnits effective_edge_transfer(const pim::CostModel& model,
                                  const pim::PimConfig& config,
                                  pim::AllocSite site, Bytes size, int src_pe,
                                  int dst_pe, TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  // A same-PE hand-off stays in the producer's register file / pFIFO
  // (paper Fig. 1) and costs nothing — matching the baseline list
  // scheduler's semantics, so both schedulers replay identically on the
  // machine model.
  if (src_pe == dst_pe) return TimeUnits{0};
  const TimeUnits raw =
      model.transfer_time(site, size) + config.noc_latency(src_pe, dst_pe);
  return std::min(raw, period);
}

TimeUnits effective_edge_transfer(const pim::PimConfig& config,
                                  pim::AllocSite site, Bytes size, int src_pe,
                                  int dst_pe, TimeUnits period) {
  return effective_edge_transfer(*pim::make_cost_model(config), config, site,
                                 size, src_pe, dst_pe, period);
}

int required_distance(TimeUnits producer_start, TimeUnits producer_exec,
                      TimeUnits transfer, TimeUnits consumer_start,
                      TimeUnits period) {
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  const std::int64_t slack_deficit = producer_start.value +
                                     producer_exec.value + transfer.value -
                                     consumer_start.value;
  if (slack_deficit <= 0) return 0;
  return static_cast<int>(ceil_div(slack_deficit, period.value));
}

namespace {

/// required_distance with the deficit already folded and the common
/// {0, 1, 2} range resolved by comparison instead of a ceil division —
/// identical results for every input (deficits beyond 2p still take the
/// division so the Theorem-3.1 check below can observe the violation).
int distance_for_deficit(std::int64_t deficit, std::int64_t period) {
  if (deficit <= 0) return 0;
  if (deficit <= period) return 1;
  if (deficit <= 2 * period) return 2;
  return static_cast<int>(ceil_div(deficit, period));
}

}  // namespace

std::vector<EdgeDelta> compute_edge_deltas(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const pim::PimConfig& config) {
  return compute_edge_deltas(g, placement, period, config,
                             *pim::make_cost_model(config));
}

std::vector<EdgeDelta> compute_edge_deltas(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const pim::PimConfig& config, const pim::CostModel& model) {
  const obs::ScopedSpan span("retime", "deltas");
  PARACONV_REQUIRE(placement.size() == g.node_count(),
                   "one placement per node required");
  PARACONV_REQUIRE(period > TimeUnits{0}, "period must be positive");
  const std::size_t node_count = g.node_count();
  for (std::size_t i = 0; i < node_count; ++i) {
    const graph::NodeId v{static_cast<std::uint32_t>(i)};
    PARACONV_REQUIRE(placement[i].start >= TimeUnits{0} &&
                         placement[i].start + g.task(v).exec_time <= period,
                     "every task must fit inside the kernel window");
  }

  const std::int64_t p = period.value;
  const std::size_t edge_count = g.edge_count();
  std::vector<EdgeDelta> deltas(edge_count);
  for (std::size_t i = 0; i < edge_count; ++i) {
    const graph::EdgeId e{static_cast<std::uint32_t>(i)};
    const graph::Ipr& ipr = g.ipr(e);
    const sched::TaskPlacement& prod = placement[ipr.src.value];
    const sched::TaskPlacement& cons = placement[ipr.dst.value];

    // Same-PE hand-offs are free at either site; cross-PE hand-offs pay
    // the NoC hop latency once (it is site-independent, so compute it one
    // time, not per allocation site) plus the site transfer, both clamped
    // to one period as in effective_edge_transfer.
    std::int64_t cache_transfer = 0;
    std::int64_t edram_transfer = 0;
    if (prod.pe != cons.pe) {
      const std::int64_t noc = config.noc_latency(prod.pe, cons.pe).value;
      cache_transfer = std::min(
          model.transfer_time(pim::AllocSite::kCache, ipr.size).value + noc,
          p);
      edram_transfer = std::min(
          model.transfer_time(pim::AllocSite::kEdram, ipr.size).value + noc,
          p);
    }

    const std::int64_t deficit_base = prod.start.value +
                                      g.task(ipr.src).exec_time.value -
                                      cons.start.value;
    EdgeDelta d;
    d.cache = distance_for_deficit(deficit_base + cache_transfer, p);
    d.edram = distance_for_deficit(deficit_base + edram_transfer, p);

    // Theorem 3.1: with s_i + c_i <= p and c_ij <= p, the deficit is at most
    // 2p, so both distances are bounded by 2. The cache distance can never
    // exceed the eDRAM distance because cache transfers are no slower.
    PARACONV_CHECK(d.cache >= 0 && d.edram >= 0, "negative retiming distance");
    PARACONV_CHECK(d.cache <= d.edram, "cache distance exceeds eDRAM distance");
    PARACONV_CHECK(d.edram <= 2, "Theorem 3.1 bound violated");
    deltas[i] = d;
  }
  return deltas;
}

}  // namespace paraconv::retiming
