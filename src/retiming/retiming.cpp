#include "retiming/retiming.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "obs/obs.hpp"

namespace paraconv::retiming {

int Retiming::r_max() const {
  int best = 0;
  for (const int r : value) best = std::max(best, r);
  return best;
}

Retiming minimal_retiming(const graph::TaskGraph& g,
                          const std::vector<int>& required_distance) {
  const obs::ScopedSpan span("retime", "minimal");
  PARACONV_REQUIRE(required_distance.size() == g.edge_count(),
                   "one required distance per edge");
  for (const int d : required_distance) {
    PARACONV_REQUIRE(d >= 0, "required distances must be non-negative");
  }
  Retiming r;
  r.value = graph::longest_path_by_edge_weight(g, required_distance);
  return r;
}

bool is_legal(const graph::TaskGraph& g, const Retiming& retiming,
              const std::vector<int>& required_distance) {
  if (retiming.value.size() != g.node_count() ||
      required_distance.size() != g.edge_count()) {
    return false;
  }
  for (const int r : retiming.value) {
    if (r < 0) return false;
  }
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const int d =
        retiming.value[ipr.src.value] - retiming.value[ipr.dst.value];
    if (d < required_distance[e.value]) return false;
  }
  return true;
}

std::vector<int> realized_distances(const graph::TaskGraph& g,
                                    const Retiming& retiming) {
  PARACONV_REQUIRE(retiming.value.size() == g.node_count(),
                   "retiming does not match graph");
  std::vector<int> d(g.edge_count());
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    d[e.value] = retiming.value[ipr.src.value] - retiming.value[ipr.dst.value];
  }
  return d;
}

}  // namespace paraconv::retiming
