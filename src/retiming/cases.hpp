// The six allocation cases of the paper's Figure 4.
//
// Each IPR's (delta_cache, delta_edram) pair — both in {0,1,2} with
// delta_cache <= delta_edram — falls into exactly one of six cases:
//
//   Case 1: (0,0)   Case 2: (0,1)   Case 3: (0,2)
//   Case 4: (1,1)   Case 5: (1,2)   Case 6: (2,2)
//
// Cases 1, 4 and 6 are allocation-insensitive (ΔR = 0): the IPR goes to
// eDRAM to save cache space. Cases 2, 3 and 5 gain ΔR = delta_edram -
// delta_cache by being cached and compete for cache capacity (Sec. 3.2).
#pragma once

#include "retiming/delta.hpp"

namespace paraconv::retiming {

enum class AllocationCase : int {
  kCase1 = 1,
  kCase2 = 2,
  kCase3 = 3,
  kCase4 = 4,
  kCase5 = 5,
  kCase6 = 6,
};

/// Classifies one edge's delta pair. Throws ContractViolation for pairs
/// outside the Theorem 3.1 envelope.
AllocationCase classify(const EdgeDelta& delta);

/// Profit of caching: ΔR = delta_edram - delta_cache.
int delta_r(const EdgeDelta& delta);

/// True for cases 2, 3 and 5 (caching reduces the retiming distance).
bool allocation_sensitive(const EdgeDelta& delta);

const char* to_string(AllocationCase c);

}  // namespace paraconv::retiming
