// Retiming values and legality (paper Definition 3.1).
//
// Retiming R maps each task to a non-negative integer: R(i) iterations of
// task i are re-allocated into the prologue. A retiming is legal for edge
// (i, j) iff R(i) >= R(i,j) >= R(j); with per-edge distances d_ij =
// R(i) - R(j) this reduces to d_ij >= 0 and d_ij at least the distance the
// data hand-off requires. The minimal legal retiming for fixed per-edge
// distances is the longest path (by distance) from each node to a sink.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"

namespace paraconv::retiming {

struct Retiming {
  /// Per-node retiming value r(i) >= 0 (indexed by NodeId::value).
  std::vector<int> value;

  /// R_max = max_i r(i); prologue time = R_max * p (paper Sec. 3.2).
  int r_max() const;
};

/// Minimal legal retiming for the given per-edge required distances:
/// r(i) = max over out-edges e=(i,j) of (r(j) + required[e]), sinks at 0.
/// Requires required[e] >= 0 for all edges.
Retiming minimal_retiming(const graph::TaskGraph& g,
                          const std::vector<int>& required_distance);

/// Checks Definition 3.1 legality: for every edge e=(i,j),
/// r(i) - r(j) >= required[e] and all values are non-negative.
bool is_legal(const graph::TaskGraph& g, const Retiming& retiming,
              const std::vector<int>& required_distance);

/// Per-edge realized distances d_ij = r(i) - r(j).
std::vector<int> realized_distances(const graph::TaskGraph& g,
                                    const Retiming& retiming);

}  // namespace paraconv::retiming
