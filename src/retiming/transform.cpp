#include "retiming/transform.hpp"

#include "graph/algorithms.hpp"

namespace paraconv::retiming {

UnrolledDag unroll(const graph::TaskGraph& g, const Retiming& retiming,
                   std::int64_t windows) {
  PARACONV_REQUIRE(windows >= 1, "at least one window required");
  PARACONV_REQUIRE(retiming.value.size() == g.node_count(),
                   "retiming does not match graph");
  const std::vector<int> distance = realized_distances(g, retiming);
  for (const int d : distance) {
    PARACONV_REQUIRE(d >= 0, "retiming must be legal (non-negative distances)");
  }

  UnrolledDag dag;
  const std::size_t n = g.node_count();
  dag.instances.reserve(static_cast<std::size_t>(windows) * n);
  for (std::int64_t w = 0; w < windows; ++w) {
    for (const graph::NodeId v : g.nodes()) {
      dag.instances.push_back(UnrolledInstance{v, w});
    }
  }
  dag.boundary_reads.assign(g.edge_count(), 0);

  for (std::int64_t w = 0; w < windows; ++w) {
    for (const graph::EdgeId e : g.edges()) {
      const graph::Ipr& ipr = g.ipr(e);
      const std::int64_t producer_window = w - distance[e.value];
      const std::size_t consumer_index =
          static_cast<std::size_t>(w) * n + ipr.dst.value;
      if (producer_window < 0) {
        ++dag.boundary_reads[e.value];
        continue;
      }
      const std::size_t producer_index =
          static_cast<std::size_t>(producer_window) * n + ipr.src.value;
      dag.dependencies.emplace_back(producer_index, consumer_index);
    }
  }
  return dag;
}

bool unrolled_is_executable(const graph::TaskGraph& g,
                            const Retiming& retiming) {
  if (retiming.value.size() != g.node_count()) return false;
  const std::vector<int> distance = realized_distances(g, retiming);

  // Executable window-by-window iff the zero-distance subgraph (the
  // dependencies that stay inside one window) is acyclic; positive
  // distances always point to earlier windows.
  for (const int d : distance) {
    if (d < 0) return false;
  }
  graph::TaskGraph same_window("same-window");
  for (const graph::NodeId v : g.nodes()) {
    same_window.add_task(g.task(v));
  }
  for (const graph::EdgeId e : g.edges()) {
    if (distance[e.value] == 0) {
      const graph::Ipr& ipr = g.ipr(e);
      same_window.add_ipr(ipr.src, ipr.dst, ipr.size);
    }
  }
  return graph::is_acyclic(same_window);
}

}  // namespace paraconv::retiming
