#include "retiming/cases.hpp"

namespace paraconv::retiming {

AllocationCase classify(const EdgeDelta& delta) {
  PARACONV_REQUIRE(delta.cache >= 0 && delta.cache <= delta.edram &&
                       delta.edram <= 2,
                   "delta pair outside the Theorem 3.1 envelope");
  if (delta.cache == 0 && delta.edram == 0) return AllocationCase::kCase1;
  if (delta.cache == 0 && delta.edram == 1) return AllocationCase::kCase2;
  if (delta.cache == 0 && delta.edram == 2) return AllocationCase::kCase3;
  if (delta.cache == 1 && delta.edram == 1) return AllocationCase::kCase4;
  if (delta.cache == 1 && delta.edram == 2) return AllocationCase::kCase5;
  return AllocationCase::kCase6;  // (2,2)
}

int delta_r(const EdgeDelta& delta) {
  PARACONV_REQUIRE(delta.cache <= delta.edram, "inconsistent delta pair");
  return delta.edram - delta.cache;
}

bool allocation_sensitive(const EdgeDelta& delta) {
  return delta_r(delta) > 0;
}

const char* to_string(AllocationCase c) {
  switch (c) {
    case AllocationCase::kCase1:
      return "case1(0,0)";
    case AllocationCase::kCase2:
      return "case2(0,1)";
    case AllocationCase::kCase3:
      return "case3(0,2)";
    case AllocationCase::kCase4:
      return "case4(1,1)";
    case AllocationCase::kCase5:
      return "case5(1,2)";
    case AllocationCase::kCase6:
      return "case6(2,2)";
  }
  return "unknown";
}

}  // namespace paraconv::retiming
