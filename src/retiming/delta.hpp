// Per-edge retiming-distance analysis (paper Sec. 3.2).
//
// Given the compacted packing (task i at start s_i, period p), an IPR edge
// (i, j) with transfer latency c_ij requires an inter-iteration distance
//
//   d_ij >= ceil((s_i + c_i + c_ij - s_j) / p).
//
// The transfer latency depends on the allocation site, so every edge has a
// pair (delta_cache, delta_edram) with delta_cache <= delta_edram. Under the
// model's assumption c_ij <= p (an IPR hand-off never exceeds one period —
// larger transfers are pipelined; we clamp accordingly), both values lie in
// {0, 1, 2}: this is exactly Theorem 3.1's bound of "at most two more
// iterations ahead".
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "pim/config.hpp"
#include "pim/cost_model.hpp"
#include "sched/schedule.hpp"

namespace paraconv::retiming {

/// Required inter-iteration distances for one edge under both allocations.
struct EdgeDelta {
  int cache{0};
  int edram{0};
};

/// Transfer latency of `size` bytes from `site` under the given cost model,
/// clamped to one period (model assumption c_ij <= p, paper proof of
/// Theorem 3.1).
TimeUnits effective_transfer(const pim::CostModel& model, pim::AllocSite site,
                             Bytes size, TimeUnits period);

/// Convenience overload: builds the cost model `config` selects per call.
/// Loops should build one model (pim::make_cost_model) and use the overload
/// above.
TimeUnits effective_transfer(const pim::PimConfig& config, pim::AllocSite site,
                             Bytes size, TimeUnits period);

/// Full hand-off latency of one edge: site transfer (per the cost model)
/// plus on-chip-network hop latency between the producer and consumer PEs,
/// clamped to one period. Same-PE hand-offs are free (register-file/pFIFO
/// local, paper Fig. 1). This is the c_ij used by the delta analysis, the
/// validator and the machine model.
TimeUnits effective_edge_transfer(const pim::CostModel& model,
                                  const pim::PimConfig& config,
                                  pim::AllocSite site, Bytes size, int src_pe,
                                  int dst_pe, TimeUnits period);

/// Convenience overload: builds the cost model `config` selects per call.
TimeUnits effective_edge_transfer(const pim::PimConfig& config,
                                  pim::AllocSite site, Bytes size, int src_pe,
                                  int dst_pe, TimeUnits period);

/// Required distance for a single edge given producer/consumer placement.
int required_distance(TimeUnits producer_start, TimeUnits producer_exec,
                      TimeUnits transfer, TimeUnits consumer_start,
                      TimeUnits period);

/// Computes (delta_cache, delta_edram) for every edge of `g` under the given
/// packing and cost model. Postcondition: 0 <= cache <= edram <= 2 for every
/// edge.
std::vector<EdgeDelta> compute_edge_deltas(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const pim::PimConfig& config, const pim::CostModel& model);

/// Convenience overload: builds the cost model `config` selects per call.
std::vector<EdgeDelta> compute_edge_deltas(
    const graph::TaskGraph& g, const std::vector<sched::TaskPlacement>& placement,
    TimeUnits period, const pim::PimConfig& config);

}  // namespace paraconv::retiming
