#include "cnn/network.hpp"

#include <numeric>

namespace paraconv::cnn {

LayerId Network::add_layer(Layer layer) {
  for (const LayerId in : layer.inputs) {
    PARACONV_REQUIRE(in.value < layers_.size(),
                     "layer inputs must be added before consumers");
  }
  const LayerId id{static_cast<std::uint32_t>(layers_.size())};
  shapes_.push_back(infer_output_shape(layer.params, input_shapes(layer)));
  for (const LayerId in : layer.inputs) consumers_[in.value].push_back(id);
  layers_.push_back(std::move(layer));
  consumers_.emplace_back();
  return id;
}

std::vector<Shape> Network::input_shapes(const Layer& layer) const {
  std::vector<Shape> shapes;
  shapes.reserve(layer.inputs.size());
  for (const LayerId in : layer.inputs) shapes.push_back(shapes_[in.value]);
  return shapes;
}

LayerId Network::add_input(std::string name, Shape shape) {
  return add_layer(Layer{std::move(name), InputParams{shape}, {}});
}

LayerId Network::add_conv(std::string name, LayerId input, ConvParams params) {
  return add_layer(Layer{std::move(name), params, {input}});
}

LayerId Network::add_pool(std::string name, LayerId input, PoolParams params) {
  return add_layer(Layer{std::move(name), params, {input}});
}

LayerId Network::add_fc(std::string name, LayerId input, FcParams params) {
  return add_layer(Layer{std::move(name), params, {input}});
}

LayerId Network::add_concat(std::string name, std::vector<LayerId> inputs) {
  return add_layer(Layer{std::move(name), ConcatParams{}, std::move(inputs)});
}

LayerId Network::add_eltwise(std::string name, std::vector<LayerId> inputs) {
  return add_layer(Layer{std::move(name), EltwiseParams{}, std::move(inputs)});
}

std::int64_t Network::macs(LayerId id) const {
  const Layer& l = layer(id);
  return layer_macs(l.params, input_shapes(l));
}

std::int64_t Network::weight_count(LayerId id) const {
  const Layer& l = layer(id);
  return layer_weight_count(l.params, input_shapes(l));
}

std::int64_t Network::total_macs() const {
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < layers_.size(); ++i) total += macs(LayerId{i});
  return total;
}

std::int64_t Network::total_weights() const {
  std::int64_t total = 0;
  for (std::uint32_t i = 0; i < layers_.size(); ++i) {
    total += weight_count(LayerId{i});
  }
  return total;
}

std::vector<LayerId> Network::outputs() const {
  std::vector<LayerId> out;
  for (std::uint32_t i = 0; i < layers_.size(); ++i) {
    if (consumers_[i].empty()) out.push_back(LayerId{i});
  }
  return out;
}

}  // namespace paraconv::cnn
