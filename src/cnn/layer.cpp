#include "cnn/layer.hpp"

#include <numeric>

namespace paraconv::cnn {
namespace {

struct KindNameVisitor {
  const char* operator()(const InputParams&) const { return "input"; }
  const char* operator()(const ConvParams&) const { return "conv"; }
  const char* operator()(const PoolParams&) const { return "pool"; }
  const char* operator()(const FcParams&) const { return "fc"; }
  const char* operator()(const ConcatParams&) const { return "concat"; }
  const char* operator()(const EltwiseParams&) const { return "eltwise"; }
};

const Shape& single_input(const std::vector<Shape>& inputs) {
  PARACONV_REQUIRE(inputs.size() == 1, "layer expects exactly one input");
  PARACONV_REQUIRE(inputs.front().valid(), "input shape must be valid");
  return inputs.front();
}

/// Rejects degenerate window parameters with typed kebab-case diagnostics
/// shared by conv and pool ([cnn-bad-kernel] / [cnn-bad-stride] /
/// [cnn-bad-pad] / [cnn-pad-too-large]).
void require_valid_window(const char* kind, int kernel, int stride, int pad) {
  PARACONV_REQUIRE(kernel >= 1, std::string("[cnn-bad-kernel] ") + kind +
                                    " kernel must be >= 1");
  PARACONV_REQUIRE(stride >= 1, std::string("[cnn-bad-stride] ") + kind +
                                    " stride must be >= 1");
  PARACONV_REQUIRE(pad >= 0, std::string("[cnn-bad-pad] ") + kind +
                                 " pad must be >= 0");
  PARACONV_REQUIRE(pad < kernel,
                   std::string("[cnn-pad-too-large] ") + kind +
                       " pad must be smaller than the kernel extent");
}

}  // namespace

const char* layer_kind_name(const LayerParams& params) {
  return std::visit(KindNameVisitor{}, params);
}

Shape infer_output_shape(const LayerParams& params,
                         const std::vector<Shape>& inputs) {
  return std::visit(
      [&](const auto& p) -> Shape {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, InputParams>) {
          PARACONV_REQUIRE(inputs.empty(), "input layer takes no inputs");
          PARACONV_REQUIRE(p.shape.valid(), "input shape must be valid");
          return p.shape;
        } else if constexpr (std::is_same_v<P, ConvParams>) {
          const Shape& in = single_input(inputs);
          PARACONV_REQUIRE(
              p.out_channels >= 1,
              "[cnn-bad-channels] convolution out_channels must be >= 1");
          require_valid_window("convolution", p.kernel, p.stride, p.pad);
          PARACONV_REQUIRE(p.groups >= 1,
                           "[cnn-bad-groups] convolution groups must be >= 1");
          PARACONV_REQUIRE(in.channels % p.groups == 0 &&
                               p.out_channels % p.groups == 0,
                           "[cnn-groups-indivisible] convolution groups must "
                           "divide both input and output channel counts");
          const int oh = conv_out_extent(in.height, p.kernel, p.stride, p.pad);
          const int ow = conv_out_extent(in.width, p.kernel, p.stride, p.pad);
          PARACONV_REQUIRE(oh >= 1 && ow >= 1,
                           "[cnn-zero-extent] convolution output collapses "
                           "to zero extent");
          return Shape{p.out_channels, oh, ow};
        } else if constexpr (std::is_same_v<P, PoolParams>) {
          const Shape& in = single_input(inputs);
          require_valid_window("pooling", p.kernel, p.stride, p.pad);
          const int oh = conv_out_extent(in.height, p.kernel, p.stride, p.pad);
          const int ow = conv_out_extent(in.width, p.kernel, p.stride, p.pad);
          PARACONV_REQUIRE(oh >= 1 && ow >= 1,
                           "[cnn-zero-extent] pooling output collapses to "
                           "zero extent");
          return Shape{in.channels, oh, ow};
        } else if constexpr (std::is_same_v<P, FcParams>) {
          single_input(inputs);  // validates arity and shape
          PARACONV_REQUIRE(p.out_features >= 1,
                           "[cnn-bad-channels] fc out_features must be >= 1");
          return Shape{p.out_features, 1, 1};
        } else if constexpr (std::is_same_v<P, ConcatParams>) {
          PARACONV_REQUIRE(inputs.size() >= 2,
                           "concat requires at least two inputs");
          int channels = 0;
          for (const Shape& s : inputs) {
            PARACONV_REQUIRE(s.valid(), "concat input shape must be valid");
            PARACONV_REQUIRE(s.height == inputs.front().height &&
                                 s.width == inputs.front().width,
                             "concat inputs must share spatial extent");
            channels += s.channels;
          }
          return Shape{channels, inputs.front().height, inputs.front().width};
        } else {
          static_assert(std::is_same_v<P, EltwiseParams>);
          PARACONV_REQUIRE(inputs.size() >= 2,
                           "eltwise requires at least two inputs");
          for (const Shape& s : inputs) {
            PARACONV_REQUIRE(s.valid(), "eltwise input shape must be valid");
            PARACONV_REQUIRE(s == inputs.front(),
                             "[cnn-eltwise-shape-mismatch] eltwise inputs "
                             "must share an identical shape");
          }
          return inputs.front();
        }
      },
      params);
}

std::int64_t layer_macs(const LayerParams& params,
                        const std::vector<Shape>& inputs) {
  return std::visit(
      [&](const auto& p) -> std::int64_t {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, ConvParams>) {
          const Shape& in = single_input(inputs);
          const Shape out = infer_output_shape(params, inputs);
          // Each output element sees in.channels / groups input channels.
          return out.elements() * (in.channels / p.groups) * p.kernel *
                 p.kernel;
        } else if constexpr (std::is_same_v<P, PoolParams>) {
          const Shape out = infer_output_shape(params, inputs);
          return out.elements() * p.kernel * p.kernel;
        } else if constexpr (std::is_same_v<P, FcParams>) {
          const Shape& in = single_input(inputs);
          return in.elements() * p.out_features;
        } else if constexpr (std::is_same_v<P, EltwiseParams>) {
          const Shape out = infer_output_shape(params, inputs);
          return out.elements() *
                 static_cast<std::int64_t>(inputs.size() - 1);
        } else {
          return 0;
        }
      },
      params);
}

std::int64_t layer_weight_count(const LayerParams& params,
                                const std::vector<Shape>& inputs) {
  return std::visit(
      [&](const auto& p) -> std::int64_t {
        using P = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<P, ConvParams>) {
          const Shape& in = single_input(inputs);
          return static_cast<std::int64_t>(p.out_channels) *
                 (in.channels / p.groups) * p.kernel * p.kernel;
        } else if constexpr (std::is_same_v<P, FcParams>) {
          const Shape& in = single_input(inputs);
          return in.elements() * p.out_features;
        } else {
          return 0;
        }
      },
      params);
}

}  // namespace paraconv::cnn
