// Minimal CHW float tensor for the reference CNN forward operators.
//
// The reference operators exist to ground the cost model: tests check that
// the MAC/byte accounting used by the scheduler matches what a real forward
// pass touches, and the examples run actual inference through the lowered
// graphs.
#pragma once

#include <vector>

#include "cnn/shape.hpp"

namespace paraconv::cnn {

/// Dense channel-major (C, H, W) float tensor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(shape),
        data_(static_cast<std::size_t>(shape.elements()), 0.0f) {
    PARACONV_REQUIRE(shape.valid(), "tensor shape must be valid");
  }

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }

  float at(int c, int y, int x) const { return data_[index(c, y, x)]; }
  float& at(int c, int y, int x) { return data_[index(c, y, x)]; }

  /// Zero-padded read: coordinates outside the spatial extent return 0.
  float at_padded(int c, int y, int x) const {
    if (y < 0 || x < 0 || y >= shape_.height || x >= shape_.width) return 0.0f;
    return at(c, y, x);
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  std::size_t index(int c, int y, int x) const {
    PARACONV_REQUIRE(c >= 0 && c < shape_.channels && y >= 0 &&
                         y < shape_.height && x >= 0 && x < shape_.width,
                     "tensor index out of range");
    return (static_cast<std::size_t>(c) * static_cast<std::size_t>(shape_.height) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(shape_.width) +
           static_cast<std::size_t>(x);
  }

  Shape shape_{};
  std::vector<float> data_;
};

}  // namespace paraconv::cnn
