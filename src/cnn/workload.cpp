#include "cnn/workload.hpp"

#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/parse.hpp"

namespace paraconv::cnn {
namespace {

// ---- embedded zoo ---------------------------------------------------------
// Each text is byte-identical to its workloads/<name>.tsv file (enforced by
// cnn/workload_test.cpp); provenance lives in the `source` directive and in
// the docs/WORKLOADS.md table.

const char kAlexnetText[] = R"zoo(workload	alexnet
source	AlexNet (Krizhevsky et al., NIPS 2012), single-crop 227x227 ImageNet inference
input	data	3	227	227
conv	conv1	data	96	11	4	0
pool	pool1	conv1	max	3	2	0
conv	conv2	pool1	256	5	1	2
pool	pool2	conv2	max	3	2	0
conv	conv3	pool2	384	3	1	1
conv	conv4	conv3	384	3	1	1
conv	conv5	conv4	256	3	1	1
pool	pool5	conv5	max	3	2	0
fc	fc6	pool5	4096
fc	fc7	fc6	4096
fc	fc8	fc7	1000
)zoo";

const char kVgg16Text[] = R"zoo(workload	vgg16
source	VGG-16 configuration D (Simonyan & Zisserman, ICLR 2015), 224x224 ImageNet inference
input	data	3	224	224
conv	conv1_1	data	64	3	1	1
conv	conv1_2	conv1_1	64	3	1	1
pool	pool1	conv1_2	max	2	2	0
conv	conv2_1	pool1	128	3	1	1
conv	conv2_2	conv2_1	128	3	1	1
pool	pool2	conv2_2	max	2	2	0
conv	conv3_1	pool2	256	3	1	1
conv	conv3_2	conv3_1	256	3	1	1
conv	conv3_3	conv3_2	256	3	1	1
pool	pool3	conv3_3	max	2	2	0
conv	conv4_1	pool3	512	3	1	1
conv	conv4_2	conv4_1	512	3	1	1
conv	conv4_3	conv4_2	512	3	1	1
pool	pool4	conv4_3	max	2	2	0
conv	conv5_1	pool4	512	3	1	1
conv	conv5_2	conv5_1	512	3	1	1
conv	conv5_3	conv5_2	512	3	1	1
pool	pool5	conv5_3	max	2	2	0
fc	fc6	pool5	4096
fc	fc7	fc6	4096
fc	fc8	fc7	1000
)zoo";

const char kResnet18BasicText[] = R"zoo(workload	resnet18_basic
source	ResNet-18 basic blocks (He et al., CVPR 2016): two 64ch/56x56 identity blocks plus one stride-2 projection block to 128ch/28x28
input	data	64	56	56
conv	stem	data	64	3	1	1
conv	b1_conv1	stem	64	3	1	1
conv	b1_conv2	b1_conv1	64	3	1	1
eltwise	b1_add	stem,b1_conv2
conv	b2_conv1	b1_add	64	3	1	1
conv	b2_conv2	b2_conv1	64	3	1	1
eltwise	b2_add	b1_add,b2_conv2
conv	b3_conv1	b2_add	128	3	2	1
conv	b3_conv2	b3_conv1	128	3	1	1
conv	b3_proj	b2_add	128	1	2	0
eltwise	b3_add	b3_conv2,b3_proj
)zoo";

const char kMobilenetV1Text[] = R"zoo(workload	mobilenet_v1
source	MobileNet v1 1.0/224 (Howard et al., arXiv:1704.04861): depthwise-separable stacks, depthwise convs expressed via groups == channels
input	data	3	224	224
conv	conv1	data	32	3	2	1
conv	dw1	conv1	32	3	1	1	32
conv	pw1	dw1	64	1	1	0
conv	dw2	pw1	64	3	2	1	64
conv	pw2	dw2	128	1	1	0
conv	dw3	pw2	128	3	1	1	128
conv	pw3	dw3	128	1	1	0
conv	dw4	pw3	128	3	2	1	128
conv	pw4	dw4	256	1	1	0
conv	dw5	pw4	256	3	1	1	256
conv	pw5	dw5	256	1	1	0
conv	dw6	pw5	256	3	2	1	256
conv	pw6	dw6	512	1	1	0
conv	dw7	pw6	512	3	1	1	512
conv	pw7	dw7	512	1	1	0
conv	dw8	pw7	512	3	1	1	512
conv	pw8	dw8	512	1	1	0
conv	dw9	pw8	512	3	1	1	512
conv	pw9	dw9	512	1	1	0
conv	dw10	pw9	512	3	1	1	512
conv	pw10	dw10	512	1	1	0
conv	dw11	pw10	512	3	1	1	512
conv	pw11	dw11	512	1	1	0
conv	dw12	pw11	512	3	2	1	512
conv	pw12	dw12	1024	1	1	0
conv	dw13	pw12	1024	3	1	1	1024
conv	pw13	dw13	1024	1	1	0
pool	avgpool	pw13	avg	7	1	0
fc	fc	avgpool	1000
)zoo";

const char kDeepbenchConvText[] = R"zoo(workload	deepbench_conv
source	DeepBench (Baidu Research) server inference convolutions, square-kernel vision subset; every layer is an independent input/conv pair
input	in0	3	224	224
conv	conv0	in0	64	7	2	3
input	in1	64	112	112
conv	conv1	in1	128	3	1	1
input	in2	128	56	56
conv	conv2	in2	256	3	1	1
input	in3	256	28	28
conv	conv3	in3	512	3	1	1
input	in4	512	14	14
conv	conv4	in4	512	3	1	1
input	in5	512	7	7
conv	conv5	in5	512	3	1	1
)zoo";

struct ZooEntry {
  const char* name;
  const char* text;
};

constexpr ZooEntry kZoo[] = {
    {"alexnet", kAlexnetText},
    {"vgg16", kVgg16Text},
    {"resnet18_basic", kResnet18BasicText},
    {"mobilenet_v1", kMobilenetV1Text},
    {"deepbench_conv", kDeepbenchConvText},
};

// ---- parser ---------------------------------------------------------------

[[noreturn]] void fail(int line_no, const std::string& message) {
  PARACONV_REQUIRE(false,
                   message + " (line " + std::to_string(line_no) + ")");
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string> tokenize(std::string_view line) {
  std::istringstream is{std::string(line)};
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

int parse_field(const std::string& token, int min_value, const char* what,
                int line_no) {
  const std::optional<std::int64_t> value = parse_int64(token);
  if (!value.has_value() || *value < min_value ||
      *value > std::numeric_limits<int>::max()) {
    fail(line_no, std::string("[workload-parse] ") + what + " '" + token +
                      "' must be an integer >= " + std::to_string(min_value));
  }
  return static_cast<int>(*value);
}

class WorkloadParser {
 public:
  Workload parse(const std::string& text) {
    int line_no = 0;
    std::istringstream lines(text);
    std::string raw;
    while (std::getline(lines, raw)) {
      ++line_no;
      std::string_view line{raw};
      if (const std::size_t hash = line.find('#');
          hash != std::string_view::npos) {
        line = line.substr(0, hash);
      }
      line = trim(line);
      if (line.empty()) continue;
      handle_line(tokenize(line), line, line_no);
    }
    if (!named_) {
      fail(line_no, "[workload-missing-name] the 'workload <name>' "
                    "directive is required");
    }
    return std::move(workload_);
  }

 private:
  void handle_line(const std::vector<std::string>& tokens,
                   std::string_view line, int line_no) {
    const std::string& op = tokens.front();
    if (op == "workload") {
      if (named_) fail(line_no, "[workload-parse] duplicate workload name");
      require_arity(tokens, 2, "workload <name>", line_no);
      workload_.net = Network(tokens[1]);
      named_ = true;
      return;
    }
    if (op == "source") {
      workload_.source = std::string(trim(line.substr(op.size())));
      return;
    }
    if (op == "batch") {
      require_arity(tokens, 2, "batch <n>", line_no);
      workload_.default_batch =
          parse_field(tokens[1], 1, "[workload-bad-batch] batch", line_no);
      return;
    }
    if (!named_) {
      fail(line_no, "[workload-missing-name] the 'workload <name>' "
                    "directive must precede layer lines");
    }
    if (op == "input") {
      require_arity(tokens, 5, "input <name> <c> <h> <w>", line_no);
      const Shape shape{parse_field(tokens[2], 1, "channels", line_no),
                        parse_field(tokens[3], 1, "height", line_no),
                        parse_field(tokens[4], 1, "width", line_no)};
      define(tokens[1], workload_.net.add_input(tokens[1], shape), line_no);
    } else if (op == "conv") {
      if (tokens.size() != 7 && tokens.size() != 8) {
        fail(line_no, "[workload-parse] conv expects "
                      "<name> <input> <out_c> <kernel> <stride> <pad> "
                      "[groups]");
      }
      ConvParams params;
      params.out_channels = parse_field(tokens[3], 1, "out_channels", line_no);
      params.kernel = parse_field(tokens[4], 1, "kernel", line_no);
      params.stride = parse_field(tokens[5], 1, "stride", line_no);
      params.pad = parse_field(tokens[6], 0, "pad", line_no);
      if (tokens.size() == 8) {
        params.groups = parse_field(tokens[7], 1, "groups", line_no);
      }
      define(tokens[1],
             workload_.net.add_conv(tokens[1], resolve(tokens[2], line_no),
                                    params),
             line_no);
    } else if (op == "pool") {
      require_arity(tokens, 7,
                    "pool <name> <input> <max|avg> <kernel> <stride> <pad>",
                    line_no);
      PoolParams params;
      if (tokens[3] == "max") {
        params.mode = PoolMode::kMax;
      } else if (tokens[3] == "avg") {
        params.mode = PoolMode::kAverage;
      } else {
        fail(line_no, "[workload-parse] pool mode '" + tokens[3] +
                          "' must be max or avg");
      }
      params.kernel = parse_field(tokens[4], 1, "kernel", line_no);
      params.stride = parse_field(tokens[5], 1, "stride", line_no);
      params.pad = parse_field(tokens[6], 0, "pad", line_no);
      define(tokens[1],
             workload_.net.add_pool(tokens[1], resolve(tokens[2], line_no),
                                    params),
             line_no);
    } else if (op == "fc") {
      require_arity(tokens, 4, "fc <name> <input> <out_features>", line_no);
      const FcParams params{
          parse_field(tokens[3], 1, "out_features", line_no)};
      define(tokens[1],
             workload_.net.add_fc(tokens[1], resolve(tokens[2], line_no),
                                  params),
             line_no);
    } else if (op == "concat") {
      require_arity(tokens, 3, "concat <name> <in1,in2,...>", line_no);
      define(tokens[1],
             workload_.net.add_concat(tokens[1],
                                      resolve_list(tokens[2], line_no)),
             line_no);
    } else if (op == "eltwise") {
      require_arity(tokens, 3, "eltwise <name> <in1,in2,...>", line_no);
      define(tokens[1],
             workload_.net.add_eltwise(tokens[1],
                                       resolve_list(tokens[2], line_no)),
             line_no);
    } else {
      fail(line_no, "[workload-unknown-op] unknown directive '" + op + "'");
    }
  }

  void require_arity(const std::vector<std::string>& tokens,
                     std::size_t arity, const char* usage, int line_no) {
    if (tokens.size() != arity) {
      fail(line_no, std::string("[workload-parse] expected: ") + usage);
    }
  }

  void define(const std::string& name, LayerId id, int line_no) {
    if (!layers_.emplace(name, id).second) {
      fail(line_no,
           "[workload-duplicate-layer] layer '" + name + "' redefined");
    }
  }

  LayerId resolve(const std::string& name, int line_no) {
    const auto it = layers_.find(name);
    if (it == layers_.end()) {
      fail(line_no, "[workload-unknown-input] layer '" + name +
                        "' is not defined above this line");
    }
    return it->second;
  }

  std::vector<LayerId> resolve_list(const std::string& csv, int line_no) {
    std::vector<LayerId> ids;
    std::size_t begin = 0;
    while (begin <= csv.size()) {
      std::size_t end = csv.find(',', begin);
      if (end == std::string::npos) end = csv.size();
      const std::string name = csv.substr(begin, end - begin);
      if (name.empty()) {
        fail(line_no, "[workload-parse] empty entry in input list '" + csv +
                          "'");
      }
      ids.push_back(resolve(name, line_no));
      begin = end + 1;
    }
    return ids;
  }

  Workload workload_;
  bool named_{false};
  std::map<std::string, LayerId> layers_;
};

}  // namespace

Workload parse_workload(const std::string& text) {
  return WorkloadParser{}.parse(text);
}

Workload load_workload_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PARACONV_REQUIRE(in.good(), "[workload-file-missing] cannot open workload "
                              "file '" +
                                  path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_workload(buffer.str());
}

std::vector<std::string> zoo_workload_names() {
  std::vector<std::string> names;
  for (const ZooEntry& entry : kZoo) names.emplace_back(entry.name);
  return names;
}

bool is_zoo_workload(const std::string& name) {
  for (const ZooEntry& entry : kZoo) {
    if (name == entry.name) return true;
  }
  return false;
}

const std::string& zoo_workload_text(const std::string& name) {
  static const std::map<std::string, std::string> texts = [] {
    std::map<std::string, std::string> m;
    for (const ZooEntry& entry : kZoo) m.emplace(entry.name, entry.text);
    return m;
  }();
  const auto it = texts.find(name);
  PARACONV_REQUIRE(it != texts.end(),
                   "[workload-unknown] '" + name +
                       "' is not a zoo workload (see `paraconv_cli list`)");
  return it->second;
}

Workload zoo_workload(const std::string& name) {
  return parse_workload(zoo_workload_text(name));
}

graph::TaskGraph lower_workload(const Workload& workload, int batch,
                                LoweringOptions options) {
  PARACONV_REQUIRE(batch >= 1, "batch must be positive");
  options.batch = batch;
  return lower_to_task_graph(workload.net, options);
}

}  // namespace paraconv::cnn
