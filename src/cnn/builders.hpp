// Builders for reference networks used in the evaluation.
//
// GoogLeNet (Szegedy et al., CVPR'15) is the paper's source of real-life CNN
// task graphs [16]; LeNet-5 stands in for the character-recognition
// applications.
#pragma once

#include "cnn/network.hpp"

namespace paraconv::cnn {

/// Full GoogLeNet v1 (a.k.a. Inception v1): 224x224x3 input, stem, nine
/// inception modules (3a..5b), average pool and the 1000-way classifier.
/// Auxiliary classifiers are omitted (inference-time network).
Network make_googlenet();

/// One standalone inception module on a given input shape; useful for
/// focused experiments on a single branching subgraph.
Network make_inception_module(Shape input, int c1, int c3_reduce, int c3,
                              int c5_reduce, int c5, int pool_proj);

/// LeNet-5 style digit/character recognizer (32x32x1 input).
Network make_lenet5();

/// AlexNet (single-tower Caffe variant, 227x227x3 input): ~61M weights —
/// the paper's intro-scale example of "hundreds of megabytes for filter
/// weight storage".
Network make_alexnet();

/// VGG-16 (224x224x3 input): ~138M weights, ~15.5G MACs per image — the
/// upper end of the paper's 30K-600K operations-per-pixel envelope.
Network make_vgg16();

}  // namespace paraconv::cnn
