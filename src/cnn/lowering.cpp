#include "cnn/lowering.hpp"

#include <algorithm>
#include <vector>

#include "common/units.hpp"

namespace paraconv::cnn {
namespace {

graph::TaskKind task_kind_for(const LayerParams& params) {
  if (std::holds_alternative<ConvParams>(params)) {
    return graph::TaskKind::kConvolution;
  }
  if (std::holds_alternative<PoolParams>(params)) {
    return graph::TaskKind::kPooling;
  }
  if (std::holds_alternative<FcParams>(params)) {
    return graph::TaskKind::kFullyConnected;
  }
  return graph::TaskKind::kOther;
}

}  // namespace

graph::TaskGraph lower_to_task_graph(const Network& net,
                                     const LoweringOptions& options) {
  PARACONV_REQUIRE(options.channel_groups >= 1,
                   "channel_groups must be positive");
  PARACONV_REQUIRE(options.macs_per_time_unit >= 1,
                   "macs_per_time_unit must be positive");
  PARACONV_REQUIRE(options.element_bytes >= 1,
                   "element_bytes must be positive");

  graph::TaskGraph g(net.name());

  // Per-layer list of task ids (one per channel group); empty for elided
  // input layers.
  std::vector<std::vector<graph::NodeId>> tasks_of(net.layer_count());

  for (std::uint32_t li = 0; li < net.layer_count(); ++li) {
    const LayerId lid{li};
    const Layer& layer = net.layer(lid);
    if (std::holds_alternative<InputParams>(layer.params)) continue;

    const Shape out = net.output_shape(lid);
    int groups = 1;
    if (std::holds_alternative<ConvParams>(layer.params) ||
        std::holds_alternative<PoolParams>(layer.params) ||
        std::holds_alternative<FcParams>(layer.params)) {
      groups = std::min(options.channel_groups, out.channels);
    }

    const std::int64_t macs = net.macs(lid);
    const std::int64_t exec = std::max<std::int64_t>(
        1, ceil_div(ceil_div(macs, groups), options.macs_per_time_unit));

    const std::int64_t weight_bytes =
        net.weight_count(lid) * options.element_bytes;
    for (int gi = 0; gi < groups; ++gi) {
      graph::Task task;
      task.name = groups == 1
                      ? layer.name
                      : layer.name + "#" + std::to_string(gi);
      task.kind = task_kind_for(layer.params);
      task.exec_time = TimeUnits{exec};
      task.weights = Bytes{weight_bytes / groups};
      tasks_of[li].push_back(g.add_task(std::move(task)));
    }

    // Wire edges from each producer layer's tasks.
    const bool channelwise =
        std::holds_alternative<PoolParams>(layer.params);
    for (const LayerId in : layer.inputs) {
      const auto& producers = tasks_of[in.value];
      if (producers.empty()) continue;  // elided input layer
      const Bytes prod_part{std::max<std::int64_t>(
          1, net.output_shape(in).bytes(options.element_bytes).value /
                 static_cast<std::int64_t>(producers.size()))};
      if (channelwise && producers.size() == tasks_of[li].size()) {
        for (std::size_t k = 0; k < producers.size(); ++k) {
          g.add_ipr(producers[k], tasks_of[li][k], prod_part);
        }
      } else {
        for (const graph::NodeId p : producers) {
          for (const graph::NodeId c : tasks_of[li]) {
            g.add_ipr(p, c, prod_part);
          }
        }
      }
    }
  }

  g.validate();
  return g;
}

}  // namespace paraconv::cnn
