#include "cnn/lowering.hpp"

#include <algorithm>
#include <vector>

#include "common/units.hpp"

namespace paraconv::cnn {
namespace {

graph::TaskKind task_kind_for(const LayerParams& params) {
  if (std::holds_alternative<ConvParams>(params)) {
    return graph::TaskKind::kConvolution;
  }
  if (std::holds_alternative<PoolParams>(params)) {
    return graph::TaskKind::kPooling;
  }
  if (std::holds_alternative<FcParams>(params)) {
    return graph::TaskKind::kFullyConnected;
  }
  return graph::TaskKind::kOther;
}

}  // namespace

graph::TaskGraph lower_to_task_graph(const Network& net,
                                     const LoweringOptions& options) {
  PARACONV_REQUIRE(options.channel_groups >= 1,
                   "channel_groups must be positive");
  PARACONV_REQUIRE(options.macs_per_time_unit >= 1,
                   "macs_per_time_unit must be positive");
  PARACONV_REQUIRE(options.element_bytes >= 1,
                   "element_bytes must be positive");
  PARACONV_REQUIRE(options.batch >= 1, "batch must be positive");

  graph::TaskGraph g(net.name());

  // tasks_of[image][layer] lists the layer's task ids (one per channel
  // group) for that image; empty for elided input layers. Image 0 holds
  // the canonical (weight-carrying) replica set.
  const std::size_t batch = static_cast<std::size_t>(options.batch);
  std::vector<std::vector<std::vector<graph::NodeId>>> tasks_of(
      batch, std::vector<std::vector<graph::NodeId>>(net.layer_count()));

  for (std::size_t image = 0; image < batch; ++image) {
    const std::string image_suffix =
        image == 0 ? std::string() : "@b" + std::to_string(image);
    for (std::uint32_t li = 0; li < net.layer_count(); ++li) {
      const LayerId lid{li};
      const Layer& layer = net.layer(lid);
      if (std::holds_alternative<InputParams>(layer.params)) continue;

      const Shape out = net.output_shape(lid);
      int groups = 1;
      if (std::holds_alternative<ConvParams>(layer.params) ||
          std::holds_alternative<PoolParams>(layer.params) ||
          std::holds_alternative<FcParams>(layer.params)) {
        groups = std::min(options.channel_groups, out.channels);
      }

      const std::int64_t macs = net.macs(lid);
      const std::int64_t exec = std::max<std::int64_t>(
          1, ceil_div(ceil_div(macs, groups), options.macs_per_time_unit));

      const std::int64_t weight_bytes =
          net.weight_count(lid) * options.element_bytes;
      const std::size_t group_count = static_cast<std::size_t>(groups);
      for (std::size_t gi = 0; gi < group_count; ++gi) {
        graph::Task task;
        task.name = (groups == 1
                         ? layer.name
                         : layer.name + "#" + std::to_string(gi)) +
                    image_suffix;
        task.kind = task_kind_for(layer.params);
        task.exec_time = TimeUnits{exec};
        // Filter weights live with the image-0 replica; later images share
        // them and carry none of their own.
        task.weights = Bytes{image == 0 ? weight_bytes / groups : 0};
        tasks_of[image][li].push_back(g.add_task(std::move(task)));
      }

      // Wire edges from each producer layer's tasks within this image.
      const bool channelwise =
          std::holds_alternative<PoolParams>(layer.params);
      for (const LayerId in : layer.inputs) {
        const auto& producers = tasks_of[image][in.value];
        if (producers.empty()) continue;  // elided input layer
        const Bytes prod_part{std::max<std::int64_t>(
            1, net.output_shape(in).bytes(options.element_bytes).value /
                   static_cast<std::int64_t>(producers.size()))};
        if (channelwise && producers.size() == tasks_of[image][li].size()) {
          for (std::size_t k = 0; k < producers.size(); ++k) {
            g.add_ipr(producers[k], tasks_of[image][li][k], prod_part);
          }
        } else {
          for (const graph::NodeId p : producers) {
            for (const graph::NodeId c : tasks_of[image][li]) {
              g.add_ipr(p, c, prod_part);
            }
          }
        }
      }

      // Shared-weight edge: the image-0 replica of each weight-carrying
      // group feeds its sibling, ordering the (single) weight fetch before
      // every reuse and exposing the reuse affinity to the allocator. The
      // token size is 1 byte — weights move once, not once per image.
      if (image > 0 && weight_bytes > 0) {
        for (std::size_t gi = 0; gi < group_count; ++gi) {
          g.add_ipr(tasks_of[0][li][gi], tasks_of[image][li][gi], Bytes{1});
        }
      }
    }
  }

  g.validate();
  return g;
}

}  // namespace paraconv::cnn
