#include "cnn/shape.hpp"

// Header-only; translation unit anchors the component in the build.
