// Feature-map shapes and shape arithmetic for CNN layers.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/units.hpp"

namespace paraconv::cnn {

/// Channel-major feature-map shape (C, H, W) of a single image. Batch is
/// not a shape axis: the paper's dataflow iterates over inputs, one image
/// per iteration, and batched lowering replicates the per-image task graph
/// instead (see LoweringOptions::batch in cnn/lowering.hpp).
struct Shape {
  int channels{0};
  int height{0};
  int width{0};

  friend constexpr bool operator==(const Shape&, const Shape&) = default;

  constexpr std::int64_t elements() const {
    return static_cast<std::int64_t>(channels) * height * width;
  }

  /// Storage footprint; element_bytes defaults to 2 (fp16, the precision
  /// used by Neurocube-class accelerators).
  constexpr Bytes bytes(int element_bytes = 2) const {
    return Bytes{elements() * element_bytes};
  }

  constexpr bool valid() const {
    return channels > 0 && height > 0 && width > 0;
  }
};

/// Spatial output size of a convolution/pooling window:
/// floor((in + 2*pad - kernel) / stride) + 1.
constexpr int conv_out_extent(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace paraconv::cnn
