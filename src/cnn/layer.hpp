// CNN layer descriptors (paper Sec. 2.2: convolutional, pooling and
// fully-connected layers; fully-connected is treated as a special
// convolution). Concat models the channel-join of GoogLeNet inception
// branches; eltwise the residual join of ResNet blocks; grouped
// convolutions cover MobileNet-style depthwise stacks.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "cnn/shape.hpp"

namespace paraconv::cnn {

struct LayerId {
  std::uint32_t value{0};
  friend constexpr auto operator<=>(LayerId, LayerId) = default;
};

struct InputParams {
  Shape shape;
};

struct ConvParams {
  int out_channels{1};
  int kernel{1};
  int stride{1};
  int pad{0};
  /// Filter groups: in/out channels must both divide evenly. groups ==
  /// in_channels == out_channels is a depthwise convolution.
  int groups{1};
};

enum class PoolMode : std::uint8_t { kMax, kAverage };

struct PoolParams {
  PoolMode mode{PoolMode::kMax};
  int kernel{2};
  int stride{2};
  int pad{0};
};

struct FcParams {
  int out_features{1};
};

/// Channel-wise concatenation of all inputs (same spatial extent required).
struct ConcatParams {};

/// Element-wise sum of all inputs (identical shapes required) — the join of
/// a ResNet residual connection.
struct EltwiseParams {};

using LayerParams = std::variant<InputParams, ConvParams, PoolParams, FcParams,
                                 ConcatParams, EltwiseParams>;

struct Layer {
  std::string name;
  LayerParams params;
  std::vector<LayerId> inputs;  // empty only for InputParams
};

const char* layer_kind_name(const LayerParams& params);

/// Shape inference for one layer given its input shapes.
/// Throws ContractViolation on inconsistent inputs.
Shape infer_output_shape(const LayerParams& params,
                         const std::vector<Shape>& inputs);

/// Multiply-accumulate count of one layer (0 for input/concat; pooling is
/// counted as one op per window element).
std::int64_t layer_macs(const LayerParams& params,
                        const std::vector<Shape>& inputs);

/// Number of filter weights held by the layer (conv and fc only).
std::int64_t layer_weight_count(const LayerParams& params,
                                const std::vector<Shape>& inputs);

}  // namespace paraconv::cnn
