#include "cnn/builders.hpp"

namespace paraconv::cnn {
namespace {

/// Appends one inception module to `net` after layer `in`; returns the
/// concat layer id. Branch widths follow Szegedy et al., Table 1.
LayerId append_inception(Network& net, const std::string& prefix, LayerId in,
                         int c1, int c3_reduce, int c3, int c5_reduce, int c5,
                         int pool_proj) {
  const LayerId b1 =
      net.add_conv(prefix + "/1x1", in, ConvParams{c1, 1, 1, 0});
  const LayerId b3r =
      net.add_conv(prefix + "/3x3_reduce", in, ConvParams{c3_reduce, 1, 1, 0});
  const LayerId b3 =
      net.add_conv(prefix + "/3x3", b3r, ConvParams{c3, 3, 1, 1});
  const LayerId b5r =
      net.add_conv(prefix + "/5x5_reduce", in, ConvParams{c5_reduce, 1, 1, 0});
  const LayerId b5 =
      net.add_conv(prefix + "/5x5", b5r, ConvParams{c5, 5, 1, 2});
  const LayerId bp = net.add_pool(prefix + "/pool", in,
                                  PoolParams{PoolMode::kMax, 3, 1, 1});
  const LayerId bpp =
      net.add_conv(prefix + "/pool_proj", bp, ConvParams{pool_proj, 1, 1, 0});
  return net.add_concat(prefix + "/output", {b1, b3, b5, bpp});
}

}  // namespace

Network make_googlenet() {
  Network net("googlenet");
  const LayerId input = net.add_input("data", Shape{3, 224, 224});

  // Stem.
  const LayerId c1 =
      net.add_conv("conv1/7x7_s2", input, ConvParams{64, 7, 2, 3});
  const LayerId p1 =
      net.add_pool("pool1/3x3_s2", c1, PoolParams{PoolMode::kMax, 3, 2, 1});
  const LayerId c2r =
      net.add_conv("conv2/3x3_reduce", p1, ConvParams{64, 1, 1, 0});
  const LayerId c2 = net.add_conv("conv2/3x3", c2r, ConvParams{192, 3, 1, 1});
  const LayerId p2 =
      net.add_pool("pool2/3x3_s2", c2, PoolParams{PoolMode::kMax, 3, 2, 1});

  // Inception stacks.
  LayerId x = append_inception(net, "inception_3a", p2, 64, 96, 128, 16, 32, 32);
  x = append_inception(net, "inception_3b", x, 128, 128, 192, 32, 96, 64);
  x = net.add_pool("pool3/3x3_s2", x, PoolParams{PoolMode::kMax, 3, 2, 1});
  x = append_inception(net, "inception_4a", x, 192, 96, 208, 16, 48, 64);
  x = append_inception(net, "inception_4b", x, 160, 112, 224, 24, 64, 64);
  x = append_inception(net, "inception_4c", x, 128, 128, 256, 24, 64, 64);
  x = append_inception(net, "inception_4d", x, 112, 144, 288, 32, 64, 64);
  x = append_inception(net, "inception_4e", x, 256, 160, 320, 32, 128, 128);
  x = net.add_pool("pool4/3x3_s2", x, PoolParams{PoolMode::kMax, 3, 2, 1});
  x = append_inception(net, "inception_5a", x, 256, 160, 320, 32, 128, 128);
  x = append_inception(net, "inception_5b", x, 384, 192, 384, 48, 128, 128);

  // Classifier head.
  x = net.add_pool("pool5/7x7_s1", x, PoolParams{PoolMode::kAverage, 7, 1, 0});
  net.add_fc("loss3/classifier", x, FcParams{1000});
  return net;
}

Network make_inception_module(Shape input, int c1, int c3_reduce, int c3,
                              int c5_reduce, int c5, int pool_proj) {
  Network net("inception_module");
  const LayerId in = net.add_input("data", input);
  append_inception(net, "inception", in, c1, c3_reduce, c3, c5_reduce, c5,
                   pool_proj);
  return net;
}

Network make_lenet5() {
  Network net("lenet5");
  const LayerId input = net.add_input("data", Shape{1, 32, 32});
  const LayerId c1 = net.add_conv("c1", input, ConvParams{6, 5, 1, 0});
  const LayerId s2 =
      net.add_pool("s2", c1, PoolParams{PoolMode::kAverage, 2, 2, 0});
  const LayerId c3 = net.add_conv("c3", s2, ConvParams{16, 5, 1, 0});
  const LayerId s4 =
      net.add_pool("s4", c3, PoolParams{PoolMode::kAverage, 2, 2, 0});
  const LayerId c5 = net.add_conv("c5", s4, ConvParams{120, 5, 1, 0});
  const LayerId f6 = net.add_fc("f6", c5, FcParams{84});
  net.add_fc("output", f6, FcParams{10});
  return net;
}

Network make_alexnet() {
  Network net("alexnet");
  const LayerId input = net.add_input("data", Shape{3, 227, 227});
  LayerId x = net.add_conv("conv1", input, ConvParams{96, 11, 4, 0});
  x = net.add_pool("pool1", x, PoolParams{PoolMode::kMax, 3, 2, 0});
  x = net.add_conv("conv2", x, ConvParams{256, 5, 1, 2});
  x = net.add_pool("pool2", x, PoolParams{PoolMode::kMax, 3, 2, 0});
  x = net.add_conv("conv3", x, ConvParams{384, 3, 1, 1});
  x = net.add_conv("conv4", x, ConvParams{384, 3, 1, 1});
  x = net.add_conv("conv5", x, ConvParams{256, 3, 1, 1});
  x = net.add_pool("pool5", x, PoolParams{PoolMode::kMax, 3, 2, 0});
  x = net.add_fc("fc6", x, FcParams{4096});
  x = net.add_fc("fc7", x, FcParams{4096});
  net.add_fc("fc8", x, FcParams{1000});
  return net;
}

Network make_vgg16() {
  Network net("vgg16");
  const LayerId input = net.add_input("data", Shape{3, 224, 224});
  LayerId x = input;
  int block = 1;
  int conv_in_block = 1;
  const auto conv = [&](int channels) {
    x = net.add_conv("conv" + std::to_string(block) + "_" +
                         std::to_string(conv_in_block++),
                     x, ConvParams{channels, 3, 1, 1});
  };
  const auto pool = [&] {
    x = net.add_pool("pool" + std::to_string(block), x,
                     PoolParams{PoolMode::kMax, 2, 2, 0});
    ++block;
    conv_in_block = 1;
  };
  conv(64);
  conv(64);
  pool();
  conv(128);
  conv(128);
  pool();
  conv(256);
  conv(256);
  conv(256);
  pool();
  conv(512);
  conv(512);
  conv(512);
  pool();
  conv(512);
  conv(512);
  conv(512);
  pool();
  x = net.add_fc("fc6", x, FcParams{4096});
  x = net.add_fc("fc7", x, FcParams{4096});
  net.add_fc("fc8", x, FcParams{1000});
  return net;
}

}  // namespace paraconv::cnn
