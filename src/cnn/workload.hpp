// The workload zoo: named real-CNN layer configurations loaded from the
// line-oriented workload TSV format (docs/WORKLOADS.md) and lowered through
// cnn/lowering into schedulable task graphs. Every shipped zoo entry is
// embedded here byte-identical to its `workloads/<name>.tsv` file so library
// users need no data directory; the files are the on-disk interchange copy.
#pragma once

#include <string>
#include <vector>

#include "cnn/lowering.hpp"
#include "cnn/network.hpp"
#include "graph/task_graph.hpp"

namespace paraconv::cnn {

/// A parsed workload: the layer DAG plus the file's metadata directives.
struct Workload {
  Network net;
  /// `source` directive — free-text provenance (paper / DeepBench origin).
  std::string source;
  /// `batch` directive — images per iteration when the caller does not
  /// override it; 1 when the directive is absent.
  int default_batch{1};
};

/// Parses workload text (the format specified in docs/WORKLOADS.md).
/// Throws ContractViolation with a typed `[workload-*]` diagnostic naming
/// the offending line on any malformed input.
Workload parse_workload(const std::string& text);

/// Reads and parses a workload file; `[workload-file-missing]` when the
/// path cannot be opened.
Workload load_workload_file(const std::string& path);

/// Names of the built-in zoo entries, in catalog order.
std::vector<std::string> zoo_workload_names();

/// True when `name` is a built-in zoo entry.
bool is_zoo_workload(const std::string& name);

/// Raw workload text of a zoo entry, byte-identical to
/// `workloads/<name>.tsv`. Throws `[workload-unknown]` for other names.
const std::string& zoo_workload_text(const std::string& name);

/// Parses a zoo entry by name.
Workload zoo_workload(const std::string& name);

/// Lowers a workload with `batch` images per iteration (batch >= 1; pass
/// `workload.default_batch` to honor the file's directive). `options.batch`
/// is overwritten by `batch`.
graph::TaskGraph lower_workload(const Workload& workload, int batch,
                                LoweringOptions options = {});

}  // namespace paraconv::cnn
