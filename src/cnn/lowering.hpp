// Lowering a CNN layer DAG to the paper's task-graph application model.
//
// The paper partitions CNN applications "based on the functionality (i.e.,
// convolution, or pooling) to obtain CNN graphs" (Sec. 4.1). We additionally
// support channel-group partitioning: a convolutional layer with C output
// channels may be split into g tasks of C/g channels each, which exposes the
// data-level parallelism Para-CONV schedules across PEs and yields the IPR
// traffic between producer and consumer groups.
#pragma once

#include "cnn/network.hpp"
#include "graph/task_graph.hpp"

namespace paraconv::cnn {

struct LoweringOptions {
  /// Maximum tasks per layer (actual group count is min(groups, channels)).
  int channel_groups{1};

  /// MAC throughput of one PE per abstract time unit; task execution time is
  /// ceil(layer_macs / groups / macs_per_time_unit), at least 1.
  std::int64_t macs_per_time_unit{20'000'000};

  /// Bytes per feature-map element (fp16 by default).
  int element_bytes{2};

  /// Images per lowered iteration. batch > 1 replicates the per-image task
  /// graph once per image: replicas of image i > 0 are named
  /// `<task>@b<i>`, carry zero weight bytes (filter weights are shared with
  /// the image-0 replica, which keeps them all), and receive one
  /// shared-weight edge of Bytes{1} from their image-0 sibling so the
  /// scheduler orders each weight fetch before every reuse and the
  /// allocator sees the reuse affinity.
  int batch{1};
};

/// Lowers `net` to a TaskGraph. Input layers are elided (their consumers
/// become graph sources); concat layers become single 1-time-unit tasks.
/// For channel-wise layers (pooling) with matching group counts, producer
/// group i feeds only consumer group i; all other connections are
/// all-to-all between producer and consumer groups. With options.batch > 1
/// the whole per-image graph is replicated per image plus shared-weight
/// edges (see LoweringOptions::batch).
graph::TaskGraph lower_to_task_graph(const Network& net,
                                     const LoweringOptions& options);

}  // namespace paraconv::cnn
