#include "cnn/reference_ops.hpp"

#include <algorithm>
#include <limits>

#include "common/rng.hpp"

namespace paraconv::cnn {
namespace {

std::vector<float> random_weights(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w(count);
  for (float& v : w) {
    v = static_cast<float>(rng.uniform_real() * 0.2 - 0.1);
  }
  return w;
}

}  // namespace

ConvWeights make_test_conv_weights(const ConvParams& params, int in_channels,
                                   std::uint64_t seed) {
  PARACONV_REQUIRE(in_channels >= 1, "in_channels must be positive");
  const auto filter_count = static_cast<std::size_t>(params.out_channels) *
                            static_cast<std::size_t>(in_channels) *
                            static_cast<std::size_t>(params.kernel) *
                            static_cast<std::size_t>(params.kernel);
  ConvWeights w;
  w.filters = random_weights(filter_count, seed);
  w.bias = random_weights(static_cast<std::size_t>(params.out_channels),
                          seed ^ 0x5151);
  return w;
}

Tensor conv2d(const Tensor& input, const ConvParams& params,
              const ConvWeights& weights, std::int64_t* macs_executed) {
  const Shape in = input.shape();
  const Shape out = infer_output_shape(params, {in});
  const std::size_t expected =
      static_cast<std::size_t>(params.out_channels) *
      static_cast<std::size_t>(in.channels) *
      static_cast<std::size_t>(params.kernel) *
      static_cast<std::size_t>(params.kernel);
  PARACONV_REQUIRE(weights.filters.size() == expected,
                   "filter tensor size mismatch");
  PARACONV_REQUIRE(
      weights.bias.size() == static_cast<std::size_t>(params.out_channels),
      "bias size mismatch");

  Tensor result(out);
  std::int64_t macs = 0;
  const int k = params.kernel;
  for (int oc = 0; oc < out.channels; ++oc) {
    for (int oy = 0; oy < out.height; ++oy) {
      for (int ox = 0; ox < out.width; ++ox) {
        float acc = weights.bias[static_cast<std::size_t>(oc)];
        const int base_y = oy * params.stride - params.pad;
        const int base_x = ox * params.stride - params.pad;
        for (int ic = 0; ic < in.channels; ++ic) {
          for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
              const std::size_t widx =
                  ((static_cast<std::size_t>(oc) *
                        static_cast<std::size_t>(in.channels) +
                    static_cast<std::size_t>(ic)) *
                       static_cast<std::size_t>(k) +
                   static_cast<std::size_t>(ky)) *
                      static_cast<std::size_t>(k) +
                  static_cast<std::size_t>(kx);
              acc += weights.filters[widx] *
                     input.at_padded(ic, base_y + ky, base_x + kx);
              ++macs;
            }
          }
        }
        result.at(oc, oy, ox) = acc;
      }
    }
  }
  if (macs_executed != nullptr) *macs_executed = macs;
  return result;
}

std::vector<float> im2col(const Tensor& input, const ConvParams& params) {
  const Shape in = input.shape();
  const Shape out = infer_output_shape(params, {in});
  const int k = params.kernel;
  const std::size_t rows = static_cast<std::size_t>(in.channels) *
                           static_cast<std::size_t>(k) *
                           static_cast<std::size_t>(k);
  const std::size_t cols = static_cast<std::size_t>(out.height) *
                           static_cast<std::size_t>(out.width);
  std::vector<float> matrix(rows * cols, 0.0f);

  std::size_t row = 0;
  for (int ic = 0; ic < in.channels; ++ic) {
    for (int ky = 0; ky < k; ++ky) {
      for (int kx = 0; kx < k; ++kx, ++row) {
        std::size_t col = 0;
        for (int oy = 0; oy < out.height; ++oy) {
          for (int ox = 0; ox < out.width; ++ox, ++col) {
            matrix[row * cols + col] = input.at_padded(
                ic, oy * params.stride - params.pad + ky,
                ox * params.stride - params.pad + kx);
          }
        }
      }
    }
  }
  return matrix;
}

Tensor conv2d_im2col(const Tensor& input, const ConvParams& params,
                     const ConvWeights& weights) {
  const Shape in = input.shape();
  const Shape out = infer_output_shape(params, {in});
  const std::size_t rows = static_cast<std::size_t>(in.channels) *
                           static_cast<std::size_t>(params.kernel) *
                           static_cast<std::size_t>(params.kernel);
  const std::size_t cols = static_cast<std::size_t>(out.height) *
                           static_cast<std::size_t>(out.width);
  PARACONV_REQUIRE(weights.filters.size() ==
                       static_cast<std::size_t>(params.out_channels) * rows,
                   "filter tensor size mismatch");
  PARACONV_REQUIRE(
      weights.bias.size() == static_cast<std::size_t>(params.out_channels),
      "bias size mismatch");

  const std::vector<float> columns = im2col(input, params);
  Tensor result(out);
  for (int oc = 0; oc < params.out_channels; ++oc) {
    const float* filter = weights.filters.data() +
                          static_cast<std::size_t>(oc) * rows;
    for (std::size_t col = 0; col < cols; ++col) {
      float acc = weights.bias[static_cast<std::size_t>(oc)];
      for (std::size_t row = 0; row < rows; ++row) {
        acc += filter[row] * columns[row * cols + col];
      }
      result.data()[static_cast<std::size_t>(oc) * cols + col] = acc;
    }
  }
  return result;
}

Tensor pool2d(const Tensor& input, const PoolParams& params) {
  const Shape in = input.shape();
  const Shape out = infer_output_shape(params, {in});
  Tensor result(out);
  const int k = params.kernel;
  for (int c = 0; c < out.channels; ++c) {
    for (int oy = 0; oy < out.height; ++oy) {
      for (int ox = 0; ox < out.width; ++ox) {
        const int base_y = oy * params.stride - params.pad;
        const int base_x = ox * params.stride - params.pad;
        if (params.mode == PoolMode::kMax) {
          float best = std::numeric_limits<float>::lowest();
          for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
              best = std::max(best, input.at_padded(c, base_y + ky,
                                                    base_x + kx));
            }
          }
          result.at(c, oy, ox) = best;
        } else {
          float sum = 0.0f;
          for (int ky = 0; ky < k; ++ky) {
            for (int kx = 0; kx < k; ++kx) {
              sum += input.at_padded(c, base_y + ky, base_x + kx);
            }
          }
          result.at(c, oy, ox) = sum / static_cast<float>(k * k);
        }
      }
    }
  }
  return result;
}

FcWeights make_test_fc_weights(const FcParams& params, std::int64_t in_features,
                               std::uint64_t seed) {
  PARACONV_REQUIRE(in_features >= 1, "in_features must be positive");
  FcWeights w;
  w.matrix = random_weights(
      static_cast<std::size_t>(params.out_features) *
          static_cast<std::size_t>(in_features),
      seed);
  w.bias = random_weights(static_cast<std::size_t>(params.out_features),
                          seed ^ 0xFC15);
  return w;
}

Tensor fully_connected(const Tensor& input, const FcParams& params,
                       const FcWeights& weights) {
  const std::int64_t in_features = input.shape().elements();
  PARACONV_REQUIRE(
      weights.matrix.size() ==
          static_cast<std::size_t>(params.out_features) *
              static_cast<std::size_t>(in_features),
      "fc matrix size mismatch");
  Tensor result(Shape{params.out_features, 1, 1});
  for (int o = 0; o < params.out_features; ++o) {
    float acc = weights.bias[static_cast<std::size_t>(o)];
    for (std::int64_t i = 0; i < in_features; ++i) {
      acc += weights.matrix[static_cast<std::size_t>(o) *
                                static_cast<std::size_t>(in_features) +
                            static_cast<std::size_t>(i)] *
             input.data()[static_cast<std::size_t>(i)];
    }
    result.at(o, 0, 0) = acc;
  }
  return result;
}

Tensor concat(const std::vector<Tensor>& inputs) {
  PARACONV_REQUIRE(inputs.size() >= 2, "concat requires at least two inputs");
  std::vector<Shape> shapes;
  shapes.reserve(inputs.size());
  for (const Tensor& t : inputs) shapes.push_back(t.shape());
  const Shape out = infer_output_shape(ConcatParams{}, shapes);

  Tensor result(out);
  int channel_base = 0;
  for (const Tensor& t : inputs) {
    const Shape s = t.shape();
    for (int c = 0; c < s.channels; ++c) {
      for (int y = 0; y < s.height; ++y) {
        for (int x = 0; x < s.width; ++x) {
          result.at(channel_base + c, y, x) = t.at(c, y, x);
        }
      }
    }
    channel_base += s.channels;
  }
  return result;
}

Tensor relu(const Tensor& input) {
  Tensor result = input;
  for (float& v : result.data()) v = std::max(v, 0.0f);
  return result;
}

}  // namespace paraconv::cnn
