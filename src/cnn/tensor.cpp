#include "cnn/tensor.hpp"

// Header-only; translation unit anchors the component in the build.
