// A CNN as a DAG of layers, with shape inference and cost accounting.
#pragma once

#include <string>
#include <vector>

#include "cnn/layer.hpp"

namespace paraconv::cnn {

/// Layer DAG with memoized shape inference.
///
/// Layers must be added in topological order (inputs before consumers);
/// this is the natural order for hand-built and generated networks and
/// keeps inference single-pass.
class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  LayerId add_input(std::string name, Shape shape);
  LayerId add_conv(std::string name, LayerId input, ConvParams params);
  LayerId add_pool(std::string name, LayerId input, PoolParams params);
  LayerId add_fc(std::string name, LayerId input, FcParams params);
  LayerId add_concat(std::string name, std::vector<LayerId> inputs);
  LayerId add_eltwise(std::string name, std::vector<LayerId> inputs);

  std::size_t layer_count() const { return layers_.size(); }
  const Layer& layer(LayerId id) const {
    PARACONV_REQUIRE(id.value < layers_.size(), "invalid layer id");
    return layers_[id.value];
  }

  /// Output feature-map shape of a layer (memoized at insertion).
  const Shape& output_shape(LayerId id) const {
    PARACONV_REQUIRE(id.value < shapes_.size(), "invalid layer id");
    return shapes_[id.value];
  }

  /// Per-layer multiply-accumulate count.
  std::int64_t macs(LayerId id) const;
  /// Per-layer filter weight count.
  std::int64_t weight_count(LayerId id) const;

  /// Whole-network totals.
  std::int64_t total_macs() const;
  std::int64_t total_weights() const;

  /// Layers with no consumers (network outputs).
  std::vector<LayerId> outputs() const;

 private:
  LayerId add_layer(Layer layer);
  std::vector<Shape> input_shapes(const Layer& layer) const;

  std::string name_;
  std::vector<Layer> layers_;
  std::vector<Shape> shapes_;
  std::vector<std::vector<LayerId>> consumers_;
};

}  // namespace paraconv::cnn
