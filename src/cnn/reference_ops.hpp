// Reference (naive, obviously-correct) forward operators for the CNN layer
// descriptors. Used by tests to validate shape inference and cost accounting
// and by examples to run real inference through the modelled networks.
#pragma once

#include <cstdint>

#include "cnn/layer.hpp"
#include "cnn/tensor.hpp"

namespace paraconv::cnn {

/// Convolution weights: [out_c][in_c][k][k] flattened out_c-major, plus one
/// bias per output channel.
struct ConvWeights {
  std::vector<float> filters;
  std::vector<float> bias;
};

/// Deterministic pseudo-random weights for reproducible examples/tests.
ConvWeights make_test_conv_weights(const ConvParams& params, int in_channels,
                                   std::uint64_t seed);

/// y = conv(x, w) with zero padding; returns the MAC count actually executed
/// via `macs_executed` (for cross-checking layer_macs).
Tensor conv2d(const Tensor& input, const ConvParams& params,
              const ConvWeights& weights, std::int64_t* macs_executed = nullptr);

/// Lowers the input to a column matrix (in_c*k*k rows x out_h*out_w
/// columns), the standard GEMM formulation of convolution.
std::vector<float> im2col(const Tensor& input, const ConvParams& params);

/// Convolution via im2col + matrix multiply; numerically equivalent to
/// `conv2d` (same summation order per output), used as a cross-check and as
/// the compute pattern PIM dataflows actually execute.
Tensor conv2d_im2col(const Tensor& input, const ConvParams& params,
                     const ConvWeights& weights);

Tensor pool2d(const Tensor& input, const PoolParams& params);

/// Fully connected: weights [out][in] flattened out-major, one bias per out.
struct FcWeights {
  std::vector<float> matrix;
  std::vector<float> bias;
};

FcWeights make_test_fc_weights(const FcParams& params, std::int64_t in_features,
                               std::uint64_t seed);

Tensor fully_connected(const Tensor& input, const FcParams& params,
                       const FcWeights& weights);

/// Channel concatenation (spatial extents must match).
Tensor concat(const std::vector<Tensor>& inputs);

/// Elementwise ReLU.
Tensor relu(const Tensor& input);

}  // namespace paraconv::cnn
