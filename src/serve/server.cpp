#include "serve/server.hpp"

#include <chrono>
#include <deque>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "cnn/workload.hpp"
#include "common/check.hpp"
#include "dse/frontier.hpp"
#include "dse/memo_store.hpp"
#include "graph/paper_benchmarks.hpp"
#include "obs/obs.hpp"
#include "pim/config.hpp"

#ifdef PARACONV_SERVE_POSIX
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif
#endif

namespace paraconv::serve {
namespace {

bool stop_set(const std::atomic<bool>* stop) {
  // ANALYZE-ALLOW(atomic): advisory shutdown poll — the loops re-check
  // every iteration and joining the transport threads is the real
  // happens-before edge for anything they wrote.
  return stop != nullptr && stop->load(std::memory_order_relaxed);
}

std::future<std::string> ready_response(std::string response) {
  std::promise<std::string> promise;
  promise.set_value(std::move(response));
  return promise.get_future();
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  PARACONV_REQUIRE(options_.jobs >= 0, "serve jobs must be >= 0");
  PARACONV_REQUIRE(options_.max_queue >= 1 && options_.max_queue <= 4096,
                   "serve max_queue must be in [1, 4096]");
  PARACONV_REQUIRE(options_.deadline_ms >= 0,
                   "serve deadline_ms must be >= 0");
  PARACONV_REQUIRE(options_.flush_every >= 0,
                   "serve flush_every must be >= 0");
  PARACONV_REQUIRE(options_.flush_every == 0 || !options_.cache_file.empty(),
                   "serve flush_every requires a cache file");
  if (!options_.cache_file.empty()) {
    loaded_entries_ = dse::load_memo_cache(&cache_, options_.cache_file);
  }
  dse::ThreadPool::Options pool_options;
  pool_options.threads = options_.jobs;
  pool_ = std::make_unique<dse::ThreadPool>(pool_options);
}

Server::~Server() {
  try {
    release_blocked();
    pool_.reset();
    flush_cache();
  } catch (const std::exception&) {
    // Destruction is a best-effort flush; the transports' return paths
    // flush loudly before we ever get here on the graceful routes.
  }
}

std::string Server::reject(const ServeRequest& request, const char* code,
                           const std::string& message) {
  // ANALYZE-ALLOW(atomic): monotonic tally; stats() readers tolerate any
  // interleaving.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.requests.rejected");
  return error_response(request, code, message);
}

std::future<std::string> Server::submit_line(const std::string& line) {
  ParseOutcome parsed = parse_request(line);
  if (!parsed.ok) {
    return ready_response(reject(parsed.request, parsed.error_code.c_str(),
                                 parsed.error_message));
  }
  ServeRequest request = std::move(parsed.request);
  if (request.op == "block" && !options_.enable_test_ops) {
    return ready_response(reject(request, kErrorBadRequest,
                                 "op \"block\" is test-only"));
  }

  // ANALYZE-ALLOW(atomic): acq_rel makes the admission ticket a
  // read-modify-write chain — every submit observes the depth including
  // all earlier admissions/releases, so the max_queue bound is exact.
  const int waiting = queued_.fetch_add(1, std::memory_order_acq_rel);
  if (waiting >= options_.max_queue) {
    // ANALYZE-ALLOW(atomic): same RMW-chain argument as the admission.
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    return ready_response(
        reject(request, kErrorQueueFull,
               "request queue is full (max " +
                   std::to_string(options_.max_queue) + " waiting)"));
  }

  // ANALYZE-ALLOW(nondet): queue-wait deadline measurement; reaches only
  // the latency fields of serve responses, which are documented as
  // wall-clock (outside the byte-identity contract).
  const auto admitted = std::chrono::steady_clock::now();
  return pool_->async([this, request = std::move(request),
                       admitted]() -> std::string {
    // ANALYZE-ALLOW(atomic): same RMW-chain argument as the admission.
    queued_.fetch_sub(1, std::memory_order_acq_rel);
    if (options_.deadline_ms > 0) {
      const auto waited_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              // ANALYZE-ALLOW(nondet): deadline check against the
              // admission timestamp; latency surface only.
              std::chrono::steady_clock::now() - admitted)
              .count();
      if (waited_ms > options_.deadline_ms) {
        return reject(request, kErrorDeadline,
                      "request waited " + std::to_string(waited_ms) +
                          " ms, past the " +
                          std::to_string(options_.deadline_ms) +
                          " ms deadline");
      }
    }
    std::string response = execute(request);
    note_completed();
    return response;
  });
}

std::string Server::execute(const ServeRequest& request) {
  const obs::ScopedSpan span("serve.request", request.op);
  if (request.op == "schedule") return execute_schedule(request);
  if (request.op == "block") {
    std::unique_lock<std::mutex> lock(block_mu_);
    ++blocked_;
    block_cv_.notify_all();
    block_cv_.wait(lock, [this] { return release_all_; });
    --blocked_;
  }
  if (request.op == "shutdown") {
    // ANALYZE-ALLOW(atomic): advisory flag; the transports poll it every
    // loop iteration and joining them orders everything that follows.
    shutdown_requested_.store(true, std::memory_order_relaxed);
  }
  // ANALYZE-ALLOW(atomic): monotonic tally; stats() is advisory.
  ok_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.requests.ok");
  return ok_response(request, nullptr, cache_.stats(), 0.0);
}

std::string Server::execute_schedule(const ServeRequest& request) {
  // ANALYZE-ALLOW(nondet): wall_ms latency telemetry in the response;
  // the result payload itself stays deterministic.
  const auto start = std::chrono::steady_clock::now();
  dse::CellResult cell;
  try {
    dse::SweepCase sweep_case;
    if (!request.workload.empty()) {
      // Zoo workloads are lowered on demand; batch 0 defers to the entry's
      // own `batch` directive. The case carries its batch so the response
      // cell reports the `batch` key exactly like a sweep cell would.
      const cnn::Workload workload = cnn::zoo_workload(request.workload);
      const int batch =
          request.batch == 0 ? workload.default_batch : request.batch;
      sweep_case = dse::SweepCase{workload.net.name(),
                                  cnn::lower_workload(workload, batch),
                                  batch};
    } else {
      sweep_case = dse::SweepCase{
          request.benchmark,
          graph::build_paper_benchmark(graph::paper_benchmark(
              request.benchmark))};
    }
    const pim::PimConfig config = pim::PimConfig::neurocube(request.pes);
    cell = dse::evaluate_cell(
        sweep_case, config, request.packer, request.allocator,
        request.iterations, /*refine_steps=*/0,
        dse::cell_seed(request.seed, request.cell_index),
        request.with_baseline, &cache_);
    // The response cell stands for this grid index of the sweep the farm
    // controller is assembling, so carry it like run_sweep would.
    cell.index = static_cast<std::size_t>(request.cell_index);
  } catch (const ContractViolation& violation) {
    // ANALYZE-ALLOW(atomic): monotonic tally; stats() is advisory.
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.requests.error");
    return error_response(request, "contract-violation", violation.what());
  } catch (const std::exception& error) {
    // ANALYZE-ALLOW(atomic): monotonic tally; stats() is advisory.
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::count("serve.requests.error");
    return error_response(request, "exception", error.what());
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          // ANALYZE-ALLOW(nondet): closes the latency window opened above.
          std::chrono::steady_clock::now() - start)
          .count();
  // ANALYZE-ALLOW(atomic): monotonic tally; stats() is advisory.
  ok_.fetch_add(1, std::memory_order_relaxed);
  obs::count("serve.requests.ok");
  const report::JsonValue result = dse::cell_to_json(cell);
  return ok_response(request, &result, cache_.stats(), wall_ms);
}

void Server::note_completed() {
  const std::uint64_t done =
      // ANALYZE-ALLOW(atomic): the RMW is total over completed_ regardless
      // of order, so every Nth completion triggers exactly one periodic
      // flush; no other state rides on this edge.
      completed_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.flush_every > 0 &&
      done % static_cast<std::uint64_t>(options_.flush_every) == 0) {
    try {
      flush_cache();
    } catch (const std::exception&) {
      // A periodic spill hiccup must not fail the request that triggered
      // it; the shutdown flush still reports persistent I/O errors.
    }
  }
}

std::size_t Server::flush_cache() {
  if (options_.cache_file.empty()) return 0;
  const std::lock_guard<std::mutex> lock(flush_mu_);
  const std::size_t spilled =
      dse::save_memo_cache(cache_, options_.cache_file);
  obs::count("serve.cache.flushes");
  return spilled;
}

std::size_t Server::blocked() const {
  const std::lock_guard<std::mutex> lock(block_mu_);
  return blocked_;
}

void Server::release_blocked() {
  const std::lock_guard<std::mutex> lock(block_mu_);
  release_all_ = true;
  block_cv_.notify_all();
}

Server::Stats Server::stats() const {
  Stats stats;
  // ANALYZE-ALLOW-BEGIN(atomic): advisory point-in-time snapshot; callers
  // sample after the transports return (join orders the final values) or
  // accept a racy reading.
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  // ANALYZE-ALLOW-END(atomic)
  return stats;
}

void Server::run_pipe(std::istream& in, std::ostream& out,
                      const std::atomic<bool>* stop) {
  std::deque<std::future<std::string>> pending;
  std::mutex mu;
  std::condition_variable cv;
  bool done_reading = false;

  // Responses drain on a writer thread in admission order, so a slow
  // request never blocks the reader from admitting (or queue-rejecting)
  // the ones behind it.
  std::thread writer([&] {
    while (true) {
      std::future<std::string> next;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return done_reading || !pending.empty(); });
        if (pending.empty()) return;
        next = std::move(pending.front());
        pending.pop_front();
      }
      out << next.get() << "\n" << std::flush;
    }
  });

  std::string line;
  while (!stop_set(stop) &&
         // ANALYZE-ALLOW(atomic): advisory poll re-checked every line;
         // the writer join below orders everything the workers wrote.
         !shutdown_requested_.load(std::memory_order_relaxed) &&
         std::getline(in, line)) {
    if (line.empty()) continue;
    {
      const std::lock_guard<std::mutex> lock(mu);
      pending.push_back(submit_line(line));
    }
    cv.notify_one();
  }

  {
    const std::lock_guard<std::mutex> lock(mu);
    done_reading = true;
  }
  cv.notify_all();
  writer.join();
  flush_cache();
}

#ifdef PARACONV_SERVE_POSIX

void Server::run_socket(const std::string& path,
                        const std::atomic<bool>* stop) {
  sockaddr_un addr{};
  PARACONV_REQUIRE(path.size() < sizeof(addr.sun_path),
                   "socket path too long: " + path);
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  PARACONV_REQUIRE(listen_fd >= 0, "cannot create a unix socket");
  addr.sun_family = AF_UNIX;
  std::snprintf(static_cast<char*>(addr.sun_path), sizeof(addr.sun_path),
                "%s", path.c_str());
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    PARACONV_REQUIRE(false, "cannot bind/listen on socket: " + path);
  }

  std::vector<std::thread> connections;
  while (!stop_set(stop) &&
         // ANALYZE-ALLOW(atomic): advisory poll re-checked every accept
         // timeout; the connection joins below are the happens-before edge.
         !shutdown_requested_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.emplace_back(
        [this, fd, stop] { serve_connection(fd, stop); });
  }
  ::close(listen_fd);
  for (std::thread& connection : connections) connection.join();
  ::unlink(path.c_str());
  flush_cache();
}

void Server::serve_connection(int fd, const std::atomic<bool>* stop) {
  std::string buffer;
  std::vector<char> chunk(4096);
  bool alive = true;
  while (alive && !stop_set(stop) &&
         // ANALYZE-ALLOW(atomic): advisory poll re-checked every recv
         // timeout; run_socket joins this thread before teardown.
         !shutdown_requested_.load(std::memory_order_relaxed)) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready == 0) continue;  // timeout: re-check the stop flag
    if (ready < 0) break;
    const ssize_t received = ::recv(fd, chunk.data(), chunk.size(), 0);
    if (received <= 0) break;
    buffer.append(chunk.data(), static_cast<std::size_t>(received));
    std::size_t newline = 0;
    while (alive && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      std::string response = submit_line(line).get();
      response += '\n';
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t wrote =
            ::send(fd, response.data() + sent, response.size() - sent,
                   MSG_NOSIGNAL);
        if (wrote <= 0) {
          alive = false;
          break;
        }
        sent += static_cast<std::size_t>(wrote);
      }
    }
  }
  ::close(fd);
}

#endif  // PARACONV_SERVE_POSIX

}  // namespace paraconv::serve
