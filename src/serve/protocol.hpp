// Wire protocol of the serve daemon: line-delimited JSON requests and
// responses (one compact JSON object per line in both directions).
//
// Requests name an op ("schedule", "stats", "shutdown"; "block" exists for
// tests only) plus schedule parameters mirroring the sweep grid axes.
// Responses reuse the CellResult ok|error status schema (dse/sweep.hpp):
// `status` carries exactly the to_string(CellStatus) tokens, errors carry
// the same `error_code`/`error_message` pair the sweep CSV/JSON rows do,
// and a successful schedule's `result` object is the sweep JSON cell
// (dse::cell_to_json) byte for byte. paraconv_lint's schema checks keep
// this file in agreement with the CellStatus tokens.
#pragma once

#include <optional>
#include <string>

#include "core/para_conv.hpp"
#include "dse/memo_cache.hpp"
#include "dse/sweep.hpp"
#include "report/json.hpp"

namespace paraconv::serve {

/// Typed rejection classes the daemon emits before (or instead of)
/// evaluating a request. Execution failures reuse the sweep cell codes
/// ("contract-violation", "exception").
inline constexpr const char* kErrorParse = "parse-error";
inline constexpr const char* kErrorBadRequest = "bad-request";
inline constexpr const char* kErrorQueueFull = "queue-full";
inline constexpr const char* kErrorDeadline = "deadline-exceeded";

struct ServeRequest {
  /// Opaque client token, echoed back verbatim (empty when omitted).
  std::string id;
  /// "schedule" | "stats" | "shutdown" | "block" (test-only).
  std::string op;
  /// Paper benchmark name; op == "schedule" needs this or `workload`
  /// (exactly one — the two are mutually exclusive).
  std::string benchmark;
  /// CNN zoo workload name (cnn::zoo_workload_names; docs/WORKLOADS.md),
  /// lowered to a task graph instead of building a paper benchmark. The
  /// daemon serves only built-in zoo entries, never file paths.
  std::string workload;
  /// Images per iteration of the lowered `workload` graph. 0 (the default)
  /// means the workload's own `batch` directive; requires `workload`.
  int batch{0};
  int pes{32};
  std::int64_t iterations{100};
  core::AllocatorKind allocator{core::AllocatorKind::kKnapsackDp};
  core::PackerKind packer{core::PackerKind::kTopological};
  bool with_baseline{true};
  /// Sweep seed; the cell evaluates with dse::cell_seed(seed, cell_index)
  /// exactly like that grid index of a one-shot sweep.
  std::uint64_t seed{0};
  /// Global grid index of the cell this request stands for (default 0).
  /// A sweep farm driving daemons as workers sets it so the daemon's
  /// per-cell seed matches the sharded/unsharded CLI sweep byte for byte.
  std::uint64_t cell_index{0};
  /// Optional "i/N" shard label (dse::parse_shard syntax), echoed back in
  /// every response so a farm controller can attribute answers to workers.
  /// Validated but not otherwise interpreted: the controller, not the
  /// daemon, decides which cells a shard owns.
  std::string shard;
};

struct ParseOutcome {
  bool ok{false};
  ServeRequest request;
  /// kErrorParse or kErrorBadRequest when !ok.
  std::string error_code;
  std::string error_message;
};

/// Strictly parses one request line: malformed JSON is "parse-error";
/// a non-object document, unknown field, unknown op/allocator/packer
/// spelling, or out-of-range value is "bad-request". On failure the
/// partially-parsed id/op (when available) are kept for the echo.
ParseOutcome parse_request(const std::string& line);

/// Successful response. `result` is optional (schedule responses attach
/// the sweep JSON cell; stats/shutdown responses carry none) and `memo`
/// reports the daemon's cumulative cache stats.
std::string ok_response(const ServeRequest& request,
                        const report::JsonValue* result,
                        const dse::MemoCache::Stats& memo, double wall_ms);

/// Typed failure response carrying the CellResult error schema.
std::string error_response(const ServeRequest& request,
                           const std::string& error_code,
                           const std::string& error_message);

/// Maps a wire status token back to the enum; nullopt on drift. Inverse of
/// dse::to_string(CellStatus).
std::optional<dse::CellStatus> status_from_token(const std::string& token);

}  // namespace paraconv::serve
