#include "serve/loadgen.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "report/json_reader.hpp"

namespace paraconv::serve {
namespace {

enum class ResponseClass { kOk, kRejected, kErrored };

ResponseClass classify(const std::string& response) {
  report::JsonDoc doc;
  std::string error;
  PARACONV_REQUIRE(report::parse_json(response, &doc, &error),
                   "unparseable serve response: " + error);
  const report::JsonDoc* status = doc.find("status");
  PARACONV_REQUIRE(status != nullptr &&
                       status->kind == report::JsonDoc::Kind::kString,
                   "serve response is missing a string status");
  const auto parsed = status_from_token(status->text);
  PARACONV_REQUIRE(parsed.has_value(),
                   "unknown serve status token: " + status->text);
  if (*parsed == dse::CellStatus::kOk) return ResponseClass::kOk;
  const report::JsonDoc* code = doc.find("error_code");
  PARACONV_REQUIRE(code != nullptr &&
                       code->kind == report::JsonDoc::Kind::kString,
                   "serve error response is missing an error_code");
  const bool rejected =
      code->text == kErrorParse || code->text == kErrorBadRequest ||
      code->text == kErrorQueueFull || code->text == kErrorDeadline;
  return rejected ? ResponseClass::kRejected : ResponseClass::kErrored;
}

}  // namespace

LoadReport run_load(Server& server, const LoadSpec& spec) {
  PARACONV_REQUIRE(spec.clients >= 1, "load spec needs at least one client");
  PARACONV_REQUIRE(spec.requests_per_client >= 1,
                   "load spec needs at least one request per client");
  PARACONV_REQUIRE(!spec.request_lines.empty(),
                   "load spec needs request lines");

  LoadReport report;
  std::vector<double> latencies_ns;
  latencies_ns.reserve(static_cast<std::size_t>(spec.clients) *
                       static_cast<std::size_t>(spec.requests_per_client));
  std::mutex mu;

  // ANALYZE-ALLOW(nondet): the load generator's entire output is a latency
  // measurement (docs/BENCHMARKS.md wall-clock exceptions) — never part of
  // the byte-identity contract.
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(spec.clients));
  for (int client = 0; client < spec.clients; ++client) {
    clients.emplace_back([&, client] {
      std::vector<double> local_ns;
      std::uint64_t ok = 0;
      std::uint64_t rejected = 0;
      std::uint64_t errored = 0;
      for (int i = 0; i < spec.requests_per_client; ++i) {
        const std::size_t pick =
            (static_cast<std::size_t>(client) + static_cast<std::size_t>(i)) %
            spec.request_lines.size();
        // ANALYZE-ALLOW(nondet): per-request latency sample.
        const auto start = std::chrono::steady_clock::now();
        const std::string response =
            server.submit_line(spec.request_lines[pick]).get();
        // ANALYZE-ALLOW(nondet): per-request latency sample.
        const auto end = std::chrono::steady_clock::now();
        local_ns.push_back(static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count()));
        switch (classify(response)) {
          case ResponseClass::kOk:
            ++ok;
            break;
          case ResponseClass::kRejected:
            ++rejected;
            break;
          case ResponseClass::kErrored:
            ++errored;
            break;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      latencies_ns.insert(latencies_ns.end(), local_ns.begin(),
                          local_ns.end());
      report.ok += ok;
      report.rejected += rejected;
      report.errored += errored;
    });
  }
  for (std::thread& client : clients) client.join();

  report.wall_seconds =
      // ANALYZE-ALLOW(nondet): wall-clock span of the whole run, reported
      // as throughput telemetry.
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.p50_ns = percentile(latencies_ns, 50.0);
  report.p99_ns = percentile(latencies_ns, 99.0);
  const auto total = static_cast<double>(latencies_ns.size());
  report.throughput_rps =
      report.wall_seconds > 0.0 ? total / report.wall_seconds : 0.0;
  return report;
}

}  // namespace paraconv::serve
