// The serve daemon core: a long-lived request executor over the dse
// work-stealing pool with one warm, shared, persistent packing memo cache.
//
// Lifecycle: the constructor loads the cache file (fingerprint-validated;
// a missing file is a cold start), requests execute concurrently on the
// pool, and the cache spills back to disk periodically (--flush-every) and
// on graceful shutdown (run_pipe/run_socket returning, or destruction).
//
// Admission control: at most `max_queue` requests may be waiting; the next
// one is answered immediately with a typed "queue-full" rejection instead
// of blocking the client. A request older than `deadline_ms` by the time a
// worker picks it up is answered "deadline-exceeded" without evaluating.
//
// Transports: submit_line() is the in-process API; run_pipe() drains an
// istream of request lines and writes responses in admission order
// (testable, and what `paraconv_cli serve` uses without --socket);
// run_socket() accepts unix-domain connections (POSIX only).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "dse/memo_cache.hpp"
#include "dse/thread_pool.hpp"
#include "serve/protocol.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PARACONV_SERVE_POSIX 1
#endif

namespace paraconv::serve {

struct ServerOptions {
  /// Worker threads; 0 = one per hardware thread.
  int jobs{1};
  /// Bound on admitted-but-not-yet-running requests; must be in [1, 4096]
  /// (the pool's own queue capacity backs it).
  int max_queue{64};
  /// Per-request deadline from admission to dequeue; 0 disables.
  std::int64_t deadline_ms{0};
  /// Memo cache spill/load path; empty disables persistence.
  std::string cache_file{};
  /// Flush the cache every N completed requests; 0 = only on shutdown.
  /// Requires cache_file.
  std::int64_t flush_every{0};
  /// Admit the test-only "block" op, which parks a worker until
  /// release_blocked() — tests use it to fill the queue deterministically.
  bool enable_test_ops{false};
};

class Server {
 public:
  /// Validates options, loads the cache file when set (throws
  /// ContractViolation if the file exists but fails validation), and
  /// starts the worker pool.
  explicit Server(ServerOptions options);

  /// Releases any parked test requests, drains workers, and flushes the
  /// cache (best effort — errors are swallowed; shut down via the
  /// transports' return paths to observe flush failures).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parses, admits, and executes one request line. The future resolves to
  /// the single-line JSON response; rejections (parse-error, bad-request,
  /// queue-full) resolve immediately without occupying a worker.
  std::future<std::string> submit_line(const std::string& line);

  /// Reads request lines from `in` until EOF, a "shutdown" request, or
  /// `*stop` becomes true; writes one response line per request to `out`
  /// in admission order, then flushes the cache.
  void run_pipe(std::istream& in, std::ostream& out,
                const std::atomic<bool>* stop = nullptr);

#ifdef PARACONV_SERVE_POSIX
  /// Listens on a unix-domain socket at `path` (replacing any stale socket
  /// file), serving each connection's request lines concurrently, until
  /// `*stop` becomes true or any connection sends "shutdown"; then flushes
  /// the cache.
  void run_socket(const std::string& path, const std::atomic<bool>* stop);
#endif

  /// Spills the memo cache to options.cache_file; no-op (returns 0) when
  /// persistence is disabled.
  std::size_t flush_cache();

  dse::MemoCache::Stats cache_stats() const { return cache_.stats(); }

  /// Entries restored from the cache file at startup.
  std::size_t loaded_entries() const { return loaded_entries_; }

  /// Requests currently parked by the test-only "block" op.
  std::size_t blocked() const;

  /// Releases every parked "block" request.
  void release_blocked();

  struct Stats {
    std::uint64_t ok{0};
    /// parse-error, bad-request, queue-full, and deadline-exceeded
    /// responses.
    std::uint64_t rejected{0};
    /// Admitted requests whose evaluation failed (contract-violation or
    /// exception responses).
    std::uint64_t errors{0};
  };
  Stats stats() const;

 private:
  std::string execute(const ServeRequest& request);
  std::string execute_schedule(const ServeRequest& request);
  std::string reject(const ServeRequest& request, const char* code,
                     const std::string& message);
  void note_completed();
#ifdef PARACONV_SERVE_POSIX
  void serve_connection(int fd, const std::atomic<bool>* stop);
#endif

  ServerOptions options_;
  dse::MemoCache cache_;
  std::size_t loaded_entries_{0};
  std::unique_ptr<dse::ThreadPool> pool_;

  std::atomic<int> queued_{0};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> completed_{0};

  std::mutex flush_mu_;

  mutable std::mutex block_mu_;
  std::condition_variable block_cv_;
  bool release_all_{false};    // GUARDED-BY(block_mu_)
  std::size_t blocked_{0};     // GUARDED-BY(block_mu_)
};

}  // namespace paraconv::serve
