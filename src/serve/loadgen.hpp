// Load generator for the serve daemon: N concurrent clients submit
// request lines against an in-process Server and the report aggregates
// p50/p99 request latency, throughput, and per-class response counts.
// Shared by the `bench serve` suite, the serve tests, and CI's
// serve-smoke job so they all measure the same thing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.hpp"

namespace paraconv::serve {

struct LoadSpec {
  /// Concurrent client threads; each runs a closed loop (next request
  /// only after the previous response).
  int clients{2};
  int requests_per_client{8};
  /// Request lines cycled round-robin per client; must be non-empty.
  std::vector<std::string> request_lines;
};

struct LoadReport {
  std::uint64_t ok{0};
  /// Typed rejections: parse-error, bad-request, queue-full,
  /// deadline-exceeded.
  std::uint64_t rejected{0};
  /// Admitted requests that failed evaluation.
  std::uint64_t errored{0};
  double p50_ns{0.0};
  double p99_ns{0.0};
  double wall_seconds{0.0};
  double throughput_rps{0.0};
};

/// Runs the closed-loop load and classifies every response by its
/// status/error_code fields. Throws ContractViolation on an invalid spec
/// or an unparseable response (protocol drift).
LoadReport run_load(Server& server, const LoadSpec& spec);

}  // namespace paraconv::serve
