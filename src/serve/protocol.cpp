#include "serve/protocol.hpp"

#include <cmath>
#include <cstdint>
#include <utility>

#include "cnn/workload.hpp"
#include "dse/shard.hpp"
#include "report/json_reader.hpp"

namespace paraconv::serve {
namespace {

using report::JsonDoc;

/// Largest magnitude a double carries exactly; request integers beyond it
/// would already have lost precision in the JSON number.
constexpr std::int64_t kMaxExactInt = 1LL << 53;

bool integral_in_range(const JsonDoc& value, std::int64_t lo, std::int64_t hi,
                       std::int64_t* out) {
  if (value.kind != JsonDoc::Kind::kNumber) return false;
  const double n = value.number;
  const auto as_int = static_cast<std::int64_t>(n);
  if (static_cast<double>(as_int) != n) return false;
  if (as_int < lo || as_int > hi) return false;
  *out = as_int;
  return true;
}

ParseOutcome bad_request(ParseOutcome outcome, std::string message) {
  outcome.ok = false;
  outcome.error_code = kErrorBadRequest;
  outcome.error_message = std::move(message);
  return outcome;
}

report::JsonValue memo_to_json(const dse::MemoCache::Stats& memo) {
  report::JsonValue out = report::JsonValue::object();
  out.set("hits", static_cast<std::int64_t>(memo.hits));
  out.set("misses", static_cast<std::int64_t>(memo.misses));
  out.set("entries", static_cast<std::int64_t>(memo.entries));
  out.set("spilled", static_cast<std::int64_t>(memo.spilled));
  out.set("loaded", static_cast<std::int64_t>(memo.loaded));
  return out;
}

}  // namespace

ParseOutcome parse_request(const std::string& line) {
  ParseOutcome outcome;
  JsonDoc doc;
  std::string error;
  if (!report::parse_json(line, &doc, &error)) {
    outcome.error_code = kErrorParse;
    outcome.error_message = error;
    return outcome;
  }
  if (doc.kind != JsonDoc::Kind::kObject) {
    return bad_request(std::move(outcome),
                       "request must be a JSON object");
  }

  // Capture the echo fields first so even a rejected request is answered
  // with its own id/op.
  for (const auto& [key, value] : doc.members) {
    if (key == "id" && value.kind == JsonDoc::Kind::kString) {
      outcome.request.id = value.text;
    }
    if (key == "op" && value.kind == JsonDoc::Kind::kString) {
      outcome.request.op = value.text;
    }
  }

  for (const auto& [key, value] : doc.members) {
    if (key == "id" || key == "op") {
      if (value.kind != JsonDoc::Kind::kString) {
        return bad_request(std::move(outcome),
                           "field \"" + key + "\" must be a string");
      }
      continue;
    }
    if (key == "benchmark") {
      if (value.kind != JsonDoc::Kind::kString || value.text.empty()) {
        return bad_request(std::move(outcome),
                           "field \"benchmark\" must be a non-empty string");
      }
      outcome.request.benchmark = value.text;
      continue;
    }
    if (key == "workload") {
      if (value.kind != JsonDoc::Kind::kString ||
          !cnn::is_zoo_workload(value.text)) {
        return bad_request(std::move(outcome),
                           "field \"workload\" must name a zoo workload");
      }
      outcome.request.workload = value.text;
      continue;
    }
    if (key == "batch") {
      std::int64_t batch = 0;
      if (!integral_in_range(value, 1, 1 << 10, &batch)) {
        return bad_request(std::move(outcome),
                           "field \"batch\" must be an integer in [1, " +
                               std::to_string(1 << 10) + "]");
      }
      outcome.request.batch = static_cast<int>(batch);
      continue;
    }
    if (key == "pes") {
      std::int64_t pes = 0;
      if (!integral_in_range(value, 1, 1 << 20, &pes)) {
        return bad_request(std::move(outcome),
                           "field \"pes\" must be an integer in [1, " +
                               std::to_string(1 << 20) + "]");
      }
      outcome.request.pes = static_cast<int>(pes);
      continue;
    }
    if (key == "iterations") {
      if (!integral_in_range(value, 1, kMaxExactInt,
                             &outcome.request.iterations)) {
        return bad_request(std::move(outcome),
                           "field \"iterations\" must be a positive integer");
      }
      continue;
    }
    if (key == "allocator") {
      const auto kind = value.kind == JsonDoc::Kind::kString
                            ? core::allocator_kind_from_string(value.text)
                            : std::nullopt;
      if (!kind.has_value()) {
        return bad_request(std::move(outcome),
                           "field \"allocator\" must name a known allocator");
      }
      outcome.request.allocator = *kind;
      continue;
    }
    if (key == "packer") {
      const auto kind = value.kind == JsonDoc::Kind::kString
                            ? core::packer_kind_from_string(value.text)
                            : std::nullopt;
      if (!kind.has_value()) {
        return bad_request(std::move(outcome),
                           "field \"packer\" must name a known packer");
      }
      outcome.request.packer = *kind;
      continue;
    }
    if (key == "with_baseline") {
      if (value.kind != JsonDoc::Kind::kBool) {
        return bad_request(std::move(outcome),
                           "field \"with_baseline\" must be a boolean");
      }
      outcome.request.with_baseline = value.boolean;
      continue;
    }
    if (key == "seed") {
      std::int64_t seed = 0;
      if (!integral_in_range(value, 0, kMaxExactInt, &seed)) {
        return bad_request(std::move(outcome),
                           "field \"seed\" must be a non-negative integer");
      }
      outcome.request.seed = static_cast<std::uint64_t>(seed);
      continue;
    }
    if (key == "cell_index") {
      std::int64_t index = 0;
      if (!integral_in_range(value, 0, kMaxExactInt, &index)) {
        return bad_request(
            std::move(outcome),
            "field \"cell_index\" must be a non-negative integer");
      }
      outcome.request.cell_index = static_cast<std::uint64_t>(index);
      continue;
    }
    if (key == "shard") {
      std::string shard_error;
      if (value.kind != JsonDoc::Kind::kString ||
          !dse::parse_shard(value.text, &shard_error).has_value()) {
        return bad_request(std::move(outcome),
                           "field \"shard\" must be an i/N shard label" +
                               (shard_error.empty() ? std::string{}
                                                    : ": " + shard_error));
      }
      outcome.request.shard = value.text;
      continue;
    }
    return bad_request(std::move(outcome),
                       "unknown request field \"" + key + "\"");
  }

  const std::string& op = outcome.request.op;
  if (op.empty()) {
    return bad_request(std::move(outcome),
                       "request needs a string \"op\" field");
  }
  if (op != "schedule" && op != "stats" && op != "shutdown" &&
      op != "block") {
    return bad_request(std::move(outcome), "unknown op \"" + op + "\"");
  }
  if (!outcome.request.benchmark.empty() &&
      !outcome.request.workload.empty()) {
    return bad_request(
        std::move(outcome),
        "fields \"benchmark\" and \"workload\" are mutually exclusive");
  }
  if (outcome.request.batch != 0 && outcome.request.workload.empty()) {
    return bad_request(std::move(outcome),
                       "field \"batch\" requires a \"workload\" field");
  }
  if (op == "schedule" && outcome.request.benchmark.empty() &&
      outcome.request.workload.empty()) {
    return bad_request(
        std::move(outcome),
        "op \"schedule\" needs a \"benchmark\" or \"workload\" field");
  }
  outcome.ok = true;
  return outcome;
}

std::string ok_response(const ServeRequest& request,
                        const report::JsonValue* result,
                        const dse::MemoCache::Stats& memo, double wall_ms) {
  report::JsonValue doc = report::JsonValue::object();
  doc.set("id", request.id);
  doc.set("op", request.op);
  // Echoed only when the client sent one, so responses to shard-less
  // clients stay byte-identical to the pre-shard protocol.
  if (!request.shard.empty()) doc.set("shard", request.shard);
  doc.set("status", dse::to_string(dse::CellStatus::kOk));
  if (result != nullptr) {
    report::JsonValue copy = *result;
    doc.set("result", std::move(copy));
  }
  doc.set("memo", memo_to_json(memo));
  doc.set("wall_ms", wall_ms);
  return doc.dump();
}

std::string error_response(const ServeRequest& request,
                           const std::string& error_code,
                           const std::string& error_message) {
  report::JsonValue doc = report::JsonValue::object();
  doc.set("id", request.id);
  doc.set("op", request.op);
  if (!request.shard.empty()) doc.set("shard", request.shard);
  doc.set("status", dse::to_string(dse::CellStatus::kError));
  doc.set("error_code", error_code);
  doc.set("error_message", error_message);
  return doc.dump();
}

std::optional<dse::CellStatus> status_from_token(const std::string& token) {
  if (token == "ok") return dse::CellStatus::kOk;
  if (token == "error") return dse::CellStatus::kError;
  return std::nullopt;
}

}  // namespace paraconv::serve
