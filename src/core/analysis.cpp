#include "core/analysis.hpp"

#include "retiming/cases.hpp"
#include "sched/bounds.hpp"

namespace paraconv::core {

ScheduleAnalysis analyze(const graph::TaskGraph& g,
                         const pim::PimConfig& config,
                         const ParaConvResult& result) {
  PARACONV_REQUIRE(result.kernel.placement.size() == g.node_count(),
                   "result does not match graph");

  ScheduleAnalysis a;
  a.period_lower_bound = sched::period_lower_bound(g, config.pe_count);
  a.period_optimality = static_cast<double>(a.period_lower_bound.value) /
                        static_cast<double>(result.kernel.period.value);
  a.r_max_lower_bound =
      sched::retiming_lower_bound(g, result.kernel.period);

  a.latency = sched::iteration_latency(g, result.kernel);
  a.residency = alloc::cache_residency(g, result.kernel, config.pe_count);

  for (const retiming::EdgeDelta& d : result.deltas) {
    ++a.case_census[static_cast<std::size_t>(
        static_cast<int>(retiming::classify(d)) - 1)];
    if (retiming::allocation_sensitive(d)) ++a.sensitive_iprs;
  }
  a.cached_iprs = result.kernel.cached_edge_count();
  return a;
}

}  // namespace paraconv::core
