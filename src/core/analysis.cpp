#include "core/analysis.hpp"

#include "retiming/cases.hpp"
#include "sched/bounds.hpp"

namespace paraconv::core {

ScheduleAnalysis analyze(const graph::TaskGraph& g,
                         const pim::PimConfig& config,
                         const ParaConvResult& result) {
  PARACONV_REQUIRE(result.kernel.placement.size() == g.node_count(),
                   "result does not match graph");

  ScheduleAnalysis a;
  a.period_lower_bound = sched::period_lower_bound(g, config.pe_count);
  a.period_optimality = static_cast<double>(a.period_lower_bound.value) /
                        static_cast<double>(result.kernel.period.value);
  a.r_max_lower_bound =
      sched::retiming_lower_bound(g, result.kernel.period);

  a.latency = sched::iteration_latency(g, result.kernel);
  a.residency = alloc::cache_residency(g, result.kernel, config.pe_count);

  for (const retiming::EdgeDelta& d : result.deltas) {
    ++a.case_census[static_cast<std::size_t>(
        static_cast<int>(retiming::classify(d)) - 1)];
    if (retiming::allocation_sensitive(d)) ++a.sensitive_iprs;
  }
  a.cached_iprs = result.kernel.cached_edge_count();
  return a;
}

std::vector<pim::TransferRequest> edram_transfer_requests(
    const graph::TaskGraph& g, const sched::KernelSchedule& kernel) {
  PARACONV_REQUIRE(kernel.placement.size() == g.node_count() &&
                       kernel.allocation.size() == g.edge_count(),
                   "kernel schedule does not match graph");
  std::vector<pim::TransferRequest> requests;
  requests.reserve(g.edge_count() * 2);
  for (const graph::EdgeId e : g.edges()) {
    if (kernel.allocation[e.value] != pim::AllocSite::kEdram) continue;
    const graph::Ipr& ipr = g.ipr(e);
    const sched::TaskPlacement& prod = kernel.placement[ipr.src.value];
    const sched::TaskPlacement& cons = kernel.placement[ipr.dst.value];

    pim::TransferRequest write;
    write.start = prod.start.value + g.task(ipr.src).exec_time.value;
    write.size = ipr.size;
    write.site = pim::AllocSite::kEdram;
    write.key = e.value;
    requests.push_back(write);

    pim::TransferRequest read = write;
    read.start = cons.start.value;
    requests.push_back(read);
  }
  return requests;
}

pim::BankStats analyze_bank_contention(const graph::TaskGraph& g,
                                       const sched::KernelSchedule& kernel,
                                       const pim::PimConfig& config) {
  const auto cost_model = pim::make_cost_model(config);
  return cost_model->contention(edram_transfer_requests(g, kernel));
}

}  // namespace paraconv::core
