#include "core/para_conv.hpp"

#include "alloc/critical_path.hpp"
#include "alloc/energy_aware.hpp"
#include "alloc/greedy.hpp"
#include "alloc/knapsack.hpp"
#include "alloc/residency.hpp"
#include "alloc/residency_constrained.hpp"
#include "common/strings.hpp"
#include "obs/obs.hpp"
#include "retiming/retiming.hpp"
#include "sched/packer.hpp"
#include "sched/modulo.hpp"
#include "sched/refine.hpp"
#include "sched/validator.hpp"

namespace paraconv::core {

const char* to_string(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kKnapsackDp:
      return "knapsack-dp";
    case AllocatorKind::kGreedyDensity:
      return "greedy-density";
    case AllocatorKind::kGreedyDeadline:
      return "greedy-deadline";
    case AllocatorKind::kCriticalPath:
      return "critical-path";
    case AllocatorKind::kEnergyAware:
      return "energy-aware";
    case AllocatorKind::kResidencyConstrained:
      return "residency-constrained";
  }
  return "unknown";
}

const char* to_string(PackerKind kind) {
  switch (kind) {
    case PackerKind::kTopological:
      return "topological";
    case PackerKind::kLpt:
      return "lpt";
    case PackerKind::kLocality:
      return "locality";
    case PackerKind::kModulo:
      return "modulo";
  }
  return "unknown";
}

std::optional<AllocatorKind> allocator_kind_from_string(
    const std::string& name) {
  if (name == "dp") return AllocatorKind::kKnapsackDp;
  if (name == "greedy-density") return AllocatorKind::kGreedyDensity;
  if (name == "greedy-deadline") return AllocatorKind::kGreedyDeadline;
  if (name == "critical-path") return AllocatorKind::kCriticalPath;
  if (name == "energy-aware") return AllocatorKind::kEnergyAware;
  if (name == "residency-constrained") {
    return AllocatorKind::kResidencyConstrained;
  }
  return std::nullopt;
}

std::optional<PackerKind> packer_kind_from_string(const std::string& name) {
  if (name == "topo") return PackerKind::kTopological;
  if (name == "lpt") return PackerKind::kLpt;
  if (name == "locality") return PackerKind::kLocality;
  if (name == "modulo") return PackerKind::kModulo;
  return std::nullopt;
}

ParaConv::ParaConv(pim::PimConfig config, ParaConvOptions options)
    : config_(config), options_(options) {
  config_.validate();
  PARACONV_REQUIRE(options_.iterations >= 1,
                   "at least one iteration required");
  PARACONV_REQUIRE(options_.knapsack_quantum_bytes >= 1,
                   "knapsack quantum must be positive");
}

ParaConvResult ParaConv::schedule(const graph::TaskGraph& g) const {
  return schedule_packed(g, pack(g));
}

PackedSchedule ParaConv::pack(const graph::TaskGraph& g) const {
  const obs::ScopedSpan pack_span("pack", g.name().c_str());
  g.validate();

  // Step 1: compacted objective schedule with the minimum period.
  PackedSchedule packed;
  sched::Packing& packing = packed.packing;
  {
    const obs::ScopedSpan packer_span("packer", to_string(options_.packer));
    switch (options_.packer) {
      case PackerKind::kTopological:
        packing = sched::pack_topological(g, config_.pe_count);
        break;
      case PackerKind::kLpt:
        packing = sched::pack_ignore_dependencies(g, config_.pe_count);
        break;
      case PackerKind::kLocality:
        packing = sched::pack_locality(g, config_);
        break;
      case PackerKind::kModulo:
        packing = sched::pack_modulo(g, config_);
        break;
    }
    if (options_.refine_steps > 0) {
      sched::RefineOptions refine;
      refine.max_steps = options_.refine_steps;
      refine.seed = options_.refine_seed;
      packing = sched::refine_packing(g, packing, config_, refine).packing;
    }
  }

  // Step 2: per-edge retiming-distance pairs (Theorem 3.1 envelope), under
  // the configured data-movement cost model (one instance for all edges).
  const auto cost_model = pim::make_cost_model(config_);
  packed.deltas = retiming::compute_edge_deltas(
      g, packing.placement, packing.period, config_, *cost_model);
  return packed;
}

ParaConvResult ParaConv::schedule_packed(const graph::TaskGraph& g,
                                         const PackedSchedule& packed) const {
  const obs::ScopedSpan schedule_span("schedule_packed", g.name().c_str());
  PARACONV_REQUIRE(packed.packing.placement.size() == g.node_count(),
                   "packed schedule does not match the graph's node count");
  PARACONV_REQUIRE(packed.deltas.size() == g.edge_count(),
                   "packed schedule does not match the graph's edge count");
  const sched::Packing& packing = packed.packing;

  ParaConvResult result;
  result.deltas = packed.deltas;

  // Steps 3-4: cache/eDRAM allocation of the sensitive IPRs, then minimal
  // legal retiming for the chosen per-edge distances. With residency-aware
  // mode, the allocation capacity shrinks until the steady-state per-PE
  // residency peak fits the PE cache.
  result.items = alloc::build_items(g, packing.placement, result.deltas);
  const Bytes full_capacity = config_.total_cache_bytes();
  Bytes capacity = full_capacity;
  alloc::AllocationResult allocation;

  constexpr int kMaxResidencyRounds = 16;
  for (int round = 0;; ++round) {
    {
      const obs::ScopedSpan allocate_span("allocate",
                                          to_string(options_.allocator));
      switch (options_.allocator) {
      case AllocatorKind::kKnapsackDp:
        allocation = alloc::knapsack_allocate(
            g, result.items,
            alloc::KnapsackOptions{capacity,
                                   options_.knapsack_quantum_bytes});
        break;
      case AllocatorKind::kGreedyDensity:
        allocation = alloc::greedy_density_allocate(g, result.items, capacity);
        break;
      case AllocatorKind::kGreedyDeadline:
        allocation =
            alloc::greedy_deadline_allocate(g, result.items, capacity);
        break;
      case AllocatorKind::kCriticalPath:
        allocation = alloc::critical_path_allocate(g, result.deltas,
                                                   result.items, capacity);
        break;
      case AllocatorKind::kEnergyAware:
        allocation = alloc::energy_aware_allocate(g, result.deltas,
                                                  result.items, capacity);
        break;
      case AllocatorKind::kResidencyConstrained:
        allocation = alloc::residency_constrained_allocate(
            g, packing.placement, packing.period, result.deltas,
            result.items, config_.pe_count, config_.pe_cache_bytes);
        break;
      }
    }

    std::vector<int> required(g.edge_count());
    for (const graph::EdgeId e : g.edges()) {
      required[e.value] = allocation.site[e.value] == pim::AllocSite::kCache
                              ? result.deltas[e.value].cache
                              : result.deltas[e.value].edram;
    }
    const retiming::Retiming retimed = retiming::minimal_retiming(g, required);
    PARACONV_CHECK(retiming::is_legal(g, retimed, required),
                   "minimal retiming must be legal");

    result.kernel.period = packing.period;
    result.kernel.placement = packing.placement;
    result.kernel.retiming = retimed.value;
    result.kernel.distance = std::move(required);
    result.kernel.allocation = allocation.site;

    if (!options_.residency_aware || allocation.cached_count == 0 ||
        round == kMaxResidencyRounds) {
      break;
    }
    const alloc::ResidencyProfile residency =
        alloc::cache_residency(g, result.kernel, config_.pe_count);
    if (residency.peak <= config_.pe_cache_bytes) break;
    capacity = Bytes{std::max<std::int64_t>(0, capacity.value * 7 / 10)};
  }

  // Only error-severity findings invalidate the schedule; warnings are
  // advisory and flow to the caller through `diagnostics`. The exception
  // text carries every error, not just the first.
  auto issues = sched::validate_kernel_schedule(g, result.kernel,
                                                config_, full_capacity);
  PARACONV_CHECK(!sched::has_errors(issues),
                 "Para-CONV emitted an invalid schedule: " +
                     sched::render_errors(issues));
  for (sched::Diagnostic& d : issues) {
    result.diagnostics.push_back(std::move(d));
  }

  // Metrics.
  RunResult& m = result.metrics;
  m.scheduler = "Para-CONV";
  m.iteration_time = packing.period;
  m.r_max = result.kernel.r_max();
  m.prologue_time = packing.period * m.r_max;
  m.total_time =
      packing.period * (options_.iterations + m.r_max);
  m.cached_iprs = allocation.cached_count;
  m.cache_bytes_used = allocation.cache_bytes_used;
  for (const graph::EdgeId e : g.edges()) {
    if (result.kernel.allocation[e.value] == pim::AllocSite::kEdram) {
      m.offchip_bytes_per_iteration += g.ipr(e).size;
    }
  }
  m.pe_utilization = static_cast<double>(g.total_work().value) /
                     (static_cast<double>(config_.pe_count) *
                      static_cast<double>(packing.period.value));

  // The residency-aware capacity search can exhaust its rounds (or decay
  // the capacity to nothing) while the final allocation still overcommits
  // a PE cache. That schedule is legal — the machine model falls back to
  // eDRAM — but silently returning it hid the degradation behind machine
  // replays; surface it as a metric plus a warning diagnostic.
  if (options_.residency_aware && allocation.cached_count > 0) {
    const alloc::ResidencyProfile residency =
        alloc::cache_residency(g, result.kernel, config_.pe_count);
    if (residency.peak > config_.pe_cache_bytes) {
      m.residency_overcommit_bytes = residency.peak - config_.pe_cache_bytes;
      sched::Diagnostic finding;
      finding.code = sched::DiagCode::kResidencyOvercommit;
      finding.severity = sched::DiagSeverity::kWarning;
      finding.message =
          "residency-aware capacity search exhausted: steady-state peak " +
          std::to_string(residency.peak.value) + " B exceeds the " +
          std::to_string(config_.pe_cache_bytes.value) +
          " B PE cache; expect eviction fallbacks";
      result.diagnostics.push_back(std::move(finding));
    }
  }
  return result;
}

}  // namespace paraconv::core
