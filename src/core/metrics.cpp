#include "core/metrics.hpp"

#include "common/check.hpp"

namespace paraconv::core {

namespace {
double as_double(TimeUnits t) { return static_cast<double>(t.value); }
}  // namespace

double time_ratio_percent(const RunResult& base, const RunResult& ours) {
  PARACONV_REQUIRE(base.total_time > TimeUnits{0},
                   "baseline total time must be positive");
  return 100.0 * as_double(ours.total_time) / as_double(base.total_time);
}

double time_reduction_percent(const RunResult& base, const RunResult& ours) {
  return 100.0 - time_ratio_percent(base, ours);
}

double speedup(const RunResult& base, const RunResult& ours) {
  PARACONV_REQUIRE(ours.total_time > TimeUnits{0},
                   "total time must be positive");
  return as_double(base.total_time) / as_double(ours.total_time);
}

}  // namespace paraconv::core
