// Multi-application co-location on one PIM array.
//
// A Neurocube-class accelerator hosts several CNN applications at once
// (e.g. the paper's image, speech and analytics workloads). This extension
// space-partitions the PE array: each application receives a contiguous PE
// range sized by its share of the total work (at least one PE each) plus
// the matching slice of aggregate cache, and is scheduled independently by
// Para-CONV inside its partition. Partitions are isolated — no cross-
// application interference by construction.
#pragma once

#include <vector>

#include "core/para_conv.hpp"

namespace paraconv::core {

struct Partition {
  /// First PE of the partition and partition width.
  int first_pe{0};
  int pe_count{0};
};

struct ColocationResult {
  /// Per-application schedules, in input order; placements use PE ids
  /// local to the partition (add partition.first_pe for global ids).
  std::vector<ParaConvResult> apps;
  std::vector<Partition> partitions;
};

struct ColocateOptions {
  ParaConvOptions scheduler{};
};

/// Partitions `config.pe_count` PEs over the applications proportionally to
/// their total work and schedules each independently.
/// Requires apps.size() >= 1 and config.pe_count >= apps.size().
ColocationResult schedule_colocated(
    const std::vector<const graph::TaskGraph*>& apps,
    const pim::PimConfig& config, const ColocateOptions& options = {});

}  // namespace paraconv::core
