// Para-CONV: the paper's primary contribution (Sec. 3).
//
// Pipeline:
//   1. Pack one iteration's tasks onto the PE array ignoring intra-iteration
//      precedence — the compacted "initial objective task schedule"
//      (Sec. 3.3.3) with the minimum period p.
//   2. Compute each IPR's (delta_cache, delta_edram) retiming-distance pair
//      (Sec. 3.2, Theorem 3.1) and classify into the six cases of Fig. 4.
//   3. ΔR = 0 edges go to eDRAM; ΔR > 0 edges compete for the aggregate
//      cache capacity via the dynamic-programming model (Sec. 3.3.2).
//   4. The chosen allocation fixes per-edge required distances; the minimal
//      legal retiming is their longest path, giving R_max and the prologue.
//
// The result is a validated KernelSchedule plus the metrics the evaluation
// tables report.
#pragma once

#include <optional>
#include <string>

#include "alloc/item.hpp"
#include "core/metrics.hpp"
#include "pim/config.hpp"
#include "retiming/delta.hpp"
#include "sched/packer.hpp"
#include "sched/schedule.hpp"
#include "sched/validator.hpp"

namespace paraconv::core {

enum class AllocatorKind {
  kKnapsackDp,     // the paper's DP (default)
  kGreedyDensity,  // profit-per-byte heuristic (ablation)
  kGreedyDeadline, // first-come, deadline order (ablation)
  kCriticalPath,   // direct R_max minimization (extension, ablation)
  kEnergyAware,    // min R_max, then max cached traffic (future-work ext.)
  kResidencyConstrained,  // max profit under per-PE residency feasibility
};

const char* to_string(AllocatorKind kind);

/// Parses the stable short spelling shared by the CLI and the serve
/// protocol ("dp", "greedy-density", "greedy-deadline", "critical-path",
/// "energy-aware", "residency-constrained"); nullopt on unknown names.
std::optional<AllocatorKind> allocator_kind_from_string(
    const std::string& name);

enum class PackerKind {
  kTopological,  // precedence-aware compaction (default)
  kLpt,          // pure longest-processing-time packing (ablation)
  kLocality,     // topology-aware (mesh/ring) producer-proximity packing
  kModulo,       // iterative modulo scheduling (compiler-style, extension)
};

const char* to_string(PackerKind kind);

/// Parses the stable short spelling shared by the CLI and the serve
/// protocol ("topo", "lpt", "locality", "modulo"); nullopt on unknown names.
std::optional<PackerKind> packer_kind_from_string(const std::string& name);

struct ParaConvOptions {
  /// Application iterations the throughput metric accounts for.
  std::int64_t iterations{100};
  AllocatorKind allocator{AllocatorKind::kKnapsackDp};
  PackerKind packer{PackerKind::kTopological};
  /// Capacity discretization of the knapsack DP.
  std::int64_t knapsack_quantum_bytes{256};
  /// Local-search moves applied to the packing before the delta analysis
  /// (0 disables; see sched::refine_packing).
  int refine_steps{0};
  /// Seed for the refinement move generator (only consulted when
  /// refine_steps > 0). The DSE sweep derives it from the grid index so
  /// parallel sweeps stay deterministic.
  std::uint64_t refine_seed{0x5EED};

  /// Extension: the paper's knapsack treats the PE-array cache as one
  /// aggregate pool, but a cached IPR occupies its *producer's* cache for
  /// its whole inter-iteration lifetime, so several in-flight copies can
  /// overcommit a single PE (observable as eviction fallbacks in the
  /// machine model). When enabled, the allocation capacity is shrunk
  /// geometrically until the analytic steady-state residency peak
  /// (alloc::cache_residency) fits every PE cache.
  bool residency_aware{false};
};

struct ParaConvResult {
  sched::KernelSchedule kernel;
  RunResult metrics;
  /// Per-edge delta pairs (exposed for analysis, tests and the case census).
  std::vector<retiming::EdgeDelta> deltas;
  /// Deadline-sorted allocation-sensitive items the allocator saw.
  std::vector<alloc::AllocationItem> items;
  /// Advisory (warning-severity) findings: the kernel is valid but degraded
  /// — e.g. residency-overcommit after the residency-aware capacity search
  /// ran out of rounds. Error-severity findings never appear here; they
  /// abort scheduling with a ContractViolation instead.
  std::vector<sched::Diagnostic> diagnostics;
};

/// The allocator-independent prefix of the pipeline (steps 1-2): the packed
/// initial objective schedule and every edge's (delta_cache, delta_edram)
/// pair. Everything downstream — allocation, retiming, metrics — is a pure
/// function of this plus the allocator options, so ablations that vary only
/// the allocator can reuse one PackedSchedule (see dse::MemoCache).
struct PackedSchedule {
  sched::Packing packing;
  std::vector<retiming::EdgeDelta> deltas;
};

class ParaConv {
 public:
  explicit ParaConv(pim::PimConfig config, ParaConvOptions options = {});

  /// Schedules `g`; the returned kernel is checked against the independent
  /// validator before being handed out. Equivalent to
  /// `schedule_packed(g, pack(g))`.
  ParaConvResult schedule(const graph::TaskGraph& g) const;

  /// Steps 1-2: packing (per the configured packer + refinement) and the
  /// per-edge retiming-distance pairs.
  PackedSchedule pack(const graph::TaskGraph& g) const;

  /// Steps 3-4 on a precomputed packing: cache/eDRAM allocation, minimal
  /// legal retiming, validation and metrics. `packed` must come from
  /// `pack()` on the same graph and an identical configuration/packer.
  ParaConvResult schedule_packed(const graph::TaskGraph& g,
                                 const PackedSchedule& packed) const;

  const pim::PimConfig& config() const { return config_; }
  const ParaConvOptions& options() const { return options_; }

 private:
  pim::PimConfig config_;
  ParaConvOptions options_;
};

}  // namespace paraconv::core
