#include "core/colocate.hpp"

#include <algorithm>
#include <numeric>

namespace paraconv::core {

ColocationResult schedule_colocated(
    const std::vector<const graph::TaskGraph*>& apps,
    const pim::PimConfig& config, const ColocateOptions& options) {
  PARACONV_REQUIRE(!apps.empty(), "at least one application required");
  for (const graph::TaskGraph* app : apps) {
    PARACONV_REQUIRE(app != nullptr, "null application");
  }
  PARACONV_REQUIRE(config.pe_count >= static_cast<int>(apps.size()),
                   "need at least one PE per application");

  // Proportional shares by total work (largest-remainder rounding with a
  // floor of one PE per application).
  std::vector<std::int64_t> work(apps.size());
  std::int64_t total_work = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    work[i] = apps[i]->total_work().value;
    total_work += work[i];
  }
  PARACONV_CHECK(total_work > 0, "applications carry no work");

  std::vector<int> share(apps.size(), 1);
  int remaining = config.pe_count - static_cast<int>(apps.size());
  // Distribute the remaining PEs by repeatedly granting one to the
  // application with the highest work-per-assigned-PE ratio. O(PEs * apps),
  // tiny for realistic sizes, and exactly fair for equal workloads.
  while (remaining > 0) {
    std::size_t best = 0;
    double best_ratio = -1.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
      const double ratio =
          static_cast<double>(work[i]) / static_cast<double>(share[i]);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best = i;
      }
    }
    ++share[best];
    --remaining;
  }

  ColocationResult result;
  int next_pe = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    Partition part;
    part.first_pe = next_pe;
    part.pe_count = share[i];
    next_pe += share[i];
    result.partitions.push_back(part);

    pim::PimConfig sub = config;
    sub.pe_count = part.pe_count;  // cache follows: total = count * per-PE
    ParaConvOptions scheduler_options = options.scheduler;
    result.apps.push_back(
        ParaConv(sub, scheduler_options).schedule(*apps[i]));
  }
  PARACONV_CHECK(next_pe == config.pe_count, "partitioning must be exact");
  return result;
}

}  // namespace paraconv::core
