// Run metrics shared by Para-CONV and the baseline, and the comparison
// helpers the evaluation tables report.
#pragma once

#include <string>

#include "common/units.hpp"

namespace paraconv::core {

struct RunResult {
  std::string scheduler;

  /// Steady-state time per application iteration: the kernel period p for
  /// Para-CONV, the per-iteration makespan L for the baseline (Fig. 5).
  TimeUnits iteration_time{0};

  /// Maximum retiming value R_max (0 for the non-pipelined baseline;
  /// Table 2).
  int r_max{0};

  /// Prologue duration R_max * p.
  TimeUnits prologue_time{0};

  /// End-to-end time for the requested number of iterations, prologue
  /// included (Table 1).
  TimeUnits total_time{0};

  /// Number of IPRs allocated to on-chip cache (Fig. 6) and their volume.
  std::size_t cached_iprs{0};
  Bytes cache_bytes_used{};

  /// eDRAM (off-PE) traffic per steady-state iteration: the data-movement
  /// volume Para-CONV minimizes.
  Bytes offchip_bytes_per_iteration{};

  /// Busy PE-time divided by available PE-time in steady state.
  double pe_utilization{0.0};

  /// How far the steady-state per-PE residency peak exceeds the PE cache
  /// after a residency-aware capacity search exhausted its rounds (0 when
  /// the search converged, was disabled, or nothing is cached). Non-zero
  /// means the machine replay will observe eviction fallbacks.
  Bytes residency_overcommit_bytes{};
};

/// ours/base as a percentage — how Table 1's "IMP (%)" column is actually
/// computed in the paper (see DESIGN.md).
double time_ratio_percent(const RunResult& base, const RunResult& ours);

/// (1 - ours/base) * 100 — the "reduction of total execution time" the
/// paper's text quotes (abstract: 53.42%).
double time_reduction_percent(const RunResult& base, const RunResult& ours);

/// base/ours — throughput acceleration ("1.87x" in the paper's text).
double speedup(const RunResult& base, const RunResult& ours);

}  // namespace paraconv::core
