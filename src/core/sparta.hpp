// SPARTA-style baseline (paper Sec. 4.2, comparator [6]).
//
// SPARTA (Donyanavard et al., CODES'16) is a throughput-aware runtime task
// allocator for many-core platforms: it characterizes tasks and prioritizes
// them during allocation, but performs no software pipelining. We
// reconstruct that contract as a dependency-respecting HEFT-style list
// scheduler with upward-rank priorities and earliest-finish-time PE
// selection, plus a first-come greedy cache policy (a runtime allocator has
// no global lookahead). Each application iteration executes as one
// non-overlapped schedule of length L, so throughput pays the critical path
// every iteration. See DESIGN.md Sec. 2 for the substitution rationale.
#pragma once

#include "core/metrics.hpp"
#include "pim/config.hpp"
#include "sched/packer.hpp"

namespace paraconv::core {

enum class ListPolicy : std::uint8_t {
  kEft,        // append-only earliest-finish-time (default)
  kInsertion,  // HEFT insertion policy (fills idle gaps)
};

struct SpartaOptions {
  std::int64_t iterations{100};
  ListPolicy policy{ListPolicy::kEft};
};

struct SpartaResult {
  sched::ListScheduleResult schedule;
  /// Per-edge allocation (indexed by EdgeId::value).
  std::vector<pim::AllocSite> allocation;
  RunResult metrics;
};

class Sparta {
 public:
  explicit Sparta(pim::PimConfig config, SpartaOptions options = {});

  SpartaResult schedule(const graph::TaskGraph& g) const;

  const pim::PimConfig& config() const { return config_; }

 private:
  pim::PimConfig config_;
  SpartaOptions options_;
};

/// Views a baseline schedule as a degenerate kernel schedule — period = the
/// per-iteration makespan, no retiming, distances 0 — so the machine model,
/// Gantt renderer and trace exporter can replay the baseline with the same
/// tooling as Para-CONV.
sched::KernelSchedule to_kernel_schedule(const graph::TaskGraph& g,
                                         const SpartaResult& result);

}  // namespace paraconv::core
