#include "core/sparta.hpp"

#include <algorithm>
#include <numeric>

#include "pim/cost_model.hpp"

namespace paraconv::core {

Sparta::Sparta(pim::PimConfig config, SpartaOptions options)
    : config_(config), options_(options) {
  config_.validate();
  PARACONV_REQUIRE(options_.iterations >= 1,
                   "at least one iteration required");
}

SpartaResult Sparta::schedule(const graph::TaskGraph& g) const {
  g.validate();

  // First-come greedy cache allocation in producer order (edge insertion
  // order follows graph construction, which is topological for all our
  // sources): a runtime allocator caches what arrives while space lasts.
  SpartaResult result;
  result.allocation.assign(g.edge_count(), pim::AllocSite::kEdram);
  Bytes used{};
  const Bytes capacity = config_.total_cache_bytes();
  std::vector<graph::EdgeId> order = g.edges();
  std::sort(order.begin(), order.end(),
            [&](graph::EdgeId a, graph::EdgeId b) {
              const graph::Ipr& ia = g.ipr(a);
              const graph::Ipr& ib = g.ipr(b);
              if (ia.src != ib.src) return ia.src < ib.src;
              return a.value < b.value;
            });
  std::size_t cached = 0;
  for (const graph::EdgeId e : order) {
    const Bytes size = g.ipr(e).size;
    if (used + size <= capacity) {
      result.allocation[e.value] = pim::AllocSite::kCache;
      used += size;
      ++cached;
    }
  }

  // Per-edge hand-off latency under that allocation, priced by the
  // configured cost model (one instance for all edges).
  const auto cost_model = pim::make_cost_model(config_);
  std::vector<TimeUnits> transfer(g.edge_count());
  for (const graph::EdgeId e : g.edges()) {
    transfer[e.value] =
        cost_model->transfer_time(result.allocation[e.value], g.ipr(e).size);
  }

  result.schedule =
      options_.policy == ListPolicy::kInsertion
          ? sched::list_schedule_insertion(g, config_.pe_count, transfer)
          : sched::list_schedule(g, config_.pe_count, transfer);

  RunResult& m = result.metrics;
  m.scheduler = "SPARTA";
  m.iteration_time = result.schedule.makespan;
  m.r_max = 0;
  m.prologue_time = TimeUnits{0};
  m.total_time = result.schedule.makespan * options_.iterations;
  m.cached_iprs = cached;
  m.cache_bytes_used = used;
  for (const graph::EdgeId e : g.edges()) {
    if (result.allocation[e.value] == pim::AllocSite::kEdram) {
      m.offchip_bytes_per_iteration += g.ipr(e).size;
    }
  }
  m.pe_utilization =
      static_cast<double>(g.total_work().value) /
      (static_cast<double>(config_.pe_count) *
       static_cast<double>(result.schedule.makespan.value));
  return result;
}

sched::KernelSchedule to_kernel_schedule(const graph::TaskGraph& g,
                                         const SpartaResult& result) {
  PARACONV_REQUIRE(result.schedule.placement.size() == g.node_count() &&
                       result.allocation.size() == g.edge_count(),
                   "baseline result does not match graph");
  sched::KernelSchedule kernel;
  kernel.period = result.schedule.makespan;
  kernel.placement = result.schedule.placement;
  kernel.retiming.assign(g.node_count(), 0);
  kernel.distance.assign(g.edge_count(), 0);
  kernel.allocation = result.allocation;
  return kernel;
}

}  // namespace paraconv::core
