// One-call schedule analysis: bundles every derived view of a scheduling
// result (bounds, latency, residency, case census) for the CLI, examples
// and reports.
#pragma once

#include <array>

#include "alloc/residency.hpp"
#include "core/para_conv.hpp"
#include "pim/cost_model.hpp"
#include "sched/latency.hpp"

namespace paraconv::core {

struct ScheduleAnalysis {
  /// Resource lower bound max(ceil(W/N), c_max) and how close the kernel
  /// period came to it (1.0 = optimal packing).
  TimeUnits period_lower_bound{0};
  double period_optimality{1.0};

  /// Pipelining lower bound ceil(CP/p) - 1 on the maximum retiming value
  /// (sched/bounds.hpp); the achieved R_max can never be below it.
  int r_max_lower_bound{0};

  /// Single-input latency through the pipeline.
  sched::LatencyReport latency;

  /// Steady-state per-PE cache residency.
  alloc::ResidencyProfile residency;

  /// Count of IPRs per Fig.-4 case (index 0 = case 1).
  std::array<std::size_t, 6> case_census{};

  /// Sensitive IPRs (cases 2/3/5) and how many the allocation cached.
  std::size_t sensitive_iprs{0};
  std::size_t cached_iprs{0};
};

/// Analyzes a Para-CONV result against its graph and configuration.
ScheduleAnalysis analyze(const graph::TaskGraph& g,
                         const pim::PimConfig& config,
                         const ParaConvResult& result);

/// Steady-state eDRAM access streams of one kernel window: per
/// eDRAM-allocated edge, a write request at the producer's finish and a
/// read request at the consumer's start, both keyed by the edge so they hit
/// the edge's bank (the IPR buffer lives in one bank of its vault).
std::vector<pim::TransferRequest> edram_transfer_requests(
    const graph::TaskGraph& g, const sched::KernelSchedule& kernel);

/// Runs the configured cost model's contention analysis over the kernel's
/// steady-state eDRAM streams. All counters are zero under the constant
/// model.
pim::BankStats analyze_bank_contention(const graph::TaskGraph& g,
                                       const sched::KernelSchedule& kernel,
                                       const pim::PimConfig& config);

}  // namespace paraconv::core
