// Pipeline observability: scoped trace spans and named counters.
//
// The scheduling pipeline (pack -> retime -> allocate -> validate) and the
// DSE sweep report *where time goes* through this layer: a ScopedSpan
// records {name, detail, thread, start, duration} into the installed
// Registry on destruction, and count() accumulates named integer counters
// (memo-cache hits, pool steals, validator diagnostics, ...). Writers in
// obs/writer.hpp turn a Registry into a Chrome-trace JSON file or a
// per-stage text summary.
//
// Null sink: no Registry is installed by default, and an uninstrumented run
// pays exactly one relaxed atomic load per span/counter site — no locking,
// no allocation, no clock read. Instrumented output never feeds the
// deterministic data stream (CSV/JSON results); it is diagnostics only, so
// results stay byte-identical with tracing on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace paraconv::obs {

/// One finished span. Times are nanoseconds relative to the owning
/// registry's epoch (its construction instant, steady clock).
struct SpanRecord {
  /// Stage name, stable across runs ("pack", "allocate", "validate", ...).
  /// The per-stage summary aggregates by this.
  std::string name;
  /// Free-form qualifier ("knapsack-dp", "flower/32/topo/dp", ...); lands
  /// in the trace event's args, never in the aggregation key.
  std::string detail;
  /// Small sequential id of the recording thread (0 = first thread seen).
  std::uint32_t thread{0};
  std::int64_t start_ns{0};
  std::int64_t duration_ns{0};
};

/// Thread-safe collector of spans and counters. Cheap enough for the
/// pipeline's coarse stages; not intended for per-task-instance events.
class Registry {
 public:
  Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void record_span(SpanRecord record);
  void add_counter(const std::string& name, std::int64_t delta);

  /// Snapshot in recording order.
  std::vector<SpanRecord> spans() const;
  /// Snapshot, name-sorted (std::map), so renderings are deterministic.
  std::map<std::string, std::int64_t> counters() const;

  void clear();

  /// Nanoseconds elapsed since this registry's epoch.
  std::int64_t now_ns() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;                 // GUARDED-BY(mu_)
  std::map<std::string, std::int64_t> counters_;  // GUARDED-BY(mu_)
};

/// The registry the library instrumentation writes to, or nullptr when
/// observability is disabled (the default).
Registry* active_registry();

/// Installs `registry` process-wide (nullptr disables). Returns the
/// previous registry. Installation is not synchronized against concurrently
/// *running* instrumented work — install before launching the pipeline and
/// uninstall after it quiesces (ScopedRegistry does both).
Registry* set_registry(Registry* registry);

/// RAII install/uninstall of a registry around a pipeline run.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry)
      : previous_(set_registry(registry)) {}
  ~ScopedRegistry() { set_registry(previous_); }

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_{nullptr};
};

/// Small sequential id of the calling thread (stable for its lifetime).
std::uint32_t thread_id();

/// Measures from construction to destruction and records into the registry
/// that was active at construction. With no active registry the whole
/// object is a no-op and never reads the clock.
class ScopedSpan {
 public:
  /// The detail C-string is only copied when a registry is active, so
  /// passing to_string(kind) costs nothing on the disabled path.
  explicit ScopedSpan(const char* name, const char* detail = "");
  /// Overload for composed details; build the string under an
  /// active_registry() check to keep the disabled path allocation-free.
  ScopedSpan(const char* name, std::string detail);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Registry* registry_;
  const char* name_;
  std::string detail_;
  std::int64_t start_ns_{0};
};

/// Adds `delta` to the named counter of the active registry (no-op when
/// observability is disabled).
void count(const char* name, std::int64_t delta = 1);

}  // namespace paraconv::obs
