#include "obs/writer.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace paraconv::obs {

report::JsonValue to_chrome_trace(const Registry& registry) {
  report::JsonValue events = report::JsonValue::array();

  report::JsonValue process = report::JsonValue::object();
  process.set("name", "process_name");
  process.set("ph", "M");
  process.set("pid", 0);
  report::JsonValue process_args = report::JsonValue::object();
  process_args.set("name", "paraconv");
  process.set("args", std::move(process_args));
  events.push_back(std::move(process));

  for (const SpanRecord& span : registry.spans()) {
    report::JsonValue event = report::JsonValue::object();
    event.set("name", span.name);
    event.set("cat", "paraconv");
    event.set("ph", "X");
    // Trace timestamps are microseconds; keep sub-us resolution.
    event.set("ts", static_cast<double>(span.start_ns) / 1000.0);
    event.set("dur", static_cast<double>(span.duration_ns) / 1000.0);
    event.set("pid", 0);
    event.set("tid", static_cast<std::int64_t>(span.thread));
    if (!span.detail.empty()) {
      report::JsonValue args = report::JsonValue::object();
      args.set("detail", span.detail);
      event.set("args", std::move(args));
    }
    events.push_back(std::move(event));
  }

  for (const auto& [name, value] : registry.counters()) {
    report::JsonValue event = report::JsonValue::object();
    event.set("name", name);
    event.set("ph", "C");
    event.set("ts", 0.0);
    event.set("pid", 0);
    report::JsonValue args = report::JsonValue::object();
    args.set("value", value);
    event.set("args", std::move(args));
    events.push_back(std::move(event));
  }

  report::JsonValue trace = report::JsonValue::object();
  trace.set("traceEvents", std::move(events));
  trace.set("displayTimeUnit", "ms");
  return trace;
}

std::string to_chrome_trace_json(const Registry& registry, bool pretty) {
  return to_chrome_trace(registry).dump(pretty);
}

std::string render_summary(const Registry& registry) {
  struct Aggregate {
    std::int64_t count{0};
    std::int64_t total_ns{0};
    std::int64_t max_ns{0};
  };
  std::map<std::string, Aggregate> stages;
  for (const SpanRecord& span : registry.spans()) {
    Aggregate& a = stages[span.name];
    ++a.count;
    a.total_ns += span.duration_ns;
    a.max_ns = std::max(a.max_ns, span.duration_ns);
  }

  const auto ms = [](std::int64_t ns) {
    return format_fixed(static_cast<double>(ns) / 1e6, 3);
  };

  std::ostringstream os;
  TablePrinter table("pipeline stages");
  table.set_header({"stage", "count", "total ms", "mean ms", "max ms"});
  for (const auto& [name, a] : stages) {
    table.add_row({name, std::to_string(a.count), ms(a.total_ns),
                   ms(a.count == 0 ? 0 : a.total_ns / a.count),
                   ms(a.max_ns)});
  }
  table.print(os);

  const auto counters = registry.counters();
  if (!counters.empty()) {
    os << "\n";
    TablePrinter counter_table("counters");
    counter_table.set_header({"counter", "value"});
    for (const auto& [name, value] : counters) {
      counter_table.add_row({name, std::to_string(value)});
    }
    counter_table.print(os);
  }
  return os.str();
}

}  // namespace paraconv::obs
