#include "obs/obs.hpp"

#include <utility>

namespace paraconv::obs {

namespace {

std::atomic<Registry*> g_registry{nullptr};

std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

Registry::Registry()
    // ANALYZE-ALLOW(nondet): span timestamps are measurements relative to
    // this epoch; they never reach deterministic report/checkpoint bytes.
    : epoch_(std::chrono::steady_clock::now()) {}

void Registry::record_span(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

void Registry::add_counter(const std::string& name, std::int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, std::int64_t> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  counters_.clear();
}

std::int64_t Registry::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             // ANALYZE-ALLOW(nondet): span durations are the one obs
             // output that is wall-clock by definition; counters stay
             // deterministic.
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Registry* active_registry() {
  // ANALYZE-ALLOW(atomic): only the pointer value is read; the Registry it
  // points to synchronizes internally via mu_, so no ordering is needed
  // on the hot uninstrumented path (one relaxed load per site).
  return g_registry.load(std::memory_order_relaxed);
}

Registry* set_registry(Registry* registry) {
  // ANALYZE-ALLOW(atomic): acq_rel pairs installs with uninstalls — the
  // release publishes the fully-constructed Registry to readers of the
  // pointer, the acquire sees all writes that preceded the handoff.
  return g_registry.exchange(registry, std::memory_order_acq_rel);
}

std::uint32_t thread_id() {
  thread_local const std::uint32_t id =
      // ANALYZE-ALLOW(atomic): a unique-id ticket; no other memory is
      // published, uniqueness is all fetch_add's atomicity guarantees.
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

ScopedSpan::ScopedSpan(const char* name, const char* detail)
    : registry_(active_registry()), name_(name) {
  if (registry_ != nullptr) {
    detail_ = detail;
    start_ns_ = registry_->now_ns();
  }
}

ScopedSpan::ScopedSpan(const char* name, std::string detail)
    : registry_(active_registry()), name_(name) {
  if (registry_ != nullptr) {
    detail_ = std::move(detail);
    start_ns_ = registry_->now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  if (registry_ == nullptr) return;
  SpanRecord record;
  record.name = name_;
  record.detail = std::move(detail_);
  record.thread = thread_id();
  record.start_ns = start_ns_;
  record.duration_ns = registry_->now_ns() - start_ns_;
  registry_->record_span(std::move(record));
}

void count(const char* name, std::int64_t delta) {
  Registry* registry = active_registry();
  if (registry != nullptr) registry->add_counter(name, delta);
}

}  // namespace paraconv::obs
