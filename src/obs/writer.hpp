// Renderers for an obs::Registry: Chrome-trace JSON and a per-stage text
// summary.
//
// The JSON output is the chrome://tracing / Perfetto "trace event" format
// ({"traceEvents": [...]}) with one complete event ("ph":"X") per recorded
// span — the recording thread is the trace row — and one counter event
// ("ph":"C") per named counter. Load it via chrome://tracing or
// https://ui.perfetto.dev. The summary aggregates spans by stage name
// (count / total / mean / max) and lists the counters; it is wall-clock
// diagnostics and must never be mixed into the deterministic data stream.
#pragma once

#include <string>

#include "obs/obs.hpp"
#include "report/json.hpp"

namespace paraconv::obs {

/// The registry's spans and counters as a trace-event JSON document.
report::JsonValue to_chrome_trace(const Registry& registry);

/// `to_chrome_trace(...).dump(pretty)`.
std::string to_chrome_trace_json(const Registry& registry,
                                 bool pretty = false);

/// Plain-text per-stage timing table plus counters.
std::string render_summary(const Registry& registry);

}  // namespace paraconv::obs
