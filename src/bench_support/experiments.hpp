// Shared experiment drivers for the per-table/per-figure bench harnesses.
//
// Every harness runs the same (benchmark x PE-count) grid the paper reports:
// the twelve Table-1 graphs on 16, 32 and 64 processing engines, with both
// schedulers, and formats the rows each artifact needs. The grid itself is
// a dse::GridSpec evaluated by the dse sweep engine — the single
// grid-enumeration code path shared with the CLI `sweep` subcommand and the
// design-space-explorer example.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.hpp"
#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::bench_support {

/// The PE-array sizes of the paper's evaluation (Sec. 4.1).
const std::vector<int>& paper_pe_counts();

/// Default iteration count used by the throughput tables.
constexpr std::int64_t kDefaultIterations = 100;

struct ExperimentRow {
  std::string benchmark;
  std::size_t vertices{0};
  std::size_t edges{0};
  int pe_count{0};
  core::RunResult sparta;
  core::RunResult para_conv;
};

/// Runs both schedulers for one benchmark/PE-count cell.
ExperimentRow run_cell(const graph::PaperBenchmark& bench, int pe_count,
                       std::int64_t iterations = kDefaultIterations,
                       core::AllocatorKind allocator =
                           core::AllocatorKind::kKnapsackDp);

/// The full grid, benchmark-major then PE-count (12 x 3 rows). `jobs`
/// fans the cells across a work-stealing pool (1 = serial, 0 = hardware
/// threads); the rows are identical whatever the job count.
std::vector<ExperimentRow> run_grid(
    std::int64_t iterations = kDefaultIterations,
    core::AllocatorKind allocator = core::AllocatorKind::kKnapsackDp,
    int jobs = 1);

}  // namespace paraconv::bench_support
