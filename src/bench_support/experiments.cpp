#include "bench_support/experiments.hpp"

#include "dse/sweep.hpp"

namespace paraconv::bench_support {

namespace {

ExperimentRow to_experiment_row(const dse::CellResult& cell) {
  ExperimentRow row;
  row.benchmark = cell.benchmark;
  row.vertices = cell.vertices;
  row.edges = cell.edges;
  row.pe_count = cell.config.pe_count;
  row.sparta = cell.sparta;
  row.para_conv = cell.para;
  return row;
}

}  // namespace

const std::vector<int>& paper_pe_counts() {
  static const std::vector<int> kCounts{16, 32, 64};
  return kCounts;
}

ExperimentRow run_cell(const graph::PaperBenchmark& bench, int pe_count,
                       std::int64_t iterations,
                       core::AllocatorKind allocator) {
  const dse::SweepCase sweep_case{bench.name,
                                  graph::build_paper_benchmark(bench)};
  return to_experiment_row(dse::evaluate_cell(
      sweep_case, pim::PimConfig::neurocube(pe_count),
      core::PackerKind::kTopological, allocator, iterations,
      /*refine_steps=*/0, dse::cell_seed(0, 0), /*with_baseline=*/true,
      /*cache=*/nullptr));
}

std::vector<ExperimentRow> run_grid(std::int64_t iterations,
                                    core::AllocatorKind allocator,
                                    int jobs) {
  dse::GridSpec spec = dse::paper_grid(paper_pe_counts(), iterations);
  spec.allocators = {allocator};

  dse::SweepOptions options;
  options.jobs = jobs;
  const dse::SweepResult sweep = dse::run_sweep(spec, options);

  std::vector<ExperimentRow> rows;
  rows.reserve(sweep.cells.size());
  for (const dse::CellResult& cell : sweep.cells) {
    rows.push_back(to_experiment_row(cell));
  }
  return rows;
}

}  // namespace paraconv::bench_support
