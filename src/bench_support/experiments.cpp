#include "bench_support/experiments.hpp"

namespace paraconv::bench_support {

const std::vector<int>& paper_pe_counts() {
  static const std::vector<int> kCounts{16, 32, 64};
  return kCounts;
}

ExperimentRow run_cell(const graph::PaperBenchmark& bench, int pe_count,
                       std::int64_t iterations,
                       core::AllocatorKind allocator) {
  const graph::TaskGraph g = graph::build_paper_benchmark(bench);
  const pim::PimConfig config = pim::PimConfig::neurocube(pe_count);

  ExperimentRow row;
  row.benchmark = bench.name;
  row.vertices = g.node_count();
  row.edges = g.edge_count();
  row.pe_count = pe_count;

  core::SpartaOptions sparta_options;
  sparta_options.iterations = iterations;
  row.sparta = core::Sparta(config, sparta_options).schedule(g).metrics;

  core::ParaConvOptions para_options;
  para_options.iterations = iterations;
  para_options.allocator = allocator;
  row.para_conv = core::ParaConv(config, para_options).schedule(g).metrics;
  return row;
}

std::vector<ExperimentRow> run_grid(std::int64_t iterations,
                                    core::AllocatorKind allocator) {
  std::vector<ExperimentRow> rows;
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    for (const int pe : paper_pe_counts()) {
      rows.push_back(run_cell(bench, pe, iterations, allocator));
    }
  }
  return rows;
}

}  // namespace paraconv::bench_support
