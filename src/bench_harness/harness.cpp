#include "bench_harness/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <numeric>
#include <ostream>
#include <set>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/obs.hpp"
#include "report/json_reader.hpp"

namespace paraconv::bench_harness {

void BenchOptions::validate() const {
  PARACONV_REQUIRE(warmup >= 0, "warmup must be >= 0");
  PARACONV_REQUIRE(repetitions >= 1, "at least one timed repetition required");
}

WallStats wall_stats(const std::vector<std::int64_t>& samples_ns) {
  PARACONV_REQUIRE(!samples_ns.empty(), "wall_stats of an empty sample");
  std::vector<double> samples;
  samples.reserve(samples_ns.size());
  for (const std::int64_t s : samples_ns) {
    samples.push_back(static_cast<double>(s));
  }
  WallStats stats;
  stats.median_ns = percentile(samples, 50.0);
  stats.p10_ns = percentile(samples, 10.0);
  stats.p90_ns = percentile(samples, 90.0);
  stats.min_ns = *std::min_element(samples.begin(), samples.end());
  stats.max_ns = *std::max_element(samples.begin(), samples.end());
  stats.mean_ns = std::accumulate(samples.begin(), samples.end(), 0.0) /
                  static_cast<double>(samples.size());
  return stats;
}

CaseResult run_case(const std::string& name,
                    const std::function<void()>& body,
                    const BenchOptions& options) {
  options.validate();
  PARACONV_REQUIRE(!name.empty(), "benchmark case needs a name");

  CaseResult result;
  result.name = name;

  for (int i = 0; i < options.warmup; ++i) body();

  result.samples_ns.reserve(static_cast<std::size_t>(options.repetitions));
  for (int i = 0; i < options.repetitions; ++i) {
    // ANALYZE-ALLOW(nondet): the timed window IS the product here — the
    // harness exists to measure wall time (docs/BENCHMARKS.md wall-clock
    // exceptions); sample values never feed byte-identical artifacts.
    const auto start = std::chrono::steady_clock::now();
    body();
    // ANALYZE-ALLOW(nondet): closing edge of the timed window above.
    const auto end = std::chrono::steady_clock::now();
    result.samples_ns.push_back(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  }
  result.wall = wall_stats(result.samples_ns);

  // One extra instrumented repetition, outside the timed window: counters
  // are deterministic per body, so once is exact, and the timed repetitions
  // never pay for registry locking.
  {
    obs::Registry registry;
    {
      const obs::ScopedRegistry scoped(&registry);
      body();
    }
    result.counters = registry.counters();
    for (const obs::SpanRecord& span : registry.spans()) {
      ++result.counters["span." + span.name];
    }
  }
  return result;
}

report::JsonValue suite_to_json(const SuiteResult& result) {
  report::JsonValue doc = report::JsonValue::object();
  doc.set("schema_version", kBenchSchemaVersion);
  doc.set("suite", result.suite);
  doc.set("warmup", result.options.warmup);
  doc.set("repetitions", result.options.repetitions);
  report::JsonValue cases = report::JsonValue::array();
  for (const CaseResult& c : result.cases) {
    report::JsonValue entry = report::JsonValue::object();
    entry.set("name", c.name);
    report::JsonValue samples = report::JsonValue::array();
    for (const std::int64_t s : c.samples_ns) samples.push_back(s);
    entry.set("samples_ns", std::move(samples));
    report::JsonValue wall = report::JsonValue::object();
    wall.set("median", c.wall.median_ns);
    wall.set("p10", c.wall.p10_ns);
    wall.set("p90", c.wall.p90_ns);
    wall.set("min", c.wall.min_ns);
    wall.set("max", c.wall.max_ns);
    wall.set("mean", c.wall.mean_ns);
    entry.set("wall_ns", std::move(wall));
    report::JsonValue counters = report::JsonValue::object();
    for (const auto& [counter, value] : c.counters) {
      counters.set(counter, value);
    }
    entry.set("counters", std::move(counters));
    cases.push_back(std::move(entry));
  }
  doc.set("cases", std::move(cases));
  return doc;
}

std::string write_suite_json(const SuiteResult& result,
                             const std::string& directory) {
  const std::string dir = directory.empty() ? std::string(".") : directory;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open reports
  const std::string path = dir + "/BENCH_" + result.suite + ".json";
  std::ofstream out(path);
  PARACONV_REQUIRE(out.good(), "cannot open bench output file: " + path);
  out << suite_to_json(result).dump(/*pretty=*/true) << "\n";
  out.flush();
  PARACONV_REQUIRE(out.good(), "failed writing bench output file: " + path);
  return path;
}

void render_suite_table(std::ostream& out, const SuiteResult& result) {
  TablePrinter table("suite '" + result.suite + "' (" +
                     std::to_string(result.options.repetitions) +
                     " repetitions, " + std::to_string(result.options.warmup) +
                     " warmup)");
  table.set_header({"case", "median", "p10", "p90", "counters"});
  for (const CaseResult& c : result.cases) {
    table.add_row({c.name, format_fixed(c.wall.median_ns / 1e3, 1) + " us",
                   format_fixed(c.wall.p10_ns / 1e3, 1) + " us",
                   format_fixed(c.wall.p90_ns / 1e3, 1) + " us",
                   std::to_string(c.counters.size())});
  }
  table.print(out);
}

// ---- schema validation -----------------------------------------------------

namespace {

using report::JsonDoc;

bool require_number(const JsonDoc& object, const std::string& key,
                    const std::string& where, std::string* error) {
  const JsonDoc* value = object.find(key);
  if (value == nullptr || value->kind != JsonDoc::Kind::kNumber) {
    *error = where + " is missing the numeric field \"" + key + "\"";
    return false;
  }
  return true;
}

}  // namespace

bool validate_bench_json(const std::string& json_text, std::string* error) {
  PARACONV_REQUIRE(error != nullptr, "error sink required");
  error->clear();
  JsonDoc doc;
  if (!report::parse_json(json_text, &doc, error)) return false;
  if (doc.kind != JsonDoc::Kind::kObject) {
    *error = "top-level value must be an object";
    return false;
  }
  const JsonDoc* version = doc.find("schema_version");
  if (version == nullptr || version->kind != JsonDoc::Kind::kNumber) {
    *error = "missing numeric \"schema_version\"";
    return false;
  }
  if (static_cast<int>(version->number) != kBenchSchemaVersion) {
    *error = "unsupported schema_version " +
             std::to_string(static_cast<int>(version->number));
    return false;
  }
  const JsonDoc* suite = doc.find("suite");
  if (suite == nullptr || suite->kind != JsonDoc::Kind::kString ||
      suite->text.empty()) {
    *error = "missing non-empty string \"suite\"";
    return false;
  }
  if (!require_number(doc, "warmup", "document", error) ||
      !require_number(doc, "repetitions", "document", error)) {
    return false;
  }
  const double repetitions = doc.find("repetitions")->number;
  const JsonDoc* cases = doc.find("cases");
  if (cases == nullptr || cases->kind != JsonDoc::Kind::kArray ||
      cases->items.empty()) {
    *error = "missing non-empty array \"cases\"";
    return false;
  }
  std::set<std::string> seen;
  for (std::size_t i = 0; i < cases->items.size(); ++i) {
    const JsonDoc& entry = cases->items[i];
    const std::string where = "cases[" + std::to_string(i) + "]";
    if (entry.kind != JsonDoc::Kind::kObject) {
      *error = where + " must be an object";
      return false;
    }
    const JsonDoc* name = entry.find("name");
    if (name == nullptr || name->kind != JsonDoc::Kind::kString ||
        name->text.empty()) {
      *error = where + " is missing a non-empty string \"name\"";
      return false;
    }
    if (!seen.insert(name->text).second) {
      *error = "duplicate case name \"" + name->text + "\"";
      return false;
    }
    const JsonDoc* samples = entry.find("samples_ns");
    if (samples == nullptr || samples->kind != JsonDoc::Kind::kArray) {
      *error = where + " is missing the array \"samples_ns\"";
      return false;
    }
    if (samples->items.size() != static_cast<std::size_t>(repetitions)) {
      *error = where + " has " + std::to_string(samples->items.size()) +
               " samples but the document declares " +
               std::to_string(static_cast<int>(repetitions)) +
               " repetitions";
      return false;
    }
    for (const JsonDoc& sample : samples->items) {
      if (sample.kind != JsonDoc::Kind::kNumber || sample.number < 0) {
        *error = where + " has a non-numeric or negative sample";
        return false;
      }
    }
    const JsonDoc* wall = entry.find("wall_ns");
    if (wall == nullptr || wall->kind != JsonDoc::Kind::kObject) {
      *error = where + " is missing the object \"wall_ns\"";
      return false;
    }
    for (const char* stat : {"median", "p10", "p90", "min", "max", "mean"}) {
      if (!require_number(*wall, stat, where + ".wall_ns", error)) {
        return false;
      }
    }
    const JsonDoc* counters = entry.find("counters");
    if (counters == nullptr || counters->kind != JsonDoc::Kind::kObject) {
      *error = where + " is missing the object \"counters\"";
      return false;
    }
    for (const auto& [counter, value] : counters->members) {
      if (value.kind != JsonDoc::Kind::kNumber) {
        *error = where + " counter \"" + counter + "\" is not numeric";
        return false;
      }
    }
  }
  return true;
}

}  // namespace paraconv::bench_harness
