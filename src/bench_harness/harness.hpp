// Canonical wall-clock benchmark harness (docs/BENCHMARKS.md).
//
// Every performance number this repository reports flows through this one
// timing loop: a named case runs `warmup` untimed repetitions, then
// `repetitions` timed ones (steady clock, whole-body), and finally one extra
// *instrumented* repetition with an obs::Registry installed to capture the
// pipeline's algorithmic counters — kept out of the timed repetitions so
// observability never perturbs the numbers it explains. Suites (pinned case
// lists) live in bench_harness/suites.hpp; the JSON emitted by
// write_suite_json is the schema-stable `BENCH_<suite>.json` contract that
// lets two runs be diffed mechanically.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace paraconv::bench_harness {

/// Bumped only when the emitted JSON shape changes incompatibly.
inline constexpr int kBenchSchemaVersion = 1;

struct BenchOptions {
  /// Untimed repetitions before measurement (cache/branch-predictor warm).
  int warmup{2};
  /// Timed repetitions; median/p10/p90 are nearest-rank over these.
  int repetitions{11};

  /// Throws ContractViolation when out of range.
  void validate() const;
};

/// Nearest-rank summary of one case's timed repetitions, in nanoseconds.
struct WallStats {
  double median_ns{0.0};
  double p10_ns{0.0};
  double p90_ns{0.0};
  double min_ns{0.0};
  double max_ns{0.0};
  double mean_ns{0.0};
};

struct CaseResult {
  std::string name;
  /// One entry per timed repetition, in run order.
  std::vector<std::int64_t> samples_ns;
  WallStats wall;
  /// Deterministic algorithmic counters from the instrumented repetition:
  /// every obs counter the body incremented, plus one `span.<stage>` entry
  /// per distinct span name counting how often that stage ran.
  std::map<std::string, std::int64_t> counters;
};

struct SuiteResult {
  std::string suite;
  BenchOptions options;
  std::vector<CaseResult> cases;
};

/// Runs `body` under the warmup/repetition protocol and returns the timed
/// samples plus the counters of one instrumented repetition. The body must
/// be deterministic and self-contained (setup belongs outside).
CaseResult run_case(const std::string& name,
                    const std::function<void()>& body,
                    const BenchOptions& options);

/// Derives nearest-rank statistics from raw samples (exposed for tests).
WallStats wall_stats(const std::vector<std::int64_t>& samples_ns);

/// The BENCH_<suite>.json document (docs/BENCHMARKS.md "Schema").
report::JsonValue suite_to_json(const SuiteResult& result);

/// Pretty-printed JSON to `<directory>/BENCH_<suite>.json`; returns the
/// path written. Throws ContractViolation when the file cannot be written.
std::string write_suite_json(const SuiteResult& result,
                             const std::string& directory);

/// Human-readable per-case summary table (medians, spread, counters).
void render_suite_table(std::ostream& out, const SuiteResult& result);

/// Structural validation of a BENCH_*.json document: every schema field
/// present with the right shape. Returns true and leaves `error` empty on
/// success; on failure `error` names the first offending field. This is the
/// check the CI bench-smoke job runs against freshly emitted files.
bool validate_bench_json(const std::string& json_text, std::string* error);

}  // namespace paraconv::bench_harness
