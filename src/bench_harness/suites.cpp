#include "bench_harness/suites.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "alloc/knapsack.hpp"
#include "cnn/workload.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/analysis.hpp"
#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "dse/sweep.hpp"
#include "graph/generator.hpp"
#include "graph/paper_benchmarks.hpp"
#include "obs/obs.hpp"
#include "pim/config.hpp"
#include "retiming/delta.hpp"
#include "sched/packer.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace paraconv::bench_harness {
namespace {

struct Case {
  std::string name;
  std::function<void()> body;
};

/// Optimizer sink: results are folded in here so a whole case body cannot
/// be proven dead. volatile keeps the final store observable.
volatile std::int64_t g_sink = 0;  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables): benchmark sink, single-threaded writes only
void sink(std::int64_t v) { g_sink = g_sink + v; }

graph::TaskGraph paper_graph(const std::string& name) {
  return graph::build_paper_benchmark(graph::paper_benchmark(name));
}

/// The large synthetic packer/retime workload: deliberately bigger than any
/// Table-1 graph so the O(V * PEs) packer inner loop dominates.
graph::TaskGraph synthetic_graph() {
  graph::GeneratorConfig config;
  config.name = "synth2048";
  config.vertices = 2048;
  config.edges = 2048 * 5 / 2;
  config.seed = 7;
  return graph::generate_layered_dag(config);
}

/// micro_dp's synthetic allocation items: sizes 1..16 KiB, profits 1..2,
/// deadlines in index order (already deadline-sorted as the DP requires).
std::vector<alloc::AllocationItem> synthetic_items(std::size_t n,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<alloc::AllocationItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alloc::AllocationItem item;
    item.edge = graph::EdgeId{static_cast<std::uint32_t>(i)};
    item.size = Bytes{rng.uniform_int(1, 16) * 1024};
    item.profit = static_cast<int>(rng.uniform_int(1, 2));
    item.deadline = TimeUnits{static_cast<std::int64_t>(i)};
    items.push_back(item);
  }
  return items;
}

std::vector<Case> pipeline_cases() {
  std::vector<Case> cases;
  for (const char* name : {"cat", "stock-predict", "protein"}) {
    auto g = std::make_shared<graph::TaskGraph>(paper_graph(name));
    auto scheduler =
        std::make_shared<core::ParaConv>(pim::PimConfig::neurocube(32));
    cases.push_back({std::string("paraconv/") + name + "/pe32",
                     [g, scheduler] {
                       const core::ParaConvResult result =
                           scheduler->schedule(*g);
                       sink(result.metrics.total_time.value);
                     }});
  }
  {
    auto g = std::make_shared<graph::TaskGraph>(paper_graph("protein"));
    auto scheduler =
        std::make_shared<core::ParaConv>(pim::PimConfig::neurocube(64));
    cases.push_back({"paraconv/protein/pe64", [g, scheduler] {
                       sink(scheduler->schedule(*g).metrics.total_time.value);
                     }});
    auto sparta =
        std::make_shared<core::Sparta>(pim::PimConfig::neurocube(32));
    cases.push_back({"sparta/protein/pe32", [g, sparta] {
                       sink(sparta->schedule(*g).metrics.total_time.value);
                     }});
  }
  return cases;
}

std::vector<Case> packer_cases() {
  std::vector<Case> cases;
  auto synth = std::make_shared<graph::TaskGraph>(synthetic_graph());
  auto protein = std::make_shared<graph::TaskGraph>(paper_graph("protein"));
  auto config256 = std::make_shared<pim::PimConfig>(
      pim::PimConfig::neurocube(256));
  auto config64 = std::make_shared<pim::PimConfig>(
      pim::PimConfig::neurocube(64));
  cases.push_back({"topological/synth2048/pe256", [synth] {
                     sink(sched::pack_topological(*synth, 256).period.value);
                   }});
  cases.push_back({"lpt/synth2048/pe256", [synth] {
                     sink(sched::pack_ignore_dependencies(*synth, 256)
                              .period.value);
                   }});
  cases.push_back({"locality/synth2048/pe256", [synth, config256] {
                     sink(sched::pack_locality(*synth, *config256)
                              .period.value);
                   }});
  cases.push_back({"topological/protein/pe64", [protein] {
                     sink(sched::pack_topological(*protein, 64).period.value);
                   }});
  cases.push_back({"locality/protein/pe64", [protein, config64] {
                     sink(sched::pack_locality(*protein, *config64)
                              .period.value);
                   }});
  return cases;
}

std::vector<Case> retime_cases() {
  std::vector<Case> cases;
  struct Fixture {
    graph::TaskGraph graph;
    pim::PimConfig config;
    sched::Packing packing;
  };
  const auto add = [&cases](const std::string& name, graph::TaskGraph g,
                            const pim::PimConfig& config, int pe_count) {
    auto fixture = std::make_shared<Fixture>(
        Fixture{std::move(g), config, {}});
    fixture->packing = sched::pack_topological(fixture->graph, pe_count);
    cases.push_back({name, [fixture] {
                       const auto deltas = retiming::compute_edge_deltas(
                           fixture->graph, fixture->packing.placement,
                           fixture->packing.period, fixture->config);
                       sink(static_cast<std::int64_t>(deltas.size()));
                     }});
  };
  add("deltas/synth2048/pe256", synthetic_graph(),
      pim::PimConfig::neurocube(256), 256);
  add("deltas/protein/pe64", paper_graph("protein"),
      pim::PimConfig::neurocube(64), 64);
  return cases;
}

std::vector<Case> alloc_dp_cases() {
  std::vector<Case> cases;
  // Profit-only DP at three item counts (the paper's O(n * S) claim:
  // linear in n at fixed capacity — compare the three medians).
  for (const std::size_t n : {std::size_t{128}, std::size_t{512},
                              std::size_t{2048}}) {
    auto items = std::make_shared<std::vector<alloc::AllocationItem>>(
        synthetic_items(n, 42));
    cases.push_back({"profit/n" + std::to_string(n) + "/cap512k",
                     [items] {
                       const alloc::KnapsackOptions options{Bytes{512 * 1024},
                                                            1024};
                       sink(alloc::knapsack_profit(*items, options));
                     }});
  }
  // Capacity axis: fixed n, 4x the capacity.
  {
    auto items = std::make_shared<std::vector<alloc::AllocationItem>>(
        synthetic_items(512, 42));
    cases.push_back({"profit/n512/cap2m", [items] {
                       const alloc::KnapsackOptions options{
                           Bytes{2048 * 1024}, 1024};
                       sink(alloc::knapsack_profit(*items, options));
                     }});
  }
  // Reconstruction path: needs the full B table and a real graph.
  {
    struct Fixture {
      graph::TaskGraph graph{"dp-bench"};
      std::vector<alloc::AllocationItem> items;
    };
    auto fixture = std::make_shared<Fixture>();
    fixture->items = synthetic_items(512, 42);
    const graph::NodeId hub = fixture->graph.add_task(
        {"hub", graph::TaskKind::kConvolution, TimeUnits{1}});
    for (std::size_t i = 0; i < fixture->items.size(); ++i) {
      const graph::NodeId node = fixture->graph.add_task(
          {"n" + std::to_string(i), graph::TaskKind::kConvolution,
           TimeUnits{1}});
      fixture->items[i].edge =
          fixture->graph.add_ipr(hub, node, fixture->items[i].size);
    }
    cases.push_back({"allocate/n512/cap512k", [fixture] {
                       const alloc::KnapsackOptions options{Bytes{512 * 1024},
                                                            1024};
                       sink(alloc::knapsack_allocate(fixture->graph,
                                                     fixture->items, options)
                                .total_profit);
                     }});
  }
  return cases;
}

std::vector<Case> sweep_cell_cases() {
  std::vector<Case> cases;
  // A small end-to-end sweep per repetition: 2 cases x 2 configs x 1 packer
  // x 2 allocators = 8 cells, sequential, baseline on. A fresh memo cache
  // per repetition keeps every repetition identical work.
  auto spec = std::make_shared<dse::GridSpec>();
  for (const char* name : {"flower", "stock-predict"}) {
    spec->cases.push_back({name, paper_graph(name)});
  }
  spec->configs = {pim::PimConfig::neurocube(16),
                   pim::PimConfig::neurocube(32)};
  spec->packers = {core::PackerKind::kTopological};
  spec->allocators = {core::AllocatorKind::kKnapsackDp,
                      core::AllocatorKind::kGreedyDensity};
  spec->iterations = 100;
  cases.push_back({"grid/2x2x1x2/jobs1", [spec] {
                     dse::SweepOptions options;
                     options.jobs = 1;
                     options.with_baseline = true;
                     const dse::SweepResult result =
                         dse::run_sweep(*spec, options);
                     sink(static_cast<std::int64_t>(result.cells_ok));
                   }});
  // The memoized ablation shape: one evaluate_cell per allocator against a
  // shared cache, the pattern the full sweep amortizes.
  {
    auto cache = std::make_shared<dse::MemoCache>();
    auto grid = spec;
    cases.push_back({"cell/stock-predict/pe32/memo", [grid, cache] {
                       const dse::SweepCase& sweep_case = grid->cases[1];
                       for (const core::AllocatorKind allocator :
                            grid->allocators) {
                         const dse::CellResult cell = dse::evaluate_cell(
                             sweep_case, grid->configs[1],
                             core::PackerKind::kTopological, allocator,
                             /*iterations=*/100, /*refine_steps=*/0,
                             /*seed=*/0, /*with_baseline=*/false,
                             cache.get());
                         sink(cell.para.total_time.value);
                       }
                     }});
  }
  return cases;
}

std::vector<Case> sweep_zoo_cases() {
  std::vector<Case> cases;
  // Real-CNN sweep throughput: zoo workloads lowered at batch 1 and 4 on
  // one Neurocube config, sequential, baseline on. Lowering happens in the
  // fixture, outside the timed region, so the case times scheduling a real
  // network shape (deep chains, residual joins, disconnected DeepBench
  // pairs), not the parser.
  auto spec = std::make_shared<dse::GridSpec>();
  for (const char* name : {"resnet18_basic", "deepbench_conv"}) {
    const cnn::Workload workload = cnn::zoo_workload(name);
    for (const int batch : {1, 4}) {
      spec->cases.push_back(
          {workload.net.name(), cnn::lower_workload(workload, batch), batch});
    }
  }
  spec->configs = {pim::PimConfig::neurocube(32)};
  spec->packers = {core::PackerKind::kTopological};
  spec->allocators = {core::AllocatorKind::kKnapsackDp};
  spec->iterations = 100;
  cases.push_back({"grid/zoo2xb2/jobs1", [spec] {
                     dse::SweepOptions options;
                     options.jobs = 1;
                     options.with_baseline = true;
                     const dse::SweepResult result =
                         dse::run_sweep(*spec, options);
                     sink(static_cast<std::int64_t>(result.cells_ok));
                   }});
  // Batched lowering itself: the parse + replicate + wire path a --workload
  // sweep pays per (workload, batch) case before any cell runs.
  {
    auto workload =
        std::make_shared<cnn::Workload>(cnn::zoo_workload("mobilenet_v1"));
    cases.push_back({"lower/mobilenet_v1/b8", [workload] {
                       sink(static_cast<std::int64_t>(
                           cnn::lower_workload(*workload, 8).node_count()));
                     }});
  }
  return cases;
}

std::vector<Case> cost_model_cases() {
  std::vector<Case> cases;
  // The banked contention analyzer off the hot path: schedule once per
  // fixture, then time request extraction + bank serialization alone. The
  // protein graph is the largest Table-1 benchmark, so its schedule carries
  // the most eDRAM streams per iteration.
  struct Fixture {
    graph::TaskGraph graph;
    sched::KernelSchedule kernel;
    pim::PimConfig config;
  };
  const auto make_fixture = [](const char* name, int pes,
                               pim::BankPolicy policy) {
    auto fixture = std::make_shared<Fixture>();
    fixture->graph = paper_graph(name);
    fixture->config = pim::PimConfig::neurocube(pes);
    fixture->kernel = core::ParaConv(fixture->config)
                          .schedule(fixture->graph)
                          .kernel;
    fixture->config.cost_model = pim::CostModelKind::kBanked;
    fixture->config.edram_banks = 8;
    fixture->config.bank_policy = policy;
    return fixture;
  };
  for (const auto& [label, policy] :
       {std::pair<const char*, pim::BankPolicy>{
            "interleave", pim::BankPolicy::kInterleave},
        {"block", pim::BankPolicy::kBlock}}) {
    auto fixture = make_fixture("protein", 32, policy);
    cases.push_back({std::string("contention/protein/pe32/b8-") + label,
                     [fixture] {
                       const pim::BankStats stats =
                           core::analyze_bank_contention(
                               fixture->graph, fixture->kernel,
                               fixture->config);
                       sink(stats.stall_units + stats.conflicts);
                     }});
  }
  {
    auto fixture =
        make_fixture("protein", 32, pim::BankPolicy::kInterleave);
    cases.push_back({"requests/protein/pe32", [fixture] {
                       sink(static_cast<std::int64_t>(
                           core::edram_transfer_requests(fixture->graph,
                                                         fixture->kernel)
                               .size()));
                     }});
  }
  // The per-transfer cost query itself, constant vs banked: this is the
  // call every scheduler inner loop makes, so its dispatch overhead is the
  // price of the pluggable interface.
  for (const auto& [label, kind] :
       {std::pair<const char*, pim::CostModelKind>{
            "constant", pim::CostModelKind::kConstant},
        {"banked", pim::CostModelKind::kBanked}}) {
    auto config = std::make_shared<pim::PimConfig>(
        pim::PimConfig::neurocube(32));
    config->cost_model = kind;
    cases.push_back({std::string("transfer_time/") + label + "/x4096",
                     [config] {
                       const auto model = pim::make_cost_model(*config);
                       std::int64_t total = 0;
                       for (int i = 0; i < 4096; ++i) {
                         total += model
                                      ->transfer_time(pim::AllocSite::kEdram,
                                                      Bytes{(i % 64) * 256})
                                      .value;
                       }
                       sink(total);
                     }});
  }
  return cases;
}

std::vector<Case> serve_cases() {
  std::vector<Case> cases;
  // Closed-loop load against an in-process serve daemon. The Server (and
  // its memo cache) is shared across repetitions on purpose: after the
  // warmup repetitions every request is a cache hit, so the timed
  // repetitions measure the steady-state warm daemon the `serve` command
  // ships. The serve.load.* latency counters are wall-clock measurements
  // and therefore vary run to run — the one documented exception to the
  // "counters are deterministic" rule (see docs/BENCHMARKS.md).
  const auto add = [&cases](const std::string& name, int clients,
                            int requests_per_client) {
    serve::ServerOptions options;
    options.jobs = 2;
    auto server = std::make_shared<serve::Server>(std::move(options));
    cases.push_back({name, [server, clients, requests_per_client] {
                       serve::LoadSpec spec;
                       spec.clients = clients;
                       spec.requests_per_client = requests_per_client;
                       spec.request_lines = {
                           R"({"op":"schedule","benchmark":"flower","pes":16,)"
                           R"("iterations":50,"with_baseline":false})",
                           R"({"op":"schedule","benchmark":"cat","pes":16,)"
                           R"("iterations":50,"with_baseline":false})",
                       };
                       const serve::LoadReport report =
                           serve::run_load(*server, spec);
                       obs::count("serve.load.ok",
                                  static_cast<std::int64_t>(report.ok));
                       obs::count("serve.load.rejected",
                                  static_cast<std::int64_t>(report.rejected));
                       obs::count("serve.load.p50_ns",
                                  static_cast<std::int64_t>(report.p50_ns));
                       obs::count("serve.load.p99_ns",
                                  static_cast<std::int64_t>(report.p99_ns));
                       obs::count("serve.load.rps",
                                  static_cast<std::int64_t>(
                                      report.throughput_rps));
                       sink(static_cast<std::int64_t>(report.ok));
                     }});
  };
  add("load/c1x6", /*clients=*/1, /*requests_per_client=*/6);
  add("load/c4x4", /*clients=*/4, /*requests_per_client=*/4);
  return cases;
}

std::vector<Case> build_suite(const std::string& name) {
  if (name == "pipeline") return pipeline_cases();
  if (name == "packer") return packer_cases();
  if (name == "retime") return retime_cases();
  if (name == "alloc_dp") return alloc_dp_cases();
  if (name == "sweep_cell") return sweep_cell_cases();
  if (name == "sweep_zoo") return sweep_zoo_cases();
  if (name == "cost_model") return cost_model_cases();
  if (name == "serve") return serve_cases();
  PARACONV_REQUIRE(false, "unknown bench suite: " + name);
  return {};
}

}  // namespace

const std::vector<SuiteSpec>& suite_catalog() {
  static const std::vector<SuiteSpec> kCatalog{
      {"pipeline",
       "End-to-end ParaConv::schedule (and one SPARTA baseline) on Table-1 "
       "graphs"},
      {"packer",
       "Packing algorithms in isolation on a 2048-vertex synthetic DAG and "
       "protein"},
      {"retime", "Per-edge retiming-distance analysis on packed schedules"},
      {"alloc_dp", "Knapsack DP: profit-only and reconstruction paths"},
      {"sweep_cell", "DSE throughput: a small grid and a memoized ablation"},
      {"sweep_zoo",
       "Real-CNN workloads: a batched zoo sweep and batched lowering "
       "(see docs/WORKLOADS.md)"},
      {"cost_model",
       "Banked-eDRAM contention analysis and per-transfer cost queries "
       "(constant vs banked dispatch)"},
      {"serve",
       "Warm serve daemon under closed-loop concurrent load (p50/p99 via "
       "serve.load.* counters)"},
  };
  return kCatalog;
}

bool is_known_suite(const std::string& name) {
  const auto& catalog = suite_catalog();
  return std::any_of(catalog.begin(), catalog.end(),
                     [&](const SuiteSpec& s) { return s.name == name; });
}

SuiteResult run_suite(const std::string& name, const BenchOptions& options) {
  options.validate();
  SuiteResult result;
  result.suite = name;
  result.options = options;
  for (const Case& c : build_suite(name)) {
    result.cases.push_back(run_case(c.name, c.body, options));
  }
  return result;
}

}  // namespace paraconv::bench_harness
