// Pinned benchmark suites (docs/BENCHMARKS.md "Suite catalog").
//
// A suite is a fixed, named list of cases — graph, configuration and code
// path are all pinned here so two runs of the same suite (today's and a
// branch's) measure exactly the same work and their BENCH_<suite>.json
// files can be diffed field by field. Changing what a case does is a
// contract change: rename the case.
#pragma once

#include <string>
#include <vector>

#include "bench_harness/harness.hpp"

namespace paraconv::bench_harness {

struct SuiteSpec {
  std::string name;
  std::string description;
};

/// All pinned suites, in catalog order: pipeline, packer, retime, alloc_dp,
/// sweep_cell, sweep_zoo, cost_model, serve.
const std::vector<SuiteSpec>& suite_catalog();

/// True when `name` is in suite_catalog().
bool is_known_suite(const std::string& name);

/// Builds the suite's fixtures (graphs, packings, item lists — outside the
/// timed region) and runs every case under `options`. Throws
/// ContractViolation on an unknown suite name.
SuiteResult run_suite(const std::string& name, const BenchOptions& options);

}  // namespace paraconv::bench_harness
