#include "alloc/critical_path.hpp"

#include <algorithm>
#include <optional>

#include "graph/algorithms.hpp"
#include "retiming/retiming.hpp"

namespace paraconv::alloc {
namespace {

std::vector<int> distances_for(const graph::TaskGraph& g,
                               const std::vector<retiming::EdgeDelta>& deltas,
                               const std::vector<pim::AllocSite>& site) {
  std::vector<int> d(g.edge_count());
  for (const graph::EdgeId e : g.edges()) {
    d[e.value] = site[e.value] == pim::AllocSite::kCache
                     ? deltas[e.value].cache
                     : deltas[e.value].edram;
  }
  return d;
}

/// Longest distance from any source down to each node (forward pass),
/// complementing the tail lengths from minimal_retiming.
std::vector<int> head_lengths(const graph::TaskGraph& g,
                              const std::vector<int>& distance) {
  const auto topo = graph::topological_order(g);
  PARACONV_CHECK(topo.has_value(), "acyclic graph required");
  std::vector<int> head(g.node_count(), 0);
  for (const graph::NodeId v : *topo) {
    for (const graph::EdgeId e : g.in_edges(v)) {
      const graph::NodeId u = g.ipr(e).src;
      head[v.value] = std::max(head[v.value], head[u.value] + distance[e.value]);
    }
  }
  return head;
}

}  // namespace

int realized_r_max(const graph::TaskGraph& g,
                   const std::vector<retiming::EdgeDelta>& deltas,
                   const std::vector<pim::AllocSite>& site) {
  PARACONV_REQUIRE(deltas.size() == g.edge_count() &&
                       site.size() == g.edge_count(),
                   "per-edge vectors must match graph");
  const std::vector<int> d = distances_for(g, deltas, site);
  return retiming::minimal_retiming(g, d).r_max();
}

AllocationResult critical_path_allocate(
    const graph::TaskGraph& g, const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, Bytes capacity) {
  PARACONV_REQUIRE(deltas.size() == g.edge_count(),
                   "one delta pair per edge required");

  // Item index by edge id for quick lookup of candidate edges.
  std::vector<std::optional<std::size_t>> item_of(g.edge_count());
  for (std::size_t m = 0; m < items.size(); ++m) {
    item_of[items[m].edge.value] = m;
  }

  std::vector<bool> chosen(items.size(), false);
  std::vector<pim::AllocSite> site(g.edge_count(), pim::AllocSite::kEdram);
  Bytes used{};

  while (true) {
    const std::vector<int> dist = distances_for(g, deltas, site);
    const retiming::Retiming tail = retiming::minimal_retiming(g, dist);
    const int r_max = tail.r_max();
    if (r_max == 0) break;
    const std::vector<int> head = head_lengths(g, dist);

    // Candidate: an uncached sensitive edge lying on a critical path
    // (head(src) + d_e + tail(dst) == R_max) that still fits.
    std::optional<std::size_t> best;
    for (const graph::EdgeId e : g.edges()) {
      if (!item_of[e.value].has_value()) continue;
      const std::size_t m = *item_of[e.value];
      if (chosen[m]) continue;
      if (used + items[m].size > capacity) continue;
      const graph::Ipr& ipr = g.ipr(e);
      const int through =
          head[ipr.src.value] + dist[e.value] + tail.value[ipr.dst.value];
      if (through != r_max) continue;
      if (!best.has_value()) {
        best = m;
        continue;
      }
      const AllocationItem& a = items[m];
      const AllocationItem& b = items[*best];
      const std::int64_t lhs =
          static_cast<std::int64_t>(a.profit) * b.size.value;
      const std::int64_t rhs =
          static_cast<std::int64_t>(b.profit) * a.size.value;
      if (lhs > rhs || (lhs == rhs && a.edge.value < b.edge.value)) best = m;
    }
    if (!best.has_value()) break;  // critical path cannot be shortened further

    chosen[*best] = true;
    used += items[*best].size;
    site[items[*best].edge.value] = pim::AllocSite::kCache;
  }

  return materialize(g, items, chosen);
}

}  // namespace paraconv::alloc
