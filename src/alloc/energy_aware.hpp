// Energy-aware allocation (paper Sec. 5 future work: "study energy issue
// for PIM architecture with CNN applications").
//
// Two-phase policy built on the observation that caching an IPR never
// *increases* any retiming distance (delta_cache <= delta_edram):
//
//   1. Throughput phase — allocate for minimum R_max with the
//      critical-path-aware allocator (the prologue objective).
//   2. Energy phase — spend the *remaining* cache capacity on the
//      largest uncached IPRs, throughput-neutral but shifting the maximum
//      traffic volume from eDRAM (expensive per byte) to on-chip cache.
//      Allocation-insensitive edges (ΔR = 0) participate here too.
#pragma once

#include "alloc/item.hpp"
#include "retiming/delta.hpp"

namespace paraconv::alloc {

AllocationResult energy_aware_allocate(
    const graph::TaskGraph& g, const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, Bytes capacity);

}  // namespace paraconv::alloc
