#include "alloc/knapsack.hpp"

#include <algorithm>

namespace paraconv::alloc {
namespace {

struct Discretized {
  std::vector<std::int64_t> weight;  // per item, in quantum cells
  std::int64_t capacity{0};          // in quantum cells
};

Discretized discretize(const std::vector<AllocationItem>& items,
                       const KnapsackOptions& options) {
  PARACONV_REQUIRE(options.capacity >= Bytes{0},
                   "capacity must be non-negative");
  PARACONV_REQUIRE(options.quantum_bytes >= 1, "quantum must be positive");
  Discretized d;
  d.capacity = options.capacity.value / options.quantum_bytes;
  d.weight.reserve(items.size());
  for (const AllocationItem& item : items) {
    PARACONV_REQUIRE(item.size > Bytes{0}, "item size must be positive");
    PARACONV_REQUIRE(item.profit > 0, "items must carry positive profit");
    d.weight.push_back(ceil_div(item.size.value, options.quantum_bytes));
  }
  return d;
}

/// Full B table, one contiguous row-major buffer of (n + 1) * (Q + 1)
/// cells — at(m, q) with m in [0, n], q in [0, Q]. A single allocation
/// instead of n + 1 separate heap rows keeps consecutive rows adjacent,
/// which is what the row-above recurrence and the backward reconstruction
/// walk actually touch.
struct DpTable {
  std::vector<int> cells;
  std::size_t stride{0};  // Q + 1

  int at(std::size_t m, std::size_t q) const {
    return cells[m * stride + q];
  }
};

DpTable build_table(const std::vector<AllocationItem>& items,
                    const Discretized& d) {
  const std::size_t n = items.size();
  const auto q_max = static_cast<std::size_t>(d.capacity);
  DpTable b;
  b.stride = q_max + 1;
  b.cells.assign((n + 1) * b.stride, 0);
  for (std::size_t m = 1; m <= n; ++m) {
    const auto w = static_cast<std::size_t>(d.weight[m - 1]);
    const int profit = items[m - 1].profit;
    int* row = b.cells.data() + m * b.stride;
    const int* above = row - b.stride;
    for (std::size_t q = 0; q <= q_max; ++q) {
      row[q] = above[q];
      if (w <= q) {
        row[q] = std::max(row[q], above[q - w] + profit);
      }
    }
  }
  return b;
}

}  // namespace

AllocationResult knapsack_allocate(const graph::TaskGraph& g,
                                   const std::vector<AllocationItem>& items,
                                   const KnapsackOptions& options) {
  const Discretized d = discretize(items, options);
  const auto table = build_table(items, d);

  // Reconstruct the chosen subset by walking the table backwards: item m is
  // in the optimal set iff its row improved on the row above.
  std::vector<bool> chosen(items.size(), false);
  auto q = static_cast<std::size_t>(d.capacity);
  for (std::size_t m = items.size(); m >= 1; --m) {
    if (table.at(m, q) != table.at(m - 1, q)) {
      chosen[m - 1] = true;
      q -= static_cast<std::size_t>(d.weight[m - 1]);
    }
  }

  AllocationResult result = materialize(g, items, chosen);
  PARACONV_CHECK(result.total_profit ==
                     table.at(items.size(),
                              static_cast<std::size_t>(d.capacity)),
                 "reconstruction does not match DP optimum");
  PARACONV_CHECK(result.cache_bytes_used <= options.capacity,
                 "knapsack overcommitted cache capacity");
  return result;
}

int knapsack_profit(const std::vector<AllocationItem>& items,
                    const KnapsackOptions& options) {
  // Profit-only query: a single rolling row (capacity iterated downward so
  // each item is used at most once) — O(S) memory instead of the full
  // O(n*S) table the reconstruction needs.
  const Discretized d = discretize(items, options);
  std::vector<int> row(static_cast<std::size_t>(d.capacity) + 1, 0);
  for (std::size_t m = 0; m < items.size(); ++m) {
    const auto w = static_cast<std::size_t>(d.weight[m]);
    if (w > row.size() - 1) continue;
    for (std::size_t q = row.size() - 1; q >= w; --q) {
      row[q] = std::max(row[q], row[q - w] + items[m].profit);
    }
  }
  return row.back();
}

}  // namespace paraconv::alloc
