// Steady-state cache residency analysis.
//
// A cached IPR occupies its producer's PE cache from the producer's finish
// until the consumer's start, d_ij windows later — so in steady state
// several in-flight copies of the same IPR coexist. The knapsack's
// aggregate-capacity model ignores this timing; the residency profile
// computes the *actual* peak concurrent bytes per PE cache, predicting
// whether the machine model will observe eviction fallbacks
// (peak <= per-PE capacity implies none).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace paraconv::alloc {

struct ResidencyProfile {
  /// Peak concurrent cached bytes per PE (indexed by PE id).
  std::vector<Bytes> peak_per_pe;
  /// Maximum over PEs.
  Bytes peak{};
  /// Sum over PEs of their peaks (upper bound on concurrent array usage).
  Bytes peak_total{};
};

/// Folds every cached edge's residency interval into one steady-state
/// kernel window and returns per-PE peaks.
ResidencyProfile cache_residency(const graph::TaskGraph& g,
                                 const sched::KernelSchedule& kernel,
                                 int pe_count);

}  // namespace paraconv::alloc
