#include "alloc/residency.hpp"

#include <algorithm>
#include <map>

namespace paraconv::alloc {

ResidencyProfile cache_residency(const graph::TaskGraph& g,
                                 const sched::KernelSchedule& kernel,
                                 int pe_count) {
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  PARACONV_REQUIRE(kernel.placement.size() == g.node_count() &&
                       kernel.allocation.size() == g.edge_count() &&
                       kernel.retiming.size() == g.node_count(),
                   "kernel schedule does not match graph");
  PARACONV_REQUIRE(kernel.period > TimeUnits{0}, "period must be positive");
  const std::int64_t p = kernel.period.value;

  // Per PE: baseline bytes resident across the whole window (full-period
  // laps of long-lived IPRs) plus +/- events at partial-arc boundaries.
  std::vector<std::int64_t> base(static_cast<std::size_t>(pe_count), 0);
  std::vector<std::map<std::int64_t, std::int64_t>> events(
      static_cast<std::size_t>(pe_count));

  const auto add_arc = [&](int pe, std::int64_t from, std::int64_t to,
                           std::int64_t bytes) {
    // Arc [from, to) in folded window coordinates; may wrap. A wrapping
    // arc is "resident everywhere except [to, from)".
    auto& ev = events[static_cast<std::size_t>(pe)];
    if (from == to) return;  // empty arc
    if (from < to) {
      ev[from] += bytes;
      ev[to] -= bytes;
    } else {
      base[static_cast<std::size_t>(pe)] += bytes;
      ev[to] -= bytes;
      ev[from] += bytes;
    }
  };

  for (const graph::EdgeId e : g.edges()) {
    if (kernel.allocation[e.value] != pim::AllocSite::kCache) continue;
    const graph::Ipr& ipr = g.ipr(e);
    const sched::TaskPlacement& prod = kernel.placement[ipr.src.value];
    const sched::TaskPlacement& cons = kernel.placement[ipr.dst.value];
    const int d = kernel.retiming[ipr.src.value] -
                  kernel.retiming[ipr.dst.value];
    PARACONV_REQUIRE(d >= 0, "kernel carries an illegal retiming");

    const std::int64_t produce = prod.start.value +
                                 g.task(ipr.src).exec_time.value;
    const std::int64_t consume = cons.start.value + d * p;
    const std::int64_t span = consume - produce;
    PARACONV_REQUIRE(span >= 0, "consumer precedes producer in the kernel");

    const std::int64_t full_laps = span / p;
    base[static_cast<std::size_t>(prod.pe)] += full_laps * ipr.size.value;
    const std::int64_t rem = span % p;
    if (rem > 0) {
      const std::int64_t from = produce % p;
      const std::int64_t to = (produce + rem) % p;
      add_arc(prod.pe, from, to, ipr.size.value);
    }
  }

  ResidencyProfile profile;
  profile.peak_per_pe.resize(static_cast<std::size_t>(pe_count));
  for (int pe = 0; pe < pe_count; ++pe) {
    std::int64_t current = base[static_cast<std::size_t>(pe)];
    std::int64_t peak = current;
    for (const auto& [time, delta] : events[static_cast<std::size_t>(pe)]) {
      current += delta;
      peak = std::max(peak, current);
    }
    profile.peak_per_pe[static_cast<std::size_t>(pe)] = Bytes{peak};
    profile.peak = std::max(profile.peak, Bytes{peak});
    profile.peak_total += Bytes{peak};
  }
  return profile;
}

}  // namespace paraconv::alloc
