#include "alloc/optimal.hpp"

#include <algorithm>
#include <limits>

#include "alloc/critical_path.hpp"

namespace paraconv::alloc {

OptimalResult optimal_r_max_allocate(
    const graph::TaskGraph& g, const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, const OptimalOptions& options) {
  PARACONV_REQUIRE(deltas.size() == g.edge_count(),
                   "one delta pair per edge required");
  PARACONV_REQUIRE(items.size() <= options.max_items,
                   "instance too large for exhaustive search");
  PARACONV_REQUIRE(options.capacity >= Bytes{0},
                   "capacity must be non-negative");

  const std::size_t n = items.size();
  std::vector<pim::AllocSite> site(g.edge_count());

  int best_r_max = std::numeric_limits<int>::max();
  Bytes best_bytes{std::numeric_limits<std::int64_t>::max()};
  std::uint32_t best_mask = 0;

  for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
    Bytes used{};
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      if (mask & (1U << i)) {
        used += items[i].size;
        if (used > options.capacity) feasible = false;
      }
    }
    if (!feasible) continue;

    std::fill(site.begin(), site.end(), pim::AllocSite::kEdram);
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1U << i)) {
        site[items[i].edge.value] = pim::AllocSite::kCache;
      }
    }
    const int r_max = realized_r_max(g, deltas, site);
    if (r_max < best_r_max || (r_max == best_r_max && used < best_bytes)) {
      best_r_max = r_max;
      best_bytes = used;
      best_mask = mask;
    }
  }

  std::vector<bool> chosen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    chosen[i] = (best_mask & (1U << i)) != 0;
  }
  OptimalResult result;
  result.allocation = materialize(g, items, chosen);
  result.r_max = best_r_max;
  return result;
}

}  // namespace paraconv::alloc
