// Greedy baseline allocators (ablation comparators for the knapsack DP).
#pragma once

#include "alloc/item.hpp"

namespace paraconv::alloc {

/// Profit-density greedy: items sorted by ΔR per byte (descending), taken
/// while they fit. The classic knapsack heuristic; can be arbitrarily far
/// from optimal on adversarial instances but is O(n log n).
AllocationResult greedy_density_allocate(const graph::TaskGraph& g,
                                         const std::vector<AllocationItem>& items,
                                         Bytes capacity);

/// First-come (deadline-order) greedy: takes items in deadline order while
/// they fit. Models a runtime allocator with no lookahead — the policy the
/// SPARTA-style baseline uses for its cache.
AllocationResult greedy_deadline_allocate(
    const graph::TaskGraph& g, const std::vector<AllocationItem>& items,
    Bytes capacity);

}  // namespace paraconv::alloc
