#include "alloc/greedy.hpp"

#include <algorithm>
#include <numeric>

namespace paraconv::alloc {
namespace {

AllocationResult take_in_order(const graph::TaskGraph& g,
                               const std::vector<AllocationItem>& items,
                               const std::vector<std::size_t>& order,
                               Bytes capacity) {
  std::vector<bool> chosen(items.size(), false);
  Bytes used{};
  for (const std::size_t m : order) {
    if (used + items[m].size <= capacity) {
      chosen[m] = true;
      used += items[m].size;
    }
  }
  return materialize(g, items, chosen);
}

}  // namespace

AllocationResult greedy_density_allocate(
    const graph::TaskGraph& g, const std::vector<AllocationItem>& items,
    Bytes capacity) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    // Compare profit/size as cross-products to stay in integers.
    const std::int64_t lhs = static_cast<std::int64_t>(items[a].profit) *
                             items[b].size.value;
    const std::int64_t rhs = static_cast<std::int64_t>(items[b].profit) *
                             items[a].size.value;
    if (lhs != rhs) return lhs > rhs;
    return items[a].edge.value < items[b].edge.value;
  });
  return take_in_order(g, items, order, capacity);
}

AllocationResult greedy_deadline_allocate(
    const graph::TaskGraph& g, const std::vector<AllocationItem>& items,
    Bytes capacity) {
  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Items arrive already deadline-sorted from build_items.
  return take_in_order(g, items, order, capacity);
}

}  // namespace paraconv::alloc
