// Allocation items (paper Sec. 3.3.1).
//
// Only allocation-sensitive IPRs (cases 2, 3, 5 — ΔR > 0) compete for cache
// capacity; allocation-insensitive IPRs (cases 1, 4, 6) are placed in eDRAM
// to save space. Items are sorted by deadline — the consumer's start time in
// the initial objective schedule — matching the paper's "increasing order of
// deadline" precomputation.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"
#include "pim/config.hpp"
#include "retiming/delta.hpp"
#include "sched/schedule.hpp"

namespace paraconv::alloc {

struct AllocationItem {
  graph::EdgeId edge;
  Bytes size;
  /// ΔR(m): retiming-distance reduction gained by caching this IPR.
  int profit{0};
  /// Deadline d_m: consumer start time in the objective schedule.
  TimeUnits deadline{0};
};

/// Extracts the allocation-sensitive items, sorted by deadline ascending
/// (ties: edge id ascending). O(n log n) as stated in the paper.
std::vector<AllocationItem> build_items(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement,
    const std::vector<retiming::EdgeDelta>& deltas);

/// Final allocation: per-edge site plus bookkeeping.
struct AllocationResult {
  std::vector<pim::AllocSite> site;  // indexed by EdgeId::value
  int total_profit{0};
  Bytes cache_bytes_used{};
  std::size_t cached_count{0};
};

/// Builds the per-edge site vector from the chosen item subset: chosen
/// edges to cache, everything else (including all ΔR = 0 edges) to eDRAM.
AllocationResult materialize(const graph::TaskGraph& g,
                             const std::vector<AllocationItem>& items,
                             const std::vector<bool>& chosen);

}  // namespace paraconv::alloc
