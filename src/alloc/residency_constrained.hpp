// Residency-constrained allocation (extension).
//
// The paper's knapsack treats the PE-array cache as one aggregate pool, but
// a cached IPR physically occupies its *producer's* cache for its whole
// inter-iteration lifetime, and several in-flight copies coexist. This
// allocator enforces the real constraint directly: it admits sensitive IPRs
// in profit-per-byte order, accepting a candidate only if the steady-state
// occupancy of every arc it adds stays within the producer's physical cache
// — so the machine model replays the result with zero eviction fallbacks by
// construction (cf. the capacity-shrinking feedback loop in core::ParaConv,
// which approximates the same guarantee from outside the allocator).
#pragma once

#include "alloc/item.hpp"
#include "retiming/delta.hpp"
#include "sched/schedule.hpp"

namespace paraconv::alloc {

/// Greedy profit-density allocation under per-PE residency feasibility.
/// `placement`/`period` describe the packing; each candidate's residency
/// interval is derived from its own cache-site distance (caching an edge
/// can only shorten other edges' intervals, so per-candidate admission with
/// the pessimistic eDRAM-distance intervals of *unchosen* edges is safe —
/// unchosen edges occupy no cache at all).
///
/// `pe_count` is the configured PE-array size (not inferred from the
/// placement), so the residency profile covers trailing idle PEs exactly
/// like every other cache_residency caller; every placement PE must be in
/// [0, pe_count).
AllocationResult residency_constrained_allocate(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, int pe_count,
    Bytes pe_cache_bytes);

}  // namespace paraconv::alloc
