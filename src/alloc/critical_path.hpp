// Critical-path-aware allocation (extension / ablation).
//
// The paper's DP maximizes the *sum* of ΔR, a proxy for the true objective
// of minimizing R_max (the longest distance-weighted path). This allocator
// optimizes the true objective directly: it repeatedly finds the current
// critical path and caches the allocation-sensitive edge on it with the best
// profit-per-byte, until the capacity is exhausted or R_max stops improving.
// The Table-2/ablation benches compare its R_max against the paper's DP.
#pragma once

#include "alloc/item.hpp"
#include "retiming/delta.hpp"

namespace paraconv::alloc {

AllocationResult critical_path_allocate(
    const graph::TaskGraph& g, const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, Bytes capacity);

/// R_max realized by a given per-edge allocation (helper shared with tests):
/// longest path with edge weights delta_cache/delta_edram per the site.
int realized_r_max(const graph::TaskGraph& g,
                   const std::vector<retiming::EdgeDelta>& deltas,
                   const std::vector<pim::AllocSite>& site);

}  // namespace paraconv::alloc
