#include "alloc/energy_aware.hpp"

#include <algorithm>
#include <numeric>

#include "alloc/critical_path.hpp"

namespace paraconv::alloc {

AllocationResult energy_aware_allocate(
    const graph::TaskGraph& g, const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, Bytes capacity) {
  PARACONV_REQUIRE(deltas.size() == g.edge_count(),
                   "one delta pair per edge required");

  // Phase 1: prologue-optimal base allocation.
  AllocationResult result = critical_path_allocate(g, deltas, items, capacity);

  // Phase 2: fill the remainder with the largest uncached IPRs that fit
  // (largest-first is the classic subset-sum greedy; ties on edge id).
  std::vector<graph::EdgeId> uncached;
  for (const graph::EdgeId e : g.edges()) {
    if (result.site[e.value] == pim::AllocSite::kEdram) uncached.push_back(e);
  }
  std::sort(uncached.begin(), uncached.end(),
            [&](graph::EdgeId a, graph::EdgeId b) {
              if (g.ipr(a).size != g.ipr(b).size) {
                return g.ipr(a).size > g.ipr(b).size;
              }
              return a.value < b.value;
            });

  // ΔR profit of the sensitive edges cached in phase 2 still counts toward
  // total_profit (their distances drop as a side effect).
  std::vector<int> profit_of(g.edge_count(), 0);
  for (const AllocationItem& item : items) {
    profit_of[item.edge.value] = item.profit;
  }

  for (const graph::EdgeId e : uncached) {
    const Bytes size = g.ipr(e).size;
    if (result.cache_bytes_used + size > capacity) continue;
    result.site[e.value] = pim::AllocSite::kCache;
    result.cache_bytes_used += size;
    result.total_profit += profit_of[e.value];
    ++result.cached_count;
  }
  return result;
}

}  // namespace paraconv::alloc
