#include "alloc/item.hpp"

#include <algorithm>

#include "retiming/cases.hpp"

namespace paraconv::alloc {

std::vector<AllocationItem> build_items(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement,
    const std::vector<retiming::EdgeDelta>& deltas) {
  PARACONV_REQUIRE(placement.size() == g.node_count(),
                   "one placement per node required");
  PARACONV_REQUIRE(deltas.size() == g.edge_count(),
                   "one delta pair per edge required");

  std::vector<AllocationItem> items;
  for (const graph::EdgeId e : g.edges()) {
    const int profit = retiming::delta_r(deltas[e.value]);
    if (profit == 0) continue;
    const graph::Ipr& ipr = g.ipr(e);
    items.push_back(AllocationItem{e, ipr.size, profit,
                                   placement[ipr.dst.value].start});
  }
  std::sort(items.begin(), items.end(),
            [](const AllocationItem& a, const AllocationItem& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.edge.value < b.edge.value;
            });
  return items;
}

AllocationResult materialize(const graph::TaskGraph& g,
                             const std::vector<AllocationItem>& items,
                             const std::vector<bool>& chosen) {
  PARACONV_REQUIRE(chosen.size() == items.size(),
                   "one decision per item required");
  AllocationResult result;
  result.site.assign(g.edge_count(), pim::AllocSite::kEdram);
  for (std::size_t m = 0; m < items.size(); ++m) {
    if (!chosen[m]) continue;
    result.site[items[m].edge.value] = pim::AllocSite::kCache;
    result.total_profit += items[m].profit;
    result.cache_bytes_used += items[m].size;
    ++result.cached_count;
  }
  return result;
}

}  // namespace paraconv::alloc
