// The paper's dynamic-programming allocation (Sec. 3.3.2).
//
// B[S, m] is the maximum total profit (sum of ΔR) achievable for the first m
// deadline-sorted items within cache capacity S:
//
//   B[S, m] = 0                                     if m == 0 or S == 0
//   B[S, 1] = 0                                     if sp_1 > S
//   B[S, 1] = ΔR(1)                                 if sp_1 <= S
//   B[S, m] = max(B[S, m-1],
//                 B[S - sp_m, m-1] + ΔR(m))         if m > 1
//
// Capacity is discretized to `quantum_bytes` cells; item weights round *up*
// and capacity rounds *down*, so the selected set never overcommits the real
// byte budget. Each table entry is O(1), giving the paper's O(n * S) time.
#pragma once

#include "alloc/item.hpp"

namespace paraconv::alloc {

struct KnapsackOptions {
  Bytes capacity{};
  /// Capacity-discretization cell. 1 byte reproduces the exact DP; larger
  /// cells trade optimality for table size (default 256 B, well below any
  /// realistic IPR size).
  ///
  /// Discretization is deliberately one-sided: the cell count is
  /// floor(capacity / quantum_bytes) while each item weighs
  /// ceil(size / quantum_bytes) cells. At a non-aligned capacity this can
  /// reject an item whose raw byte size would fit (e.g. a 257-B item
  /// against 300 B at quantum 256: 2 cells needed, 1 available), but it can
  /// never admit a set exceeding the real byte budget — conservative is the
  /// only safe direction for a cache allocation.
  std::int64_t quantum_bytes{256};
};

/// Optimal (within discretization) cache allocation. Items must be the
/// deadline-sorted output of build_items.
AllocationResult knapsack_allocate(const graph::TaskGraph& g,
                                   const std::vector<AllocationItem>& items,
                                   const KnapsackOptions& options);

/// The raw optimal profit without materializing an allocation (used by tests
/// to cross-check against brute force).
int knapsack_profit(const std::vector<AllocationItem>& items,
                    const KnapsackOptions& options);

}  // namespace paraconv::alloc
