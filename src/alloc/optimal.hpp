// Exact minimum-R_max allocation by exhaustive search (small instances).
//
// The paper's DP maximizes the *sum* of ΔR — a proxy objective. This
// allocator optimizes the true objective (the maximum retiming value, i.e.
// the prologue) directly by enumerating all feasible cache subsets. It is
// exponential in the sensitive-edge count and exists to measure the proxy
// gap in tests and the allocator ablation; refuse instances beyond
// `max_items`.
#pragma once

#include "alloc/item.hpp"
#include "retiming/delta.hpp"

namespace paraconv::alloc {

struct OptimalOptions {
  Bytes capacity{};
  /// Hard limit on the exhaustive search (2^max_items subsets).
  std::size_t max_items{22};
};

struct OptimalResult {
  AllocationResult allocation;
  int r_max{0};
};

/// Minimum achievable R_max over all capacity-feasible cache subsets;
/// ties broken toward fewer cached bytes. Throws ContractViolation when
/// items.size() > options.max_items.
OptimalResult optimal_r_max_allocate(
    const graph::TaskGraph& g, const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, const OptimalOptions& options);

}  // namespace paraconv::alloc
