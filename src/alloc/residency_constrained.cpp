#include "alloc/residency_constrained.hpp"

#include <algorithm>
#include <optional>

#include "alloc/residency.hpp"
#include "retiming/retiming.hpp"

namespace paraconv::alloc {
namespace {

/// Kernel view of a candidate allocation: minimal retiming for the chosen
/// sites (the realized distances are what determines residency).
sched::KernelSchedule kernel_for(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<pim::AllocSite>& site) {
  std::vector<int> required(g.edge_count());
  for (const graph::EdgeId e : g.edges()) {
    required[e.value] = site[e.value] == pim::AllocSite::kCache
                            ? deltas[e.value].cache
                            : deltas[e.value].edram;
  }
  sched::KernelSchedule kernel;
  kernel.period = period;
  kernel.placement = placement;
  kernel.retiming = retiming::minimal_retiming(g, required).value;
  kernel.distance = std::move(required);
  kernel.allocation = site;
  return kernel;
}

}  // namespace

AllocationResult residency_constrained_allocate(
    const graph::TaskGraph& g,
    const std::vector<sched::TaskPlacement>& placement, TimeUnits period,
    const std::vector<retiming::EdgeDelta>& deltas,
    const std::vector<AllocationItem>& items, int pe_count,
    Bytes pe_cache_bytes) {
  PARACONV_REQUIRE(pe_cache_bytes >= Bytes{0},
                   "capacity must be non-negative");
  PARACONV_REQUIRE(deltas.size() == g.edge_count(),
                   "one delta pair per edge required");
  PARACONV_REQUIRE(pe_count >= 1, "at least one PE required");
  for (const sched::TaskPlacement& p : placement) {
    PARACONV_REQUIRE(p.pe >= 0 && p.pe < pe_count,
                     "placement PE outside the configured array");
  }

  // Start from the maximum-profit set (everything sensitive cached), then
  // repair: while some producer cache's steady-state peak overflows, evict
  // the lowest profit-density cached item on that PE. Each round removes
  // one item, so the loop terminates; the final profile fits every PE by
  // construction, which makes machine replay fallback-free.
  std::vector<bool> chosen(items.size(), true);
  std::vector<std::optional<std::size_t>> item_of(g.edge_count());
  for (std::size_t m = 0; m < items.size(); ++m) {
    item_of[items[m].edge.value] = m;
  }

  while (true) {
    AllocationResult result = materialize(g, items, chosen);
    const sched::KernelSchedule kernel =
        kernel_for(g, placement, period, deltas, result.site);
    const ResidencyProfile profile = cache_residency(g, kernel, pe_count);

    // Most-overcommitted PE.
    int worst_pe = -1;
    Bytes worst_peak{};
    for (int pe = 0; pe < pe_count; ++pe) {
      const Bytes peak = profile.peak_per_pe[static_cast<std::size_t>(pe)];
      if (peak > pe_cache_bytes && peak > worst_peak) {
        worst_pe = pe;
        worst_peak = peak;
      }
    }
    if (worst_pe < 0) return result;  // every PE fits

    // Evict the lowest profit-density cached item produced on that PE.
    std::optional<std::size_t> victim;
    for (const graph::EdgeId e : g.edges()) {
      if (result.site[e.value] != pim::AllocSite::kCache) continue;
      if (placement[g.ipr(e).src.value].pe != worst_pe) continue;
      const std::size_t m = *item_of[e.value];
      if (!victim.has_value()) {
        victim = m;
        continue;
      }
      const AllocationItem& a = items[m];
      const AllocationItem& b = items[*victim];
      const std::int64_t lhs =
          static_cast<std::int64_t>(a.profit) * b.size.value;
      const std::int64_t rhs =
          static_cast<std::int64_t>(b.profit) * a.size.value;
      if (lhs < rhs || (lhs == rhs && a.edge.value > b.edge.value)) victim = m;
    }
    PARACONV_CHECK(victim.has_value(),
                   "overcommitted PE without any cached item");
    chosen[*victim] = false;
  }
}

}  // namespace paraconv::alloc
