// Internal pass interface: each pass is one function over a shared
// Context. Not installed — only the analyze tool and its tests see this.
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analyze.hpp"
#include "scanner.hpp"

namespace paraconv::analyze {

/// Shared state for one run: the collected source files plus the sink the
/// passes report through. Built once by run_analyze.
class Context {
 public:
  Context(std::filesystem::path root, std::vector<SourceFile> files)
      : root_(std::move(root)), files_(std::move(files)) {}

  const std::filesystem::path& root() const { return root_; }
  const std::vector<SourceFile>& files() const { return files_; }

  const SourceFile* file_named(std::string_view rel_path) const {
    for (const SourceFile& f : files_) {
      if (f.rel_path == rel_path) return &f;
    }
    return nullptr;
  }

  /// Like file_named but reports missing-input when absent.
  const SourceFile* require_file(const std::string& pass,
                                 const std::string& rel_path) {
    const SourceFile* f = file_named(rel_path);
    if (f == nullptr) {
      add(pass, "missing-input", rel_path, 0,
          "required source file not found under the analyze root");
    }
    return f;
  }

  /// Reads a non-source file (docs, exceptions list) relative to the root.
  std::optional<std::string> read_text(const std::string& rel_path) const {
    return read_file(root_ / rel_path);
  }

  void add(std::string pass, std::string check, std::string file, int line,
           std::string message) {
    findings_.push_back({std::move(pass), std::move(check), std::move(file),
                         line, std::move(message)});
  }

  std::vector<Finding> take_findings() { return std::move(findings_); }

 private:
  std::filesystem::path root_;
  std::vector<SourceFile> files_;
  std::vector<Finding> findings_;
};

void run_lint_pass(Context& ctx);
void run_nondet_pass(Context& ctx);
void run_atomics_pass(Context& ctx);
void run_layering_pass(Context& ctx);

}  // namespace paraconv::analyze
