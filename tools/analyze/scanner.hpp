// Shared token/declaration scanner for the paraconv analysis suite.
//
// Every pass in tools/analyze works on the same representation: a
// SourceFile holding the raw bytes and a comment-stripped copy whose line
// structure (and therefore every byte offset -> line mapping) matches the
// raw text. The helpers here are deliberately token-level — no real C++
// parser — which keeps the passes fast, dependency-free and honest about
// what they can see (docs/ANALYSIS.md spells out the detection limits).
//
// The annotation grammar (ANALYZE-ALLOW suppressions and GUARDED-BY field
// declarations) is parsed here so the passes and the core verifier agree
// on one definition of "covered line".
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace paraconv::analyze {

struct SourceFile {
  std::string rel_path;  // relative to the analyzed root, '/' separators
  std::string raw;       // file contents as read
  std::string stripped;  // comments blanked out, line structure preserved
};

bool is_ident_char(char c);

/// 1-based line number of byte offset `pos`.
int line_of(const std::string& text, std::size_t pos);

std::optional<std::string> read_file(const std::filesystem::path& path);

/// Blanks // and /* */ comments (string/char literal bodies stay intact)
/// while preserving every newline, so byte offsets keep mapping to the
/// same line numbers as the raw text.
std::string strip_comments(const std::string& text);

/// [start, end) of the brace block whose opening '{' is the first one at
/// or after `from`; nullopt when unbalanced or absent.
std::optional<std::pair<std::size_t, std::size_t>> brace_region(
    const std::string& text, std::size_t from);

/// [start, end) of the paren group whose opening '(' is the first one at
/// or after `from`; nullopt when unbalanced or absent.
std::optional<std::pair<std::size_t, std::size_t>> paren_region(
    const std::string& text, std::size_t from);

/// Every balanced {...} interval in `text` as [open, close] offsets.
std::vector<std::pair<std::size_t, std::size_t>> brace_intervals(
    const std::string& text);

/// End offset (exclusive) of the innermost brace interval containing
/// `pos`, or text_size when `pos` is at namespace/file scope.
std::size_t innermost_brace_end(
    const std::vector<std::pair<std::size_t, std::size_t>>& intervals,
    std::size_t pos, std::size_t text_size);

struct QuotedString {
  std::string value;
  std::size_t pos;  // offset of the opening quote
};

/// String literals inside [begin, end) of comment-stripped text.
std::vector<QuotedString> quoted_strings(const std::string& text,
                                         std::size_t begin, std::size_t end);

/// Offsets of `word` in `text` where both neighbours are non-identifier
/// characters (so `map` never matches inside `unordered_map`).
std::vector<std::size_t> word_occurrences(const std::string& text,
                                          const std::string& word);

/// kPlacementSizeMismatch -> placement-size-mismatch.
std::string kebab_of_enumerator(const std::string& name);

bool is_dotted_lowercase(const std::string& name);

std::string trim(std::string_view s);

/// `cell` shaped like "`name`" -> name; empty otherwise.
std::string backticked(const std::string& cell);

std::vector<std::string> table_cells(const std::string& line);

// ---- suppression / guard annotations --------------------------------------

/// One ANALYZE-ALLOW annotation. Grammar (docs/ANALYSIS.md):
///   // ANALYZE-ALLOW(category): reason
///   // ANALYZE-ALLOW-BEGIN(category): reason ... // ANALYZE-ALLOW-END(category)
/// Categories: nondet | atomic | guard. The single-line form covers its own
/// line when it trails code, otherwise the next line of code (wrapped
/// justification comments included); the block form covers the enclosed
/// line range.
struct AllowAnnotation {
  std::string category;
  std::string reason;
  int line{0};      // 1-based line of the marker
  int end_line{0};  // last covered line
  std::string error;  // non-empty when the annotation is malformed
};

std::vector<AllowAnnotation> parse_allow_annotations(const SourceFile& f);

/// Lookup over the well-formed annotations of one file.
class AllowIndex {
 public:
  explicit AllowIndex(std::vector<AllowAnnotation> annotations);

  /// True when `line` is covered by an annotation of `category`.
  bool allowed(const std::string& category, int line) const;

  /// Marks every annotation of `category` covering `line` as used (for the
  /// analyze-allow-unused verification).
  void mark_used(const std::string& category, int line);

  /// Well-formed annotations of `category` that never suppressed anything.
  std::vector<const AllowAnnotation*> unused(const std::string& category)
      const;

 private:
  std::vector<AllowAnnotation> annotations_;
  std::vector<bool> used_;
};

/// One GUARDED-BY field declaration:  <field decl>;  // GUARDED-BY(mutex)
/// `field` is recovered from the declaration on the same line.
struct GuardAnnotation {
  std::string field;
  std::string mutex_name;
  int line{0};
  std::string error;  // non-empty when the annotation is malformed
};

std::vector<GuardAnnotation> parse_guard_annotations(const SourceFile& f);

}  // namespace paraconv::analyze
