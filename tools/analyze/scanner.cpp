#include "scanner.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace paraconv::analyze {

namespace fs = std::filesystem;

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string strip_comments(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kString, kChar, kLine, kBlock };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::optional<std::pair<std::size_t, std::size_t>> brace_region(
    const std::string& text, std::size_t from) {
  const std::size_t open = text.find('{', from);
  if (open == std::string::npos) return std::nullopt;
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}') {
      --depth;
      if (depth == 0) return std::make_pair(open, i + 1);
    }
  }
  return std::nullopt;
}

std::optional<std::pair<std::size_t, std::size_t>> paren_region(
    const std::string& text, std::size_t from) {
  const std::size_t open = text.find('(', from);
  if (open == std::string::npos) return std::nullopt;
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) return std::make_pair(open, i + 1);
    }
  }
  return std::nullopt;
}

std::vector<std::pair<std::size_t, std::size_t>> brace_intervals(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::size_t>> intervals;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '{') {
      stack.push_back(i);
    } else if (text[i] == '}' && !stack.empty()) {
      intervals.emplace_back(stack.back(), i);
      stack.pop_back();
    }
  }
  return intervals;
}

std::size_t innermost_brace_end(
    const std::vector<std::pair<std::size_t, std::size_t>>& intervals,
    std::size_t pos, std::size_t text_size) {
  std::size_t best_end = text_size;
  std::size_t best_width = text_size + 1;
  for (const auto& [open, close] : intervals) {
    if (open < pos && pos < close && close - open < best_width) {
      best_width = close - open;
      best_end = close;
    }
  }
  return best_end;
}

std::vector<QuotedString> quoted_strings(const std::string& text,
                                         std::size_t begin, std::size_t end) {
  std::vector<QuotedString> out;
  for (std::size_t i = begin; i < end && i < text.size(); ++i) {
    if (text[i] == '\'') {  // skip char literals ('"' would confuse us)
      for (++i; i < end && text[i] != '\''; ++i) {
        if (text[i] == '\\') ++i;
      }
      continue;
    }
    if (text[i] != '"') continue;
    QuotedString q;
    q.pos = i;
    for (++i; i < end && text[i] != '"'; ++i) {
      if (text[i] == '\\' && i + 1 < end) {
        q.value += text[i + 1];
        ++i;
      } else {
        q.value += text[i];
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<std::size_t> word_occurrences(const std::string& text,
                                          const std::string& word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

std::string kebab_of_enumerator(const std::string& name) {
  std::string out;
  for (std::size_t i = 1; i < name.size(); ++i) {  // skip the leading 'k'
    const char c = name[i];
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      if (!out.empty()) out += '-';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

bool is_dotted_lowercase(const std::string& name) {
  if (name.empty()) return false;
  bool segment_start = true;
  for (const char c : name) {
    if (segment_start) {
      if (std::islower(static_cast<unsigned char>(c)) == 0) return false;
      segment_start = false;
    } else if (c == '.') {
      segment_start = true;
    } else if (std::islower(static_cast<unsigned char>(c)) == 0 &&
               std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return !segment_start;  // no trailing dot
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

std::string backticked(const std::string& cell) {
  const std::string t = trim(cell);
  if (t.size() < 3 || t.front() != '`' || t.back() != '`') return {};
  return t.substr(1, t.size() - 2);
}

std::vector<std::string> table_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  for (std::size_t i = 1; i < line.size(); ++i) {  // skip the leading '|'
    if (line[i] == '|') {
      cells.push_back(current);
      current.clear();
    } else {
      current += line[i];
    }
  }
  return cells;
}

// ---- suppression / guard annotations ---------------------------------------

namespace {

// Markers assembled from parts so this file's own text never contains the
// contiguous tokens the grammar validator scans for.
const std::string kAllowMarker = std::string("ANALYZE-") + "ALLOW";
const std::string kGuardMarker = std::string("GUARDED-") + "BY";

bool known_category(const std::string& category) {
  return category == "nondet" || category == "atomic" || category == "guard";
}

/// Parses "(category): reason" starting at `at`; returns false (with
/// `error` set) when the shape is wrong.
bool parse_category_reason(const std::string& text, std::size_t at,
                           std::string* category, std::string* reason,
                           std::string* error) {
  if (at >= text.size() || text[at] != '(') {
    *error = "expected \"(category): reason\" after the marker";
    return false;
  }
  const std::size_t close = text.find(')', at);
  const std::size_t eol = text.find('\n', at);
  if (close == std::string::npos || (eol != std::string::npos && close > eol)) {
    *error = "unterminated category list";
    return false;
  }
  *category = trim(text.substr(at + 1, close - at - 1));
  if (!known_category(*category)) {
    *error = "unknown category \"" + *category +
             "\"; expected nondet, atomic or guard";
    return false;
  }
  if (close + 1 >= text.size() || text[close + 1] != ':') {
    *error = "missing \": reason\" after the category";
    return false;
  }
  const std::size_t rest_end = eol == std::string::npos ? text.size() : eol;
  *reason = trim(text.substr(close + 2, rest_end - close - 2));
  if (reason->empty()) {
    *error = "empty reason; unexplained suppressions are indistinguishable "
             "from silenced bugs";
    return false;
  }
  return true;
}

}  // namespace

namespace {

/// True when 1-based `line` of the comment-stripped text holds any code.
bool stripped_line_has_code(const std::vector<std::string>& stripped_lines,
                            int line) {
  if (line < 1 || line > static_cast<int>(stripped_lines.size())) {
    return false;
  }
  return !trim(stripped_lines[static_cast<std::size_t>(line - 1)]).empty();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(std::move(current));
  return lines;
}

}  // namespace

std::vector<AllowAnnotation> parse_allow_annotations(const SourceFile& f) {
  std::vector<AllowAnnotation> out;
  const std::vector<std::string> stripped_lines = split_lines(f.stripped);
  // Single-form coverage: the marker's own line when the comment trails
  // code, otherwise forward over any comment-only lines to the first line
  // of code (so a justification may wrap without losing its target).
  const auto single_form_end = [&](int marker_line) {
    if (stripped_line_has_code(stripped_lines, marker_line)) {
      return marker_line;
    }
    const int last = static_cast<int>(stripped_lines.size());
    for (int line = marker_line + 1; line <= last; ++line) {
      if (stripped_line_has_code(stripped_lines, line)) return line;
    }
    return marker_line;
  };
  // open BEGIN markers by index into `out`
  std::vector<std::size_t> open_blocks;
  std::size_t pos = 0;
  while ((pos = f.raw.find(kAllowMarker, pos)) != std::string::npos) {
    const std::size_t marker = pos;
    std::size_t after = pos + kAllowMarker.size();
    const int line = line_of(f.raw, marker);
    if (f.raw.compare(after, 6, "-BEGIN") == 0) {
      after += 6;
      AllowAnnotation a;
      a.line = line;
      if (parse_category_reason(f.raw, after, &a.category, &a.reason,
                                &a.error)) {
        open_blocks.push_back(out.size());
      }
      out.push_back(std::move(a));
    } else if (f.raw.compare(after, 4, "-END") == 0) {
      after += 4;
      if (open_blocks.empty()) {
        AllowAnnotation a;
        a.line = line;
        a.error = "-END without a matching -BEGIN";
        out.push_back(std::move(a));
      } else {
        AllowAnnotation& begin = out[open_blocks.back()];
        open_blocks.pop_back();
        begin.end_line = line;
        // Optional "(category)" on the END must match its BEGIN.
        if (after < f.raw.size() && f.raw[after] == '(') {
          const std::size_t close = f.raw.find(')', after);
          const std::size_t eol = f.raw.find('\n', after);
          const std::string end_cat =
              close == std::string::npos ||
                      (eol != std::string::npos && close > eol)
                  ? std::string()
                  : trim(f.raw.substr(after + 1, close - after - 1));
          if (end_cat != begin.category) {
            AllowAnnotation a;
            a.line = line;
            a.error = "-END category \"" + end_cat +
                      "\" does not match its -BEGIN (\"" + begin.category +
                      "\")";
            out.push_back(std::move(a));
          }
        }
      }
    } else {
      AllowAnnotation a;
      a.line = line;
      a.end_line = single_form_end(line);
      parse_category_reason(f.raw, after, &a.category, &a.reason, &a.error);
      out.push_back(std::move(a));
    }
    pos = after;
  }
  for (const std::size_t idx : open_blocks) {
    AllowAnnotation& begin = out[idx];
    begin.error = "-BEGIN(" + begin.category + ") is never closed by -END";
    begin.end_line = 0;
  }
  return out;
}

AllowIndex::AllowIndex(std::vector<AllowAnnotation> annotations)
    : annotations_(std::move(annotations)),
      used_(annotations_.size(), false) {}

bool AllowIndex::allowed(const std::string& category, int line) const {
  for (const AllowAnnotation& a : annotations_) {
    if (a.error.empty() && a.category == category && a.line <= line &&
        line <= a.end_line) {
      return true;
    }
  }
  return false;
}

void AllowIndex::mark_used(const std::string& category, int line) {
  for (std::size_t i = 0; i < annotations_.size(); ++i) {
    const AllowAnnotation& a = annotations_[i];
    if (a.error.empty() && a.category == category && a.line <= line &&
        line <= a.end_line) {
      used_[i] = true;
    }
  }
}

std::vector<const AllowAnnotation*> AllowIndex::unused(
    const std::string& category) const {
  std::vector<const AllowAnnotation*> out;
  for (std::size_t i = 0; i < annotations_.size(); ++i) {
    const AllowAnnotation& a = annotations_[i];
    if (a.error.empty() && a.category == category && !used_[i]) {
      out.push_back(&a);
    }
  }
  return out;
}

std::vector<GuardAnnotation> parse_guard_annotations(const SourceFile& f) {
  std::vector<GuardAnnotation> out;
  std::istringstream in(f.raw);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t marker = line.find(kGuardMarker);
    if (marker == std::string::npos) continue;
    const std::size_t comment = line.find("//");
    if (comment == std::string::npos || comment > marker) continue;
    GuardAnnotation g;
    g.line = line_no;
    const std::size_t open = marker + kGuardMarker.size();
    if (open >= line.size() || line[open] != '(') {
      g.error = "expected \"(mutex)\" after the marker";
      out.push_back(std::move(g));
      continue;
    }
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) {
      g.error = "unterminated mutex name";
      out.push_back(std::move(g));
      continue;
    }
    g.mutex_name = trim(line.substr(open + 1, close - open - 1));
    if (g.mutex_name.empty()) {
      g.error = "empty mutex name";
      out.push_back(std::move(g));
      continue;
    }
    // Recover the field name from the declaration ahead of the comment:
    // take the code portion, cut any brace/equals initializer, then the
    // trailing identifier is the field.
    std::string code = line.substr(0, comment);
    const std::size_t init = code.find_first_of("{=");
    if (init != std::string::npos) code = code.substr(0, init);
    while (!code.empty() &&
           (std::isspace(static_cast<unsigned char>(code.back())) != 0 ||
            code.back() == ';')) {
      code.pop_back();
    }
    std::size_t b = code.size();
    while (b > 0 && is_ident_char(code[b - 1])) --b;
    g.field = code.substr(b);
    if (g.field.empty()) {
      g.error = "could not recover a field name from the declaration on "
                "this line";
    }
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace paraconv::analyze
