// Layering pass. The src/ modules form a DAG:
//
//   common -> {graph, obs} -> {cnn, core} -> pim
//          -> {sched, alloc, retiming} -> {report, bench_support}
//          -> dse -> {serve, bench_harness} -> {umbrella, cli}
//
// Includes must point from higher layers down to lower (or stay within a
// rank). A lower-rank file including a higher-rank module is a back-edge;
// the handful of historical ones are grandfathered — with a reason — in
// tools/analyze/layering.exceptions, and anything not listed there is a
// finding. The exceptions file is itself verified: stale or malformed
// entries are findings too, so the grandfather list can only shrink.
//
//   layering-back-edge          include against the DAG with no exception
//   layering-unknown-module     a src/ file or include outside the module
//                               table (new modules must be ranked here)
//   layering-exception-stale    an exceptions entry no include matches
//   layering-exception-malformed  an exceptions line that does not parse
#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "passes.hpp"
#include "scanner.hpp"

namespace paraconv::analyze {
namespace {

const std::map<std::string, int>& module_ranks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},
      {"graph", 1},
      {"obs", 1},
      {"cnn", 2},
      {"core", 2},
      {"pim", 3},
      {"sched", 4},
      {"alloc", 4},
      {"retiming", 4},
      {"report", 5},
      {"bench_support", 5},
      {"dse", 6},
      {"serve", 7},
      {"bench_harness", 7},
      {"umbrella", 8},  // src/paraconv.hpp, the all-of-it convenience header
      {"cli", 8},       // everything under tools/
  };
  return kRanks;
}

/// Module of an analyzed file; empty when the file is out of layering
/// scope (tests, bench drivers, examples).
std::string module_of_file(const std::string& rel_path) {
  if (rel_path == "src/paraconv.hpp") return "umbrella";
  if (rel_path.rfind("src/", 0) == 0) {
    const std::size_t slash = rel_path.find('/', 4);
    if (slash == std::string::npos) return "";
    return rel_path.substr(4, slash - 4);
  }
  if (rel_path.rfind("tools/", 0) == 0) return "cli";
  return "";
}

/// Module of a quoted include path. Project includes are rooted at src/
/// ("dse/sweep.hpp"); slash-free includes are tool-local headers — except
/// the umbrella header, which is a real cross-module edge.
std::string module_of_include(const std::string& include_path) {
  if (include_path == "paraconv.hpp") return "umbrella";
  const std::size_t slash = include_path.find('/');
  if (slash == std::string::npos) return "";
  return include_path.substr(0, slash);
}

struct Include {
  std::string path;
  int line{0};
};

std::vector<Include> quoted_includes(const SourceFile& f) {
  std::vector<Include> out;
  static const std::string kNeedle = "#include \"";
  std::size_t pos = 0;
  while ((pos = f.stripped.find(kNeedle, pos)) != std::string::npos) {
    const std::size_t b = pos + kNeedle.size();
    const std::size_t e = f.stripped.find('"', b);
    if (e == std::string::npos) break;
    out.push_back({f.stripped.substr(b, e - b), line_of(f.stripped, pos)});
    pos = e + 1;
  }
  return out;
}

struct Exception {
  std::string file;    // the including file, repo-relative
  std::string module;  // the included module
  int line{0};
  bool used{false};
};

}  // namespace

void run_layering_pass(Context& ctx) {
  const auto add = [&](std::string check, std::string file, int line,
                       std::string msg) {
    ctx.add("layering", std::move(check), std::move(file), line,
            std::move(msg));
  };

  static const std::string kExceptionsPath = "tools/analyze/layering.exceptions";
  std::vector<Exception> exceptions;
  if (const std::optional<std::string> text = ctx.read_text(kExceptionsPath)) {
    std::istringstream in(*text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      const std::string t = trim(line);
      if (t.empty() || t[0] == '#') continue;
      // "<file> -> <module>: reason"
      const std::size_t arrow = t.find("->");
      const std::size_t colon =
          arrow == std::string::npos ? std::string::npos : t.find(':', arrow);
      const std::string file =
          arrow == std::string::npos ? "" : trim(t.substr(0, arrow));
      const std::string mod =
          colon == std::string::npos
              ? ""
              : trim(t.substr(arrow + 2, colon - arrow - 2));
      const std::string reason =
          colon == std::string::npos ? "" : trim(t.substr(colon + 1));
      if (file.empty() || mod.empty() || reason.empty()) {
        add("layering-exception-malformed", kExceptionsPath, line_no,
            "expected \"<including-file> -> <included-module>: reason\"");
        continue;
      }
      if (module_ranks().count(mod) == 0) {
        add("layering-exception-malformed", kExceptionsPath, line_no,
            "\"" + mod + "\" is not a module in the layering table");
        continue;
      }
      exceptions.push_back({file, mod, line_no, false});
    }
  }

  for (const SourceFile& f : ctx.files()) {
    const std::string from = module_of_file(f.rel_path);
    if (f.rel_path.rfind("src/", 0) == 0 && from.empty()) {
      add("layering-unknown-module", f.rel_path, 0,
          "file sits outside every known src/ module directory; new "
          "modules must be ranked in the layering table "
          "(tools/analyze/pass_layering.cpp) and documented in "
          "docs/ANALYSIS.md");
      continue;
    }
    if (from.empty()) continue;  // tests/bench/examples: out of scope
    const auto from_rank = module_ranks().find(from);
    if (from_rank == module_ranks().end()) {
      add("layering-unknown-module", f.rel_path, 0,
          "module \"" + from + "\" is not in the layering table; rank it "
          "in tools/analyze/pass_layering.cpp and document it in "
          "docs/ANALYSIS.md");
      continue;
    }
    for (const Include& inc : quoted_includes(f)) {
      const std::string to = module_of_include(inc.path);
      if (to.empty() || to == from) continue;
      const auto to_rank = module_ranks().find(to);
      if (to_rank == module_ranks().end()) continue;  // tool-local subdir
      if (to_rank->second <= from_rank->second) continue;  // downward/lateral
      const auto exception =
          std::find_if(exceptions.begin(), exceptions.end(),
                       [&](const Exception& e) {
                         return e.file == f.rel_path && e.module == to;
                       });
      if (exception != exceptions.end()) {
        exception->used = true;
        continue;
      }
      add("layering-back-edge", f.rel_path, inc.line,
          "include of \"" + inc.path + "\" points up the module DAG (" +
              from + " -> " + to +
              "); invert the dependency or, if it is genuinely historical, "
              "list it in " + kExceptionsPath + " with a reason");
    }
  }

  for (const Exception& e : exceptions) {
    if (!e.used) {
      add("layering-exception-stale", kExceptionsPath, e.line,
          "exception \"" + e.file + " -> " + e.module +
              "\" matches no include in the tree; the grandfather list "
              "must shrink with the code");
    }
  }
}

}  // namespace paraconv::analyze
