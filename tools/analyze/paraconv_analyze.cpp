// Standalone driver for the paraconv analysis suite; see analyze.hpp for
// the pass catalog. Runs as the `analyze` ctest against the source tree,
// so determinism/concurrency/layering drift fails `ctest -j` locally the
// same way it fails CI. `--sarif <file>` additionally writes the findings
// as SARIF 2.1.0 for CI artifact upload.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analyze.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root <dir>] [--sarif <file>]\n"
               "          [--disable <pass>]... [--list-passes]\n"
               "Runs the paraconv static-analysis passes against the repo\n"
               "rooted at <dir> (default: current directory). Exits 1 when\n"
               "any finding is reported, 2 on usage errors.\n"
               "  --sarif <file>    also write findings as SARIF 2.1.0\n"
               "  --disable <pass>  skip one pass (repeatable)\n"
               "  --list-passes     print the pass catalog and exit\n",
               argv0);
  return 2;
}

bool known_pass(const std::string& name) {
  for (const paraconv::analyze::PassInfo& pass :
       paraconv::analyze::pass_catalog()) {
    if (pass.name == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string sarif_path;
  paraconv::analyze::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--root requires a directory argument\n");
        return usage(argv[0]);
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--sarif requires a file argument\n");
        return usage(argv[0]);
      }
      sarif_path = argv[++i];
    } else if (std::strcmp(argv[i], "--disable") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--disable requires a pass name\n");
        return usage(argv[0]);
      }
      const std::string pass = argv[++i];
      if (!known_pass(pass)) {
        std::fprintf(stderr, "unknown pass: %s (see --list-passes)\n",
                     pass.c_str());
        return usage(argv[0]);
      }
      options.disabled.insert(pass);
    } else if (std::strcmp(argv[i], "--list-passes") == 0) {
      for (const paraconv::analyze::PassInfo& pass :
           paraconv::analyze::pass_catalog()) {
        std::printf("%-10s %s\n", pass.name.c_str(), pass.summary.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  const paraconv::analyze::Report report =
      paraconv::analyze::run_analyze(root, options);
  if (report.files_scanned == 0) {
    std::fprintf(stderr,
                 "paraconv-analyze: no sources found under '%s' -- wrong "
                 "--root?\n",
                 root.c_str());
    return 2;
  }
  // The SARIF artifact is written findings-or-not: CI uploads it on every
  // run, and an empty results array is the machine-readable "clean".
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "paraconv-analyze: cannot write SARIF to '%s'\n",
                   sarif_path.c_str());
      return 2;
    }
    out << paraconv::analyze::to_sarif(report);
  }
  for (const paraconv::analyze::Finding& finding : report.findings) {
    std::fprintf(stderr, "%s\n",
                 paraconv::analyze::to_string(finding).c_str());
  }
  if (!report.findings.empty()) {
    std::fprintf(stderr, "paraconv-analyze: %zu finding(s) in %d files\n",
                 report.findings.size(), report.files_scanned);
    return 1;
  }
  std::fprintf(stderr, "paraconv-analyze: OK (%d files scanned)\n",
               report.files_scanned);
  return 0;
}
