// Determinism pass. The repo's keystone invariant is that reports,
// checkpoints and memo spills are byte-identical for any --jobs value,
// shard split or cache temperature; this pass makes the three ways that
// invariant has historically eroded mechanically visible:
//
//   nondet-unordered-emission  unordered_map/unordered_set in an emission
//                              file (report writers, checkpoint/spill/merge
//                              codecs) — iteration order would leak into
//                              bytes
//   nondet-pointer-key         uintptr_t in an emission file — address
//                              values as ordering/hash keys differ per run
//   nondet-random-source       rand()/srand()/std::random_device anywhere
//                              in src/ (seeded std::mt19937 via common/rng
//                              is the sanctioned source)
//   nondet-wall-clock          a *_clock::now() read whose file is not in
//                              the BENCHMARKS.md "Wall-clock exceptions"
//                              table or whose line lacks an
//                              ANALYZE-ALLOW(nondet) annotation
//   nondet-clock-doc-missing   BENCHMARKS.md lost the exceptions section
//   nondet-clock-doc-stale     an exceptions row names a file with no
//                              clock reads
//   analyze-allow-unused       a nondet suppression that suppresses nothing
//
// Scoped to src/: tools and tests are drivers and fixtures where clocks
// and unordered containers are legitimate (and where the analyzer's own
// needle strings live).
#include <map>
#include <sstream>
#include <utility>

#include "passes.hpp"
#include "scanner.hpp"

namespace paraconv::analyze {
namespace {

bool is_emission_file(const std::string& rel_path) {
  return rel_path.rfind("src/report/", 0) == 0 ||
         rel_path == "src/dse/checkpoint.cpp" ||
         rel_path == "src/dse/memo_store.cpp" ||
         rel_path == "src/dse/frontier.cpp" ||
         rel_path == "src/dse/shard.cpp";
}

struct ClockDocs {
  bool section_found{false};
  std::vector<std::pair<std::string, int>> files;  // path, doc line
};

ClockDocs parse_clock_docs(const std::string& text) {
  ClockDocs docs;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool in_section = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') {
      in_section = line.find("Wall-clock exceptions") != std::string::npos;
      if (in_section) docs.section_found = true;
      continue;
    }
    if (!in_section || line.empty() || line[0] != '|') continue;
    const std::vector<std::string> cells = table_cells(line);
    if (cells.empty()) continue;
    const std::string path = backticked(cells[0]);
    if (path.empty()) continue;  // header or separator row
    docs.files.emplace_back(path, line_no);
  }
  return docs;
}

}  // namespace

void run_nondet_pass(Context& ctx) {
  const auto add = [&](std::string check, std::string file, int line,
                       std::string msg) {
    ctx.add("nondet", std::move(check), std::move(file), line,
            std::move(msg));
  };

  const std::optional<std::string> bench_docs =
      ctx.read_text("docs/BENCHMARKS.md");
  const ClockDocs clock_docs =
      bench_docs.has_value() ? parse_clock_docs(*bench_docs) : ClockDocs{};
  if (!clock_docs.section_found) {
    add("nondet-clock-doc-missing", "docs/BENCHMARKS.md", 0,
        "no \"Wall-clock exceptions\" section; the nondet pass needs the "
        "documented allowlist of files that may read wall clocks");
  }
  std::map<std::string, bool> doc_listed;
  for (const auto& [path, line] : clock_docs.files) doc_listed[path] = true;

  // files that actually read a clock, for the staleness check
  std::map<std::string, bool> reads_clock;

  for (const SourceFile& f : ctx.files()) {
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    AllowIndex allows(parse_allow_annotations(f));

    // (1) unordered containers and pointer-valued keys in emission files.
    if (is_emission_file(f.rel_path)) {
      for (const char* container : {"unordered_map", "unordered_set"}) {
        for (const std::size_t pos :
             word_occurrences(f.stripped, container)) {
          const int line = line_of(f.stripped, pos);
          if (allows.allowed("nondet", line)) {
            allows.mark_used("nondet", line);
            continue;
          }
          add("nondet-unordered-emission", f.rel_path, line,
              std::string("std::") + container +
                  " in an emission file: iteration order is "
                  "implementation-defined and would leak into report/"
                  "checkpoint bytes; use std::map/std::set or sort before "
                  "emitting");
        }
      }
      for (const std::size_t pos : word_occurrences(f.stripped, "uintptr_t")) {
        const int line = line_of(f.stripped, pos);
        if (allows.allowed("nondet", line)) {
          allows.mark_used("nondet", line);
          continue;
        }
        add("nondet-pointer-key", f.rel_path, line,
            "pointer value reinterpreted as an integer in an emission "
            "file: addresses differ run to run, so any ordering or hash "
            "keyed on them is nondeterministic");
      }
    }

    // (2) ambient random sources, tree-wide in src/.
    for (const char* source : {"rand", "srand", "random_device"}) {
      for (const std::size_t pos : word_occurrences(f.stripped, source)) {
        const int line = line_of(f.stripped, pos);
        if (allows.allowed("nondet", line)) {
          allows.mark_used("nondet", line);
          continue;
        }
        add("nondet-random-source", f.rel_path, line,
            std::string("\"") + source +
                "\" is an ambient random source; library code must take "
                "seeds explicitly (common/rng) so every run is replayable");
      }
    }

    // (3) wall-clock reads: documented file + annotated line, or finding.
    bool file_reads_clock = false;
    for (const char* needle :
         {"steady_clock::now", "system_clock::now",
          "high_resolution_clock::now"}) {
      std::size_t pos = 0;
      while ((pos = f.stripped.find(needle, pos)) != std::string::npos) {
        const int line = line_of(f.stripped, pos);
        file_reads_clock = true;
        const bool annotated = allows.allowed("nondet", line);
        if (annotated) allows.mark_used("nondet", line);
        if (!annotated) {
          add("nondet-wall-clock", f.rel_path, line,
              "wall-clock read without an ANALYZE-ALLOW(nondet) "
              "annotation; clock values must never reach deterministic "
              "outputs, and every sanctioned read carries its reason");
        } else if (clock_docs.section_found &&
                   doc_listed.count(f.rel_path) == 0) {
          add("nondet-wall-clock", f.rel_path, line,
              "wall-clock read in a file missing from the docs/"
              "BENCHMARKS.md \"Wall-clock exceptions\" table; add the row "
              "or move the read");
        }
        pos += 1;
      }
    }
    if (file_reads_clock) reads_clock[f.rel_path] = true;

    // (4) suppressions that suppress nothing are stale documentation.
    for (const AllowAnnotation* a : allows.unused("nondet")) {
      add("analyze-allow-unused", f.rel_path, a->line,
          "ANALYZE-ALLOW(nondet) annotation does not cover any "
          "nondeterminism-pass finding site; remove it or move it next to "
          "the read it justifies");
    }
  }

  for (const auto& [path, line] : clock_docs.files) {
    if (reads_clock.count(path) == 0) {
      add("nondet-clock-doc-stale", "docs/BENCHMARKS.md", line,
          "\"Wall-clock exceptions\" row `" + path +
              "` names a file with no wall-clock reads; the allowlist must "
              "shrink with the code");
    }
  }
}

}  // namespace paraconv::analyze
