// paraconv_analyze: project-specific static analysis for the paraconv
// tree. Four passes share one token/decl scanner (scanner.hpp):
//
//   lint      — docs/schema/hygiene checks (the original paraconv_lint)
//   nondet    — determinism: unordered-container emission, random sources,
//               pointer-keyed ordering, wall-clock reads outside the
//               documented allowlist
//   atomics   — concurrency discipline: justified memory orders, explicit
//               orders on atomic ops, GUARDED-BY field/lock-scope checks
//   layering  — the src/ module DAG, with an explicit exceptions file
//
// Findings come out both human-readable (to_string) and as SARIF 2.1.0
// (to_sarif) for CI upload. See docs/ANALYSIS.md for the pass catalog and
// the annotation grammar.
#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace paraconv::analyze {

struct Finding {
  std::string pass;   // which pass produced it (lint, nondet, ...)
  std::string check;  // stable kebab-case rule id
  std::string file;   // relative path (or doc path) the finding is about
  int line{0};        // 1-based; 0 when the finding is file-scoped
  std::string message;
};

/// "file:line: [check] message" — the human-readable diagnostic line.
std::string to_string(const Finding& finding);

struct Report {
  std::vector<Finding> findings;
  int files_scanned{0};
};

struct PassInfo {
  std::string name;
  std::string summary;
};

/// The fixed pass catalog, in execution order.
const std::vector<PassInfo>& pass_catalog();

struct Options {
  std::set<std::string> disabled;  // pass names to skip
};

Report run_analyze(const std::filesystem::path& root,
                   const Options& options = {});

/// SARIF 2.1.0 document for the report: one run, one rule per distinct
/// check id, one result per finding.
std::string to_sarif(const Report& report);

}  // namespace paraconv::analyze
