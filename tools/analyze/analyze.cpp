#include "analyze.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "passes.hpp"
#include "scanner.hpp"

namespace paraconv::analyze {
namespace {

namespace fs = std::filesystem;

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  // Seeded-violation fixtures must not fail the real tree; build trees
  // hold generated/vendored sources.
  return name == "fixtures" || name.rfind("build", 0) == 0 ||
         name.rfind(".", 0) == 0;
}

void collect_from(const fs::path& root, const fs::path& dir,
                  std::vector<SourceFile>* files) {
  if (!fs::exists(dir)) return;
  std::error_code ec;
  fs::recursive_directory_iterator it(dir, ec);
  const fs::recursive_directory_iterator end;
  while (it != end) {
    if (it->is_directory(ec) && skip_dir(it->path())) {
      it.disable_recursion_pending();
      it.increment(ec);
      continue;
    }
    const fs::path& p = it->path();
    const std::string ext = p.extension().string();
    if (it->is_regular_file(ec) && (ext == ".cpp" || ext == ".hpp")) {
      if (std::optional<std::string> raw = read_file(p)) {
        SourceFile f;
        f.rel_path = fs::relative(p, root).generic_string();
        f.stripped = strip_comments(*raw);
        f.raw = std::move(*raw);
        files->push_back(std::move(f));
      }
    }
    it.increment(ec);
  }
}

std::vector<SourceFile> collect_files(const fs::path& root) {
  std::vector<SourceFile> files;
  for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
    collect_from(root, root / dir, &files);
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  return files;
}

/// The suppression grammar itself is part of the contract: a typo'd
/// category or a missing reason silently disables nothing — it must be a
/// finding, not a no-op. Scoped to src/ so annotation-shaped text in the
/// analyzer's own sources and tests stays inert.
void check_annotation_grammar(Context& ctx) {
  for (const SourceFile& f : ctx.files()) {
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    for (const AllowAnnotation& a : parse_allow_annotations(f)) {
      if (!a.error.empty()) {
        ctx.add("analyze", "analyze-allow-malformed", f.rel_path, a.line,
                "malformed suppression annotation: " + a.error);
      }
    }
  }
}

}  // namespace

const std::vector<PassInfo>& pass_catalog() {
  static const std::vector<PassInfo> kPasses = {
      {"lint",
       "docs/schema/hygiene checks (diag codes, obs names, CSV/JSON schema, "
       "docs cross-references)"},
      {"nondet",
       "determinism: unordered-container emission, random sources, "
       "pointer-keyed ordering, wall-clock reads outside the documented "
       "allowlist"},
      {"atomics",
       "concurrency discipline: justified memory orders, explicit orders on "
       "atomic ops, GUARDED-BY lock-scope checks"},
      {"layering",
       "src/ module DAG: include back-edges must be listed in "
       "tools/analyze/layering.exceptions"},
  };
  return kPasses;
}

std::string to_string(const Finding& finding) {
  std::string out = finding.file;
  if (finding.line > 0) out += ":" + std::to_string(finding.line);
  out += ": [" + finding.check + "] " + finding.message;
  return out;
}

Report run_analyze(const std::filesystem::path& root, const Options& options) {
  Context ctx(root, collect_files(root));
  check_annotation_grammar(ctx);
  const auto enabled = [&](const char* pass) {
    return options.disabled.count(pass) == 0;
  };
  if (enabled("lint")) run_lint_pass(ctx);
  if (enabled("nondet")) run_nondet_pass(ctx);
  if (enabled("atomics")) run_atomics_pass(ctx);
  if (enabled("layering")) run_layering_pass(ctx);

  Report report;
  report.files_scanned = static_cast<int>(ctx.files().size());
  report.findings = ctx.take_findings();
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return report;
}

// ---- SARIF 2.1.0 -----------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const Report& report) {
  std::vector<std::string> rule_ids;
  for (const Finding& f : report.findings) {
    if (std::find(rule_ids.begin(), rule_ids.end(), f.check) ==
        rule_ids.end()) {
      rule_ids.push_back(f.check);
    }
  }
  std::sort(rule_ids.begin(), rule_ids.end());

  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"paraconv_analyze\",\n";
  out += "          \"rules\": [";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n            {\"id\": \"" + json_escape(rule_ids[i]) + "\"}";
  }
  if (!rule_ids.empty()) out += "\n          ";
  out += "]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    if (i > 0) out += ",";
    out += "\n        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.check) + "\",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"},\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) + "\"},\n";
    out += "                \"region\": {\"startLine\": " +
           std::to_string(std::max(f.line, 1)) + "}\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]\n";
    out += "        }";
  }
  if (!report.findings.empty()) out += "\n      ";
  out += "]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace paraconv::analyze
