// Atomics and lock-discipline pass. Relaxed/acquire/release orders are
// only correct relative to a happens-before argument, and that argument
// lives nowhere in the type system — so this pass makes it live in an
// annotation the tool verifies:
//
//   atomics-order-unjustified  a memory_order_relaxed/acquire/release/
//                              acq_rel/consume use without an
//                              ANALYZE-ALLOW(atomic) annotation naming the
//                              happens-before argument
//   atomics-bare-op            an operation on a declared std::atomic that
//                              defaults to seq_cst (.load()/.store()/
//                              operator++/=/...) — spell the order
//                              explicitly or justify the default
//   atomics-guard-violation    a field declared // GUARDED-BY(mutex)
//                              touched outside a token-detectable lock
//                              scope on that mutex
//   atomics-guard-malformed    a GUARDED-BY annotation the scanner cannot
//                              parse back to a field and mutex
//   analyze-allow-unused       an atomic/guard suppression that suppresses
//                              nothing
//
// Scoped to src/, like the nondet pass: that is where the concurrency
// lives, and where the analyzer's own needle strings must not self-match.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <utility>

#include "passes.hpp"
#include "scanner.hpp"

namespace paraconv::analyze {
namespace {

/// "src/dse/memo_cache.hpp" -> "src/dse"; declarations and uses of an
/// atomic or guarded field are matched within one module directory (the
/// header declares, the .cpp files touch).
std::string module_dir(const std::string& rel_path) {
  const std::size_t slash = rel_path.rfind('/');
  return slash == std::string::npos ? rel_path : rel_path.substr(0, slash);
}

struct AtomicDecl {
  std::string name;
  /// Pointer-to-atomic: only `->` method calls are atomic operations on
  /// the pointee; assigning or incrementing the pointer itself is plain.
  bool pointer{false};
};

/// Variables/fields declared `std::atomic<...>` in `f`, pointers included
/// (their uses go through ->).
std::vector<AtomicDecl> atomic_decl_names(const SourceFile& f) {
  std::vector<AtomicDecl> decls;
  static const std::string kNeedle = "std::atomic<";
  std::size_t pos = 0;
  while ((pos = f.stripped.find(kNeedle, pos)) != std::string::npos) {
    std::size_t i = pos + kNeedle.size();
    int depth = 1;
    while (i < f.stripped.size() && depth > 0) {
      if (f.stripped[i] == '<') ++depth;
      if (f.stripped[i] == '>') --depth;
      ++i;
    }
    pos = i;
    bool pointer = false;
    while (i < f.stripped.size() &&
           (std::isspace(static_cast<unsigned char>(f.stripped[i])) != 0 ||
            f.stripped[i] == '*' || f.stripped[i] == '&')) {
      pointer = pointer || f.stripped[i] == '*';
      ++i;
    }
    std::size_t b = i;
    while (i < f.stripped.size() && is_ident_char(f.stripped[i])) ++i;
    if (i > b) decls.push_back({f.stripped.substr(b, i - b), pointer});
  }
  return decls;
}

const std::set<std::string>& atomic_methods() {
  static const std::set<std::string> kMethods = {
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_weak", "compare_exchange_strong"};
  return kMethods;
}

/// Lock scopes for `mutex_name` in `f`: every lock_guard/unique_lock/
/// scoped_lock/shared_lock construction whose argument list names the
/// mutex, extended to the end of the innermost enclosing brace block.
std::vector<std::pair<std::size_t, std::size_t>> lock_scopes(
    const SourceFile& f,
    const std::vector<std::pair<std::size_t, std::size_t>>& intervals,
    const std::string& mutex_name) {
  std::vector<std::pair<std::size_t, std::size_t>> scopes;
  for (const char* keyword :
       {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}) {
    for (const std::size_t pos : word_occurrences(f.stripped, keyword)) {
      const auto args = paren_region(f.stripped, pos);
      if (!args.has_value()) continue;
      const std::string arg_text =
          f.stripped.substr(args->first, args->second - args->first);
      if (word_occurrences(arg_text, mutex_name).empty()) continue;
      scopes.emplace_back(
          pos, innermost_brace_end(intervals, pos, f.stripped.size()));
    }
  }
  return scopes;
}

bool in_any_scope(
    const std::vector<std::pair<std::size_t, std::size_t>>& scopes,
    std::size_t pos) {
  return std::any_of(scopes.begin(), scopes.end(), [&](const auto& s) {
    return s.first <= pos && pos < s.second;
  });
}

}  // namespace

void run_atomics_pass(Context& ctx) {
  const auto add = [&](std::string check, std::string file, int line,
                       std::string msg) {
    ctx.add("atomics", std::move(check), std::move(file), line,
            std::move(msg));
  };

  // module dir -> declared atomic names / guard annotations (with origin).
  // The mapped bool is true when every declaration of that name in the
  // module is a pointer-to-atomic.
  std::map<std::string, std::map<std::string, bool>> module_atomics;
  struct Guard {
    GuardAnnotation annotation;
    std::string decl_file;
  };
  std::map<std::string, std::vector<Guard>> module_guards;

  for (const SourceFile& f : ctx.files()) {
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    const std::string mod = module_dir(f.rel_path);
    for (AtomicDecl& decl : atomic_decl_names(f)) {
      auto [it, inserted] =
          module_atomics[mod].emplace(std::move(decl.name), decl.pointer);
      if (!inserted) it->second = it->second && decl.pointer;
    }
    for (GuardAnnotation& g : parse_guard_annotations(f)) {
      if (!g.error.empty()) {
        add("atomics-guard-malformed", f.rel_path, g.line,
            "unparsable GUARDED-BY annotation: " + g.error);
        continue;
      }
      module_guards[mod].push_back({std::move(g), f.rel_path});
    }
  }

  for (const SourceFile& f : ctx.files()) {
    if (f.rel_path.rfind("src/", 0) != 0) continue;
    const std::string mod = module_dir(f.rel_path);
    AllowIndex allows(parse_allow_annotations(f));
    const std::string& text = f.stripped;

    // (1) explicit weak orders need their happens-before argument.
    for (const char* order :
         {"memory_order_relaxed", "memory_order_acquire",
          "memory_order_release", "memory_order_acq_rel",
          "memory_order_consume"}) {
      for (const std::size_t pos : word_occurrences(text, order)) {
        const int line = line_of(text, pos);
        if (allows.allowed("atomic", line)) {
          allows.mark_used("atomic", line);
          continue;
        }
        add("atomics-order-unjustified", f.rel_path, line,
            std::string(order) +
                " without an ANALYZE-ALLOW(atomic) annotation naming the "
                "happens-before argument; a weak order is a proof "
                "obligation, not a default");
      }
    }

    // (2) operations on declared atomics that default to seq_cst.
    const auto atomics_it = module_atomics.find(mod);
    if (atomics_it != module_atomics.end()) {
      for (const auto& [name, pointer_only] : atomics_it->second) {
        for (const std::size_t pos : word_occurrences(text, name)) {
          // Member access on some *other* object that happens to share the
          // name is out of scope for this token-level check.
          if (pos > 0 && (text[pos - 1] == '.' || text[pos - 1] == ':' ||
                          (text[pos - 1] == '>' && pos > 1 &&
                           text[pos - 2] == '-'))) {
            continue;
          }
          std::size_t i = pos + name.size();
          while (i < text.size() &&
                 std::isspace(static_cast<unsigned char>(text[i])) != 0) {
            ++i;
          }
          if (i >= text.size()) continue;
          std::string what;
          if (text[i] == '.' ||
              (text[i] == '-' && i + 1 < text.size() && text[i + 1] == '>')) {
            // On a pointer-to-atomic only `->` reaches the pointee.
            if (pointer_only && text[i] == '.') continue;
            std::size_t m = i + (text[i] == '.' ? 1 : 2);
            std::size_t b = m;
            while (m < text.size() && is_ident_char(text[m])) ++m;
            const std::string method = text.substr(b, m - b);
            if (atomic_methods().count(method) == 0) continue;
            const auto args = paren_region(text, m);
            if (!args.has_value()) continue;
            const std::string arg_text =
                text.substr(args->first, args->second - args->first);
            if (arg_text.find("memory_order") != std::string::npos) continue;
            what = "." + method + "() call";
          } else if (pointer_only) {
            // Assigning/incrementing the pointer itself is a plain op.
            continue;
          } else if (text.compare(i, 2, "++") == 0 ||
                     text.compare(i, 2, "--") == 0) {
            what = std::string("operator") + text[i] + text[i] + " use";
          } else if (i + 1 < text.size() && text[i + 1] == '=' &&
                     (text[i] == '+' || text[i] == '-' || text[i] == '|' ||
                      text[i] == '&' || text[i] == '^')) {
            what = std::string("compound operator") + text[i] + "= use";
          } else if (text[i] == '=' &&
                     (i + 1 >= text.size() || text[i + 1] != '=')) {
            what = "operator= store";
          } else {
            continue;
          }
          const int line = line_of(text, pos);
          if (allows.allowed("atomic", line)) {
            allows.mark_used("atomic", line);
            continue;
          }
          add("atomics-bare-op", f.rel_path, line,
              "atomic \"" + name + "\" " + what +
                  " defaults to seq_cst; spell the memory order explicitly "
                  "(and justify a weak one) or add an "
                  "ANALYZE-ALLOW(atomic) annotation for the default");
        }
      }
    }

    // (3) GUARDED-BY fields may only be touched under their mutex.
    const auto guards_it = module_guards.find(mod);
    if (guards_it != module_guards.end()) {
      const auto intervals = brace_intervals(text);
      for (const Guard& guard : guards_it->second) {
        const auto scopes =
            lock_scopes(f, intervals, guard.annotation.mutex_name);
        for (const std::size_t pos :
             word_occurrences(text, guard.annotation.field)) {
          // `std::map`-style qualified names and template uses are type
          // mentions, not touches of the guarded field.
          if (pos > 0 && text[pos - 1] == ':') continue;
          const std::size_t after = pos + guard.annotation.field.size();
          if (after < text.size() && text[after] == '<') continue;
          const int line = line_of(text, pos);
          // The annotated declaration itself is not a touch.
          if (f.rel_path == guard.decl_file && line == guard.annotation.line) {
            continue;
          }
          if (in_any_scope(scopes, pos)) continue;
          if (allows.allowed("guard", line)) {
            allows.mark_used("guard", line);
            continue;
          }
          add("atomics-guard-violation", f.rel_path, line,
              "\"" + guard.annotation.field + "\" is GUARDED-BY(" +
                  guard.annotation.mutex_name + ") (declared in " +
                  guard.decl_file +
                  ") but this use is outside any detectable lock scope on "
                  "that mutex");
        }
      }
    }

    for (const char* category : {"atomic", "guard"}) {
      for (const AllowAnnotation* a : allows.unused(category)) {
        add("analyze-allow-unused", f.rel_path, a->line,
            std::string("ANALYZE-ALLOW(") + category +
                ") annotation does not cover any atomics-pass finding "
                "site; remove it or move it next to the operation it "
                "justifies");
      }
    }
  }
}

}  // namespace paraconv::analyze
