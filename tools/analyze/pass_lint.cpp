// The original paraconv_lint checks, as the `lint` pass of the analyze
// suite: header hygiene, suppression policy, DiagCode/docs/test sync,
// observability naming, CSV/JSON/checkpoint schema contracts, and docs
// file:symbol cross-references. Check ids are unchanged from PR 4 —
// `paraconv_lint` remains a thin front-end running exactly this pass.
#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>

#include "passes.hpp"
#include "scanner.hpp"

namespace paraconv::analyze {
namespace {

// The suppression marker, spelled split so this file's own text never
// contains the contiguous token the nolint-policy check scans for.
const std::string kNolint = std::string("NO") + "LINT";

// Shared identity/status column contract: the sweep CSV header, the sweep
// JSON keys and the checkpoint record must all carry these names. Renaming
// one in any writer without the others (and the docs) is schema drift.
constexpr std::array<const char*, 9> kIdentityColumns = {
    "index",    "benchmark", "vertices",
    "edges",    "pe_count",  "cache_per_pe_bytes",
    "topology", "packer",    "allocator"};
constexpr std::array<const char*, 3> kStatusColumns = {"status", "error_code",
                                                       "error_message"};
// Banked cost-model schema extension: the banked sweep CSV header, the
// per-cell JSON keys and the checkpoint bank segment must agree on these
// names (see src/pim/cost_model.hpp).
constexpr std::array<const char*, 6> kBankColumns = {
    "cost_model",     "banks",            "bank_policy",
    "bank_conflicts", "bank_stall_units", "bank_peak_occupancy"};
// The experiment CSV (report/csv.cpp) shares the graph-identity prefix
// naming with the sweep schema.
constexpr std::array<const char*, 4> kExperimentIdentity = {
    "benchmark", "vertices", "edges", "pe_count"};

struct DocsTables {
  // Diagnostic-codes table: kebab code -> line.
  std::vector<std::pair<std::string, int>> diag_codes;
  // Observability-names table: name -> (kind, line).
  std::vector<std::pair<std::string, std::pair<std::string, int>>> obs_names;
  bool diag_section_found{false};
  bool obs_section_found{false};
};

DocsTables parse_docs(const std::string& text) {
  DocsTables tables;
  std::istringstream in(text);
  std::string line;
  enum class Section { kOther, kDiag, kObs };
  Section section = Section::kOther;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '#') {
      if (line.find("Diagnostic codes") != std::string::npos) {
        section = Section::kDiag;
        tables.diag_section_found = true;
      } else if (line.find("Observability names") != std::string::npos) {
        section = Section::kObs;
        tables.obs_section_found = true;
      } else {
        section = Section::kOther;
      }
      continue;
    }
    if (section == Section::kOther || line.empty() || line[0] != '|') continue;
    const std::vector<std::string> cells = table_cells(line);
    if (cells.empty()) continue;
    const std::string name = backticked(cells[0]);
    if (name.empty()) continue;  // header or separator row
    if (section == Section::kDiag) {
      tables.diag_codes.emplace_back(name, line_no);
    } else if (cells.size() >= 2) {
      tables.obs_names.emplace_back(
          name, std::make_pair(trim(cells[1]), line_no));
    }
  }
  return tables;
}

class LintPass {
 public:
  explicit LintPass(Context& ctx) : ctx_(ctx) {}

  void run() {
    check_hygiene();
    check_diag_codes();
    check_obs_names();
    check_schema();
    check_bank_schema();
    check_batch_schema();
    check_docs_xrefs();
  }

 private:
  void add(std::string check, std::string file, int line, std::string msg) {
    ctx_.add("lint", std::move(check), std::move(file), line, std::move(msg));
  }

  const SourceFile* require_file(const std::string& rel_path) {
    return ctx_.require_file("lint", rel_path);
  }

  // ---- header hygiene + suppression policy --------------------------------

  void check_hygiene() {
    for (const SourceFile& f : ctx_.files()) {
      const bool is_header = f.rel_path.size() > 4 &&
                             f.rel_path.compare(f.rel_path.size() - 4, 4,
                                                ".hpp") == 0;
      const bool in_library = f.rel_path.rfind("src/", 0) == 0;
      if (is_header) {
        // Stripped text: a comment that merely *mentions* the pragma (or a
        // status token, below) must not satisfy the check.
        if (f.stripped.find("#pragma once") == std::string::npos) {
          add("pragma-once", f.rel_path, 1, "header is missing #pragma once");
        }
        const std::size_t un = f.stripped.find("using namespace");
        if (un != std::string::npos) {
          add("using-namespace-header", f.rel_path, line_of(f.stripped, un),
              "headers must not contain using-namespace directives "
              "(they leak into every includer)");
        }
      }
      if (in_library) {
        const std::size_t inc = f.stripped.find("#include <iostream>");
        if (inc != std::string::npos) {
          add("iostream-in-library", f.rel_path, line_of(f.stripped, inc),
              "library code must not include <iostream> (global stream "
              "objects + static-init cost in every TU); use <iosfwd>/"
              "<ostream> and let CLIs own the streams");
        }
      }
      check_nolint_policy(f);
    }
  }

  void check_nolint_policy(const SourceFile& f) {
    std::size_t pos = 0;
    while ((pos = f.raw.find(kNolint, pos)) != std::string::npos) {
      const std::size_t marker = pos;
      std::size_t after = pos + kNolint.size();
      std::string form = kNolint;
      if (f.raw.compare(after, 8, "NEXTLINE") == 0) {
        form += "NEXTLINE";
        after += 8;
      } else if (f.raw.compare(after, 5, "BEGIN") == 0) {
        form += "BEGIN";
        after += 5;
      } else if (f.raw.compare(after, 3, "END") == 0) {
        // Closes an annotated BEGIN; the reason lives on the BEGIN line.
        pos = after + 3;
        continue;
      }
      pos = after;
      const std::size_t eol = f.raw.find('\n', after);
      const std::string rest =
          f.raw.substr(after, (eol == std::string::npos ? f.raw.size() : eol) -
                                  after);
      const int line = line_of(f.raw, marker);
      if (rest.empty() || rest[0] != '(') {
        add("nolint-policy", f.rel_path, line,
            form + " must name the suppressed check: " + form +
                "(check-name): reason");
        continue;
      }
      const std::size_t close = rest.find(')');
      if (close == std::string::npos || close == 1) {
        add("nolint-policy", f.rel_path, line,
            form + " has an empty or unterminated check list");
        continue;
      }
      const std::size_t colon = rest.find(':', close);
      if (colon == std::string::npos || trim(rest.substr(colon + 1)).empty()) {
        add("nolint-policy", f.rel_path, line,
            form + " is missing its justification (\"... ): reason\"); "
                   "unexplained suppressions are indistinguishable from "
                   "silenced bugs");
      }
    }
  }

  // ---- DiagCode sync -------------------------------------------------------

  struct EnumInfo {
    std::vector<std::pair<std::string, int>> enumerators;  // name, line
  };

  std::optional<EnumInfo> parse_diag_enum(const SourceFile& f) {
    const std::size_t at = f.stripped.find("enum class DiagCode");
    if (at == std::string::npos) return std::nullopt;
    const auto region = brace_region(f.stripped, at);
    if (!region.has_value()) return std::nullopt;
    EnumInfo info;
    std::size_t i = region->first;
    while (i < region->second) {
      if (!is_ident_char(f.stripped[i])) {
        ++i;
        continue;
      }
      std::size_t b = i;
      while (i < region->second && is_ident_char(f.stripped[i])) ++i;
      const std::string ident = f.stripped.substr(b, i - b);
      if (ident.size() > 1 && ident[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(ident[1])) != 0) {
        info.enumerators.emplace_back(ident, line_of(f.stripped, b));
      }
    }
    return info;
  }

  /// `case Scope::kX: ... return "lit";` pairs inside the to_string overload
  /// whose signature contains `signature_needle`.
  std::vector<std::pair<std::string, std::string>> parse_to_string_switch(
      const SourceFile& f, const std::string& signature_needle,
      const std::string& scope_needle) {
    std::vector<std::pair<std::string, std::string>> mapping;
    const std::size_t sig = f.stripped.find(signature_needle);
    if (sig == std::string::npos) return mapping;
    const auto region = brace_region(f.stripped, sig);
    if (!region.has_value()) return mapping;
    std::vector<std::string> pending;
    std::size_t i = region->first;
    while (i < region->second) {
      if (f.stripped.compare(i, scope_needle.size(), scope_needle) == 0) {
        std::size_t b = i + scope_needle.size();
        std::size_t e = b;
        while (e < region->second && is_ident_char(f.stripped[e])) ++e;
        pending.push_back(f.stripped.substr(b, e - b));
        i = e;
        continue;
      }
      if (f.stripped.compare(i, 6, "return") == 0) {
        const std::vector<QuotedString> lits = quoted_strings(
            f.stripped, i, std::min(region->second, i + 200));
        if (!lits.empty()) {
          for (const std::string& enumerator : pending) {
            mapping.emplace_back(enumerator, lits.front().value);
          }
        }
        pending.clear();
        i += 6;
        continue;
      }
      ++i;
    }
    return mapping;
  }

  void check_diag_codes() {
    const SourceFile* hpp = require_file("src/sched/validator.hpp");
    const SourceFile* cpp = require_file("src/sched/validator.cpp");
    const std::optional<std::string> docs_text =
        ctx_.read_text("docs/USAGE.md");
    if (!docs_text.has_value()) {
      add("missing-input", "docs/USAGE.md", 0,
          "documentation file not found under the analyze root");
    }
    if (hpp == nullptr || cpp == nullptr || !docs_text.has_value()) return;

    const std::optional<EnumInfo> enum_info = parse_diag_enum(*hpp);
    if (!enum_info.has_value()) {
      add("diag-enum-unparsed", hpp->rel_path, 0,
          "could not locate `enum class DiagCode { ... }`");
      return;
    }
    const std::vector<std::pair<std::string, std::string>> to_string_map =
        parse_to_string_switch(*cpp, "to_string(DiagCode", "DiagCode::");
    const DocsTables docs = parse_docs(*docs_text);
    if (!docs.diag_section_found) {
      add("diag-doc-section-missing", "docs/USAGE.md", 0,
          "no \"Diagnostic codes\" section with the code table");
    }

    std::set<std::string> documented;
    for (const auto& [code, line] : docs.diag_codes) documented.insert(code);

    std::set<std::string> expected_kebabs;
    for (const auto& [enumerator, line] : enum_info->enumerators) {
      const std::string kebab = kebab_of_enumerator(enumerator);
      expected_kebabs.insert(kebab);

      const auto entry = std::find_if(
          to_string_map.begin(), to_string_map.end(),
          [&](const auto& pair) { return pair.first == enumerator; });
      if (entry == to_string_map.end()) {
        add("diag-to-string-missing", cpp->rel_path, 0,
            "DiagCode::" + enumerator +
                " has no case in to_string(DiagCode); its rendering would "
                "silently fall through to \"unknown\"");
      } else if (entry->second != kebab) {
        add("diag-kebab-mismatch", cpp->rel_path, 0,
            "to_string(DiagCode::" + enumerator + ") returns \"" +
                entry->second + "\" but the enumerator name derives \"" +
                kebab + "\"");
      }
      if (docs.diag_section_found && documented.count(kebab) == 0) {
        add("diag-undocumented", hpp->rel_path, line,
            "DiagCode::" + enumerator + " (`" + kebab +
                "`) is missing from the docs/USAGE.md diagnostic-code table");
      }
      if (!referenced_in_tests("DiagCode::" + enumerator)) {
        add("diag-untested", hpp->rel_path, line,
            "DiagCode::" + enumerator +
                " is never asserted under tests/; every code needs at least "
                "one test that provokes it");
      }
    }
    for (const auto& [code, line] : docs.diag_codes) {
      if (expected_kebabs.count(code) == 0) {
        add("diag-doc-stale", "docs/USAGE.md", line,
            "documented diagnostic code `" + code +
                "` does not correspond to any DiagCode enumerator");
      }
    }
  }

  bool referenced_in_tests(const std::string& needle) const {
    for (const SourceFile& f : ctx_.files()) {
      if (f.rel_path.rfind("tests/", 0) != 0) continue;
      if (f.stripped.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  // ---- obs span/counter names ---------------------------------------------

  struct ObsUse {
    std::string name;
    std::string kind;  // "span" | "counter"
    std::string file;
    int line{0};
  };

  /// First string literal after the '(' at `paren`; nullopt when the first
  /// argument is not a literal.
  static std::optional<QuotedString> literal_first_arg(const std::string& text,
                                                       std::size_t paren) {
    std::size_t i = paren + 1;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    if (i >= text.size() || text[i] != '"') return std::nullopt;
    std::vector<QuotedString> lits =
        quoted_strings(text, i, std::min(text.size(), i + 400));
    if (lits.empty()) return std::nullopt;
    return lits.front();
  }

  std::vector<ObsUse> collect_obs_uses() {
    std::vector<ObsUse> uses;
    for (const SourceFile& f : ctx_.files()) {
      if (f.rel_path.rfind("src/", 0) != 0) continue;
      if (f.rel_path.rfind("src/obs/", 0) == 0) continue;  // the layer itself
      const std::string& text = f.stripped;

      static const std::string kCount = "obs::count(";
      std::size_t pos = 0;
      while ((pos = text.find(kCount, pos)) != std::string::npos) {
        const std::size_t paren = pos + kCount.size() - 1;
        const int line = line_of(text, pos);
        if (const auto lit = literal_first_arg(text, paren)) {
          uses.push_back({lit->value, "counter", f.rel_path, line});
        } else {
          add("obs-name-not-literal", f.rel_path, line,
              "obs::count must be called with a string-literal name so the "
              "lint (and grep) can see it");
        }
        pos = paren;
      }

      static const std::string kSpan = "ScopedSpan";
      pos = 0;
      while ((pos = text.find(kSpan, pos)) != std::string::npos) {
        if (pos > 0 && (is_ident_char(text[pos - 1]) || text[pos - 1] == ':')) {
          // Matched the tail of another identifier; obs::ScopedSpan is
          // handled when the scan lands on the token start.
        }
        std::size_t i = pos + kSpan.size();
        const int line = line_of(text, pos);
        while (i < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
                is_ident_char(text[i]))) {
          ++i;  // optional variable name
        }
        pos += kSpan.size();
        if (i >= text.size() || text[i] != '(') continue;  // decl or comment
        if (const auto lit = literal_first_arg(text, i)) {
          uses.push_back({lit->value, "span", f.rel_path, line});
        } else {
          add("obs-name-not-literal", f.rel_path, line,
              "ScopedSpan must be constructed with a string-literal stage "
              "name so the lint (and grep) can see it");
        }
      }
    }
    return uses;
  }

  void check_obs_names() {
    const std::vector<ObsUse> uses = collect_obs_uses();
    const std::optional<std::string> docs_text =
        ctx_.read_text("docs/USAGE.md");
    if (!docs_text.has_value()) return;  // missing-input already reported
    const DocsTables docs = parse_docs(*docs_text);
    if (!docs.obs_section_found) {
      add("obs-doc-section-missing", "docs/USAGE.md", 0,
          "no \"Observability names\" section documenting span/counter "
          "names");
    }

    // name -> documented kind
    std::set<std::string> doc_names;
    std::vector<std::pair<std::string, std::string>> doc_kinds;
    for (const auto& [name, kind_line] : docs.obs_names) {
      if (!doc_names.insert(name).second) {
        add("obs-doc-duplicate", "docs/USAGE.md", kind_line.second,
            "observability name `" + name + "` is documented twice");
      }
      doc_kinds.emplace_back(name, kind_line.first);
      if (kind_line.first != "span" && kind_line.first != "counter") {
        add("obs-doc-kind", "docs/USAGE.md", kind_line.second,
            "observability name `" + name + "` has kind \"" +
                kind_line.first + "\"; expected span or counter");
      }
    }

    std::set<std::string> span_names;
    std::set<std::string> counter_names;
    for (const ObsUse& use : uses) {
      if (!is_dotted_lowercase(use.name)) {
        add("obs-name-style", use.file, use.line,
            use.kind + " name \"" + use.name +
                "\" violates the dotted.lowercase naming convention "
                "([a-z][a-z0-9_]* segments joined by dots)");
      }
      (use.kind == "span" ? span_names : counter_names).insert(use.name);
      if (docs.obs_section_found) {
        const auto doc = std::find_if(
            doc_kinds.begin(), doc_kinds.end(),
            [&](const auto& pair) { return pair.first == use.name; });
        if (doc == doc_kinds.end()) {
          add("obs-undocumented", use.file, use.line,
              use.kind + " name \"" + use.name +
                  "\" is missing from the docs/USAGE.md observability table");
        } else if (doc->second != use.kind) {
          add("obs-kind-collision", use.file, use.line,
              "\"" + use.name + "\" is used as a " + use.kind +
                  " but documented as a " + doc->second);
        }
      }
    }
    for (const std::string& name : span_names) {
      if (counter_names.count(name) != 0) {
        add("obs-kind-collision", "src", 0,
            "\"" + name +
                "\" is used both as a span name and a counter name; a name "
                "must keep one meaning");
      }
    }
    for (const auto& [name, kind_line] : docs.obs_names) {
      if (span_names.count(name) == 0 && counter_names.count(name) == 0) {
        add("obs-doc-stale", "docs/USAGE.md", kind_line.second,
            "documented observability name `" + name +
                "` has no instrumented call site under src/");
      }
    }
  }

  // ---- CSV / JSON / checkpoint schema -------------------------------------

  std::vector<std::string> brace_list_literals(const SourceFile& f,
                                               const std::string& needle) {
    std::vector<std::string> out;
    const std::size_t at = f.stripped.find(needle);
    if (at == std::string::npos) return out;
    const auto region = brace_region(f.stripped, at);
    if (!region.has_value()) return out;
    for (QuotedString& q :
         quoted_strings(f.stripped, region->first, region->second)) {
      out.push_back(std::move(q.value));
    }
    return out;
  }

  std::set<std::string> set_call_keys(const SourceFile& f) {
    std::set<std::string> keys;
    static const std::string kNeedle = ".set(";
    std::size_t pos = 0;
    while ((pos = f.stripped.find(kNeedle, pos)) != std::string::npos) {
      const std::size_t paren = pos + kNeedle.size() - 1;
      if (const auto lit = literal_first_arg(f.stripped, paren)) {
        keys.insert(lit->value);
      }
      pos = paren;
    }
    return keys;
  }

  void check_schema() {
    const SourceFile* frontier = require_file("src/dse/frontier.cpp");
    const SourceFile* sweep = require_file("src/dse/sweep.cpp");
    const SourceFile* checkpoint = require_file("src/dse/checkpoint.cpp");
    const SourceFile* csv = require_file("src/report/csv.cpp");
    if (frontier == nullptr || sweep == nullptr || checkpoint == nullptr ||
        csv == nullptr) {
      return;
    }

    // (a) Sweep CSV header: identity columns lead in canonical order and
    // the status columns are present.
    const std::vector<std::string> header =
        brace_list_literals(*frontier, "kHeader");
    if (header.size() < kIdentityColumns.size()) {
      add("schema-csv-identity", frontier->rel_path, 0,
          "could not extract the sweep CSV header literal list (kHeader)");
    } else {
      for (std::size_t i = 0; i < kIdentityColumns.size(); ++i) {
        if (header[i] != kIdentityColumns[i]) {
          add("schema-csv-identity", frontier->rel_path, 0,
              "sweep CSV column " + std::to_string(i) + " is \"" + header[i] +
                  "\" but the shared identity contract requires \"" +
                  kIdentityColumns[i] + "\"");
        }
      }
      for (const char* column : kStatusColumns) {
        if (std::find(header.begin(), header.end(), column) == header.end()) {
          add("schema-csv-identity", frontier->rel_path, 0,
              "sweep CSV header is missing the status column \"" +
                  std::string(column) + "\"");
        }
      }
    }

    // (b) Sweep JSON: every identity/status name appears as a .set() key.
    const std::set<std::string> json_keys = set_call_keys(*frontier);
    for (const char* column : kIdentityColumns) {
      if (json_keys.count(column) == 0) {
        add("schema-json-missing", frontier->rel_path, 0,
            "sweep JSON writer never sets the identity key \"" +
                std::string(column) + "\"");
      }
    }
    for (const char* column : kStatusColumns) {
      if (json_keys.count(column) == 0) {
        add("schema-json-missing", frontier->rel_path, 0,
            "sweep JSON writer never sets the status key \"" +
                std::string(column) + "\"");
      }
    }

    // (c) Checkpoint records carry the same status fields (member names).
    for (const char* field : {"status", "error_code", "error_message",
                              "index"}) {
      if (checkpoint->stripped.find(std::string(".") + field) ==
          std::string::npos) {
        add("schema-checkpoint-field", checkpoint->rel_path, 0,
            "checkpoint codec never touches CellResult::" +
                std::string(field) +
                "; records would drop a contract column");
      }
    }

    // (d) Status tokens: whatever to_string(CellStatus) emits must be
    // exactly what the checkpoint decoder matches on.
    const std::vector<std::pair<std::string, std::string>> status_map =
        parse_to_string_switch(*sweep, "to_string(CellStatus", "CellStatus::");
    if (status_map.empty()) {
      add("schema-status-token", sweep->rel_path, 0,
          "could not extract the to_string(CellStatus) switch");
    }
    for (const auto& [enumerator, token] : status_map) {
      const std::string needle = "\"" + token + "\"";
      if (checkpoint->stripped.find(needle) == std::string::npos) {
        add("schema-status-token", checkpoint->rel_path, 0,
            "status token \"" + token + "\" (CellStatus::" + enumerator +
                ") is never matched by the checkpoint decoder");
      }
    }

    // (e) The experiment CSV shares the graph-identity prefix naming.
    const std::vector<std::string> experiment =
        brace_list_literals(*csv, "std::vector<std::string> header");
    if (experiment.empty()) {
      add("schema-experiment-prefix", csv->rel_path, 0,
          "could not extract the experiment CSV header literal list");
    } else {
      for (const char* column : kExperimentIdentity) {
        if (std::find(experiment.begin(), experiment.end(), column) ==
            experiment.end()) {
          add("schema-experiment-prefix", csv->rel_path, 0,
              "experiment CSV header dropped the shared identity column \"" +
                  std::string(column) + "\"");
        }
      }
    }

    // (f) Serve responses reuse the CellResult status schema: the protocol
    // writer must set every status column, and every to_string(CellStatus)
    // token must appear verbatim in its status<->token mapping.
    const SourceFile* protocol = require_file("src/serve/protocol.cpp");
    if (protocol == nullptr) return;
    const std::set<std::string> serve_keys = set_call_keys(*protocol);
    for (const char* column : kStatusColumns) {
      if (serve_keys.count(column) == 0) {
        add("schema-serve-missing", protocol->rel_path, 0,
            "serve response writer never sets the status key \"" +
                std::string(column) + "\"");
      }
    }
    for (const auto& [enumerator, token] : status_map) {
      const std::string needle = "\"" + token + "\"";
      if (protocol->stripped.find(needle) == std::string::npos) {
        add("schema-serve-status-token", protocol->rel_path, 0,
            "status token \"" + token + "\" (CellStatus::" + enumerator +
                ") is never mapped by the serve protocol");
      }
    }

    // (g) The shard merge reader adopts foreign checkpoint records into the
    // report, so it must handle the same contract columns the codec does —
    // a merge that never looks at one of them would silently drop it from
    // merged reports.
    const SourceFile* shard = require_file("src/dse/shard.cpp");
    if (shard == nullptr) return;
    for (const char* field : {"status", "error_code", "error_message",
                              "index"}) {
      if (shard->stripped.find(std::string(".") + field) ==
          std::string::npos) {
        add("schema-merge-field", shard->rel_path, 0,
            "merge reader never touches CellResult::" + std::string(field) +
                "; merged reports would drop a contract column");
      }
    }
  }

  // ---- banked cost-model schema + allocation-site tokens ------------------

  /// String literals inside the body of the function whose signature
  /// contains `signature_needle` (used to scope decoder-token checks to the
  /// from_string function so the to_string literals don't satisfy them).
  std::set<std::string> function_body_literals(
      const SourceFile& f, const std::string& signature_needle) {
    std::set<std::string> tokens;
    const std::size_t sig = f.stripped.find(signature_needle);
    if (sig == std::string::npos) return tokens;
    const auto region = brace_region(f.stripped, sig);
    if (!region.has_value()) return tokens;
    for (QuotedString& q :
         quoted_strings(f.stripped, region->first, region->second)) {
      tokens.insert(std::move(q.value));
    }
    return tokens;
  }

  static bool is_lowercase_token(const std::string& token) {
    if (token.empty()) return false;
    if (std::islower(static_cast<unsigned char>(token[0])) == 0) return false;
    return std::all_of(token.begin(), token.end(), [](char c) {
      return std::islower(static_cast<unsigned char>(c)) != 0 ||
             std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '_';
    });
  }

  void check_bank_schema() {
    const SourceFile* frontier = require_file("src/dse/frontier.cpp");
    const SourceFile* checkpoint = require_file("src/dse/checkpoint.cpp");
    const SourceFile* config = require_file("src/pim/config.cpp");
    if (frontier == nullptr || checkpoint == nullptr || config == nullptr) {
      return;
    }

    // (a) The banked CSV header extends the legacy one in place: identity
    // prefix unchanged, every bank and status column present.
    const std::vector<std::string> banked =
        brace_list_literals(*frontier, "kBankedHeader");
    if (banked.size() < kIdentityColumns.size()) {
      add("schema-bank-columns", frontier->rel_path, 0,
          "could not extract the banked sweep CSV header literal list "
          "(kBankedHeader)");
    } else {
      for (std::size_t i = 0; i < kIdentityColumns.size(); ++i) {
        if (banked[i] != kIdentityColumns[i]) {
          add("schema-bank-columns", frontier->rel_path, 0,
              "banked sweep CSV column " + std::to_string(i) + " is \"" +
                  banked[i] +
                  "\" but the shared identity contract requires \"" +
                  kIdentityColumns[i] + "\"");
        }
      }
      for (const char* column : kBankColumns) {
        if (std::find(banked.begin(), banked.end(), column) == banked.end()) {
          add("schema-bank-columns", frontier->rel_path, 0,
              "banked sweep CSV header is missing the bank column \"" +
                  std::string(column) + "\"");
        }
      }
      for (const char* column : kStatusColumns) {
        if (std::find(banked.begin(), banked.end(), column) == banked.end()) {
          add("schema-bank-columns", frontier->rel_path, 0,
              "banked sweep CSV header is missing the status column \"" +
                  std::string(column) + "\"");
        }
      }
    }

    // (b) The JSON writer sets every bank name as a key on banked cells.
    const std::set<std::string> json_keys = set_call_keys(*frontier);
    for (const char* column : kBankColumns) {
      if (json_keys.count(column) == 0) {
        add("schema-bank-columns", frontier->rel_path, 0,
            "sweep JSON writer never sets the bank key \"" +
                std::string(column) + "\"");
      }
    }

    // (c) The checkpoint codec carries the tagged bank segment: the "bank"
    // tag must be written/matched and every BankStats counter touched.
    bool has_bank_tag = false;
    for (const QuotedString& q : quoted_strings(checkpoint->stripped, 0,
                                                checkpoint->stripped.size())) {
      if (trim(q.value) == "bank") {
        has_bank_tag = true;
        break;
      }
    }
    if (!has_bank_tag) {
      add("schema-bank-checkpoint", checkpoint->rel_path, 0,
          "checkpoint codec never writes or matches the \"bank\" segment "
          "tag; banked counters would be dropped from records");
    }
    for (const char* field :
         {"banks", "conflicts", "stall_units", "peak_occupancy"}) {
      if (checkpoint->stripped.find(std::string("bank.") + field) ==
          std::string::npos) {
        add("schema-bank-checkpoint", checkpoint->rel_path, 0,
            "checkpoint codec never touches BankStats::" +
                std::string(field) +
                "; records would drop a bank counter");
      }
    }

    // (d) Allocation-site tokens are CSV/JSON/CLI surface (sweep rows,
    // --cost-model plumbing): one lowercase token per enumerator, and the
    // decoder must round-trip exactly what to_string emits.
    const std::vector<std::pair<std::string, std::string>> site_map =
        parse_to_string_switch(*config, "to_string(AllocSite", "AllocSite::");
    if (site_map.empty()) {
      add("schema-alloc-site-token", config->rel_path, 0,
          "could not extract the to_string(AllocSite) switch");
    }
    const std::set<std::string> decoder_tokens =
        function_body_literals(*config, "alloc_site_from_string");
    for (const auto& [enumerator, token] : site_map) {
      if (!is_lowercase_token(token)) {
        add("schema-alloc-site-token", config->rel_path, 0,
            "allocation-site token \"" + token + "\" (AllocSite::" +
                enumerator +
                ") violates the single-lowercase-token discipline");
      }
      if (decoder_tokens.count(token) == 0) {
        add("schema-alloc-site-token", config->rel_path, 0,
            "allocation-site token \"" + token +
                "\" is never decoded by alloc_site_from_string; the "
                "encoder and decoder would disagree");
      }
    }
  }

  // ---- batch identity-column schema ----------------------------------------

  /// The `batch` axis (cnn workload sweeps) extends the report schema the
  /// same all-or-nothing way the banked columns do. The column is inserted
  /// programmatically (header_with_batch) instead of living in the static
  /// header literals, so this check pins the helper, the JSON key and the
  /// checkpoint segment tag to the shared "batch" spelling.
  void check_batch_schema() {
    const SourceFile* frontier = require_file("src/dse/frontier.cpp");
    const SourceFile* checkpoint = require_file("src/dse/checkpoint.cpp");
    if (frontier == nullptr || checkpoint == nullptr) return;

    // (a) The CSV writer owns a header_with_batch helper whose body names
    // the "batch" column literally.
    const std::set<std::string> header_literals =
        function_body_literals(*frontier, "header_with_batch");
    if (header_literals.count("batch") == 0) {
      add("schema-batch-columns", frontier->rel_path, 0,
          "frontier.cpp has no header_with_batch helper inserting the "
          "\"batch\" CSV column; batched sweeps would lose their identity "
          "column");
    }

    // (b) The JSON writer sets the batch key on batched cells.
    const std::set<std::string> json_keys = set_call_keys(*frontier);
    if (json_keys.count("batch") == 0) {
      add("schema-batch-columns", frontier->rel_path, 0,
          "sweep JSON writer never sets the \"batch\" key on batched cells");
    }

    // (c) The report writers actually read CellResult::batch.
    if (frontier->stripped.find(".batch") == std::string::npos) {
      add("schema-batch-columns", frontier->rel_path, 0,
          "report writers never touch CellResult::batch; the batch column "
          "would render empty");
    }

    // (d) The checkpoint codec writes/matches the tagged batch segment and
    // touches the member, so batched cells survive checkpoint/resume.
    bool has_batch_tag = false;
    for (const QuotedString& q : quoted_strings(
             checkpoint->stripped, 0, checkpoint->stripped.size())) {
      if (trim(q.value) == "batch") {
        has_batch_tag = true;
        break;
      }
    }
    if (!has_batch_tag) {
      add("schema-batch-checkpoint", checkpoint->rel_path, 0,
          "checkpoint codec never writes or matches the \"batch\" segment "
          "tag; batched cells would lose their batch on resume");
    }
    if (checkpoint->stripped.find(".batch") == std::string::npos) {
      add("schema-batch-checkpoint", checkpoint->rel_path, 0,
          "checkpoint codec never touches CellResult::batch; records would "
          "drop the batch identity column");
    }
  }

  // ---- docs file:symbol cross-references ----------------------------------

  /// Backticked `path/to/file.cpp:symbol` reference: the whole token must be
  /// a '/'-containing .cpp/.hpp path, a colon, and one identifier. Anything
  /// else backticked (case names, shorthand like `sched/pack_topological`,
  /// schema keys) deliberately falls outside the shape and is ignored.
  static bool parse_xref(const std::string& token, std::string* path,
                         std::string* symbol) {
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) return false;
    const std::string p = token.substr(0, colon);
    const std::string s = token.substr(colon + 1);
    if (p.find('/') == std::string::npos) return false;
    if (p.size() < 5) return false;
    const std::string ext = p.substr(p.size() - 4);
    if (ext != ".cpp" && ext != ".hpp") return false;
    if (s.empty()) return false;
    if (std::isalpha(static_cast<unsigned char>(s[0])) == 0 && s[0] != '_') {
      return false;
    }
    for (const char c : s) {
      if (!is_ident_char(c)) return false;
    }
    *path = p;
    *symbol = s;
    return true;
  }

  /// Every `file.cpp:symbol` reference in the prose docs must stay real:
  /// the file must exist under the analyze root and the symbol must be
  /// greppable in it. This is what keeps the MODEL.md paper-to-code table,
  /// the BENCHMARKS.md suite catalog and the ANALYSIS.md pass catalog
  /// honest across refactors.
  void check_docs_xrefs() {
    std::map<std::string, std::optional<std::string>> cache;
    const auto contents_of =
        [&](const std::string& rel) -> const std::optional<std::string>& {
      const auto it = cache.find(rel);
      if (it != cache.end()) return it->second;
      return cache.emplace(rel, ctx_.read_text(rel)).first->second;
    };

    for (const char* doc :
         {"docs/MODEL.md", "docs/BENCHMARKS.md", "docs/ANALYSIS.md"}) {
      const std::optional<std::string> text = ctx_.read_text(doc);
      if (!text.has_value()) {
        // ANALYSIS.md ships with the analyzer; the lint fixture trees
        // predate it and must keep passing without one.
        if (std::string_view(doc) == "docs/ANALYSIS.md") continue;
        add("missing-input", doc, 0,
            "documentation file not found under the analyze root");
        continue;
      }
      std::istringstream in(*text);
      std::string line;
      int line_no = 0;
      while (std::getline(in, line)) {
        ++line_no;
        std::size_t i = 0;
        while ((i = line.find('`', i)) != std::string::npos) {
          const std::size_t close = line.find('`', i + 1);
          if (close == std::string::npos) break;
          const std::string token = line.substr(i + 1, close - i - 1);
          i = close + 1;
          std::string path;
          std::string symbol;
          if (!parse_xref(token, &path, &symbol)) continue;
          const std::optional<std::string>& target = contents_of(path);
          if (!target.has_value()) {
            add("xref-file-missing", doc, line_no,
                "docs reference `" + token + "` names a file that does not "
                "exist under the analyze root");
          } else if (target->find(symbol) == std::string::npos) {
            add("xref-symbol-missing", doc, line_no,
                "docs reference `" + token + "`: symbol \"" + symbol +
                    "\" is not greppable in " + path);
          }
        }
      }
    }
  }

  Context& ctx_;
};

}  // namespace

void run_lint_pass(Context& ctx) { LintPass(ctx).run(); }

}  // namespace paraconv::analyze
