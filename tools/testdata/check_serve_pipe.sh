#!/bin/sh
# Cold/warm serve round trip over the stdin/stdout pipe transport:
#   1. a cold daemon answers every request and spills its cache on shutdown;
#   2. a restarted daemon loads the spill fingerprint-clean and serves the
#      same requests from the warm cache;
#   3. the schedule `result` objects are byte-identical cold vs warm.
# Usage: check_serve_pipe.sh <paraconv_cli> <requests.jsonl>
set -e
CLI="$1"
REQ="$2"

rm -f serve_cli.memo
"$CLI" serve --cache-file serve_cli.memo < "$REQ" > serve_cold.out
test "$(grep -c '"status":"ok"' serve_cold.out)" = 4

"$CLI" serve --cache-file serve_cli.memo < "$REQ" > serve_warm.out
test "$(grep -c '"status":"ok"' serve_warm.out)" = 4
grep -q '"loaded":1' serve_warm.out
grep -q '"hits":2' serve_warm.out

sed -n 's/.*"result":\({.*}\),"memo".*/\1/p' serve_cold.out \
  > serve_cold.results
sed -n 's/.*"result":\({.*}\),"memo".*/\1/p' serve_warm.out \
  > serve_warm.results
test -s serve_cold.results
cmp serve_cold.results serve_warm.results
