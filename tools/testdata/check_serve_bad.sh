#!/bin/sh
# Invalid requests must each get a typed rejection line and must not take
# the daemon down (it exits 0 at EOF with all four errors answered).
# Usage: check_serve_bad.sh <paraconv_cli> <bad_requests.jsonl>
set -e
CLI="$1"
REQ="$2"

"$CLI" serve < "$REQ" > serve_bad.out
test "$(grep -c '"status":"error"' serve_bad.out)" = 4
grep -q '"error_code":"parse-error"' serve_bad.out
grep -q '"error_code":"bad-request"' serve_bad.out
