// paraconv_cli — command-line front end to the Para-CONV library.
//
// Commands:
//   list                       the twelve paper benchmarks
//   run      [flags]           schedule one benchmark, print metrics
//                              (alias: schedule)
//   dot      [flags]           emit the benchmark graph in Graphviz DOT
//   csv      [flags]           full 12x3 experiment grid as CSV
//   explain  [flags]           per-edge case census and allocation detail
//   report   [flags]           self-contained HTML/SVG schedule report
//   sweep    [flags]           parallel design-space sweep (CSV/JSON +
//                              Pareto frontier); see --jobs, --out
//   bench    [flags]           pinned benchmark suites; emits schema-stable
//                              BENCH_<suite>.json (see docs/BENCHMARKS.md)
//   serve    [flags]           long-lived scheduler daemon: line-delimited
//                              JSON requests over stdin/stdout (or --socket)
//                              with a warm, persistent packing memo cache
//                              (see docs/USAGE.md "Server mode")
//
// --trace <file> (run/schedule and sweep) dumps pipeline spans and counters
// as Chrome-trace JSON; the per-stage summary goes to stderr, so data
// streams stay byte-identical with tracing on or off.
//
// Try: paraconv_cli run --benchmark flower --pes 32 --gantt
//      paraconv_cli sweep --jobs 0 --allocators all --out sweep.csv
#include <atomic>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>  // NOLINT(modernize-deprecated-headers): sigaction needs the POSIX header, not <csignal>
#endif

#include "bench_harness/suites.hpp"
#include "cnn/workload.hpp"
#include "common/flags.hpp"
#include "common/parse.hpp"
#include "dse/shard.hpp"
#include "paraconv.hpp"
#include "report/csv.hpp"
#include "report/gantt.hpp"
#include "report/html.hpp"
#include "report/json.hpp"
#include "report/trace.hpp"

namespace {

using namespace paraconv;

/// Bad flag *values* (as opposed to malformed flag syntax, which FlagParser
/// rejects) are usage errors: report and exit 2, never abort.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Integer flags flow into narrow library types; validate them at their use
/// site so a negative or absurd value becomes a top-level usage error
/// instead of a deep PARACONV_REQUIRE abort (or a silent wrap).
std::int64_t require_int_at_least(const FlagParser& flags,
                                  const std::string& name, std::int64_t min) {
  const std::int64_t value = flags.get_int(name);
  if (value < min) {
    throw UsageError("--" + name + " must be >= " + std::to_string(min) +
                     ", got " + std::to_string(value));
  }
  return value;
}

int require_pe_count(const FlagParser& flags) {
  constexpr std::int64_t kMaxPes = 1 << 20;
  const std::int64_t pes = require_int_at_least(flags, "pes", 1);
  if (pes > kMaxPes) {
    throw UsageError("--pes must be <= " + std::to_string(kMaxPes) +
                     ", got " + std::to_string(pes));
  }
  return static_cast<int>(pes);
}

std::uint64_t require_seed(const FlagParser& flags) {
  return static_cast<std::uint64_t>(require_int_at_least(flags, "seed", 0));
}

core::AllocatorKind parse_allocator(const std::string& name) {
  const std::optional<core::AllocatorKind> kind =
      core::allocator_kind_from_string(name);
  if (!kind.has_value()) {
    throw UsageError("unknown allocator: " + name +
                     " (expected dp, greedy-density, greedy-deadline, "
                     "critical-path, energy-aware or residency-constrained)");
  }
  return *kind;
}

core::PackerKind parse_packer(const std::string& name) {
  const std::optional<core::PackerKind> kind =
      core::packer_kind_from_string(name);
  if (!kind.has_value()) {
    throw UsageError("unknown packer: " + name +
                     " (expected topo, lpt, locality or modulo)");
  }
  return *kind;
}

std::vector<core::AllocatorKind> parse_allocator_list(const std::string& csv) {
  if (csv == "all") {
    return {core::AllocatorKind::kKnapsackDp,
            core::AllocatorKind::kGreedyDensity,
            core::AllocatorKind::kGreedyDeadline,
            core::AllocatorKind::kCriticalPath,
            core::AllocatorKind::kEnergyAware,
            core::AllocatorKind::kResidencyConstrained};
  }
  std::vector<core::AllocatorKind> kinds;
  for (const std::string& name : split(csv, ',')) {
    kinds.push_back(parse_allocator(name));
  }
  return kinds;
}

/// The --cost-model/--banks/--bank-policy flag triple, validated as a unit:
/// bank axes only make sense under the banked model, so supplying them with
/// the (default) constant model is a usage error rather than a silent no-op.
struct CostModelAxes {
  pim::CostModelKind kind{pim::CostModelKind::kConstant};
  std::vector<int> banks;
  std::vector<pim::BankPolicy> policies;
};

CostModelAxes parse_cost_model_axes(const FlagParser& flags) {
  CostModelAxes axes;
  const std::string model_text = flags.get_string("cost-model");
  const std::optional<pim::CostModelKind> kind =
      pim::cost_model_kind_from_string(model_text);
  if (!kind.has_value()) {
    throw UsageError("unknown cost model: " + model_text +
                     " (expected constant or banked)");
  }
  axes.kind = *kind;
  const std::string banks_text = flags.get_string("banks");
  const std::string policy_text = flags.get_string("bank-policy");
  if (axes.kind == pim::CostModelKind::kConstant) {
    if (!banks_text.empty()) {
      throw UsageError("--banks requires --cost-model banked");
    }
    if (!policy_text.empty()) {
      throw UsageError("--bank-policy requires --cost-model banked");
    }
    return axes;
  }
  std::string banks_error;
  const std::optional<std::vector<int>> banks = parse_positive_int_list(
      banks_text.empty() ? "8" : banks_text, &banks_error);
  if (!banks.has_value()) {
    throw UsageError("--banks expects comma-separated positive integers: " +
                     banks_error);
  }
  constexpr int kMaxBanks = 1 << 12;
  for (const int count : *banks) {
    if (count > kMaxBanks) {
      throw UsageError("--banks entries must be <= " +
                       std::to_string(kMaxBanks) + ", got " +
                       std::to_string(count));
    }
  }
  axes.banks = *banks;
  for (const std::string& name :
       split(policy_text.empty() ? "interleave" : policy_text, ',')) {
    const std::optional<pim::BankPolicy> policy =
        pim::bank_policy_from_string(name);
    if (!policy.has_value()) {
      throw UsageError("unknown bank policy: " + name +
                       " (expected interleave or block)");
    }
    axes.policies.push_back(*policy);
  }
  return axes;
}

std::vector<core::PackerKind> parse_packer_list(const std::string& csv) {
  if (csv == "all") {
    return {core::PackerKind::kTopological, core::PackerKind::kLpt,
            core::PackerKind::kLocality, core::PackerKind::kModulo};
  }
  std::vector<core::PackerKind> kinds;
  for (const std::string& name : split(csv, ',')) {
    kinds.push_back(parse_packer(name));
  }
  return kinds;
}

int cmd_list() {
  TablePrinter table("Paper benchmarks (Table 1)");
  table.set_header({"name", "vertices", "edges"});
  for (const graph::PaperBenchmark& b : graph::paper_benchmarks()) {
    table.add_row({b.name, std::to_string(b.vertices),
                   std::to_string(b.edges)});
  }
  table.print(std::cout);

  std::cout << "\n";
  TablePrinter zoo("Workload zoo (sweep --workload; docs/WORKLOADS.md)");
  zoo.set_header({"name", "layers", "tasks", "edges"});
  for (const std::string& name : cnn::zoo_workload_names()) {
    const cnn::Workload workload = cnn::zoo_workload(name);
    const graph::TaskGraph g = cnn::lower_workload(workload, /*batch=*/1);
    zoo.add_row({name, std::to_string(workload.net.layer_count()),
                 std::to_string(g.node_count()),
                 std::to_string(g.edge_count())});
  }
  zoo.print(std::cout);
  return 0;
}

int cmd_run(const FlagParser& flags) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(flags.get_string("benchmark")));
  const CostModelAxes axes = parse_cost_model_axes(flags);
  pim::PimConfig config = pim::PimConfig::neurocube(require_pe_count(flags));
  if (axes.kind != pim::CostModelKind::kConstant) {
    if (axes.banks.size() != 1) {
      throw UsageError("run takes a single --banks value, got " +
                       flags.get_string("banks"));
    }
    if (axes.policies.size() != 1) {
      throw UsageError("run takes a single --bank-policy value, got " +
                       flags.get_string("bank-policy"));
    }
    config.cost_model = axes.kind;
    config.edram_banks = axes.banks.front();
    config.bank_policy = axes.policies.front();
  }

  core::ParaConvOptions options;
  options.iterations = require_int_at_least(flags, "iterations", 1);
  options.allocator = parse_allocator(flags.get_string("allocator"));
  options.packer = parse_packer(flags.get_string("packer"));
  const core::ParaConvResult ours =
      core::ParaConv(config, options).schedule(g);

  core::SpartaOptions base_options;
  base_options.iterations = options.iterations;
  const core::SpartaResult base =
      core::Sparta(config, base_options).schedule(g);

  if (flags.get_bool("json")) {
    report::JsonValue out = report::JsonValue::object();
    out.set("benchmark", g.name());
    out.set("pe_count", config.pe_count);
    // Same conditional schema extension as the sweep JSON: banked runs get
    // the cost-model identity and flat bank counters, constant runs stay
    // byte-identical to pre-cost-model builds.
    if (config.cost_model != pim::CostModelKind::kConstant) {
      const pim::BankStats bank =
          core::analyze_bank_contention(g, ours.kernel, config);
      out.set("cost_model", pim::to_string(config.cost_model));
      out.set("banks", config.edram_banks);
      out.set("bank_policy", pim::to_string(config.bank_policy));
      out.set("bank_conflicts", bank.conflicts);
      out.set("bank_stall_units", bank.stall_units);
      out.set("bank_peak_occupancy", bank.peak_occupancy);
    }
    out.set("para_conv", report::to_json(ours.metrics));
    out.set("sparta", report::to_json(base.metrics));
    out.set("schedule", report::to_json(g, ours.kernel));
    if (flags.get_bool("machine")) {
      pim::Machine machine(config);
      out.set("machine", report::to_json(machine.run(
                             g, ours.kernel,
                             {.iterations = options.iterations})));
    }
    std::cout << out.dump(/*pretty=*/true) << "\n";
    return 0;
  }

  TablePrinter table("'" + g.name() + "' on " +
                     std::to_string(config.pe_count) + " PEs, " +
                     std::to_string(options.iterations) + " iterations");
  table.set_header({"metric", "SPARTA", "Para-CONV"});
  table.add_row({"iteration time",
                 std::to_string(base.metrics.iteration_time.value),
                 std::to_string(ours.metrics.iteration_time.value)});
  table.add_row({"R_max", "0", std::to_string(ours.metrics.r_max)});
  table.add_row({"total time",
                 std::to_string(base.metrics.total_time.value),
                 std::to_string(ours.metrics.total_time.value)});
  table.add_row({"IPRs in cache", std::to_string(base.metrics.cached_iprs),
                 std::to_string(ours.metrics.cached_iprs)});
  table.add_row({"off-chip/iter",
                 format_bytes(base.metrics.offchip_bytes_per_iteration),
                 format_bytes(ours.metrics.offchip_bytes_per_iteration)});
  table.print(std::cout);
  std::cout << "speedup: "
            << format_fixed(core::speedup(base.metrics, ours.metrics), 2)
            << "x\n";

  if (config.cost_model != pim::CostModelKind::kConstant) {
    // DNNsim-style per-run stats block: one steady-state kernel iteration
    // replayed through the banked contention analyzer.
    const std::vector<pim::TransferRequest> requests =
        core::edram_transfer_requests(g, ours.kernel);
    const pim::BankStats bank =
        core::analyze_bank_contention(g, ours.kernel, config);
    TablePrinter stats("banked eDRAM contention (" +
                       std::to_string(config.edram_banks) +
                       " banks/vault, " +
                       std::string(pim::to_string(config.bank_policy)) +
                       " mapping)");
    stats.set_header({"stat", "value"});
    stats.add_row({"eDRAM transfers/iter",
                   std::to_string(requests.size())});
    stats.add_row({"bank conflicts", std::to_string(bank.conflicts)});
    stats.add_row({"stall time units", std::to_string(bank.stall_units)});
    stats.add_row({"peak bank occupancy",
                   std::to_string(bank.peak_occupancy)});
    std::cout << "\n";
    stats.print(std::cout);
  }

  if (flags.get_bool("gantt")) {
    std::cout << "\n"
              << report::render_kernel_gantt(g, ours.kernel, config.pe_count);
  }
  if (flags.get_bool("timeline")) {
    std::cout << "\n" << report::to_chrome_trace(g, ours.kernel) << "\n";
  }
  if (flags.get_bool("machine") && !flags.get_bool("json")) {
    pim::Machine machine(config);
    const pim::MachineStats stats = machine.run(
        g, ours.kernel, {.iterations = std::min<std::int64_t>(
                             options.iterations, 20)});
    std::cout << "\nmachine replay: makespan " << stats.makespan.value
              << ", eDRAM accesses " << stats.edram_accesses
              << ", cache fallbacks " << stats.cache_fallbacks
              << ", vault contention " << stats.vault_contention_events
              << ", energy "
              << format_fixed(stats.energy.total().value / 1e6, 2)
              << " uJ\n";
  }
  return 0;
}

int cmd_report(const FlagParser& flags) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(flags.get_string("benchmark")));
  const pim::PimConfig config =
      pim::PimConfig::neurocube(require_pe_count(flags));
  const core::ParaConvResult result = core::ParaConv(config).schedule(g);
  std::cout << report::render_html_report(g, config, result) << "\n";
  return 0;
}

int cmd_dot(const FlagParser& flags) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(flags.get_string("benchmark")));
  std::cout << graph::to_dot(g);
  return 0;
}

int cmd_csv(const FlagParser& flags) {
  const auto rows = bench_support::run_grid(
      require_int_at_least(flags, "iterations", 1),
      core::AllocatorKind::kKnapsackDp,
      static_cast<int>(require_int_at_least(flags, "jobs", 0)));
  report::write_experiment_csv(std::cout, rows);
  return 0;
}

int cmd_explain(const FlagParser& flags) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(flags.get_string("benchmark")));
  const pim::PimConfig config =
      pim::PimConfig::neurocube(require_pe_count(flags));
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);

  std::size_t census[6] = {};
  for (const retiming::EdgeDelta& d : r.deltas) {
    ++census[static_cast<int>(retiming::classify(d)) - 1];
  }
  TablePrinter cases("Fig.-4 case census, '" + g.name() + "' @ " +
                     std::to_string(config.pe_count) + " PEs");
  cases.set_header({"case", "(cache,eDRAM)", "IPRs", "allocation-sensitive"});
  const char* labels[6] = {"(0,0)", "(0,1)", "(0,2)",
                           "(1,1)", "(1,2)", "(2,2)"};
  const bool sensitive[6] = {false, true, true, false, true, false};
  for (int c = 0; c < 6; ++c) {
    cases.add_row({std::to_string(c + 1), labels[c],
                   std::to_string(census[c]), sensitive[c] ? "yes" : "no"});
  }
  cases.print(std::cout);

  std::cout << "\nsensitive IPRs competing for cache: " << r.items.size()
            << "\ncached by the knapsack DP: " << r.metrics.cached_iprs
            << " (" << format_bytes(r.metrics.cache_bytes_used) << " of "
            << format_bytes(config.total_cache_bytes()) << ")"
            << "\nR_max = " << r.metrics.r_max << ", prologue = "
            << r.metrics.prologue_time.value << " time units\n";

  const sched::LatencyReport latency = sched::iteration_latency(g, r.kernel);
  const alloc::ResidencyProfile residency =
      alloc::cache_residency(g, r.kernel, config.pe_count);
  std::cout << "iteration latency: " << latency.iteration_latency.value
            << " time units across " << latency.windows_spanned
            << " windows (one result every " << latency.period.value
            << ")\npeak concurrent cache residency: "
            << format_bytes(residency.peak) << " per PE (capacity "
            << format_bytes(config.pe_cache_bytes) << "), "
            << format_bytes(residency.peak_total) << " array-wide\n";
  return 0;
}

int cmd_sweep(const FlagParser& flags) {
  dse::GridSpec spec;
  spec.iterations = require_int_at_least(flags, "iterations", 1);
  spec.allocators = parse_allocator_list(flags.get_string("allocators"));
  spec.packers = parse_packer_list(flags.get_string("packers"));

  // The case axis comes from exactly one source: --workload (CNN zoo
  // entries or workload files, optionally crossed with --batch) or
  // --benchmarks (the paper's Table-1 graphs, always batch-free).
  const std::string workload_text = flags.get_string("workload");
  const std::string batch_text = flags.get_string("batch");
  if (!workload_text.empty()) {
    std::vector<int> batches;  // empty = honor each workload's directive
    if (!batch_text.empty()) {
      std::string batch_error;
      const std::optional<std::vector<int>> parsed =
          parse_positive_int_list(batch_text, &batch_error);
      if (!parsed.has_value()) {
        throw UsageError("--batch expects comma-separated positive integers: " +
                         batch_error);
      }
      constexpr int kMaxBatch = 1 << 10;
      for (const int batch : *parsed) {
        if (batch > kMaxBatch) {
          throw UsageError("--batch entries must be <= " +
                           std::to_string(kMaxBatch) + ", got " +
                           std::to_string(batch));
        }
      }
      batches = *parsed;
    }
    for (const std::string& name : split(workload_text, ',')) {
      const cnn::Workload workload = cnn::is_zoo_workload(name)
                                         ? cnn::zoo_workload(name)
                                         : cnn::load_workload_file(name);
      const std::vector<int> workload_batches =
          batches.empty() ? std::vector<int>{workload.default_batch}
                          : batches;
      for (const int batch : workload_batches) {
        spec.cases.push_back({workload.net.name(),
                              cnn::lower_workload(workload, batch), batch});
      }
    }
  } else if (!batch_text.empty()) {
    throw UsageError(
        "--batch requires --workload: batch is an axis of lowered CNN "
        "workloads, not of the paper benchmarks");
  } else {
    const std::string benchmarks = flags.get_string("benchmarks");
    if (benchmarks == "all") {
      for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
        spec.cases.push_back(
            {bench.name, graph::build_paper_benchmark(bench)});
      }
    } else {
      for (const std::string& name : split(benchmarks, ',')) {
        spec.cases.push_back({name, graph::build_paper_benchmark(
                                        graph::paper_benchmark(name))});
      }
    }
  }
  std::string pe_error;
  const std::optional<std::vector<int>> pe_counts =
      parse_positive_int_list(flags.get_string("pe-counts"), &pe_error);
  if (!pe_counts.has_value()) {
    throw UsageError(
        "--pe-counts expects comma-separated positive integers: " + pe_error);
  }
  for (const int pes : *pe_counts) {
    if (pes > (1 << 20)) {
      throw UsageError("--pe-counts entries must be <= " +
                       std::to_string(1 << 20) + ", got " +
                       std::to_string(pes));
    }
    spec.configs.push_back(pim::PimConfig::neurocube(pes));
  }
  const CostModelAxes axes = parse_cost_model_axes(flags);
  if (axes.kind != pim::CostModelKind::kConstant) {
    // Bank count and mapping policy are grid axes like pe_count: the config
    // axis becomes pe_counts x banks x policies, banks fastest-varying last
    // so consecutive configs share a PE count (and thus their packings via
    // the memo cache — the banked transfer_time matches the constant one).
    std::vector<pim::PimConfig> expanded;
    expanded.reserve(spec.configs.size() * axes.banks.size() *
                     axes.policies.size());
    for (const pim::PimConfig& base_config : spec.configs) {
      for (const pim::BankPolicy policy : axes.policies) {
        for (const int banks : axes.banks) {
          pim::PimConfig config = base_config;
          config.cost_model = axes.kind;
          config.edram_banks = banks;
          config.bank_policy = policy;
          expanded.push_back(config);
        }
      }
    }
    spec.configs = std::move(expanded);
  }

  dse::SweepOptions options;
  options.jobs = static_cast<int>(require_int_at_least(flags, "jobs", 0));
  options.seed = require_seed(flags);
  if (flags.get_bool("fail-fast") && flags.get_bool("keep-going")) {
    throw UsageError("--fail-fast and --keep-going are mutually exclusive");
  }
  options.fail_fast = flags.get_bool("fail-fast");
  options.checkpoint_path = flags.get_string("checkpoint");
  options.resume = flags.get_bool("resume");
  if (options.resume && options.checkpoint_path.empty()) {
    throw UsageError("--resume requires --checkpoint <file>");
  }

  const bool merge = flags.get_bool("merge-checkpoints");
  const std::string shard_text = flags.get_string("shard");
  dse::SweepResult sweep;
  if (merge) {
    if (!shard_text.empty() || options.resume ||
        !options.checkpoint_path.empty()) {
      throw UsageError(
          "--merge-checkpoints is exclusive with --shard, --checkpoint and "
          "--resume: a merge only reads finished shard files");
    }
    // Everything after the `sweep` command word is a shard checkpoint file.
    const std::vector<std::string> paths(flags.positional().begin() + 1,
                                         flags.positional().end());
    if (paths.empty()) {
      throw UsageError(
          "--merge-checkpoints needs the shard checkpoint files as "
          "positional arguments: sweep --merge-checkpoints a.ckpt b.ckpt");
    }
    sweep = dse::merge_checkpoints(spec, options, paths);
  } else {
    if (!shard_text.empty()) {
      std::string shard_error;
      const std::optional<dse::ShardSpec> shard =
          dse::parse_shard(shard_text, &shard_error);
      if (!shard.has_value()) throw UsageError("--shard: " + shard_error);
      if (options.checkpoint_path.empty()) {
        throw UsageError(
            "--shard requires --checkpoint <file>: the merge step reads this "
            "worker's records from it");
      }
      options.shard_index = shard->index;
      options.shard_count = shard->count;
    }
    sweep = dse::run_sweep(spec, options);
  }

  // Data goes to --out (or stdout); the run summary goes to stderr so the
  // data stream stays byte-identical across job counts.
  const std::string out_path = flags.get_string("out");
  std::ofstream file;
  if (!out_path.empty()) {
    file.open(out_path);
    PARACONV_REQUIRE(file.good(), "cannot open --out file: " + out_path);
  }
  std::ostream& out = out_path.empty() ? std::cout : file;
  if (flags.get_bool("json")) {
    out << dse::sweep_to_json(sweep).dump(/*pretty=*/true) << "\n";
  } else {
    dse::write_sweep_csv(out, sweep);
  }

  if (merge) {
    std::cerr << "merge: " << sweep.cells.size() << " cells adopted from "
              << flags.positional().size() - 1 << " shard checkpoints ("
              << sweep.cells_ok << " ok, " << sweep.cells_failed
              << " failed)\n"
              << "Pareto frontier: "
              << dse::pareto_frontier(sweep.cells).size() << " of "
              << sweep.cells.size() << " cells\n";
    return 0;
  }
  const dse::MemoCache::Stats& cache = sweep.cache_stats;
  std::cerr << "sweep: " << sweep.cells.size() << " cells ("
            << spec.cases.size() << " benchmarks x " << spec.configs.size()
            << " configs x " << spec.packers.size() << " packers x "
            << spec.allocators.size() << " allocators), jobs "
            << sweep.jobs_used << ", wall "
            << format_fixed(sweep.wall_seconds, 3) << " s\n";
  if (options.shard_count > 1) {
    const auto [first, last] = dse::shard_bounds(
        dse::ShardSpec{options.shard_index, options.shard_count},
        spec.cell_count());
    std::cerr << "shard " << options.shard_index << "/"
              << options.shard_count << ": owns grid cells [" << first
              << ", " << last << ") of " << spec.cell_count() << "\n";
  }
  std::cerr << "cells: " << sweep.cells_ok << " ok, " << sweep.cells_failed
            << " failed, " << sweep.cells_resumed
            << " resumed from checkpoint\n"
            << "memo cache: " << cache.hits << " hits, " << cache.misses
            << " misses (hit rate "
            << format_fixed(100.0 * cache.hit_rate(), 1) << "%), "
            << cache.entries << " entries\n"
            << "Pareto frontier: "
            << dse::pareto_frontier(sweep.cells).size() << " of "
            << sweep.cells.size() << " cells\n";
  return 0;
}

int cmd_bench(const FlagParser& flags) {
  bench_harness::BenchOptions options;
  options.warmup =
      static_cast<int>(require_int_at_least(flags, "warmup", 0));
  options.repetitions =
      static_cast<int>(require_int_at_least(flags, "repetitions", 1));

  std::vector<std::string> names;
  const std::string suite = flags.get_string("suite");
  if (suite == "all") {
    for (const bench_harness::SuiteSpec& spec :
         bench_harness::suite_catalog()) {
      names.push_back(spec.name);
    }
  } else {
    for (const std::string& name : split(suite, ',')) {
      if (!bench_harness::is_known_suite(name)) {
        std::string known;
        for (const bench_harness::SuiteSpec& spec :
             bench_harness::suite_catalog()) {
          known += (known.empty() ? "" : ", ") + spec.name;
        }
        throw UsageError("unknown suite '" + name + "' (expected one of: " +
                         known + ", or 'all')");
      }
      names.push_back(name);
    }
  }

  const std::string directory = flags.get_string("bench-dir");
  for (const std::string& name : names) {
    const bench_harness::SuiteResult result =
        bench_harness::run_suite(name, options);
    bench_harness::render_suite_table(std::cout, result);
    const std::string path =
        bench_harness::write_suite_json(result, directory);
    // Re-validate the emitted file with the same structural check CI's
    // bench-smoke job runs, so a schema regression fails right here.
    std::ifstream in(path);
    const std::string written((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    std::string schema_error;
    PARACONV_REQUIRE(
        bench_harness::validate_bench_json(written, &schema_error),
        "emitted " + path + " fails schema validation: " + schema_error);
    std::cerr << "wrote " << path << " (" << result.cases.size()
              << " cases)\n";
  }
  return 0;
}

// The serve daemon's stop flag is flipped from SIGINT/SIGTERM handlers, so
// it has to be a signal-safe global rather than Server state.
std::atomic<bool> g_serve_stop{false};  // NOLINT(cppcoreguidelines-avoid-non-const-global-variables): signal handlers cannot capture state

#ifdef PARACONV_SERVE_POSIX
extern "C" void handle_serve_signal(int) { g_serve_stop.store(true); }

void install_serve_signal_handlers() {
  struct sigaction action = {};
  action.sa_handler = handle_serve_signal;
  sigemptyset(&action.sa_mask);
  // Deliberately no SA_RESTART: a blocked getline/poll must EINTR out so
  // the loop observes g_serve_stop and shuts down gracefully.
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}
#else
void install_serve_signal_handlers() {}
#endif

int cmd_serve(const FlagParser& flags) {
  serve::ServerOptions options;
  options.jobs =
      static_cast<int>(require_int_at_least(flags, "jobs", 0));
  const std::int64_t max_queue = require_int_at_least(flags, "max-queue", 1);
  if (max_queue > 4096) {
    throw UsageError("--max-queue must be <= 4096, got " +
                     std::to_string(max_queue));
  }
  options.max_queue = static_cast<int>(max_queue);
  options.deadline_ms =
      require_int_at_least(flags, "deadline-ms", 0);
  options.cache_file = flags.get_string("cache-file");
  options.flush_every =
      static_cast<int>(require_int_at_least(flags, "flush-every", 0));
  if (options.flush_every > 0 && options.cache_file.empty()) {
    throw UsageError("--flush-every requires --cache-file <file>");
  }

  serve::Server server(options);
  if (server.loaded_entries() > 0) {
    std::cerr << "serve: warm start, loaded " << server.loaded_entries()
              << " cache entries from " << options.cache_file << "\n";
  }
  install_serve_signal_handlers();

  const std::string socket_path = flags.get_string("socket");
  if (socket_path.empty()) {
    server.run_pipe(std::cin, std::cout, &g_serve_stop);
  } else {
#ifdef PARACONV_SERVE_POSIX
    server.run_socket(socket_path, &g_serve_stop);
#else
    throw UsageError("--socket requires a POSIX platform; use pipe mode");
#endif
  }

  const serve::Server::Stats stats = server.stats();
  const dse::MemoCache::Stats memo = server.cache_stats();
  std::cerr << "serve: " << stats.ok << " ok, " << stats.rejected
            << " rejected, " << stats.errors << " failed; cache "
            << memo.entries << " entries (" << memo.hits << " hits, "
            << memo.misses << " misses, " << memo.spilled << " spilled, "
            << memo.loaded << " loaded)\n";
  return 0;
}

int usage(const FlagParser& flags) {
  std::cout << "usage: paraconv_cli "
               "<list|run|schedule|dot|csv|explain|report|sweep|bench|serve>"
               " [flags]\n\n"
            << flags.usage();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.add_string("benchmark", "flower", "paper benchmark name");
  flags.add_int("pes", 32, "processing-engine count");
  flags.add_int("iterations", 100, "application iterations");
  flags.add_string("allocator", "dp",
                   "dp | greedy-density | greedy-deadline | critical-path | "
                   "energy-aware | residency-constrained");
  flags.add_string("packer", "topo", "topo | lpt | locality | modulo");
  flags.add_bool("gantt", false, "render the kernel schedule");
  flags.add_bool("timeline", false,
                 "emit a chrome://tracing JSON timeline of the kernel "
                 "schedule to stdout");
  flags.add_string("trace", "",
                   "run/schedule, sweep: write pipeline spans + counters "
                   "(pack/retime/allocate/validate, per-cell) as "
                   "Chrome-trace JSON to this file; per-stage summary goes "
                   "to stderr");
  flags.add_bool("json", false, "emit JSON instead of tables");
  flags.add_bool("machine", false, "replay on the machine model");
  flags.add_int("jobs", 1,
                "sweep, serve: worker threads (1 = serial, 0 = all hardware "
                "threads); results are identical for every value");
  flags.add_int("seed", 0, "sweep: base seed mixed into each cell's seed");
  flags.add_string("out", "", "sweep: write CSV/JSON here (default stdout)");
  flags.add_string("benchmarks", "all",
                   "sweep: comma-separated paper benchmarks, or 'all'");
  flags.add_string("workload", "",
                   "sweep: comma-separated CNN workloads — zoo names (see "
                   "list / docs/WORKLOADS.md) or workload .tsv files — "
                   "lowered to task graphs and swept instead of "
                   "--benchmarks");
  flags.add_string("batch", "",
                   "sweep: comma-separated images-per-iteration list; a "
                   "case axis crossed with --workload (adds the batch "
                   "report column; default: each workload's own batch "
                   "directive)");
  flags.add_string("pe-counts", "16,32,64",
                   "sweep: comma-separated PE-array sizes");
  flags.add_string("cost-model", "constant",
                   "run, sweep: data-movement cost model (constant | "
                   "banked); banked adds eDRAM bank-contention counters");
  flags.add_string("banks", "",
                   "run, sweep: comma-separated banks-per-vault list "
                   "(sweep axis; run takes one value); requires "
                   "--cost-model banked, default 8");
  flags.add_string("bank-policy", "",
                   "run, sweep: comma-separated bank-mapping policies "
                   "(interleave | block); requires --cost-model banked, "
                   "default interleave");
  flags.add_string("allocators", "dp",
                   "sweep: comma-separated allocator list, or 'all'");
  flags.add_string("packers", "topo",
                   "sweep: comma-separated packer list, or 'all'");
  flags.add_bool("keep-going", false,
                 "sweep: record failing cells as error rows and finish the "
                 "grid (the default; exclusive with --fail-fast)");
  flags.add_bool("fail-fast", false,
                 "sweep: stop scheduling new cells after the first failure "
                 "and exit non-zero once in-flight cells settle");
  flags.add_string("checkpoint", "",
                   "sweep: append one fsync'd record per settled cell to "
                   "this file (crash-safe)");
  flags.add_bool("resume", false,
                 "sweep: load --checkpoint first and re-evaluate only "
                 "missing or errored cells; reports stay byte-identical to "
                 "an uninterrupted run");
  flags.add_string("shard", "",
                   "sweep: evaluate only slice i/N of the grid (e.g. 0/3); "
                   "requires --checkpoint so --merge-checkpoints can "
                   "reassemble the full report; per-cell seeds match the "
                   "unsharded run");
  flags.add_bool("merge-checkpoints", false,
                 "sweep: merge finished shard checkpoint files (given as "
                 "positional arguments) into CSV/JSON byte-identical to a "
                 "single-process sweep; exclusive with --shard/--checkpoint/"
                 "--resume");
  flags.add_string("suite", "pipeline",
                   "bench: comma-separated suite list (pipeline, packer, "
                   "retime, alloc_dp, sweep_cell, sweep_zoo, cost_model, "
                   "serve), or 'all'");
  flags.add_int("warmup", 2, "bench: untimed repetitions before measuring");
  flags.add_int("repetitions", 11,
                "bench: timed repetitions per case (median/p10/p90 are "
                "computed over these)");
  flags.add_string("bench-dir", ".",
                   "bench: directory receiving BENCH_<suite>.json");
  flags.add_string("socket", "",
                   "serve: unix-domain socket path (default: stdin/stdout "
                   "pipe mode)");
  flags.add_int("max-queue", 64,
                "serve: admission-control bound on queued requests; a full "
                "queue returns a typed queue-full rejection (1..4096)");
  flags.add_int("deadline-ms", 0,
                "serve: per-request queueing deadline in milliseconds; "
                "requests that wait longer are rejected deadline-exceeded "
                "(0 = no deadline)");
  flags.add_string("cache-file", "",
                   "serve: persistent memo-cache file, loaded at startup "
                   "(fingerprint-validated) and flushed on shutdown");
  flags.add_int("flush-every", 0,
                "serve: also flush --cache-file after every N completed "
                "requests (0 = only at shutdown)");

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  if (!flags.parse(args, &error)) {
    std::cerr << "error: " << error << "\n";
    return usage(flags);
  }
  if (flags.positional().empty()) return usage(flags);

  const std::string& command = flags.positional().front();

  // With --trace, collect pipeline spans/counters while the command runs
  // and dump them afterwards. Trace output is diagnostics only: it goes to
  // its own file (summary to stderr), never into the data stream, so
  // CSV/JSON results stay byte-identical with tracing on or off.
  const std::string trace_path = flags.get_string("trace");
  std::optional<obs::Registry> registry;
  if (!trace_path.empty()) {
    registry.emplace();
    obs::set_registry(&*registry);
  }

  try {
    int rc = 0;
    if (command == "list") {
      rc = cmd_list();
    } else if (command == "run" || command == "schedule") {
      rc = cmd_run(flags);
    } else if (command == "dot") {
      rc = cmd_dot(flags);
    } else if (command == "report") {
      rc = cmd_report(flags);
    } else if (command == "csv") {
      rc = cmd_csv(flags);
    } else if (command == "explain") {
      rc = cmd_explain(flags);
    } else if (command == "sweep") {
      rc = cmd_sweep(flags);
    } else if (command == "bench") {
      rc = cmd_bench(flags);
    } else if (command == "serve") {
      rc = cmd_serve(flags);
    } else {
      std::cerr << "error: unknown command '" << command << "'\n";
      return usage(flags);
    }

    if (registry.has_value()) {
      obs::set_registry(nullptr);  // uninstall before serializing
      std::ofstream trace_file(trace_path);
      if (!trace_file.good()) {
        std::cerr << "error: cannot open --trace file: " << trace_path
                  << "\n";
        return 1;
      }
      trace_file << obs::to_chrome_trace_json(*registry, /*pretty=*/true)
                 << "\n";
      std::cerr << obs::render_summary(*registry);
    }
    return rc;
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return usage(flags);
  } catch (const dse::MergeError& e) {
    // Bad merge *inputs* (overlapping, missing, or foreign shard files) are
    // usage-class mistakes: exit 2 with the stable kebab code for scripts.
    std::cerr << "error: [" << e.code() << "] " << e.what() << "\n";
    return 2;
  } catch (const paraconv::ContractViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // E.g. a --fail-fast sweep rethrowing a non-contract cell failure.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
