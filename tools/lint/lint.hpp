// paraconv-lint: project-specific static analysis over the repo's own
// sources and docs.
//
// The pipeline's correctness contract lives in string literals and tables
// spread across subsystems: sched::DiagCode enumerators and their kebab
// renderings, obs span/counter names, the sweep CSV/JSON/checkpoint column
// schema, and the documentation tables in docs/USAGE.md that mirror all of
// them. Nothing in the compiler checks that those stay in sync — this pass
// does, at build time, as the `lint` ctest.
//
// Checks (kebab codes reported per finding):
//   diag-*    DiagCode enum <-> to_string switch <-> docs table <-> tests
//   obs-*     span/counter literals: dotted.lowercase style, documented,
//             one kind per name
//   schema-*  sweep CSV header / JSON keys / checkpoint fields / serve
//             response fields agree on the shared identity+status column
//             set and the CellStatus tokens
//   pragma-once, using-namespace-header, iostream-in-library   header hygiene
//   nolint-policy   every suppression names its check and carries a reason
//
// The library is separated from the binary so the gtest suite can run the
// same checks against seeded-violation fixture trees.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace paraconv::lint {

/// One violation. `file` is relative to the linted root; `line` is
/// 1-based (0 when the finding is about a whole file or a missing one).
struct Finding {
  std::string check;
  std::string file;
  int line{0};
  std::string message;
};

/// "src/foo.cpp:12: [check-name] message".
std::string to_string(const Finding& finding);

struct Report {
  std::vector<Finding> findings;
  int files_scanned{0};
};

/// Runs every check against the repo rooted at `root`. The root must hold
/// the repo layout (src/, tests/, docs/USAGE.md, ...); absent required
/// inputs are reported as `missing-input` findings rather than skipped, so
/// a mislocated root fails loudly instead of passing vacuously.
Report run_lint(const std::filesystem::path& root);

}  // namespace paraconv::lint
