// Thin front-end over the analyze suite that runs only the original lint
// pass (docs/schema/hygiene contracts). Kept for muscle memory and for
// the fast edit loop — the full tool, with the determinism/concurrency/
// layering passes and SARIF output, is `paraconv_analyze`.
#include <cstdio>
#include <cstring>
#include <string>

#include "analyze.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root <dir>]\n"
               "Runs the paraconv lint pass (docs/schema/hygiene checks)\n"
               "against the repo rooted at <dir> (default: current\n"
               "directory). Exits non-zero when any finding is reported.\n"
               "The full analysis suite is paraconv_analyze.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  paraconv::analyze::Options options;
  options.disabled = {"nondet", "atomics", "layering"};
  const paraconv::analyze::Report report =
      paraconv::analyze::run_analyze(root, options);
  if (report.files_scanned == 0) {
    std::fprintf(stderr,
                 "paraconv-lint: no sources found under '%s' -- wrong "
                 "--root?\n",
                 root.c_str());
    return 2;
  }
  for (const paraconv::analyze::Finding& finding : report.findings) {
    std::fprintf(stderr, "%s\n",
                 paraconv::analyze::to_string(finding).c_str());
  }
  if (!report.findings.empty()) {
    std::fprintf(stderr, "paraconv-lint: %zu finding(s) in %d files\n",
                 report.findings.size(), report.files_scanned);
    return 1;
  }
  std::fprintf(stderr, "paraconv-lint: OK (%d files scanned)\n",
               report.files_scanned);
  return 0;
}
