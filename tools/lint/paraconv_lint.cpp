// Standalone driver for the project lint pass; see lint.hpp for the check
// catalogue. Runs as the `lint` ctest against the source tree, so schema or
// doc drift fails `ctest -j` locally the same way it fails CI.
#include <cstdio>
#include <cstring>
#include <string>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root <dir>]\n"
               "Runs the paraconv project lint against the repo rooted at\n"
               "<dir> (default: current directory). Exits non-zero when any\n"
               "finding is reported.\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return usage(argv[0]);
    }
  }

  const paraconv::lint::Report report = paraconv::lint::run_lint(root);
  if (report.files_scanned == 0) {
    std::fprintf(stderr,
                 "paraconv-lint: no sources found under '%s' -- wrong "
                 "--root?\n",
                 root.c_str());
    return 2;
  }
  for (const paraconv::lint::Finding& finding : report.findings) {
    std::fprintf(stderr, "%s\n", paraconv::lint::to_string(finding).c_str());
  }
  if (!report.findings.empty()) {
    std::fprintf(stderr, "paraconv-lint: %zu finding(s) in %d files\n",
                 report.findings.size(), report.files_scanned);
    return 1;
  }
  std::fprintf(stderr, "paraconv-lint: OK (%d files scanned)\n",
               report.files_scanned);
  return 0;
}
