// Ablation A4: baseline strength. The paper compares against one SPARTA
// configuration; this ablation shows the comparison is robust to a stronger
// baseline — HEFT insertion scheduling — and quantifies how much of
// Para-CONV's win comes from cross-iteration pipelining rather than from a
// weak baseline.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Ablation: baseline list-scheduling policy vs Para-CONV "
               "(32 PEs, 100 iterations).\n\n";

  TablePrinter table("Baseline strength");
  table.set_header({"Benchmark", "SPARTA(EFT)", "SPARTA(insertion)",
                    "Para-CONV", "Para vs best baseline"});
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    const graph::TaskGraph g = graph::build_paper_benchmark(bench);

    core::SpartaOptions eft;
    const auto base_eft = core::Sparta(config, eft).schedule(g);
    core::SpartaOptions ins;
    ins.policy = core::ListPolicy::kInsertion;
    const auto base_ins = core::Sparta(config, ins).schedule(g);
    const auto ours = core::ParaConv(config, {}).schedule(g);

    const core::RunResult& best =
        base_ins.metrics.total_time < base_eft.metrics.total_time
            ? base_ins.metrics
            : base_eft.metrics;
    table.add_row({
        bench.name,
        std::to_string(base_eft.metrics.total_time.value),
        std::to_string(base_ins.metrics.total_time.value),
        std::to_string(ours.metrics.total_time.value),
        format_fixed(core::speedup(best, ours.metrics), 2) + "x",
    });
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: insertion scheduling helps the baseline "
               "only marginally — the win comes from converting "
               "intra-iteration dependencies into inter-iteration ones, "
               "which no single-iteration scheduler can do.\n";
  return 0;
}
