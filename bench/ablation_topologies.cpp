// Ablation A5: on-chip-network topology (future-work extension). The paper
// evaluates a crossbar; this ablation quantifies how mesh/ring hop latency
// inflates retiming distances and the prologue, and how well the DP
// allocation compensates.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Ablation: NoC topology (crossbar vs 2D mesh vs ring), "
               "32 PEs, hop latency 2 time units.\n\n";

  TablePrinter table("Topology ablation");
  table.set_header({"Benchmark", "topology", "R_max", "prologue", "total",
                    "cached IPRs"});
  for (const char* name : {"flower", "stock-predict", "shortest-path",
                           "protein"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    for (const pim::NocTopology topology :
         {pim::NocTopology::kCrossbar, pim::NocTopology::kMesh2D,
          pim::NocTopology::kRing}) {
      pim::PimConfig config = pim::PimConfig::neurocube(32);
      config.topology = topology;
      config.noc_hop_units = 2;
      const core::ParaConvResult r = core::ParaConv(config).schedule(g);
      table.add_row({name, pim::to_string(topology),
                     std::to_string(r.metrics.r_max),
                     std::to_string(r.metrics.prologue_time.value),
                     std::to_string(r.metrics.total_time.value),
                     std::to_string(r.metrics.cached_iprs)});
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the steady-state kernel period is "
               "topology-independent (retiming hides hand-off latency); "
               "slower networks pay only in prologue length and cache "
               "pressure.\n";
  return 0;
}
