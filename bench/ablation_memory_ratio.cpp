// Ablation A2: sweep of the cache:eDRAM cost ratio (the paper cites 2x-10x,
// Sec. 2.2 [7,14]) — how much the eDRAM penalty drives retiming and the
// benefit of optimal allocation.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Ablation: cache:eDRAM cost-ratio sweep (paper envelope "
               "2x-10x), 32 PEs, 100 iterations.\n\n";

  for (const std::string& name : {std::string{"speech-1"},
                                  std::string{"protein"}}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    TablePrinter table("Benchmark '" + name + "'");
    table.set_header({"eDRAM penalty", "R_max(DP)", "R_max(all-eDRAM)",
                      "kernel p", "total(DP)", "total(all-eDRAM)",
                      "DP gain %"});
    for (const int ratio : {2, 4, 8, 10}) {
      pim::PimConfig config = pim::PimConfig::neurocube(32);
      config.edram_bytes_per_unit = config.cache_bytes_per_unit / ratio;

      const core::ParaConvResult with_dp =
          core::ParaConv(config, {}).schedule(g);

      // "All-eDRAM": zero cache capacity forces every IPR off-chip.
      pim::PimConfig starved = config;
      starved.pe_cache_bytes = Bytes{1};
      const core::ParaConvResult no_cache =
          core::ParaConv(starved, {}).schedule(g);

      const double gain =
          100.0 *
          (static_cast<double>(no_cache.metrics.total_time.value) -
           static_cast<double>(with_dp.metrics.total_time.value)) /
          static_cast<double>(no_cache.metrics.total_time.value);
      table.add_row({
          std::to_string(ratio) + "x",
          std::to_string(with_dp.metrics.r_max),
          std::to_string(no_cache.metrics.r_max),
          std::to_string(with_dp.metrics.iteration_time.value),
          std::to_string(with_dp.metrics.total_time.value),
          std::to_string(no_cache.metrics.total_time.value),
          format_fixed(gain, 2),
      });
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: the slower eDRAM is, the more retiming the "
               "all-eDRAM allocation needs and the larger the DP's gain.\n";
  return 0;
}
