// Table 2 reproduction: the maximum retiming value R_max of Para-CONV on
// 16, 32 and 64 processing elements (prologue time = R_max * p).
#include <iostream>

#include "bench_support/experiments.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "sched/bounds.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Reproducing Table 2: maximum retiming value of Para-CONV "
               "on 16/32/64 PEs.\n\n";

  const auto rows = bench_support::run_grid();

  TablePrinter table("Table 2: maximum retiming value R_max");
  table.set_header({"Benchmark", "16-core", "32-core", "64-core", "Average",
                    "bound@32", "prologue@32 (tu)"});
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    std::vector<int> r;
    TimeUnits prologue32{0};
    int bound32 = 0;
    for (const auto& row : rows) {
      if (row.benchmark != bench.name) continue;
      r.push_back(row.para_conv.r_max);
      if (row.pe_count == 32) {
        prologue32 = row.para_conv.prologue_time;
        bound32 = sched::retiming_lower_bound(
            graph::build_paper_benchmark(bench),
            row.para_conv.iteration_time);
      }
    }
    const double avg = (r[0] + r[1] + r[2]) / 3.0;
    table.add_row({bench.name, std::to_string(r[0]), std::to_string(r[1]),
                   std::to_string(r[2]), format_fixed(avg, 1),
                   std::to_string(bound32), std::to_string(prologue32.value)});
  }
  table.print(std::cout);

  std::cout << "\nNote: larger applications need more retiming (prologue), "
               "matching the paper's size trend; see EXPERIMENTS.md for the "
               "PE-count trend discussion.\n";
  return 0;
}
