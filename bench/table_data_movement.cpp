// Data-movement table: the abstract's headline claim is that Para-CONV
// "can significantly improve the throughput and reduce data movement". The
// evaluation section never plots movement directly, so this harness
// measures it on the machine model: off-PE (eDRAM) traffic per steady-state
// iteration for the baseline, the paper's DP, and the energy-aware
// extension, all replayed for the same iteration count.
#include <iostream>

#include "paraconv.hpp"

namespace {

paraconv::Bytes edram_per_iteration(const paraconv::pim::MachineStats& stats,
                                    std::int64_t iterations) {
  return paraconv::Bytes{stats.edram_bytes.value / iterations};
}

}  // namespace

int main() {
  using namespace paraconv;

  constexpr std::int64_t kIterations = 10;
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  std::cout << "Data movement (machine-measured eDRAM traffic per "
               "iteration), 32 PEs.\n\n";

  TablePrinter table("Off-PE data movement per iteration");
  table.set_header({"Benchmark", "IPR volume", "SPARTA", "Para-CONV(DP)",
                    "Para-CONV(energy)", "best vs SPARTA"});
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    const graph::TaskGraph g = graph::build_paper_benchmark(bench);

    const core::SpartaResult base = core::Sparta(config).schedule(g);
    pim::Machine m0(config);
    const Bytes base_bytes = edram_per_iteration(
        m0.run(g, core::to_kernel_schedule(g, base),
               {.iterations = kIterations}),
        kIterations);

    core::ParaConvOptions dp;
    const core::ParaConvResult r_dp = core::ParaConv(config, dp).schedule(g);
    pim::Machine m1(config);
    const Bytes dp_bytes = edram_per_iteration(
        m1.run(g, r_dp.kernel, {.iterations = kIterations}), kIterations);

    core::ParaConvOptions energy;
    energy.allocator = core::AllocatorKind::kEnergyAware;
    const core::ParaConvResult r_en =
        core::ParaConv(config, energy).schedule(g);
    pim::Machine m2(config);
    const Bytes en_bytes = edram_per_iteration(
        m2.run(g, r_en.kernel, {.iterations = kIterations}), kIterations);

    const Bytes best{std::min(dp_bytes.value, en_bytes.value)};
    const double saved =
        100.0 * (1.0 - static_cast<double>(best.value) /
                           static_cast<double>(base_bytes.value));
    table.add_row({
        bench.name,
        format_bytes(g.total_ipr_bytes()),
        format_bytes(base_bytes),
        format_bytes(dp_bytes),
        format_bytes(en_bytes),
        format_fixed(saved, 1) + "%",
    });
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the throughput DP optimizes prologue, not traffic, and "
         "retiming keeps several in-flight IPR copies resident in the "
         "producer caches — raising cache pressure and hence eDRAM "
         "refetches relative to the non-pipelined baseline on small "
         "graphs. The energy-aware extension recovers most of the gap; "
         "see EXPERIMENTS.md for the full discussion of the abstract's "
         "data-movement claim.\n";
  return 0;
}
