// Figure 5 reproduction: execution time of each steady-state iteration
// (the loop kernel) of Para-CONV on 16, 32 and 64 processing elements,
// normalized by the baseline's per-iteration time on 64 PEs.
#include <iostream>

#include "bench_support/experiments.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Reproducing Figure 5: per-iteration (kernel) execution "
               "time, normalized to the baseline on 64 PEs.\n\n";

  const auto rows = bench_support::run_grid();

  TablePrinter table(
      "Figure 5 series: normalized per-iteration execution time");
  table.set_header({"Benchmark", "Para@16", "Para@32", "Para@64",
                    "SPARTA@64 (=1.0 ref, tu)"});
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    double base64 = 0.0;
    std::vector<double> para(3, 0.0);
    int idx = 0;
    for (const auto& row : rows) {
      if (row.benchmark != bench.name) continue;
      para[static_cast<std::size_t>(idx++)] =
          static_cast<double>(row.para_conv.iteration_time.value);
      if (row.pe_count == 64) {
        base64 = static_cast<double>(row.sparta.iteration_time.value);
      }
    }
    table.add_row({bench.name, format_fixed(para[0] / base64, 3),
                   format_fixed(para[1] / base64, 3),
                   format_fixed(para[2] / base64, 3),
                   std::to_string(static_cast<long long>(base64))});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): per-iteration time decreases "
               "monotonically as PEs increase, because more convolutional "
               "connections execute in parallel.\n";
  return 0;
}
