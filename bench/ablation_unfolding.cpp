// Ablation A7: iteration unfolding. Scheduling `U` iterations as one
// super-iteration amortizes packing quantization (tasks are coarse relative
// to the window on many-PE configs), at the price of a longer prologue in
// absolute time. Classic companion of retiming in periodic scheduling.
#include <iostream>

#include "graph/unfold.hpp"
#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Ablation: unfolding factor U (schedule U iterations per "
               "super-iteration), 64 PEs.\n\n";

  TablePrinter table("Unfolding ablation");
  table.set_header({"Benchmark", "U", "super-period", "period/input",
                    "R_max", "prologue (tu)"});
  const pim::PimConfig config = pim::PimConfig::neurocube(64);
  for (const char* name : {"cat", "flower", "character-2", "stock-predict"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    for (const int factor : {1, 2, 4, 8}) {
      const graph::TaskGraph u = graph::unfold(g, factor);
      const core::ParaConvResult r = core::ParaConv(config).schedule(u);
      table.add_row({
          name,
          std::to_string(factor),
          std::to_string(r.kernel.period.value),
          format_fixed(static_cast<double>(r.kernel.period.value) / factor,
                       2),
          std::to_string(r.metrics.r_max),
          std::to_string(r.metrics.prologue_time.value),
      });
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: per-input period falls toward the work "
               "bound as U grows (quantization amortized), while prologue "
               "time grows — unfolding trades startup latency for "
               "steady-state throughput.\n";
  return 0;
}
