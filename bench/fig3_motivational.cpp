// Figure 3 reproduction: the motivational example (Sec. 2.3). A five-task
// CNN graph on four PEs whose per-PE cache holds exactly one IPR. Fig. 3(a)
// is the baseline schedule where intermediate results delay T4/T5; Fig. 3(b)
// is Para-CONV's compacted kernel with the dependency chain pushed into a
// prologue. This harness prints both timelines.
#include <iostream>

#include "paraconv.hpp"
#include "report/gantt.hpp"



int main() {
  using namespace paraconv;

  const graph::TaskGraph g = graph::motivational_example();
  pim::PimConfig config;
  config.pe_count = 4;
  config.pe_cache_bytes = 8_KiB;
  config.validate();

  std::cout << "Reproducing the Sec. 2.3 motivational example: 5 unit-time "
               "convolutions, 4 PEs, one IPR per PE cache.\n\n";

  // Fig. 3(a): dependency-respecting baseline, one iteration at a time.
  const core::SpartaResult base = core::Sparta(config, {100}).schedule(g);
  std::cout << "Fig. 3(a) baseline: iteration length "
            << base.metrics.iteration_time.value
            << " time units (dependencies + IPR hand-offs paid every "
               "iteration)\n";

  // Fig. 3(b): Para-CONV's compacted kernel.
  const core::ParaConvResult ours =
      core::ParaConv(config, {.iterations = 100}).schedule(g);
  std::cout << "\nFig. 3(b) Para-CONV:\n"
            << report::render_kernel_gantt(g, ours.kernel, config.pe_count)
            << "\nPipeline fill (prologue + first steady windows):\n"
            << report::render_expanded_gantt(g, ours.kernel, config.pe_count,
                                             ours.metrics.r_max + 2)
            << "\n";

  std::cout << "kernel = " << ours.metrics.iteration_time.value
            << " time units/iteration (paper: 3), prologue = "
            << ours.metrics.r_max << " windows (paper: 3 iterations), "
            << "speedup over baseline = "
            << format_fixed(core::speedup(base.metrics, ours.metrics), 2)
            << "x\n";
  return 0;
}
