// Figure 6 reproduction: the number of intermediate processing results that
// Para-CONV allocates to on-chip cache on 16, 32 and 64 processing elements.
#include <iostream>

#include "bench_support/experiments.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Reproducing Figure 6: IPRs allocated to on-chip cache, "
               "16/32/64 PEs.\n\n";

  const auto rows = bench_support::run_grid();

  TablePrinter table("Figure 6 series: IPRs in on-chip cache");
  table.set_header({"Benchmark", "|E|", "cached@16", "cached@32", "cached@64",
                    "sensitive(dR>0)@32"});
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    std::vector<std::size_t> cached;
    for (const auto& row : rows) {
      if (row.benchmark != bench.name) continue;
      cached.push_back(row.para_conv.cached_iprs);
    }
    // Sensitive-edge count at 32 PEs for the saturation discussion.
    const graph::TaskGraph g = graph::build_paper_benchmark(bench);
    const core::ParaConvResult r32 =
        core::ParaConv(pim::PimConfig::neurocube(32), {}).schedule(g);
    table.add_row({bench.name, std::to_string(bench.edges),
                   std::to_string(cached[0]), std::to_string(cached[1]),
                   std::to_string(cached[2]),
                   std::to_string(r32.items.size())});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape (paper): cached-IPR counts grow from 16 to "
               "32 PEs (larger aggregate cache) and broadly saturate from 32 "
               "to 64 PEs once all profitable IPRs fit.\n";
  return 0;
}
