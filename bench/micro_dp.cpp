// M1: micro-benchmarks for the dynamic-programming allocator — verifies the
// paper's O(n * S) running-time claim empirically (linear in item count at
// fixed capacity, linear in capacity at fixed n). Runs on the canonical
// harness (docs/BENCHMARKS.md); compare medians across the size sweeps.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "alloc/knapsack.hpp"
#include "bench_harness/harness.hpp"
#include "common/rng.hpp"
#include "graph/task_graph.hpp"

namespace {

using namespace paraconv;

// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables): the
// sink must outlive every case body and be observable to the optimizer.
volatile std::int64_t g_sink = 0;

void sink(std::int64_t v) { g_sink = g_sink + v; }

std::vector<alloc::AllocationItem> synthetic_items(std::size_t n,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<alloc::AllocationItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alloc::AllocationItem item;
    item.edge = graph::EdgeId{static_cast<std::uint32_t>(i)};
    item.size = Bytes{rng.uniform_int(1, 16) * 1024};
    item.profit = static_cast<int>(rng.uniform_int(1, 2));
    item.deadline = TimeUnits{static_cast<std::int64_t>(i)};
    items.push_back(item);
  }
  return items;
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness::SuiteResult result;
  result.suite = "micro_dp";

  // Item-count sweep at fixed capacity: medians should grow linearly.
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{128}, std::size_t{256}, std::size_t{512},
        std::size_t{1024}, std::size_t{2048}}) {
    const auto items = synthetic_items(n, 42);
    const alloc::KnapsackOptions options{Bytes{512 * 1024}, 1024};
    result.cases.push_back(bench_harness::run_case(
        "profit/n" + std::to_string(n) + "/cap512k",
        [items, options] { sink(alloc::knapsack_profit(items, options)); },
        result.options));
  }

  // Capacity sweep at fixed n: linear in the quantized capacity S.
  for (const std::int64_t cap_kib : {64, 256, 1024, 2048}) {
    const auto items = synthetic_items(512, 42);
    const alloc::KnapsackOptions options{Bytes{cap_kib * 1024}, 1024};
    result.cases.push_back(bench_harness::run_case(
        "profit/n512/cap" + std::to_string(cap_kib) + "k",
        [items, options] { sink(alloc::knapsack_profit(items, options)); },
        result.options));
  }

  // The reconstruction path needs the full B table (knapsack_allocate),
  // unlike the profit-only rolling row above — this is the sweep that sees
  // the table's memory layout.
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{256}, std::size_t{1024}}) {
    auto items = synthetic_items(n, 42);
    auto g = std::make_shared<graph::TaskGraph>("dp-bench");
    const auto hub =
        g->add_task({"hub", graph::TaskKind::kConvolution, TimeUnits{1}});
    for (std::size_t i = 0; i < n; ++i) {
      const auto node = g->add_task({"n" + std::to_string(i),
                                     graph::TaskKind::kConvolution,
                                     TimeUnits{1}});
      items[i].edge = g->add_ipr(hub, node, items[i].size);
    }
    const alloc::KnapsackOptions options{Bytes{512 * 1024}, 1024};
    result.cases.push_back(bench_harness::run_case(
        "allocate/n" + std::to_string(n) + "/cap512k",
        [g, items, options] {
          sink(alloc::knapsack_allocate(*g, items, options).total_profit);
        },
        result.options));
  }

  bench_harness::render_suite_table(std::cout, result);
  if (argc > 1) {
    const std::string path =
        bench_harness::write_suite_json(result, argv[1]);
    std::cerr << "wrote " << path << "\n";
  }
  return 0;
}
