// M1: google-benchmark micro-benchmarks for the dynamic-programming
// allocator — verifies the paper's O(n * S) running-time claim empirically
// (linear in item count at fixed capacity, linear in capacity at fixed n).
#include <benchmark/benchmark.h>

#include "alloc/knapsack.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"

namespace {

using namespace paraconv;

std::vector<alloc::AllocationItem> synthetic_items(std::size_t n,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<alloc::AllocationItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    alloc::AllocationItem item;
    item.edge = graph::EdgeId{static_cast<std::uint32_t>(i)};
    item.size = Bytes{rng.uniform_int(1, 16) * 1024};
    item.profit = static_cast<int>(rng.uniform_int(1, 2));
    item.deadline = TimeUnits{static_cast<std::int64_t>(i)};
    items.push_back(item);
  }
  return items;
}

void BM_KnapsackItems(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto items = synthetic_items(n, 42);
  const alloc::KnapsackOptions options{Bytes{512 * 1024}, 1024};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::knapsack_profit(items, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackItems)->RangeMultiplier(2)->Range(64, 2048)->Complexity(
    benchmark::oN);

void BM_KnapsackCapacity(benchmark::State& state) {
  const auto items = synthetic_items(512, 42);
  const alloc::KnapsackOptions options{Bytes{state.range(0) * 1024}, 1024};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::knapsack_profit(items, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackCapacity)
    ->RangeMultiplier(2)
    ->Range(64, 2048)
    ->Complexity(benchmark::oN);

void BM_KnapsackReconstruct(benchmark::State& state) {
  // The reconstruction path needs the full B table (knapsack_allocate),
  // unlike the profit-only rolling row above — this is the benchmark that
  // sees the table's memory layout.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto items = synthetic_items(n, 42);
  graph::TaskGraph g("dp-bench");
  const auto hub = g.add_task(
      {"hub", graph::TaskKind::kConvolution, TimeUnits{1}});
  for (std::size_t i = 0; i < n; ++i) {
    const auto node = g.add_task({"n" + std::to_string(i),
                                  graph::TaskKind::kConvolution,
                                  TimeUnits{1}});
    items[i].edge = g.add_ipr(hub, node, items[i].size);
  }
  const alloc::KnapsackOptions options{Bytes{512 * 1024}, 1024};
  for (auto _ : state) {
    benchmark::DoNotOptimize(alloc::knapsack_allocate(g, items, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_KnapsackReconstruct)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Complexity(benchmark::oN);

}  // namespace
