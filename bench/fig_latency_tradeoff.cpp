// Latency/throughput trade-off (analysis beyond the paper). Retiming buys
// throughput (shorter period p) by deepening the pipeline (more windows per
// iteration in flight), so single-input latency moves the other way. This
// harness plots both sides across PE counts, plus the baseline for which
// latency == period == its makespan.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Latency vs throughput across PE counts (Para-CONV vs "
               "baseline).\n\n";

  for (const char* name : {"character-2", "shortest-path", "protein"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    TablePrinter table("Benchmark '" + std::string(name) +
                       "' (critical path " +
                       std::to_string(graph::critical_path_length(g).value) +
                       " tu)");
    table.set_header({"PEs", "base period=latency", "para period",
                      "para latency", "pipeline depth", "latency ratio"});
    for (const int pe : {8, 16, 32, 64}) {
      const pim::PimConfig config = pim::PimConfig::neurocube(pe);
      const core::SpartaResult base = core::Sparta(config).schedule(g);
      const core::ParaConvResult ours = core::ParaConv(config).schedule(g);
      const sched::LatencyReport latency =
          sched::iteration_latency(g, ours.kernel);
      table.add_row({
          std::to_string(pe),
          std::to_string(base.metrics.iteration_time.value),
          std::to_string(ours.metrics.iteration_time.value),
          std::to_string(latency.iteration_latency.value),
          std::to_string(latency.windows_spanned),
          format_fixed(static_cast<double>(latency.iteration_latency.value) /
                           static_cast<double>(
                               base.metrics.iteration_time.value),
                       2) + "x",
      });
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: Para-CONV multiplies throughput (period shrinks "
               "3-8x) while single-input latency grows by a smaller factor "
               "(the pipeline depth x the much shorter window). Workloads "
               "with per-input deadlines must budget for that multiple — a "
               "trade-off the paper does not report.\n";
  return 0;
}
