// Table 1 reproduction: total execution time of SPARTA and Para-CONV on
// 16, 32 and 64 processing elements over the twelve benchmarks.
//
// The paper's "IMP (%)" column is labelled "reduction of the total execution
// time" but its printed values equal Para-CONV/SPARTA x 100 (e.g. cat@16:
// 4.0/4.7 = 85.13). We print BOTH interpretations; see EXPERIMENTS.md.
#include <iostream>

#include "bench_support/experiments.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main() {
  using namespace paraconv;
  using bench_support::ExperimentRow;

  std::cout << "Reproducing Table 1: total execution time, SPARTA vs "
               "Para-CONV, 16/32/64 PEs, 100 iterations.\n\n";

  const auto rows = bench_support::run_grid();

  TablePrinter table("Table 1: total execution time (time units)");
  std::vector<std::string> header{"Benchmark", "|V|", "|E|"};
  for (const int pe : bench_support::paper_pe_counts()) {
    const std::string s = std::to_string(pe);
    header.push_back("SPARTA@" + s);
    header.push_back("Para@" + s);
    header.push_back("ratio%@" + s);
    header.push_back("red%@" + s);
  }
  table.set_header(header);

  double ratio_sum[3] = {};
  double reduction_sum[3] = {};
  std::size_t bench_count = 0;

  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    std::vector<std::string> cells{bench.name, std::to_string(bench.vertices),
                                   std::to_string(bench.edges)};
    int pe_idx = 0;
    for (const ExperimentRow& row : rows) {
      if (row.benchmark != bench.name) continue;
      const double ratio =
          core::time_ratio_percent(row.sparta, row.para_conv);
      const double reduction =
          core::time_reduction_percent(row.sparta, row.para_conv);
      cells.push_back(std::to_string(row.sparta.total_time.value));
      cells.push_back(std::to_string(row.para_conv.total_time.value));
      cells.push_back(format_fixed(ratio, 2));
      cells.push_back(format_fixed(reduction, 2));
      ratio_sum[pe_idx] += ratio;
      reduction_sum[pe_idx] += reduction;
      ++pe_idx;
    }
    ++bench_count;
    table.add_row(cells);
  }

  std::vector<std::string> avg{"Average", "", ""};
  for (int i = 0; i < 3; ++i) {
    avg.push_back("");
    avg.push_back("");
    avg.push_back(
        format_fixed(ratio_sum[i] / static_cast<double>(bench_count), 2));
    avg.push_back(
        format_fixed(reduction_sum[i] / static_cast<double>(bench_count), 2));
  }
  table.add_rule();
  table.add_row(avg);
  table.print(std::cout);

  const double overall_reduction =
      (reduction_sum[0] + reduction_sum[1] + reduction_sum[2]) /
      (3.0 * static_cast<double>(bench_count));
  std::cout << "\nOverall average execution-time reduction: "
            << format_fixed(overall_reduction, 2)
            << "%  (paper reports 53.42% / 1.87x)\n";
  return 0;
}
