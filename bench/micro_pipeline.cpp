// M2: google-benchmark micro-benchmarks for the full scheduling pipeline
// and the machine-model replay, across graph sizes.
#include <benchmark/benchmark.h>

#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/generator.hpp"
#include "pim/machine.hpp"

namespace {

using namespace paraconv;

graph::TaskGraph make_graph(std::int64_t vertices) {
  graph::GeneratorConfig config;
  config.name = "bench";
  config.vertices = static_cast<std::size_t>(vertices);
  config.edges = static_cast<std::size_t>(vertices) * 5 / 2;
  config.seed = 7;
  return graph::generate_layered_dag(config);
}

void BM_ParaConvSchedule(benchmark::State& state) {
  const graph::TaskGraph g = make_graph(state.range(0));
  const core::ParaConv scheduler(pim::PimConfig::neurocube(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ParaConvSchedule)->RangeMultiplier(2)->Range(32, 1024);

void BM_SpartaSchedule(benchmark::State& state) {
  const graph::TaskGraph g = make_graph(state.range(0));
  const core::Sparta scheduler(pim::PimConfig::neurocube(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(g));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpartaSchedule)->RangeMultiplier(2)->Range(32, 1024);

void BM_MachineReplay(benchmark::State& state) {
  const graph::TaskGraph g = make_graph(state.range(0));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const auto result = core::ParaConv(config).schedule(g);
  pim::Machine machine(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.run(g, result.kernel, {.iterations = 4}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MachineReplay)->RangeMultiplier(4)->Range(32, 512);

}  // namespace
