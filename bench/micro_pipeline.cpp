// M2: micro-benchmarks for the full scheduling pipeline and the
// machine-model replay, across graph sizes. Runs on the canonical harness
// (docs/BENCHMARKS.md); compare medians down each size column.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "bench_harness/harness.hpp"
#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/generator.hpp"
#include "pim/machine.hpp"

namespace {

using namespace paraconv;

// NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables): the
// sink must outlive every case body and be observable to the optimizer.
volatile std::int64_t g_sink = 0;

void sink(std::int64_t v) { g_sink = g_sink + v; }

std::shared_ptr<const graph::TaskGraph> make_graph(std::size_t vertices) {
  graph::GeneratorConfig config;
  config.name = "bench";
  config.vertices = vertices;
  config.edges = vertices * 5 / 2;
  config.seed = 7;
  return std::make_shared<const graph::TaskGraph>(
      graph::generate_layered_dag(config));
}

}  // namespace

int main(int argc, char** argv) {
  bench_harness::SuiteResult result;
  result.suite = "micro_pipeline";

  for (const std::size_t vertices :
       {std::size_t{32}, std::size_t{128}, std::size_t{512},
        std::size_t{1024}}) {
    const auto g = make_graph(vertices);
    const auto paraconv =
        std::make_shared<const core::ParaConv>(pim::PimConfig::neurocube(32));
    result.cases.push_back(bench_harness::run_case(
        "paraconv/v" + std::to_string(vertices) + "/pe32",
        [g, paraconv] {
          sink(paraconv->schedule(*g).metrics.total_time.value);
        },
        result.options));
    const auto sparta =
        std::make_shared<const core::Sparta>(pim::PimConfig::neurocube(32));
    result.cases.push_back(bench_harness::run_case(
        "sparta/v" + std::to_string(vertices) + "/pe32",
        [g, sparta] { sink(sparta->schedule(*g).metrics.total_time.value); },
        result.options));
  }

  // The machine-model replay of an already-computed kernel schedule.
  for (const std::size_t vertices :
       {std::size_t{32}, std::size_t{128}, std::size_t{512}}) {
    const auto g = make_graph(vertices);
    const pim::PimConfig config = pim::PimConfig::neurocube(32);
    const auto schedule = std::make_shared<const core::ParaConvResult>(
        core::ParaConv(config).schedule(*g));
    const auto machine = std::make_shared<pim::Machine>(config);
    result.cases.push_back(bench_harness::run_case(
        "replay/v" + std::to_string(vertices) + "/pe32/iters4",
        [g, schedule, machine] {
          sink(machine->run(*g, schedule->kernel, {.iterations = 4})
                   .makespan.value);
        },
        result.options));
  }

  bench_harness::render_suite_table(std::cout, result);
  if (argc > 1) {
    const std::string path =
        bench_harness::write_suite_json(result, argv[1]);
    std::cerr << "wrote " << path << "\n";
  }
  return 0;
}
