// Ablation A1: the paper's knapsack DP vs greedy heuristics vs the
// critical-path-aware allocator (extension), across a cache-capacity sweep.
//
// The DP maximizes the *sum* of ΔR — a proxy for minimizing R_max. This
// ablation quantifies how the proxy compares to direct R_max minimization
// and to cheap greedy policies.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Ablation: allocation policy vs R_max and cached IPRs "
               "(32 PEs, cache capacity scaled).\n\n";

  const std::vector<std::string> benches{"flower", "stock-predict",
                                         "shortest-path", "protein"};
  const std::vector<core::AllocatorKind> allocators{
      core::AllocatorKind::kKnapsackDp, core::AllocatorKind::kGreedyDensity,
      core::AllocatorKind::kGreedyDeadline,
      core::AllocatorKind::kCriticalPath,
      core::AllocatorKind::kResidencyConstrained};

  for (const std::string& name : benches) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    TablePrinter table("Benchmark '" + name + "'");
    table.set_header({"cache/PE", "allocator", "R_max", "cached IPRs",
                      "total time", "off-chip/iter"});
    for (const std::int64_t per_pe_kib : {4LL, 16LL, 64LL}) {
      pim::PimConfig config = pim::PimConfig::neurocube(32);
      config.pe_cache_bytes = Bytes{per_pe_kib * 1024};
      for (const core::AllocatorKind alloc : allocators) {
        core::ParaConvOptions options;
        options.allocator = alloc;
        const core::ParaConvResult r =
            core::ParaConv(config, options).schedule(g);
        table.add_row({
            std::to_string(per_pe_kib) + " KiB",
            core::to_string(alloc),
            std::to_string(r.metrics.r_max),
            std::to_string(r.metrics.cached_iprs),
            std::to_string(r.metrics.total_time.value),
            format_bytes(r.metrics.offchip_bytes_per_iteration),
        });
      }
      // Residency-aware variant of the DP (extension): trades cached IPRs
      // for zero runtime eviction fallbacks.
      core::ParaConvOptions aware;
      aware.residency_aware = true;
      const core::ParaConvResult r =
          core::ParaConv(config, aware).schedule(g);
      table.add_row({
          std::to_string(per_pe_kib) + " KiB",
          "dp+residency",
          std::to_string(r.metrics.r_max),
          std::to_string(r.metrics.cached_iprs),
          std::to_string(r.metrics.total_time.value),
          format_bytes(r.metrics.offchip_bytes_per_iteration),
      });
      table.add_rule();
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
