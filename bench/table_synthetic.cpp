// Synthetic scalability table (paper Sec. 4.1: "Synthetic graphs with over
// 500 convolutions are also used in the experiments"). Multi-seed sweep of
// graph sizes on 32 PEs reporting mean +- stddev of the execution-time
// reduction, so the Table-1 result is shown to be seed-robust rather than
// an artifact of the twelve fixed graphs.
#include <iostream>

#include "common/stats.hpp"
#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  constexpr int kSeedsPerSize = 5;
  constexpr std::int64_t kIterations = 100;
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  std::cout << "Synthetic scalability: " << kSeedsPerSize
            << " seeds per size, 32 PEs, " << kIterations
            << " iterations.\n\n";

  TablePrinter table("Synthetic task graphs (mean +- stddev over seeds)");
  table.set_header({"vertices", "edges", "reduction %", "speedup", "R_max",
                    "kernel p"});
  for (const std::size_t v : {64UL, 128UL, 256UL, 512UL, 768UL, 1024UL}) {
    RunningStats reduction;
    RunningStats speed;
    RunningStats r_max;
    RunningStats period;
    const std::size_t edges = v * 5 / 2;
    for (int seed = 0; seed < kSeedsPerSize; ++seed) {
      graph::GeneratorConfig gen;
      gen.name = "syn" + std::to_string(v) + "-" + std::to_string(seed);
      gen.vertices = v;
      gen.edges = edges;
      gen.seed = (static_cast<std::uint64_t>(seed) + 1) * 0x51D +
                 static_cast<std::uint64_t>(v);
      const graph::TaskGraph g = graph::generate_layered_dag(gen);

      const auto base = core::Sparta(config, {kIterations}).schedule(g);
      const auto ours =
          core::ParaConv(config, {.iterations = kIterations}).schedule(g);
      reduction.add(core::time_reduction_percent(base.metrics, ours.metrics));
      speed.add(core::speedup(base.metrics, ours.metrics));
      r_max.add(static_cast<double>(ours.metrics.r_max));
      period.add(static_cast<double>(ours.metrics.iteration_time.value));
    }
    table.add_row({
        std::to_string(v),
        std::to_string(edges),
        format_fixed(reduction.mean(), 1) + " +- " +
            format_fixed(reduction.stddev(), 1),
        format_fixed(speed.mean(), 2) + "x",
        format_fixed(r_max.mean(), 1) + " +- " +
            format_fixed(r_max.stddev(), 1),
        format_fixed(period.mean(), 0),
    });
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: reductions stay in the Table-1 band across "
               "seeds and sizes; R_max grows with application scale "
               "(Table 2's size trend).\n";
  return 0;
}
