// Ablation A3: objective-schedule packer choice. Para-CONV's initial
// compacted schedule can be built with pure LPT load balancing or with the
// topology-aware packer; both reach (near-)minimal periods but differ in
// how many IPRs need non-zero retiming distances.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "Ablation: topological vs LPT packing for the objective "
               "schedule (32 PEs).\n\n";

  TablePrinter table("Packer ablation");
  table.set_header({"Benchmark", "p(topo)", "p(LPT)", "p(refined)",
                    "p(modulo)", "R_max(topo)", "R_max(LPT)",
                    "R_max(refined)", "R_max(modulo)", "total(topo)",
                    "total(modulo)"});
  for (const graph::PaperBenchmark& bench : graph::paper_benchmarks()) {
    const graph::TaskGraph g = graph::build_paper_benchmark(bench);
    const pim::PimConfig config = pim::PimConfig::neurocube(32);

    core::ParaConvOptions topo;
    topo.packer = core::PackerKind::kTopological;
    const auto rt = core::ParaConv(config, topo).schedule(g);

    core::ParaConvOptions lpt;
    lpt.packer = core::PackerKind::kLpt;
    const auto rl = core::ParaConv(config, lpt).schedule(g);

    core::ParaConvOptions refined = topo;
    refined.refine_steps = 384;
    const auto rr = core::ParaConv(config, refined).schedule(g);

    core::ParaConvOptions modulo;
    modulo.packer = core::PackerKind::kModulo;
    const auto rm = core::ParaConv(config, modulo).schedule(g);

    table.add_row({bench.name,
                   std::to_string(rt.metrics.iteration_time.value),
                   std::to_string(rl.metrics.iteration_time.value),
                   std::to_string(rr.metrics.iteration_time.value),
                   std::to_string(rm.metrics.iteration_time.value),
                   std::to_string(rt.metrics.r_max),
                   std::to_string(rl.metrics.r_max),
                   std::to_string(rr.metrics.r_max),
                   std::to_string(rm.metrics.r_max),
                   std::to_string(rt.metrics.total_time.value),
                   std::to_string(rm.metrics.total_time.value)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: near-equal periods everywhere; the "
               "precedence-aware packer needs less retiming than pure LPT, "
               "local search trims a little more, and the modulo scheduler "
               "(compiler-style, staggered offsets) cuts R_max to within a "
               "few windows of the ceil(CP/p)-1 lower bound.\n";
  return 0;
}
