// Synthetic-graph sweep: generate CNN-like task graphs of growing size
// (the paper's synthetic benchmarks go beyond 500 convolutions) and show
// how throughput, prologue and cache allocation scale.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  TablePrinter table("Scalability sweep on 32 PEs (100 iterations)");
  table.set_header({"vertices", "edges", "SPARTA total", "Para-CONV total",
                    "speedup", "R_max", "cached", "utilization"});

  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  for (const std::size_t v : {32UL, 64UL, 128UL, 256UL, 512UL, 1024UL}) {
    graph::GeneratorConfig gen;
    gen.name = "synthetic-" + std::to_string(v);
    gen.vertices = v;
    gen.edges = v * 5 / 2;
    gen.seed = 0xABCD'0000 + v;
    const graph::TaskGraph g = graph::generate_layered_dag(gen);

    const core::SpartaResult base = core::Sparta(config, {100}).schedule(g);
    const core::ParaConvResult ours =
        core::ParaConv(config, {.iterations = 100}).schedule(g);

    table.add_row({
        std::to_string(g.node_count()),
        std::to_string(g.edge_count()),
        std::to_string(base.metrics.total_time.value),
        std::to_string(ours.metrics.total_time.value),
        format_fixed(core::speedup(base.metrics, ours.metrics), 2) + "x",
        std::to_string(ours.metrics.r_max),
        std::to_string(ours.metrics.cached_iprs),
        format_fixed(ours.metrics.pe_utilization, 2),
    });
  }
  table.print(std::cout);

  std::cout << "\nLegend: Para-CONV totals include the prologue; utilization"
               " is steady-state busy fraction of the PE array.\n";
  return 0;
}
