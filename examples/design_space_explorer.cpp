// Design-space explorer: the paper's future-work direction of "a general
// model that can be adaptively applied to different system architectures"
// (Sec. 5). Sweeps PE count and per-PE cache size under a fixed silicon
// budget and reports the throughput-optimal PIM configuration per workload.
//
// The silicon-budget grid is a dse::GridSpec evaluated by the parallel
// sweep engine — the same enumeration/evaluation path as the CLI `sweep`
// subcommand and the bench-harness experiment grid.
#include <iostream>
#include <optional>

#include "paraconv.hpp"

namespace {

using namespace paraconv;

/// Crude area model: one PE datapath counts as 8 "tiles", cache costs one
/// tile per 2 KiB. A budget of 640 tiles admits e.g. 64 PEs x 16 KiB
/// (64*8 + 64*8 = 1024 > budget) down to 16 PEs x 64 KiB.
struct AreaModel {
  std::int64_t tiles_per_pe{8};
  std::int64_t bytes_per_tile{2 * 1024};

  std::int64_t cost(int pes, Bytes cache_per_pe) const {
    return pes * tiles_per_pe +
           pes * ceil_div(cache_per_pe.value, bytes_per_tile);
  }
};

}  // namespace

int main() {
  const AreaModel area;
  const std::int64_t budget = 512;

  std::cout << "Design-space exploration under a silicon budget of "
            << budget << " tiles (PE = " << area.tiles_per_pe
            << " tiles, cache = 1 tile per "
            << format_bytes(Bytes{area.bytes_per_tile}) << ").\n\n";

  // One declarative grid: workloads x every in-budget (PEs, cache) point.
  dse::GridSpec spec;
  spec.iterations = 100;
  for (const std::string& name :
       {std::string{"character-2"}, std::string{"shortest-path"},
        std::string{"protein"}}) {
    spec.cases.push_back({name, graph::build_paper_benchmark(
                                    graph::paper_benchmark(name))});
  }
  for (const int pes : {8, 16, 32, 48, 64}) {
    for (const std::int64_t cache_kib : {4LL, 16LL, 64LL}) {
      const Bytes per_pe{cache_kib * 1024};
      if (area.cost(pes, per_pe) > budget) continue;
      pim::PimConfig config = pim::PimConfig::neurocube(pes);
      config.pe_cache_bytes = per_pe;
      spec.configs.push_back(config);
    }
  }

  dse::SweepOptions options;
  options.jobs = 0;  // all hardware threads; results identical to serial
  options.with_baseline = false;
  const dse::SweepResult sweep = dse::run_sweep(spec, options);

  // Cells are grid-ordered (case-major), so each workload owns one
  // contiguous block of configs.size() rows.
  const std::size_t per_case = spec.configs.size();
  for (std::size_t c = 0; c < spec.cases.size(); ++c) {
    TablePrinter table("Benchmark '" + spec.cases[c].name + "'");
    table.set_header({"PEs", "cache/PE", "area", "kernel p", "R_max",
                      "total time", "best?"});

    std::optional<TimeUnits> best_time;
    std::size_t best_row = 0;
    const std::size_t base = c * per_case;
    for (std::size_t i = 0; i < per_case; ++i) {
      const dse::CellResult& cell = sweep.cells[base + i];
      if (!best_time.has_value() || cell.para.total_time < *best_time) {
        best_time = cell.para.total_time;
        best_row = i;
      }
    }
    for (std::size_t i = 0; i < per_case; ++i) {
      const dse::CellResult& cell = sweep.cells[base + i];
      table.add_row(
          {std::to_string(cell.config.pe_count),
           std::to_string(cell.config.pe_cache_bytes.value / 1024) + " KiB",
           std::to_string(area.cost(cell.config.pe_count,
                                    cell.config.pe_cache_bytes)),
           std::to_string(cell.para.iteration_time.value),
           std::to_string(cell.para.r_max),
           std::to_string(cell.para.total_time.value),
           i == best_row ? "<== best" : ""});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Swept " << sweep.cells.size() << " cells on "
            << sweep.jobs_used << " worker thread(s) in "
            << format_fixed(sweep.wall_seconds, 3) << " s.\n"
            << "Reading: compute-starved workloads prefer spending tiles on "
               "PEs; prologue-bound ones trade PEs for cache to cut "
               "retiming.\n";
  return 0;
}
