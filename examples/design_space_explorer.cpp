// Design-space explorer: the paper's future-work direction of "a general
// model that can be adaptively applied to different system architectures"
// (Sec. 5). Sweeps PE count and per-PE cache size under a fixed silicon
// budget and reports the throughput-optimal PIM configuration per workload.
#include <iostream>
#include <optional>

#include "paraconv.hpp"

namespace {

using namespace paraconv;

/// Crude area model: one PE datapath counts as 8 "tiles", cache costs one
/// tile per 2 KiB. A budget of 640 tiles admits e.g. 64 PEs x 16 KiB
/// (64*8 + 64*8 = 1024 > budget) down to 16 PEs x 64 KiB.
struct AreaModel {
  std::int64_t tiles_per_pe{8};
  std::int64_t bytes_per_tile{2 * 1024};

  std::int64_t cost(int pes, Bytes cache_per_pe) const {
    return pes * tiles_per_pe +
           pes * ceil_div(cache_per_pe.value, bytes_per_tile);
  }
};

}  // namespace

int main() {
  const AreaModel area;
  const std::int64_t budget = 512;

  std::cout << "Design-space exploration under a silicon budget of "
            << budget << " tiles (PE = " << area.tiles_per_pe
            << " tiles, cache = 1 tile per "
            << format_bytes(Bytes{area.bytes_per_tile}) << ").\n\n";

  for (const std::string& name :
       {std::string{"character-2"}, std::string{"shortest-path"},
        std::string{"protein"}}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));

    TablePrinter table("Benchmark '" + name + "'");
    table.set_header({"PEs", "cache/PE", "area", "kernel p", "R_max",
                      "total time", "best?"});

    std::optional<TimeUnits> best_time;
    int best_row = -1;
    std::vector<std::vector<std::string>> rows;
    for (const int pes : {8, 16, 32, 48, 64}) {
      for (const std::int64_t cache_kib : {4LL, 16LL, 64LL}) {
        const Bytes per_pe{cache_kib * 1024};
        const std::int64_t cost = area.cost(pes, per_pe);
        if (cost > budget) continue;

        pim::PimConfig config = pim::PimConfig::neurocube(pes);
        config.pe_cache_bytes = per_pe;
        const core::ParaConvResult r =
            core::ParaConv(config, {.iterations = 100}).schedule(g);
        rows.push_back({std::to_string(pes),
                        std::to_string(cache_kib) + " KiB",
                        std::to_string(cost),
                        std::to_string(r.metrics.iteration_time.value),
                        std::to_string(r.metrics.r_max),
                        std::to_string(r.metrics.total_time.value), ""});
        if (!best_time.has_value() || r.metrics.total_time < *best_time) {
          best_time = r.metrics.total_time;
          best_row = static_cast<int>(rows.size()) - 1;
        }
      }
    }
    for (int i = 0; i < static_cast<int>(rows.size()); ++i) {
      rows[static_cast<std::size_t>(i)][6] = (i == best_row) ? "<== best" : "";
      table.add_row(rows[static_cast<std::size_t>(i)]);
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Reading: compute-starved workloads prefer spending tiles on "
               "PEs; prologue-bound ones trade PEs for cache to cut "
               "retiming.\n";
  return 0;
}
