// Energy explorer: replay Para-CONV and baseline schedules on the machine
// model and break energy down by component — the "energy issue for PIM"
// the paper's conclusion defers to future work.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark("string-matching"));
  std::cout << "Benchmark 'string-matching': " << g.node_count()
            << " tasks, " << g.edge_count() << " IPRs\n\n";

  TablePrinter table("Energy per 20 iterations, machine-model replay");
  table.set_header({"PEs", "allocator", "cache uJ", "eDRAM uJ", "NoC uJ",
                    "compute uJ", "total uJ", "eDRAM accesses"});

  const auto uj = [](Picojoules e) { return format_fixed(e.value / 1e6, 2); };
  const auto add_row = [&](int pe, const std::string& label,
                           const pim::MachineStats& stats) {
    table.add_row({
        std::to_string(pe),
        label,
        uj(stats.energy.cache),
        uj(stats.energy.edram),
        uj(stats.energy.noc),
        uj(stats.energy.compute),
        uj(stats.energy.total()),
        std::to_string(stats.edram_accesses),
    });
  };

  for (const int pe : {16, 32, 64}) {
    const pim::PimConfig config = pim::PimConfig::neurocube(pe);

    // Baseline, replayed through the same machine model.
    const core::SpartaResult base = core::Sparta(config).schedule(g);
    pim::Machine base_machine(config);
    add_row(pe, "SPARTA",
            base_machine.run(g, core::to_kernel_schedule(g, base),
                             {.iterations = 20}));

    for (const core::AllocatorKind alloc :
         {core::AllocatorKind::kKnapsackDp,
          core::AllocatorKind::kGreedyDeadline,
          core::AllocatorKind::kEnergyAware}) {
      core::ParaConvOptions options;
      options.iterations = 20;
      options.allocator = alloc;
      const core::ParaConvResult result =
          core::ParaConv(config, options).schedule(g);

      pim::Machine machine(config);
      add_row(pe, core::to_string(alloc),
              machine.run(g, result.kernel, {.iterations = 20}));
    }
    table.add_rule();
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the paper's DP optimizes the *prologue*, not traffic —"
         " it caches the retiming-sensitive IPRs, which are not the largest"
         " ones, so its eDRAM energy can trail even the baseline's"
         " byte-greedy policy. The energy-aware allocator keeps the DP's"
         " prologue and spends leftover capacity on the biggest remaining"
         " IPRs, recovering the eDRAM term (visible at 32/64 PEs).\n";
  return 0;
}
