// Multi-tenant PIM: co-locate several CNN applications on one PE array with
// work-proportional space partitioning, and compare against exclusive use.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  const graph::TaskGraph vision =
      graph::build_paper_benchmark(graph::paper_benchmark("flower"));
  const graph::TaskGraph speech =
      graph::build_paper_benchmark(graph::paper_benchmark("speech-1"));
  const graph::TaskGraph analytics =
      graph::build_paper_benchmark(graph::paper_benchmark("stock-predict"));

  const pim::PimConfig config = pim::PimConfig::neurocube(64);
  const std::vector<const graph::TaskGraph*> apps{&vision, &speech,
                                                  &analytics};

  const core::ColocationResult shared =
      core::schedule_colocated(apps, config);

  TablePrinter table("Three tenants on one 64-PE array");
  table.set_header({"application", "tasks", "PEs", "kernel p", "R_max",
                    "shared total", "exclusive total", "slowdown"});
  const char* names[] = {"flower", "speech-1", "stock-predict"};
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const core::ParaConvResult exclusive =
        core::ParaConv(config).schedule(*apps[i]);
    const core::RunResult& m = shared.apps[i].metrics;
    table.add_row({
        names[i],
        std::to_string(apps[i]->node_count()),
        std::to_string(shared.partitions[i].pe_count),
        std::to_string(m.iteration_time.value),
        std::to_string(m.r_max),
        std::to_string(m.total_time.value),
        std::to_string(exclusive.metrics.total_time.value),
        format_fixed(static_cast<double>(m.total_time.value) /
                         static_cast<double>(
                             exclusive.metrics.total_time.value),
                     2) + "x",
    });
  }
  table.print(std::cout);

  std::cout << "\nPartitions are work-proportional and isolated: each "
               "application keeps its own PEs and cache slice, so tenants "
               "cannot interfere — at the cost of the slowdown shown vs "
               "exclusive use of the whole array.\n";
  return 0;
}
