// Custom application graphs: author a task graph in the plain-text format,
// load it through the serializer, and schedule it — the workflow for users
// bringing their own CNN applications to the library.
#include <iostream>

#include "paraconv.hpp"

namespace {

// A two-branch CNN: stem -> {wide 3x3 branch, cheap 1x1 branch} -> join,
// written exactly as a user would store it on disk.
constexpr const char* kGraphText = R"(paraconv-graph 1
# stem
name custom-two-branch
task stem conv 12 4096
# branch A: heavy 3x3 pipeline
task a_reduce conv 4 1024
task a_conv pool 6
task a_out conv 10 8192
# branch B: cheap pointwise path
task b_conv conv 5 2048
task b_out conv 5 2048
# join
task join other 2
ipr 0 1 8192
ipr 1 2 4096
ipr 2 3 4096
ipr 0 4 8192
ipr 4 5 6144
ipr 3 6 10240
ipr 5 6 6144
)";

}  // namespace

int main() {
  using namespace paraconv;

  const graph::TaskGraph g = graph::read_graph_string(kGraphText);
  std::cout << "Loaded '" << g.name() << "': " << g.node_count()
            << " tasks, " << g.edge_count() << " IPRs, critical path "
            << graph::critical_path_length(g).value << " time units.\n\n";

  pim::PimConfig config = pim::PimConfig::neurocube(16);
  config.pe_count = 4;

  const core::ParaConvResult r =
      core::ParaConv(config, {.iterations = 50}).schedule(g);
  std::cout << report::render_kernel_gantt(g, r.kernel, config.pe_count)
            << "\n";

  const sched::LatencyReport latency = sched::iteration_latency(g, r.kernel);
  std::cout << "throughput: one inference every "
            << r.metrics.iteration_time.value << " time units; latency "
            << latency.iteration_latency.value << " (pipeline depth "
            << latency.windows_spanned << " windows)\n";

  // Round-trip back to text: what you load is what you can save.
  const std::string saved = graph::write_graph_string(g);
  const graph::TaskGraph reloaded = graph::read_graph_string(saved);
  std::cout << "\nround-trip check: " << reloaded.node_count() << " tasks, "
            << reloaded.edge_count() << " IPRs preserved.\n";
  return 0;
}
