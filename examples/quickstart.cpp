// Quickstart: schedule a small CNN task graph on a 4-PE PIM array and
// compare Para-CONV against the SPARTA-style baseline.
//
// The graph reproduces the paper's motivational example (Fig. 2(b) /
// Fig. 3): five tasks T1..T5 where T2 and T3 both feed T4 and T5 through
// intermediate processing results I_{2,4}, I_{2,5}, I_{3,4}, I_{3,5}.
#include <iostream>

#include "paraconv.hpp"



int main() {
  using namespace paraconv;

  const graph::TaskGraph g = graph::motivational_example();
  std::cout << "Graph '" << g.name() << "': " << g.node_count()
            << " convolutions, " << g.edge_count()
            << " intermediate processing results\n\n";

  // Four PEs, each able to hold a single IPR — the Sec. 2.3 configuration.
  pim::PimConfig config;
  config.pe_count = 4;
  config.pe_cache_bytes = 8_KiB;
  config.validate();

  const std::int64_t iterations = 100;

  core::Sparta sparta(config, {iterations});
  const core::SpartaResult base = sparta.schedule(g);

  core::ParaConv para(config, {.iterations = iterations});
  const core::ParaConvResult ours = para.schedule(g);

  TablePrinter table("Scheduler comparison (4 PEs, 100 iterations)");
  table.set_header({"metric", "SPARTA", "Para-CONV"});
  table.add_row({"iteration time",
                 std::to_string(base.metrics.iteration_time.value),
                 std::to_string(ours.metrics.iteration_time.value)});
  table.add_row({"R_max", "0", std::to_string(ours.metrics.r_max)});
  table.add_row({"prologue time", "0",
                 std::to_string(ours.metrics.prologue_time.value)});
  table.add_row({"total time",
                 std::to_string(base.metrics.total_time.value),
                 std::to_string(ours.metrics.total_time.value)});
  table.add_row({"IPRs in cache", std::to_string(base.metrics.cached_iprs),
                 std::to_string(ours.metrics.cached_iprs)});
  table.add_row({"PE utilization",
                 format_fixed(base.metrics.pe_utilization, 2),
                 format_fixed(ours.metrics.pe_utilization, 2)});
  table.print(std::cout);

  std::cout << "\nSpeedup: " << format_fixed(
                   core::speedup(base.metrics, ours.metrics), 2)
            << "x  (execution-time reduction "
            << format_fixed(
                   core::time_reduction_percent(base.metrics, ours.metrics), 1)
            << "%)\n\n";

  // Show the steady-state kernel placement.
  std::cout << "Para-CONV kernel (period " << ours.kernel.period.value
            << " time units):\n";
  for (const graph::NodeId v : g.nodes()) {
    const sched::TaskPlacement& p = ours.kernel.placement[v.value];
    std::cout << "  " << g.task(v).name << ": PE" << p.pe << " @"
              << p.start.value << "  r=" << ours.kernel.retiming[v.value]
              << "\n";
  }

  // Pipeline ramp-up through the prologue (Fig. 3(b)).
  std::cout << "\nPrologue ramp-up:\n";
  for (const sched::WindowProfile& w :
       sched::prologue_profile(g, ours.kernel, config.pe_count)) {
    std::cout << "  window " << w.window << ": " << w.active_tasks
              << " tasks, utilization " << format_fixed(w.utilization, 2)
              << "\n";
  }

  // Replay on the machine model as a dynamic cross-check.
  pim::Machine machine(config);
  const pim::MachineStats stats = machine.run(g, ours.kernel, {.iterations = 50});
  std::cout << "\nMachine replay (50 iterations): makespan "
            << stats.makespan.value << ", cache hits " << stats.cache_hits
            << ", eDRAM accesses " << stats.edram_accesses << ", energy "
            << format_fixed(stats.energy.total().value / 1e6, 2) << " uJ\n";
  return 0;
}
