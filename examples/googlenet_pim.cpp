// GoogLeNet on PIM: build the full GoogLeNet-v1 layer DAG, lower it to a
// task graph with channel-group partitioning (the paper's real-life CNN
// source [16]), and schedule it with Para-CONV on the Neurocube-style array.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  const cnn::Network net = cnn::make_googlenet();
  std::cout << "GoogLeNet v1: " << net.layer_count() << " layers, "
            << net.total_weights() << " weights, " << net.total_macs()
            << " MACs per image\n";

  cnn::LoweringOptions lowering;
  lowering.channel_groups = 4;
  const graph::TaskGraph g = cnn::lower_to_task_graph(net, lowering);
  const graph::DegreeStats deg = graph::degree_stats(g);
  std::cout << "Lowered task graph: " << g.node_count() << " tasks, "
            << g.edge_count() << " IPRs, total work "
            << g.total_work().value << " time units, avg degree "
            << format_fixed(deg.avg_degree, 1) << ", IPR volume "
            << format_bytes(g.total_ipr_bytes()) << "\n\n";

  TablePrinter table("GoogLeNet on 16/32/64 PEs (100 iterations)");
  table.set_header({"PEs", "SPARTA total", "Para-CONV total", "speedup",
                    "R_max", "kernel p", "cached IPRs", "off-chip/iter"});
  for (const int pe : {16, 32, 64}) {
    const pim::PimConfig config = pim::PimConfig::neurocube(pe);
    const core::SpartaResult base =
        core::Sparta(config, {100}).schedule(g);
    const core::ParaConvResult ours =
        core::ParaConv(config, {.iterations = 100}).schedule(g);
    table.add_row({
        std::to_string(pe),
        std::to_string(base.metrics.total_time.value),
        std::to_string(ours.metrics.total_time.value),
        format_fixed(core::speedup(base.metrics, ours.metrics), 2) + "x",
        std::to_string(ours.metrics.r_max),
        std::to_string(ours.metrics.iteration_time.value),
        std::to_string(ours.metrics.cached_iprs),
        format_bytes(ours.metrics.offchip_bytes_per_iteration),
    });
  }
  table.print(std::cout);

  // Census of the six Fig.-4 cases over GoogLeNet's IPRs at 32 PEs.
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const core::ParaConvResult result =
      core::ParaConv(config, {.iterations = 100}).schedule(g);
  std::size_t census[6] = {};
  for (const retiming::EdgeDelta& d : result.deltas) {
    ++census[static_cast<int>(retiming::classify(d)) - 1];
  }
  std::cout << "\nFig.-4 case census at 32 PEs:\n";
  for (int c = 0; c < 6; ++c) {
    std::cout << "  case " << (c + 1) << ": " << census[c] << " IPRs\n";
  }
  return 0;
}
