// Paper walkthrough: reproduces the paper's exposition step by step on its
// own motivational example — Sec. 2.3's configuration, Theorem 3.1's bound,
// Fig. 4's six cases, the Sec. 3.3 dynamic program, and the resulting
// prologue + kernel. Run it to see every concept with concrete numbers.
#include <iostream>

#include "paraconv.hpp"

int main() {
  using namespace paraconv;

  std::cout << "==== 1. The application (Fig. 2(b)) ====\n";
  const graph::TaskGraph g = graph::motivational_example(2_KiB);
  std::cout << g.node_count() << " convolutions, " << g.edge_count()
            << " intermediate processing results (IPRs); critical path "
            << graph::critical_path_length(g).value << " time units.\n\n";

  std::cout << "==== 2. The architecture (Sec. 2.3) ====\n";
  pim::PimConfig config;
  config.pe_count = 4;
  config.pe_cache_bytes = 2_KiB;  // each PE cache holds exactly one IPR
  config.validate();
  std::cout << config.pe_count << " PEs, " << format_bytes(config.pe_cache_bytes)
            << " cache each (one IPR), eDRAM "
            << config.cache_bytes_per_unit / config.edram_bytes_per_unit
            << "x slower per byte.\n\n";

  std::cout << "==== 3. The compacted objective schedule (Fig. 3(b)) ====\n";
  const sched::Packing packing = sched::pack_topological(g, config.pe_count);
  std::cout << "All five tasks packed into p = " << packing.period.value
            << " time units (resource bound "
            << sched::period_lower_bound(g, config.pe_count).value
            << ") — legal only because retiming will move producers into "
               "earlier iterations.\n\n";

  std::cout << "==== 4. Theorem 3.1 and the six cases (Fig. 4) ====\n";
  const auto deltas = retiming::compute_edge_deltas(
      g, packing.placement, packing.period, config);
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const retiming::EdgeDelta& d = deltas[e.value];
    std::cout << "  I(" << g.task(ipr.src).name << "->"
              << g.task(ipr.dst).name << "): delta(cache)=" << d.cache
              << " delta(eDRAM)=" << d.edram << "  -> "
              << retiming::to_string(retiming::classify(d))
              << (retiming::allocation_sensitive(d)
                      ? "  [competes for cache]"
                      : "  [eDRAM, free]")
              << "\n";
  }
  std::cout << "Every delta lies in {0,1,2}: Theorem 3.1's bound.\n\n";

  std::cout << "==== 5. The dynamic program (Sec. 3.3) ====\n";
  const auto items = alloc::build_items(g, packing.placement, deltas);
  const auto allocation = alloc::knapsack_allocate(
      g, items, alloc::KnapsackOptions{config.total_cache_bytes(), 64});
  std::cout << items.size() << " sensitive IPRs compete for "
            << format_bytes(config.total_cache_bytes())
            << " of array cache; the DP caches " << allocation.cached_count
            << " of them for a total profit (sum of dR) of "
            << allocation.total_profit << ".\n\n";

  std::cout << "==== 6. Retiming and the prologue (Sec. 3.2) ====\n";
  const core::ParaConvResult r = core::ParaConv(config).schedule(g);
  for (const graph::NodeId v : g.nodes()) {
    std::cout << "  r(" << g.task(v).name
              << ") = " << r.kernel.retiming[v.value] << "\n";
  }
  std::cout << "R_max = " << r.metrics.r_max << ", prologue = R_max x p = "
            << r.metrics.prologue_time.value << " time units.\n\n"
            << report::render_expanded_gantt(g, r.kernel, config.pe_count,
                                             r.metrics.r_max + 2)
            << "\n";

  std::cout << "==== 7. The result (Table 1's story) ====\n";
  const core::SpartaResult base = core::Sparta(config, {100}).schedule(g);
  std::cout << "Baseline pays " << base.metrics.iteration_time.value
            << " time units per iteration; Para-CONV completes one every "
            << r.kernel.period.value << " after the prologue: "
            << format_fixed(core::speedup(base.metrics, r.metrics), 2)
            << "x higher throughput over 100 iterations.\n";
  return 0;
}
