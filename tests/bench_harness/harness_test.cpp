// The harness, measured: the warmup/repetition protocol, the counter
// collection, the JSON emission and the schema validator that CI's
// bench-smoke job runs against freshly emitted files.
#include "bench_harness/harness.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench_harness/suites.hpp"
#include "common/check.hpp"
#include "obs/obs.hpp"

namespace paraconv::bench_harness {
namespace {

TEST(WallStatsTest, NearestRankPercentiles) {
  const WallStats stats = wall_stats({50, 10, 40, 20, 30});
  EXPECT_DOUBLE_EQ(stats.median_ns, 30.0);
  EXPECT_DOUBLE_EQ(stats.p10_ns, 10.0);
  EXPECT_DOUBLE_EQ(stats.p90_ns, 50.0);
  EXPECT_DOUBLE_EQ(stats.min_ns, 10.0);
  EXPECT_DOUBLE_EQ(stats.max_ns, 50.0);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 30.0);
}

TEST(WallStatsTest, EmptySampleIsAContractViolation) {
  EXPECT_THROW(wall_stats({}), ContractViolation);
}

TEST(RunCaseTest, RunsWarmupPlusRepetitionsPlusOneInstrumented) {
  int calls = 0;
  const BenchOptions options{.warmup = 3, .repetitions = 5};
  const CaseResult result =
      run_case("counting", [&calls] { ++calls; }, options);
  // 3 warmup + 5 timed + 1 instrumented.
  EXPECT_EQ(calls, 9);
  EXPECT_EQ(result.samples_ns.size(), 5u);
  EXPECT_EQ(result.name, "counting");
}

TEST(RunCaseTest, CollectsCountersAndSpansFromInstrumentedRepetition) {
  const CaseResult result = run_case(
      "instrumented",
      [] {
        obs::count("bench.test.widgets", 3);
        const obs::ScopedSpan span("bench.test.stage");
      },
      BenchOptions{.warmup = 0, .repetitions = 2});
  ASSERT_EQ(result.counters.count("bench.test.widgets"), 1u);
  EXPECT_EQ(result.counters.at("bench.test.widgets"), 3);
  ASSERT_EQ(result.counters.count("span.bench.test.stage"), 1u);
  EXPECT_EQ(result.counters.at("span.bench.test.stage"), 1);
}

TEST(RunCaseTest, TimedRepetitionsRunWithoutARegistry) {
  // Counters must come from the one instrumented repetition only — the
  // timed loop must see the null sink even when the caller (e.g. the CLI's
  // --trace flag) has a registry installed.
  obs::Registry outer;
  const obs::ScopedRegistry scoped(&outer);
  const CaseResult result = run_case(
      "isolation", [] { obs::count("bench.test.isolated"); },
      BenchOptions{.warmup = 1, .repetitions = 4});
  EXPECT_EQ(result.counters.at("bench.test.isolated"), 1);
  // warmup + timed repetitions DID count into the outer registry (they run
  // under whatever is installed); only the instrumented rep is redirected.
  const auto outer_counters = outer.counters();
  ASSERT_EQ(outer_counters.count("bench.test.isolated"), 1u);
  EXPECT_EQ(outer_counters.at("bench.test.isolated"), 5);
}

TEST(RunCaseTest, RejectsBadOptions) {
  EXPECT_THROW(run_case("x", [] {}, BenchOptions{.warmup = -1}),
               ContractViolation);
  EXPECT_THROW(
      run_case("x", [] {}, BenchOptions{.warmup = 0, .repetitions = 0}),
      ContractViolation);
  EXPECT_THROW(run_case("", [] {}, BenchOptions{}), ContractViolation);
}

SuiteResult tiny_suite() {
  SuiteResult result;
  result.suite = "unit";
  result.options = BenchOptions{.warmup = 0, .repetitions = 2};
  result.cases.push_back(run_case(
      "noop", [] { obs::count("bench.test.unit"); }, result.options));
  return result;
}

TEST(SuiteJsonTest, EmittedJsonValidates) {
  const std::string text = suite_to_json(tiny_suite()).dump(/*pretty=*/true);
  std::string error;
  EXPECT_TRUE(validate_bench_json(text, &error)) << error;
  EXPECT_TRUE(error.empty());
}

TEST(SuiteJsonTest, WriteSuiteJsonCreatesTheFile) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "paraconv_bench_harness_test";
  std::filesystem::remove_all(dir);
  const std::string path = write_suite_json(tiny_suite(), dir.string());
  EXPECT_EQ(path, (dir / "BENCH_unit.json").string());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  EXPECT_TRUE(validate_bench_json(buffer.str(), &error)) << error;
}

TEST(ValidateTest, RejectsMalformedAndOffSchemaDocuments) {
  std::string error;
  EXPECT_FALSE(validate_bench_json("", &error));
  EXPECT_FALSE(validate_bench_json("{", &error));
  EXPECT_FALSE(validate_bench_json("[]", &error));
  EXPECT_FALSE(validate_bench_json("{\"suite\": \"x\"}", &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;

  // Wrong schema version.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema_version": 99, "suite": "x", "warmup": 0,
          "repetitions": 1, "cases": [{}]})",
      &error));
  EXPECT_NE(error.find("schema_version"), std::string::npos) << error;

  // Sample count disagrees with the declared repetitions.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema_version": 1, "suite": "x", "warmup": 0, "repetitions": 2,
          "cases": [{"name": "a", "samples_ns": [1],
                     "wall_ns": {"median": 1, "p10": 1, "p90": 1,
                                 "min": 1, "max": 1, "mean": 1},
                     "counters": {}}]})",
      &error));
  EXPECT_NE(error.find("samples"), std::string::npos) << error;

  // Duplicate case names would make diffs ambiguous.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema_version": 1, "suite": "x", "warmup": 0, "repetitions": 1,
          "cases": [
            {"name": "a", "samples_ns": [1],
             "wall_ns": {"median": 1, "p10": 1, "p90": 1,
                         "min": 1, "max": 1, "mean": 1}, "counters": {}},
            {"name": "a", "samples_ns": [2],
             "wall_ns": {"median": 2, "p10": 2, "p90": 2,
                         "min": 2, "max": 2, "mean": 2}, "counters": {}}]})",
      &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ValidateTest, AcceptsAHandWrittenMinimalDocument) {
  std::string error;
  EXPECT_TRUE(validate_bench_json(
      R"({"schema_version": 1, "suite": "x", "warmup": 0, "repetitions": 1,
          "cases": [{"name": "a", "samples_ns": [123],
                     "wall_ns": {"median": 123, "p10": 123, "p90": 123,
                                 "min": 123, "max": 123, "mean": 123},
                     "counters": {"span.pack": 1}}]})",
      &error))
      << error;
}

TEST(SuiteCatalogTest, CatalogNamesAreKnownAndUnknownNamesThrow) {
  EXPECT_FALSE(suite_catalog().empty());
  for (const SuiteSpec& spec : suite_catalog()) {
    EXPECT_TRUE(is_known_suite(spec.name));
  }
  EXPECT_FALSE(is_known_suite("nope"));
  EXPECT_THROW(run_suite("nope", BenchOptions{}), ContractViolation);
}

TEST(SuiteCatalogTest, PipelineSuiteRunsAndReportsPipelineSpans) {
  // One repetition end to end: this is exactly what CI's bench-smoke job
  // exercises, minus the subprocess.
  const SuiteResult result =
      run_suite("pipeline", BenchOptions{.warmup = 0, .repetitions = 1});
  ASSERT_FALSE(result.cases.empty());
  const std::string text = suite_to_json(result).dump(/*pretty=*/true);
  std::string error;
  EXPECT_TRUE(validate_bench_json(text, &error)) << error;
  // Every paraconv case must expose the pipeline's algorithmic counters.
  for (const CaseResult& c : result.cases) {
    if (c.name.rfind("paraconv/", 0) == 0) {
      EXPECT_EQ(c.counters.count("span.pack"), 1u) << c.name;
      EXPECT_EQ(c.counters.count("span.allocate"), 1u) << c.name;
    }
  }
}

}  // namespace
}  // namespace paraconv::bench_harness
