#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dse/sweep.hpp"
#include "report/json_reader.hpp"

namespace paraconv::serve {
namespace {

TEST(ServeProtocolTest, FullScheduleRequestParses) {
  const ParseOutcome outcome = parse_request(
      R"({"id":"r-7","op":"schedule","benchmark":"protein","pes":64,)"
      R"("iterations":250,"allocator":"greedy-density","packer":"lpt",)"
      R"("with_baseline":false,"seed":9})");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.request.id, "r-7");
  EXPECT_EQ(outcome.request.op, "schedule");
  EXPECT_EQ(outcome.request.benchmark, "protein");
  EXPECT_EQ(outcome.request.pes, 64);
  EXPECT_EQ(outcome.request.iterations, 250);
  EXPECT_EQ(outcome.request.allocator, core::AllocatorKind::kGreedyDensity);
  EXPECT_EQ(outcome.request.packer, core::PackerKind::kLpt);
  EXPECT_FALSE(outcome.request.with_baseline);
  EXPECT_EQ(outcome.request.seed, 9u);
}

TEST(ServeProtocolTest, DefaultsMatchTheSweepGrid) {
  const ParseOutcome outcome =
      parse_request(R"({"op":"schedule","benchmark":"cat"})");
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.request.id, "");
  EXPECT_EQ(outcome.request.pes, 32);
  EXPECT_EQ(outcome.request.iterations, 100);
  EXPECT_EQ(outcome.request.allocator, core::AllocatorKind::kKnapsackDp);
  EXPECT_EQ(outcome.request.packer, core::PackerKind::kTopological);
  EXPECT_TRUE(outcome.request.with_baseline);
  EXPECT_EQ(outcome.request.seed, 0u);
}

TEST(ServeProtocolTest, MalformedJsonIsAParseError) {
  for (const char* line : {"", "   ", "not json", "{\"op\":", "[1,2]{}"}) {
    const ParseOutcome outcome = parse_request(line);
    EXPECT_FALSE(outcome.ok) << line;
    EXPECT_EQ(outcome.error_code, kErrorParse) << line;
  }
}

TEST(ServeProtocolTest, StructurallyInvalidRequestsAreBadRequests) {
  const char* lines[] = {
      R"([1,2,3])",                                        // not an object
      R"({"benchmark":"cat"})",                            // missing op
      R"({"op":"schedule"})",                              // missing benchmark
      R"({"op":"bogus"})",                                 // unknown op
      R"({"op":"schedule","benchmark":"cat","zes":1})",    // unknown key
      R"({"op":"schedule","benchmark":"cat","pes":0})",    // out of range
      R"({"op":"schedule","benchmark":"cat","pes":2.5})",  // not integral
      R"({"op":"schedule","benchmark":"cat","iterations":0})",
      R"({"op":"schedule","benchmark":"cat","seed":-1})",
      R"({"op":"schedule","benchmark":"cat","allocator":"magic"})",
      R"({"op":"schedule","benchmark":"cat","packer":"magic"})",
      R"({"op":"schedule","benchmark":"cat","with_baseline":1})",
      R"({"op":7})",
  };
  for (const char* line : lines) {
    const ParseOutcome outcome = parse_request(line);
    EXPECT_FALSE(outcome.ok) << line;
    EXPECT_EQ(outcome.error_code, kErrorBadRequest) << line;
  }
}

// A sweep farm drives daemons as shard workers: requests carry the global
// grid index (seeding) and an "i/N" shard label (attribution).
TEST(ServeProtocolTest, ShardAndCellIndexFieldsParse) {
  const ParseOutcome outcome = parse_request(
      R"({"op":"schedule","benchmark":"cat","cell_index":17,"shard":"1/3"})");
  ASSERT_TRUE(outcome.ok) << outcome.error_message;
  EXPECT_EQ(outcome.request.cell_index, 17u);
  EXPECT_EQ(outcome.request.shard, "1/3");

  // Defaults keep the pre-shard wire behaviour: grid index 0, no label.
  const ParseOutcome bare =
      parse_request(R"({"op":"schedule","benchmark":"cat"})");
  ASSERT_TRUE(bare.ok);
  EXPECT_EQ(bare.request.cell_index, 0u);
  EXPECT_TRUE(bare.request.shard.empty());
}

TEST(ServeProtocolTest, MalformedShardAndCellIndexAreBadRequests) {
  const char* lines[] = {
      R"({"op":"schedule","benchmark":"cat","cell_index":-1})",
      R"({"op":"schedule","benchmark":"cat","cell_index":1.5})",
      R"({"op":"schedule","benchmark":"cat","cell_index":"3"})",
      R"({"op":"schedule","benchmark":"cat","shard":"3/3"})",
      R"({"op":"schedule","benchmark":"cat","shard":"nope"})",
      R"({"op":"schedule","benchmark":"cat","shard":7})",
  };
  for (const char* line : lines) {
    const ParseOutcome outcome = parse_request(line);
    EXPECT_FALSE(outcome.ok) << line;
    EXPECT_EQ(outcome.error_code, kErrorBadRequest) << line;
  }
}

TEST(ServeProtocolTest, ResponsesEchoTheShardLabelOnlyWhenSet) {
  ServeRequest request;
  request.id = "w3";
  request.op = "schedule";
  const dse::MemoCache::Stats memo;
  report::JsonDoc doc;
  std::string error;

  ASSERT_TRUE(report::parse_json(ok_response(request, nullptr, memo, 0.0),
                                 &doc, &error))
      << error;
  EXPECT_EQ(doc.find("shard"), nullptr);

  request.shard = "2/5";
  ASSERT_TRUE(report::parse_json(ok_response(request, nullptr, memo, 0.0),
                                 &doc, &error))
      << error;
  ASSERT_NE(doc.find("shard"), nullptr);
  EXPECT_EQ(doc.find("shard")->text, "2/5");

  ASSERT_TRUE(report::parse_json(
      error_response(request, kErrorQueueFull, "queue is full"), &doc,
      &error))
      << error;
  ASSERT_NE(doc.find("shard"), nullptr);
  EXPECT_EQ(doc.find("shard")->text, "2/5");
}

TEST(ServeProtocolTest, FailedParsesStillEchoIdAndOp) {
  const ParseOutcome outcome =
      parse_request(R"({"id":"req-3","op":"schedule","pes":0,)"
                    R"("benchmark":"cat"})");
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.request.id, "req-3");
  EXPECT_EQ(outcome.request.op, "schedule");
}

TEST(ServeProtocolTest, StatusTokensRoundTripWithCellStatus) {
  for (const dse::CellStatus status :
       {dse::CellStatus::kOk, dse::CellStatus::kError}) {
    const auto parsed = status_from_token(dse::to_string(status));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, status);
  }
  EXPECT_FALSE(status_from_token("").has_value());
  EXPECT_FALSE(status_from_token("OK").has_value());
  EXPECT_FALSE(status_from_token("failed").has_value());
}

TEST(ServeProtocolTest, OkResponseCarriesMemoStatsAndResult) {
  ServeRequest request;
  request.id = "r";
  request.op = "schedule";
  dse::MemoCache::Stats memo;
  memo.hits = 3;
  memo.misses = 1;
  memo.entries = 1;
  memo.spilled = 2;
  memo.loaded = 1;
  report::JsonValue result = report::JsonValue::object();
  result.set("index", 0);

  const std::string line = ok_response(request, &result, memo, 1.5);
  report::JsonDoc doc;
  std::string error;
  ASSERT_TRUE(report::parse_json(line, &doc, &error)) << error;
  EXPECT_EQ(doc.find("id")->text, "r");
  EXPECT_EQ(doc.find("op")->text, "schedule");
  EXPECT_EQ(doc.find("status")->text, dse::to_string(dse::CellStatus::kOk));
  ASSERT_NE(doc.find("result"), nullptr);
  ASSERT_NE(doc.find("memo"), nullptr);
  EXPECT_EQ(doc.find("memo")->find("hits")->number, 3.0);
  EXPECT_EQ(doc.find("memo")->find("loaded")->number, 1.0);
  EXPECT_EQ(doc.find("error_code"), nullptr);

  // stats/shutdown responses omit `result` entirely rather than emitting
  // null, so clients can branch on key presence.
  const std::string bare = ok_response(request, nullptr, memo, 0.0);
  report::JsonDoc bare_doc;
  ASSERT_TRUE(report::parse_json(bare, &bare_doc, &error)) << error;
  EXPECT_EQ(bare_doc.find("result"), nullptr);
}

TEST(ServeProtocolTest, ErrorResponseUsesTheCellErrorSchema) {
  ServeRequest request;
  request.id = "bad";
  request.op = "schedule";
  const std::string line =
      error_response(request, kErrorQueueFull, "queue is full");
  report::JsonDoc doc;
  std::string error;
  ASSERT_TRUE(report::parse_json(line, &doc, &error)) << error;
  EXPECT_EQ(doc.find("status")->text,
            dse::to_string(dse::CellStatus::kError));
  EXPECT_EQ(doc.find("error_code")->text, "queue-full");
  EXPECT_EQ(doc.find("error_message")->text, "queue is full");
  EXPECT_EQ(doc.find("result"), nullptr);
  EXPECT_EQ(doc.find("memo"), nullptr);
}

}  // namespace
}  // namespace paraconv::serve
