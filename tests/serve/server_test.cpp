#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/frontier.hpp"
#include "dse/sweep.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/config.hpp"
#include "serve/loadgen.hpp"

namespace paraconv::serve {
namespace {

constexpr const char* kScheduleCat =
    R"({"op":"schedule","benchmark":"cat","pes":16,"iterations":50})";

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "serve_server_" + name;
}

void wait_for_blocked(const Server& server, std::size_t count) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.blocked() < count) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for " << count << " blocked request(s)";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServeServerTest, ScheduleMatchesTheOneShotSweepByteForByte) {
  // The acceptance bar: a daemon response's `result` is the sweep JSON
  // cell of the equivalent one-cell `paraconv_cli sweep`, byte for byte.
  dse::GridSpec spec;
  spec.cases.push_back(
      {"cat", graph::build_paper_benchmark(graph::paper_benchmark("cat"))});
  spec.configs = {pim::PimConfig::neurocube(16)};
  spec.iterations = 50;
  const dse::SweepResult sweep = dse::run_sweep(spec);
  ASSERT_EQ(sweep.cells.size(), 1u);
  const std::string expected = dse::cell_to_json(sweep.cells[0]).dump();

  Server server({});
  const std::string response = server.submit_line(kScheduleCat).get();
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"result\":" + expected + ",\"memo\""),
            std::string::npos)
      << response;
  EXPECT_EQ(server.stats().ok, 1u);
}

TEST(ServeServerTest, CellIndexSelectsTheGridCellOfASweep) {
  // A farm driving the daemon as a shard worker asks for grid cell 3 of a
  // 4-cell sweep; the response `result` must be that sweep row byte for
  // byte (same per-cell seed, same global index).
  dse::GridSpec spec;
  spec.cases.push_back(
      {"cat", graph::build_paper_benchmark(graph::paper_benchmark("cat"))});
  spec.cases.push_back({"flower", graph::build_paper_benchmark(
                                      graph::paper_benchmark("flower"))});
  spec.configs = {pim::PimConfig::neurocube(16)};
  spec.allocators = {core::AllocatorKind::kKnapsackDp,
                     core::AllocatorKind::kGreedyDeadline};
  spec.iterations = 50;
  dse::SweepOptions options;
  options.seed = 11;
  const dse::SweepResult sweep = dse::run_sweep(spec, options);
  ASSERT_EQ(sweep.cells.size(), 4u);
  const std::string expected = dse::cell_to_json(sweep.cells[3]).dump();

  Server server({});
  const std::string response =
      server
          .submit_line(R"({"op":"schedule","benchmark":"flower","pes":16,)"
                       R"("iterations":50,"allocator":"greedy-deadline",)"
                       R"("seed":11,"cell_index":3,"shard":"1/2"})")
          .get();
  EXPECT_NE(response.find("\"shard\":\"1/2\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"result\":" + expected + ",\"memo\""),
            std::string::npos)
      << response;
}

TEST(ServeServerTest, RepeatedRequestsHitTheWarmCache) {
  Server server({});
  server.submit_line(kScheduleCat).get();
  const dse::MemoCache::Stats cold = server.cache_stats();
  EXPECT_EQ(cold.misses, 1u);
  EXPECT_EQ(cold.hits, 0u);

  server.submit_line(kScheduleCat).get();
  const dse::MemoCache::Stats warm = server.cache_stats();
  EXPECT_EQ(warm.misses, 1u);
  EXPECT_EQ(warm.hits, 1u);
}

TEST(ServeServerTest, UnknownBenchmarkIsATypedExecutionError) {
  Server server({});
  const std::string response =
      server
          .submit_line(R"({"op":"schedule","benchmark":"no-such-graph"})")
          .get();
  EXPECT_NE(response.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(response.find("\"error_code\":\"contract-violation\""),
            std::string::npos)
      << response;
  EXPECT_EQ(server.stats().errors, 1u);
  EXPECT_EQ(server.stats().ok, 0u);
}

TEST(ServeServerTest, FullQueueRejectsInsteadOfBlocking) {
  ServerOptions options;
  options.jobs = 1;
  options.max_queue = 2;
  options.enable_test_ops = true;
  Server server(options);

  // Park the single worker, then fill the queue to its bound.
  std::future<std::string> parked =
      server.submit_line(R"({"op":"block"})");
  wait_for_blocked(server, 1);
  std::vector<std::future<std::string>> admitted;
  for (int i = 0; i < options.max_queue; ++i) {
    admitted.push_back(server.submit_line(kScheduleCat));
  }

  // The next request must resolve immediately with a typed rejection —
  // no worker ever sees it.
  const std::string rejected = server.submit_line(kScheduleCat).get();
  EXPECT_NE(rejected.find("\"error_code\":\"queue-full\""),
            std::string::npos)
      << rejected;
  EXPECT_EQ(server.stats().rejected, 1u);

  server.release_blocked();
  for (std::future<std::string>& f : admitted) {
    EXPECT_NE(f.get().find("\"status\":\"ok\""), std::string::npos);
  }
  parked.get();
}

TEST(ServeServerTest, StaleRequestsAreRejectedAtTheDeadline) {
  ServerOptions options;
  options.jobs = 1;
  options.deadline_ms = 20;
  options.enable_test_ops = true;
  Server server(options);

  std::future<std::string> parked =
      server.submit_line(R"({"op":"block"})");
  wait_for_blocked(server, 1);
  std::future<std::string> stale = server.submit_line(kScheduleCat);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.release_blocked();

  const std::string response = stale.get();
  EXPECT_NE(response.find("\"error_code\":\"deadline-exceeded\""),
            std::string::npos)
      << response;
  EXPECT_EQ(server.stats().rejected, 1u);
  parked.get();
}

TEST(ServeServerTest, CacheSurvivesARestartThroughTheSpillFile) {
  const std::string path = temp_path("restart.memo");
  std::remove(path.c_str());  // a previous run's spill must not warm us
  {
    ServerOptions options;
    options.cache_file = path;
    Server server(options);
    EXPECT_EQ(server.loaded_entries(), 0u);
    server.submit_line(kScheduleCat).get();
    EXPECT_EQ(server.flush_cache(), 1u);
  }
  ServerOptions options;
  options.cache_file = path;
  Server server(options);
  EXPECT_EQ(server.loaded_entries(), 1u);
  server.submit_line(kScheduleCat).get();
  const dse::MemoCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.loaded, 1u);
}

TEST(ServeServerTest, PipeModeAnswersInAdmissionOrderAndStopsOnShutdown) {
  std::istringstream in(
      R"({"id":"r1","op":"schedule","benchmark":"cat","pes":16})"
      "\n\n"  // blank lines are ignored
      R"({"id":"r2","op":"stats"})"
      "\n"
      R"({"id":"r3","op":"not-an-op"})"
      "\n"
      R"({"id":"r4","op":"shutdown"})"
      "\n");
  std::ostringstream out;
  Server server({});
  server.run_pipe(in, out);

  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> responses;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 4u) << out.str();
  EXPECT_NE(responses[0].find("\"id\":\"r1\""), std::string::npos);
  EXPECT_NE(responses[1].find("\"id\":\"r2\""), std::string::npos);
  EXPECT_NE(responses[2].find("\"error_code\":\"bad-request\""),
            std::string::npos);
  EXPECT_NE(responses[3].find("\"id\":\"r4\""), std::string::npos);
}

TEST(ServeServerTest, ConcurrentClientsShareTheWarmCacheCleanly) {
  // Exercised under TSan in CI: many clients, two distinct cells, one
  // shared memo cache.
  ServerOptions options;
  options.jobs = 2;
  Server server(options);

  LoadSpec spec;
  spec.clients = 4;
  spec.requests_per_client = 3;
  spec.request_lines = {
      kScheduleCat,
      R"({"op":"schedule","benchmark":"flower","pes":16,"iterations":50})",
  };
  const LoadReport report = run_load(server, spec);
  EXPECT_EQ(report.ok, 12u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.errored, 0u);
  EXPECT_GE(report.p99_ns, report.p50_ns);

  const dse::MemoCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits + stats.misses, 12u);
  // With two workers, at most two requests can miss concurrently per
  // cell before the first insert wins; everything else is a hit.
  EXPECT_GE(stats.hits, 8u);
}

}  // namespace
}  // namespace paraconv::serve
