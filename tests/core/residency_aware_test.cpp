// Residency-aware allocation extension: shrink the knapsack capacity until
// the steady-state per-PE cache residency fits, eliminating the eviction
// fallbacks the paper's aggregate-capacity model incurs at runtime.
#include <gtest/gtest.h>

#include "alloc/residency.hpp"
#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/machine.hpp"

namespace paraconv::core {
namespace {

class ResidencyAwareTest : public testing::TestWithParam<const char*> {};

TEST_P(ResidencyAwareTest, PeakFitsOrNothingCached) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  ParaConvOptions options;
  options.residency_aware = true;
  const ParaConvResult r = ParaConv(config, options).schedule(g);
  const alloc::ResidencyProfile profile =
      alloc::cache_residency(g, r.kernel, config.pe_count);
  if (r.metrics.cached_iprs > 0) {
    EXPECT_LE(profile.peak, config.pe_cache_bytes);
  }
}

TEST_P(ResidencyAwareTest, MachineReplayHasNoFallbacks) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  ParaConvOptions aware;
  aware.residency_aware = true;
  const ParaConvResult with = ParaConv(config, aware).schedule(g);

  pim::Machine machine(config);
  const pim::MachineStats stats =
      machine.run(g, with.kernel, {.iterations = 8});
  EXPECT_EQ(stats.cache_fallbacks, 0);

  // And never more fallbacks than the plain aggregate-capacity policy.
  const ParaConvResult plain = ParaConv(config, {}).schedule(g);
  pim::Machine machine2(config);
  const pim::MachineStats plain_stats =
      machine2.run(g, plain.kernel, {.iterations = 8});
  EXPECT_LE(stats.cache_fallbacks, plain_stats.cache_fallbacks);
}

TEST_P(ResidencyAwareTest, ThroughputUnchanged) {
  // Residency awareness only changes the allocation; the compacted period
  // is identical and R_max can only grow (fewer cached edges).
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  ParaConvOptions aware;
  aware.residency_aware = true;
  const ParaConvResult with = ParaConv(config, aware).schedule(g);
  const ParaConvResult without = ParaConv(config, {}).schedule(g);
  EXPECT_EQ(with.metrics.iteration_time, without.metrics.iteration_time);
  EXPECT_GE(with.metrics.r_max, without.metrics.r_max);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ResidencyAwareTest,
                         testing::Values("flower", "character-2",
                                         "stock-predict", "shortest-path"),
                         [](const testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace paraconv::core
