// Residency-aware allocation extension: shrink the knapsack capacity until
// the steady-state per-PE cache residency fits, eliminating the eviction
// fallbacks the paper's aggregate-capacity model incurs at runtime.
#include <gtest/gtest.h>

#include "alloc/residency.hpp"
#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/machine.hpp"
#include "retiming/cases.hpp"
#include "retiming/delta.hpp"

namespace paraconv::core {
namespace {

class ResidencyAwareTest : public testing::TestWithParam<const char*> {};

TEST_P(ResidencyAwareTest, PeakFitsOrNothingCached) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  ParaConvOptions options;
  options.residency_aware = true;
  const ParaConvResult r = ParaConv(config, options).schedule(g);
  const alloc::ResidencyProfile profile =
      alloc::cache_residency(g, r.kernel, config.pe_count);
  if (r.metrics.cached_iprs > 0) {
    EXPECT_LE(profile.peak, config.pe_cache_bytes);
  }
}

TEST_P(ResidencyAwareTest, MachineReplayHasNoFallbacks) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  ParaConvOptions aware;
  aware.residency_aware = true;
  const ParaConvResult with = ParaConv(config, aware).schedule(g);

  pim::Machine machine(config);
  const pim::MachineStats stats =
      machine.run(g, with.kernel, {.iterations = 8});
  EXPECT_EQ(stats.cache_fallbacks, 0);

  // And never more fallbacks than the plain aggregate-capacity policy.
  const ParaConvResult plain = ParaConv(config, {}).schedule(g);
  pim::Machine machine2(config);
  const pim::MachineStats plain_stats =
      machine2.run(g, plain.kernel, {.iterations = 8});
  EXPECT_LE(stats.cache_fallbacks, plain_stats.cache_fallbacks);
}

TEST_P(ResidencyAwareTest, ThroughputUnchanged) {
  // Residency awareness only changes the allocation; the compacted period
  // is identical and R_max can only grow (fewer cached edges).
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  ParaConvOptions aware;
  aware.residency_aware = true;
  const ParaConvResult with = ParaConv(config, aware).schedule(g);
  const ParaConvResult without = ParaConv(config, {}).schedule(g);
  EXPECT_EQ(with.metrics.iteration_time, without.metrics.iteration_time);
  EXPECT_GE(with.metrics.r_max, without.metrics.r_max);
}

TEST(ResidencyAwareTest, ExhaustedCapacitySearchWarnsInsteadOfAborting) {
  // One 4 KiB IPR on a 2 KiB-per-PE cache: the per-PE peak can never fit,
  // but the aggregate knapsack capacity (1024 PEs x 2 KiB, shrunk x0.7 per
  // round, still ~7 KiB after 16 rounds) holds the edge when the search
  // exhausts. The schedule stays legal — the machine falls back to eDRAM —
  // so this must surface as a kWarning diagnostic plus a metric, never as
  // an abort. The packing is hand-built (schedule_packed) because the edge
  // only carries caching profit when its endpoints sit on different PEs
  // with a cross-window gap, which no packer would choose for two tasks.
  graph::TaskGraph g{"overcommit"};
  const graph::NodeId a = g.add_task(
      graph::Task{"A", graph::TaskKind::kConvolution, TimeUnits{1}});
  const graph::NodeId b = g.add_task(
      graph::Task{"B", graph::TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, Bytes{4096});

  pim::PimConfig config;
  config.pe_count = 1024;
  config.pe_cache_bytes = Bytes{2048};
  config.validate();

  PackedSchedule packed;
  packed.packing.period = TimeUnits{4};
  packed.packing.placement = {sched::TaskPlacement{0, TimeUnits{0}},
                              sched::TaskPlacement{1, TimeUnits{3}}};
  packed.deltas = retiming::compute_edge_deltas(
      g, packed.packing.placement, packed.packing.period, config);
  ASSERT_GT(retiming::delta_r(packed.deltas[0]), 0);

  ParaConvOptions options;
  options.residency_aware = true;
  options.allocator = AllocatorKind::kGreedyDensity;
  const ParaConvResult r =
      ParaConv(config, options).schedule_packed(g, packed);

  ASSERT_GT(r.metrics.cached_iprs, 0U);
  EXPECT_GT(r.metrics.residency_overcommit_bytes.value, 0);
  bool warned = false;
  for (const sched::Diagnostic& d : r.diagnostics) {
    if (d.code == sched::DiagCode::kResidencyOvercommit) {
      warned = true;
      EXPECT_EQ(d.severity, sched::DiagSeverity::kWarning);
      EXPECT_NE(d.message.find("exceeds"), std::string::npos);
    }
  }
  EXPECT_TRUE(warned);
}

TEST(ResidencyAwareTest, FittingScheduleReportsNoOvercommit) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("flower"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  ParaConvOptions options;
  options.residency_aware = true;
  const ParaConvResult r = ParaConv(config, options).schedule(g);
  if (r.metrics.cached_iprs > 0) {
    EXPECT_EQ(r.metrics.residency_overcommit_bytes.value, 0);
    for (const sched::Diagnostic& d : r.diagnostics) {
      EXPECT_NE(d.code, sched::DiagCode::kResidencyOvercommit);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ResidencyAwareTest,
                         testing::Values("flower", "character-2",
                                         "stock-predict", "shortest-path"),
                         [](const testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace paraconv::core
