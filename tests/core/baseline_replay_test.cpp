// The baseline's schedule, viewed as a degenerate kernel, must replay on
// the machine model exactly like Para-CONV's — enabling apples-to-apples
// movement/energy comparison.
#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/machine.hpp"
#include "sched/validator.hpp"

namespace paraconv::core {
namespace {

class BaselineReplayTest : public testing::TestWithParam<const char*> {};

TEST_P(BaselineReplayTest, KernelViewValidatesAndReplaysCleanly) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const SpartaResult base = Sparta(config).schedule(g);
  const sched::KernelSchedule kernel = to_kernel_schedule(g, base);

  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, kernel, config,
                                              config.total_cache_bytes()));

  pim::Machine machine(config);
  const pim::MachineStats stats =
      machine.run(g, kernel, {.iterations = 4, .strict = true});
  EXPECT_EQ(stats.readiness_violations, 0);
  EXPECT_EQ(stats.tasks_executed, 4 * static_cast<std::int64_t>(g.node_count()));
}

TEST_P(BaselineReplayTest, ParaConvMovesNoMoreOffChipBytes) {
  // Both schedulers handle the same IPR volume per iteration; Para-CONV's
  // optimal allocation keeps at least as much of it on-chip.
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark(GetParam()));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  const SpartaResult base = Sparta(config).schedule(g);
  const ParaConvResult ours = ParaConv(config).schedule(g);

  pim::Machine m1(config);
  const auto base_stats =
      m1.run(g, to_kernel_schedule(g, base), {.iterations = 6});
  pim::Machine m2(config);
  const auto ours_stats = m2.run(g, ours.kernel, {.iterations = 6});

  // Same work executed.
  EXPECT_EQ(base_stats.tasks_executed, ours_stats.tasks_executed);
  // Energy comparison is now meaningful on identical iteration counts.
  EXPECT_GT(base_stats.energy.total().value, 0.0);
  EXPECT_GT(ours_stats.energy.total().value, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, BaselineReplayTest,
                         testing::Values("cat", "flower", "character-2",
                                         "stock-predict"),
                         [](const testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(BaselineReplayTest, MismatchedResultRejected) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  SpartaResult broken;
  EXPECT_THROW(to_kernel_schedule(g, broken), ContractViolation);
}

}  // namespace
}  // namespace paraconv::core
