#include "core/para_conv.hpp"

#include <gtest/gtest.h>

#include "graph/paper_benchmarks.hpp"
#include "retiming/retiming.hpp"
#include "sched/validator.hpp"

namespace paraconv::core {
namespace {

struct GridCase {
  const char* benchmark;
  int pe_count;
};

class ParaConvGridTest : public testing::TestWithParam<GridCase> {};

TEST_P(ParaConvGridTest, EmitsValidatedSchedule) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);
  const ParaConvResult r = ParaConv(config).schedule(g);

  const auto issues = sched::validate_kernel_schedule(
      g, r.kernel, config, config.total_cache_bytes());
  EXPECT_TRUE(issues.empty()) << issues.front();
}

TEST_P(ParaConvGridTest, MetricsAreInternallyConsistent) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);
  ParaConvOptions options;
  options.iterations = 50;
  const ParaConvResult r = ParaConv(config, options).schedule(g);
  const RunResult& m = r.metrics;

  EXPECT_EQ(m.scheduler, "Para-CONV");
  EXPECT_EQ(m.r_max, r.kernel.r_max());
  EXPECT_EQ(m.prologue_time.value, m.iteration_time.value * m.r_max);
  EXPECT_EQ(m.total_time.value, m.iteration_time.value * (50 + m.r_max));
  EXPECT_EQ(m.cached_iprs, r.kernel.cached_edge_count());
  EXPECT_GT(m.pe_utilization, 0.0);
  EXPECT_LE(m.pe_utilization, 1.0 + 1e-9);

  // Off-chip volume + cached volume covers every IPR byte exactly once.
  EXPECT_EQ(m.offchip_bytes_per_iteration + m.cache_bytes_used,
            g.total_ipr_bytes());
}

TEST_P(ParaConvGridTest, RetimingIsMinimalForChosenDistances) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);
  const ParaConvResult r = ParaConv(config).schedule(g);
  const retiming::Retiming minimal =
      retiming::minimal_retiming(g, r.kernel.distance);
  EXPECT_EQ(minimal.value, r.kernel.retiming);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParaConvGridTest,
    testing::Values(GridCase{"cat", 16}, GridCase{"cat", 64},
                    GridCase{"flower", 32}, GridCase{"character-2", 16},
                    GridCase{"stock-predict", 32},
                    GridCase{"shortest-path", 64}, GridCase{"speech-1", 16},
                    GridCase{"protein", 64}),
    [](const testing::TestParamInfo<GridCase>& param_info) {
      std::string name = std::string(param_info.param.benchmark) + "_" +
                         std::to_string(param_info.param.pe_count);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ParaConvTest, DeterministicAcrossRuns) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("flower"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const ParaConvResult a = ParaConv(config).schedule(g);
  const ParaConvResult b = ParaConv(config).schedule(g);
  EXPECT_EQ(a.kernel.retiming, b.kernel.retiming);
  EXPECT_EQ(a.kernel.distance, b.kernel.distance);
  EXPECT_EQ(a.metrics.total_time, b.metrics.total_time);
}

TEST(ParaConvTest, AllAllocatorsProduceValidSchedules) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("character-1"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  for (const AllocatorKind kind :
       {AllocatorKind::kKnapsackDp, AllocatorKind::kGreedyDensity,
        AllocatorKind::kGreedyDeadline, AllocatorKind::kCriticalPath}) {
    ParaConvOptions options;
    options.allocator = kind;
    const ParaConvResult r = ParaConv(config, options).schedule(g);
    EXPECT_TRUE(sched::is_valid_kernel_schedule(g, r.kernel, config,
                                                config.total_cache_bytes()))
        << to_string(kind);
  }
}

TEST(ParaConvTest, KnapsackProfitAtLeastGreedy) {
  // The DP maximizes total ΔR, so greedy heuristics can never cache a more
  // profitable set. Compare via the summed distance reduction.
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("speech-1"));
  const pim::PimConfig config = pim::PimConfig::neurocube(16);

  const auto total_distance = [&](AllocatorKind kind) {
    ParaConvOptions options;
    options.allocator = kind;
    options.knapsack_quantum_bytes = 64;
    const ParaConvResult r = ParaConv(config, options).schedule(g);
    int sum = 0;
    for (const int d : r.kernel.distance) sum += d;
    return sum;
  };
  EXPECT_LE(total_distance(AllocatorKind::kKnapsackDp),
            total_distance(AllocatorKind::kGreedyDeadline));
  EXPECT_LE(total_distance(AllocatorKind::kKnapsackDp),
            total_distance(AllocatorKind::kGreedyDensity));
}

TEST(ParaConvTest, ZeroCacheForcesEverythingToEdram) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  pim::PimConfig config = pim::PimConfig::neurocube(16);
  config.pe_cache_bytes = Bytes{1};  // nothing fits
  const ParaConvResult r = ParaConv(config).schedule(g);
  EXPECT_EQ(r.metrics.cached_iprs, 0U);
  for (const pim::AllocSite s : r.kernel.allocation) {
    EXPECT_EQ(s, pim::AllocSite::kEdram);
  }
}

TEST(ParaConvTest, LargerCacheNeverIncreasesRmax) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("image-compress"));
  int prev = std::numeric_limits<int>::max();
  for (const std::int64_t kib : {0LL, 4LL, 16LL, 64LL, 256LL}) {
    pim::PimConfig config = pim::PimConfig::neurocube(32);
    config.pe_cache_bytes = Bytes{std::max<std::int64_t>(1, kib * 1024)};
    ParaConvOptions options;
    options.allocator = AllocatorKind::kCriticalPath;
    const ParaConvResult r = ParaConv(config, options).schedule(g);
    EXPECT_LE(r.metrics.r_max, prev) << kib << " KiB";
    prev = r.metrics.r_max;
  }
}

TEST(ParaConvTest, RejectsInvalidOptions) {
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  EXPECT_THROW(ParaConv(config, ParaConvOptions{.iterations = 0}),
               ContractViolation);
  EXPECT_THROW(
      ParaConv(config, ParaConvOptions{.knapsack_quantum_bytes = 0}),
      ContractViolation);
  pim::PimConfig bad = config;
  bad.pe_count = 0;
  EXPECT_THROW(ParaConv{bad}, ContractViolation);
}

TEST(AllocatorKindTest, Names) {
  EXPECT_STREQ(to_string(AllocatorKind::kKnapsackDp), "knapsack-dp");
  EXPECT_STREQ(to_string(AllocatorKind::kGreedyDensity), "greedy-density");
  EXPECT_STREQ(to_string(AllocatorKind::kGreedyDeadline), "greedy-deadline");
  EXPECT_STREQ(to_string(AllocatorKind::kCriticalPath), "critical-path");
}

}  // namespace
}  // namespace paraconv::core
