// Reproduces the paper's motivational example (Sec. 2.3, Figs. 2(b)/3):
// a five-task CNN graph on four PEs whose per-PE cache holds exactly one
// intermediate processing result. Without retiming the iteration pays the
// dependency chain; Para-CONV compacts each iteration and pushes the chain
// into the prologue.
#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "core/sparta.hpp"
#include "sched/prologue.hpp"
#include "sched/validator.hpp"

namespace paraconv::core {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

pim::PimConfig four_pe_config() {
  pim::PimConfig cfg;
  cfg.pe_count = 4;
  cfg.pe_cache_bytes = 8_KiB;  // one IPR per PE cache (Sec. 2.3)
  cfg.validate();
  return cfg;
}

TEST(MotivationalExampleTest, KernelIsCompacted) {
  const graph::TaskGraph g = graph::motivational_example();
  const ParaConvResult r = ParaConv(four_pe_config()).schedule(g);
  // Five unit tasks on four PEs: the compacted iteration takes two time
  // units — the resource bound, not the three-level dependency chain.
  EXPECT_EQ(r.metrics.iteration_time.value, 2);
  EXPECT_TRUE(sched::is_valid_kernel_schedule(
      g, r.kernel, four_pe_config(), four_pe_config().total_cache_bytes()));
}

TEST(MotivationalExampleTest, PrologueWithinTheoremBound) {
  const graph::TaskGraph g = graph::motivational_example();
  const ParaConvResult r = ParaConv(four_pe_config()).schedule(g);
  // Depth-3 graph, per-edge distances at most 2 (Theorem 3.1): R_max <= 4.
  // The paper's schedule uses three prologue iterations.
  EXPECT_GE(r.metrics.r_max, 1);
  EXPECT_LE(r.metrics.r_max, 4);
}

TEST(MotivationalExampleTest, BeatsBaselineThroughput) {
  const graph::TaskGraph g = graph::motivational_example();
  const auto base = Sparta(four_pe_config(), {100}).schedule(g);
  const auto ours =
      ParaConv(four_pe_config(), {.iterations = 100}).schedule(g);
  EXPECT_LT(ours.metrics.total_time, base.metrics.total_time);
  EXPECT_GT(speedup(base.metrics, ours.metrics), 1.5);
}

TEST(MotivationalExampleTest, UtilizationImproves) {
  const graph::TaskGraph g = graph::motivational_example();
  const auto base = Sparta(four_pe_config()).schedule(g);
  const auto ours = ParaConv(four_pe_config()).schedule(g);
  EXPECT_GT(ours.metrics.pe_utilization, base.metrics.pe_utilization);
  EXPECT_NEAR(ours.metrics.pe_utilization, 5.0 / 8.0, 1e-9);
}

TEST(MotivationalExampleTest, PrologueRampsUpLikeFigure3) {
  const graph::TaskGraph g = graph::motivational_example();
  const ParaConvResult r = ParaConv(four_pe_config()).schedule(g);
  const auto profile =
      sched::prologue_profile(g, r.kernel, four_pe_config().pe_count);
  ASSERT_GE(profile.size(), 2U);
  EXPECT_LT(profile.front().active_tasks, profile.back().active_tasks);
  EXPECT_EQ(profile.back().active_tasks, g.node_count());
}

}  // namespace
}  // namespace paraconv::core
