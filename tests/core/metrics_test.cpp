#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace paraconv::core {
namespace {

RunResult with_total(std::int64_t total) {
  RunResult r;
  r.total_time = TimeUnits{total};
  return r;
}

TEST(MetricsTest, RatioMatchesPaperConvention) {
  // cat @ 16 cores in Table 1: 4.0 / 4.7 -> 85.1%.
  EXPECT_NEAR(time_ratio_percent(with_total(470), with_total(400)), 85.106,
              0.001);
}

TEST(MetricsTest, ReductionIsComplementOfRatio) {
  const RunResult base = with_total(1000);
  const RunResult ours = with_total(400);
  EXPECT_DOUBLE_EQ(time_ratio_percent(base, ours), 40.0);
  EXPECT_DOUBLE_EQ(time_reduction_percent(base, ours), 60.0);
}

TEST(MetricsTest, SpeedupIsInverseRatio) {
  EXPECT_DOUBLE_EQ(speedup(with_total(1000), with_total(500)), 2.0);
  EXPECT_DOUBLE_EQ(speedup(with_total(500), with_total(1000)), 0.5);
}

TEST(MetricsTest, EqualTimesMeanNoChange) {
  const RunResult r = with_total(123);
  EXPECT_DOUBLE_EQ(time_ratio_percent(r, r), 100.0);
  EXPECT_DOUBLE_EQ(time_reduction_percent(r, r), 0.0);
  EXPECT_DOUBLE_EQ(speedup(r, r), 1.0);
}

TEST(MetricsTest, ZeroTimesRejected) {
  EXPECT_THROW(time_ratio_percent(with_total(0), with_total(10)),
               ContractViolation);
  EXPECT_THROW(speedup(with_total(10), with_total(0)), ContractViolation);
}

}  // namespace
}  // namespace paraconv::core
