#include "core/sparta.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::core {
namespace {

struct GridCase {
  const char* benchmark;
  int pe_count;
};

class SpartaGridTest : public testing::TestWithParam<GridCase> {};

TEST_P(SpartaGridTest, ScheduleRespectsDependencies) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);
  const SpartaResult r = Sparta(config).schedule(g);

  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const sched::TaskPlacement& prod = r.schedule.placement[ipr.src.value];
    const sched::TaskPlacement& cons = r.schedule.placement[ipr.dst.value];
    const TimeUnits hand_off =
        prod.pe == cons.pe
            ? TimeUnits{0}
            : config.transfer_time(r.allocation[e.value], ipr.size);
    EXPECT_LE(prod.start + g.task(ipr.src).exec_time + hand_off, cons.start);
  }
}

TEST_P(SpartaGridTest, MakespanBoundedBelowByCriticalPathAndWork) {
  const graph::TaskGraph g = graph::build_paper_benchmark(
      graph::paper_benchmark(GetParam().benchmark));
  const pim::PimConfig config = pim::PimConfig::neurocube(GetParam().pe_count);
  const SpartaResult r = Sparta(config).schedule(g);
  EXPECT_GE(r.metrics.iteration_time, graph::critical_path_length(g));
  EXPECT_GE(r.metrics.iteration_time.value,
            ceil_div(g.total_work().value, config.pe_count));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpartaGridTest,
    testing::Values(GridCase{"cat", 16}, GridCase{"flower", 32},
                    GridCase{"string-matching", 16},
                    GridCase{"shortest-path", 64}, GridCase{"protein", 32}),
    [](const testing::TestParamInfo<GridCase>& param_info) {
      std::string name = std::string(param_info.param.benchmark) + "_" +
                         std::to_string(param_info.param.pe_count);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SpartaTest, NoPipelineNoPrologue) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("car"));
  const SpartaResult r =
      Sparta(pim::PimConfig::neurocube(16), {25}).schedule(g);
  EXPECT_EQ(r.metrics.scheduler, "SPARTA");
  EXPECT_EQ(r.metrics.r_max, 0);
  EXPECT_EQ(r.metrics.prologue_time.value, 0);
  EXPECT_EQ(r.metrics.total_time.value, r.metrics.iteration_time.value * 25);
}

TEST(SpartaTest, CacheAllocationRespectsCapacity) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("speech-2"));
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const SpartaResult r = Sparta(config).schedule(g);
  Bytes cached{};
  std::size_t count = 0;
  for (const graph::EdgeId e : g.edges()) {
    if (r.allocation[e.value] == pim::AllocSite::kCache) {
      cached += g.ipr(e).size;
      ++count;
    }
  }
  EXPECT_LE(cached, config.total_cache_bytes());
  EXPECT_EQ(count, r.metrics.cached_iprs);
  EXPECT_EQ(cached, r.metrics.cache_bytes_used);
}

TEST(SpartaTest, MorePesNeverHurtThroughput) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("protein"));
  TimeUnits prev{std::numeric_limits<std::int64_t>::max()};
  for (const int pe : {8, 16, 32, 64}) {
    const SpartaResult r =
        Sparta(pim::PimConfig::neurocube(pe)).schedule(g);
    EXPECT_LE(r.metrics.iteration_time, prev);
    prev = r.metrics.iteration_time;
  }
}

TEST(SpartaTest, RejectsInvalidOptions) {
  EXPECT_THROW(Sparta(pim::PimConfig::neurocube(16), {0}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::core
