#include "core/colocate.hpp"

#include <gtest/gtest.h>

#include "graph/paper_benchmarks.hpp"
#include "sched/validator.hpp"

namespace paraconv::core {
namespace {

graph::TaskGraph bench(const char* name) {
  return graph::build_paper_benchmark(graph::paper_benchmark(name));
}

TEST(ColocateTest, PartitionsAreDisjointAndExhaustive) {
  const graph::TaskGraph a = bench("cat");
  const graph::TaskGraph b = bench("flower");
  const graph::TaskGraph c = bench("character-1");
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  const ColocationResult r = schedule_colocated({&a, &b, &c}, config);
  ASSERT_EQ(r.partitions.size(), 3U);
  ASSERT_EQ(r.apps.size(), 3U);

  int covered = 0;
  int next_expected = 0;
  for (const Partition& p : r.partitions) {
    EXPECT_EQ(p.first_pe, next_expected);
    EXPECT_GE(p.pe_count, 1);
    covered += p.pe_count;
    next_expected += p.pe_count;
  }
  EXPECT_EQ(covered, config.pe_count);
}

TEST(ColocateTest, SharesFollowWork) {
  const graph::TaskGraph small = bench("cat");        // 9 tasks
  const graph::TaskGraph large = bench("protein");    // 546 tasks
  const pim::PimConfig config = pim::PimConfig::neurocube(64);
  const ColocationResult r = schedule_colocated({&small, &large}, config);
  EXPECT_LT(r.partitions[0].pe_count, r.partitions[1].pe_count);
  EXPECT_GE(r.partitions[0].pe_count, 1);
}

TEST(ColocateTest, EqualWorkloadsSplitEvenly) {
  const graph::TaskGraph a = bench("speech-1");
  const graph::TaskGraph b = bench("speech-1");
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const ColocationResult r = schedule_colocated({&a, &b}, config);
  EXPECT_EQ(r.partitions[0].pe_count, 16);
  EXPECT_EQ(r.partitions[1].pe_count, 16);
}

TEST(ColocateTest, EachScheduleValidInItsPartition) {
  const graph::TaskGraph a = bench("car");
  const graph::TaskGraph b = bench("stock-predict");
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const ColocationResult r = schedule_colocated({&a, &b}, config);

  const graph::TaskGraph* graphs[] = {&a, &b};
  for (std::size_t i = 0; i < r.apps.size(); ++i) {
    pim::PimConfig sub = config;
    sub.pe_count = r.partitions[i].pe_count;
    EXPECT_TRUE(sched::is_valid_kernel_schedule(
        *graphs[i], r.apps[i].kernel, sub, sub.total_cache_bytes()))
        << "app " << i;
    // All local PE ids stay inside the partition width.
    for (const sched::TaskPlacement& p : r.apps[i].kernel.placement) {
      EXPECT_GE(p.pe, 0);
      EXPECT_LT(p.pe, r.partitions[i].pe_count);
    }
  }
}

TEST(ColocateTest, SingleAppGetsWholeArray) {
  const graph::TaskGraph a = bench("flower");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  const ColocationResult r = schedule_colocated({&a}, config);
  ASSERT_EQ(r.partitions.size(), 1U);
  EXPECT_EQ(r.partitions[0].pe_count, 16);
  // Identical to scheduling directly.
  const ParaConvResult direct = ParaConv(config).schedule(a);
  EXPECT_EQ(r.apps[0].metrics.total_time, direct.metrics.total_time);
}

TEST(ColocateTest, RejectsInvalidInputs) {
  const graph::TaskGraph a = bench("cat");
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  EXPECT_THROW(schedule_colocated({}, config), ContractViolation);
  EXPECT_THROW(schedule_colocated({&a, nullptr}, config), ContractViolation);

  pim::PimConfig tiny = config;
  tiny.pe_count = 1;
  const graph::TaskGraph b = bench("car");
  EXPECT_THROW(schedule_colocated({&a, &b}, tiny), ContractViolation);
}

TEST(ColocateTest, ColocationCostsThroughputVsExclusive) {
  // Sharing the array is never faster than running alone on all PEs.
  const graph::TaskGraph a = bench("string-matching");
  const graph::TaskGraph b = bench("shortest-path");
  const pim::PimConfig config = pim::PimConfig::neurocube(64);
  const ColocationResult shared = schedule_colocated({&a, &b}, config);
  const ParaConvResult alone_a = ParaConv(config).schedule(a);
  const ParaConvResult alone_b = ParaConv(config).schedule(b);
  EXPECT_GE(shared.apps[0].metrics.total_time, alone_a.metrics.total_time);
  EXPECT_GE(shared.apps[1].metrics.total_time, alone_b.metrics.total_time);
}

}  // namespace
}  // namespace paraconv::core
