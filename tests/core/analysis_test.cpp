#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "graph/paper_benchmarks.hpp"

namespace paraconv::core {
namespace {

TEST(AnalysisTest, BundlesConsistentViews) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("character-1"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);
  const ParaConvResult r = ParaConv(config).schedule(g);
  const ScheduleAnalysis a = analyze(g, config, r);

  // Bounds: the kernel can never beat the resource lower bound.
  EXPECT_LE(a.period_lower_bound, r.kernel.period);
  EXPECT_GT(a.period_optimality, 0.0);
  EXPECT_LE(a.period_optimality, 1.0 + 1e-9);

  // Census covers every edge exactly once.
  std::size_t census_total = 0;
  for (const std::size_t c : a.case_census) census_total += c;
  EXPECT_EQ(census_total, g.edge_count());

  // Sensitive = cases 2 + 3 + 5; the allocation cannot cache more
  // sensitive IPRs than exist (ΔR=0 edges are never cached by the DP).
  EXPECT_EQ(a.sensitive_iprs,
            a.case_census[1] + a.case_census[2] + a.case_census[4]);
  EXPECT_LE(a.cached_iprs, a.sensitive_iprs);

  // Cross-module agreement.
  EXPECT_EQ(a.latency.period, r.kernel.period);
  EXPECT_EQ(a.residency.peak_per_pe.size(),
            static_cast<std::size_t>(config.pe_count));
}

TEST(AnalysisTest, HighPeCountPacksOptimally) {
  // With PEs >= tasks the period equals max exec time: optimality 1.0.
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  const pim::PimConfig config = pim::PimConfig::neurocube(64);
  const ParaConvResult r = ParaConv(config).schedule(g);
  const ScheduleAnalysis a = analyze(g, config, r);
  EXPECT_DOUBLE_EQ(a.period_optimality, 1.0);
  EXPECT_EQ(r.kernel.period, g.max_exec_time());
}

TEST(AnalysisTest, RejectsMismatchedResult) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  const pim::PimConfig config = pim::PimConfig::neurocube(16);
  ParaConvResult empty;
  EXPECT_THROW(analyze(g, config, empty), ContractViolation);
}

}  // namespace
}  // namespace paraconv::core
