// Co-location must propagate the scheduler options into every partition.
#include <gtest/gtest.h>

#include "core/colocate.hpp"

#include "alloc/residency.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::core {
namespace {

TEST(ColocateOptionsTest, AllocatorChoiceReachesEveryPartition) {
  const graph::TaskGraph a =
      graph::build_paper_benchmark(graph::paper_benchmark("flower"));
  const graph::TaskGraph b =
      graph::build_paper_benchmark(graph::paper_benchmark("character-2"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  ColocateOptions constrained_options;
  constrained_options.scheduler.allocator =
      AllocatorKind::kResidencyConstrained;
  const ColocationResult constrained =
      schedule_colocated({&a, &b}, config, constrained_options);

  // Residency-constrained allocations keep every partition's per-PE peak
  // within its cache — checkable per partition because placements are
  // partition-local.
  const graph::TaskGraph* graphs[] = {&a, &b};
  for (std::size_t i = 0; i < 2; ++i) {
    const alloc::ResidencyProfile profile = alloc::cache_residency(
        *graphs[i], constrained.apps[i].kernel,
        constrained.partitions[i].pe_count);
    if (constrained.apps[i].metrics.cached_iprs > 0) {
      EXPECT_LE(profile.peak, config.pe_cache_bytes) << "partition " << i;
    }
  }
}

TEST(ColocateOptionsTest, IterationCountPropagates) {
  const graph::TaskGraph a =
      graph::build_paper_benchmark(graph::paper_benchmark("cat"));
  const pim::PimConfig config = pim::PimConfig::neurocube(16);

  ColocateOptions options;
  options.scheduler.iterations = 10;
  const ColocationResult ten = schedule_colocated({&a}, config, options);
  options.scheduler.iterations = 20;
  const ColocationResult twenty = schedule_colocated({&a}, config, options);

  EXPECT_EQ(twenty.apps[0].metrics.total_time.value -
                ten.apps[0].metrics.total_time.value,
            10 * ten.apps[0].metrics.iteration_time.value);
}

TEST(ColocateOptionsTest, PackerChoicePropagates) {
  const graph::TaskGraph a =
      graph::build_paper_benchmark(graph::paper_benchmark("stock-predict"));
  const pim::PimConfig config = pim::PimConfig::neurocube(32);

  ColocateOptions modulo;
  modulo.scheduler.packer = PackerKind::kModulo;
  const ColocationResult staggered =
      schedule_colocated({&a}, config, modulo);
  const ColocationResult plain = schedule_colocated({&a}, config, {});
  // The modulo packer's hallmark: far less retiming for the same graph.
  EXPECT_LT(staggered.apps[0].metrics.r_max, plain.apps[0].metrics.r_max);
}

}  // namespace
}  // namespace paraconv::core
