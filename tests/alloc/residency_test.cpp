#include "alloc/residency.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/machine.hpp"

namespace paraconv::alloc {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;
using sched::KernelSchedule;
using sched::TaskPlacement;

TEST(ResidencyTest, SingleEdgeSameWindow) {
  TaskGraph g("r1");
  const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 4_KiB);
  KernelSchedule k;
  k.period = TimeUnits{6};
  k.placement = {TaskPlacement{0, TimeUnits{0}}, TaskPlacement{1, TimeUnits{4}}};
  k.retiming = {0, 0};
  k.distance = {0};
  k.allocation = {pim::AllocSite::kCache};

  const ResidencyProfile p = cache_residency(g, k, 2);
  // Resident on PE0 from t=2 to t=4: peak 4 KiB on PE0, 0 on PE1.
  EXPECT_EQ(p.peak_per_pe[0], 4_KiB);
  EXPECT_EQ(p.peak_per_pe[1], Bytes{0});
  EXPECT_EQ(p.peak, 4_KiB);
  EXPECT_EQ(p.peak_total, 4_KiB);
}

TEST(ResidencyTest, CrossWindowEdgeKeepsCopiesInFlight) {
  // Distance 2 with a short window: the IPR lives ~2 full periods, so two
  // copies (consecutive iterations) coexist almost always.
  TaskGraph g("r2");
  const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 2_KiB);
  KernelSchedule k;
  k.period = TimeUnits{2};
  k.placement = {TaskPlacement{0, TimeUnits{0}}, TaskPlacement{1, TimeUnits{1}}};
  k.retiming = {2, 0};
  k.distance = {2};
  k.allocation = {pim::AllocSite::kCache};

  const ResidencyProfile p = cache_residency(g, k, 2);
  // Span = 2*2 + 1 - 1 = 4 = 2 full periods: 2 copies everywhere.
  EXPECT_EQ(p.peak_per_pe[0], 4_KiB);
}

TEST(ResidencyTest, WrappingArcCounted) {
  // Producer finishes late in the window, consumer starts early next
  // window: the residency arc wraps the boundary.
  TaskGraph g("r3");
  const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{4}});
  const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 1_KiB);
  KernelSchedule k;
  k.period = TimeUnits{5};
  k.placement = {TaskPlacement{0, TimeUnits{0}}, TaskPlacement{1, TimeUnits{1}}};
  k.retiming = {1, 0};
  k.distance = {1};
  k.allocation = {pim::AllocSite::kCache};

  const ResidencyProfile p = cache_residency(g, k, 2);
  // Resident from t=4 to t=6 (folded: [4,5) and [0,1)): peak one copy.
  EXPECT_EQ(p.peak_per_pe[0], 1_KiB);
}

TEST(ResidencyTest, EdramEdgesDoNotOccupyCache) {
  TaskGraph g("r4");
  const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  g.add_ipr(a, b, 8_KiB);
  KernelSchedule k;
  k.period = TimeUnits{4};
  k.placement = {TaskPlacement{0, TimeUnits{0}}, TaskPlacement{1, TimeUnits{3}}};
  k.retiming = {0, 0};
  k.distance = {0};
  k.allocation = {pim::AllocSite::kEdram};
  const ResidencyProfile p = cache_residency(g, k, 2);
  EXPECT_EQ(p.peak_total, Bytes{0});
}

TEST(ResidencyTest, PeakWithinCapacityPredictsNoMachineFallbacks) {
  // The analytic residency profile and the machine's LRU caches must agree:
  // when every PE's peak fits its cache, the replay has zero fallbacks.
  for (const char* name : {"cat", "car", "flower", "character-1"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    const pim::PimConfig config = pim::PimConfig::neurocube(32);
    const core::ParaConvResult r = core::ParaConv(config).schedule(g);

    const ResidencyProfile profile =
        cache_residency(g, r.kernel, config.pe_count);
    pim::Machine machine(config);
    const pim::MachineStats stats =
        machine.run(g, r.kernel, {.iterations = 6});
    if (profile.peak <= config.pe_cache_bytes) {
      EXPECT_EQ(stats.cache_fallbacks, 0) << name;
    } else {
      EXPECT_GT(stats.cache_evictions, 0) << name;
    }
  }
}

TEST(ResidencyTest, AnalyticPeaksMatchMachineHighWaterMarks) {
  // With no evictions (residency-aware allocation) and enough iterations to
  // reach full steady state, the machine's per-PE occupancy high-water mark
  // must equal the analytic profile exactly.
  for (const char* name : {"flower", "character-1", "stock-predict"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    const pim::PimConfig config = pim::PimConfig::neurocube(32);
    core::ParaConvOptions options;
    options.residency_aware = true;
    const core::ParaConvResult r =
        core::ParaConv(config, options).schedule(g);

    const ResidencyProfile analytic =
        cache_residency(g, r.kernel, config.pe_count);
    pim::Machine machine(config);
    const pim::MachineStats stats = machine.run(
        g, r.kernel, {.iterations = r.metrics.r_max + 8});
    ASSERT_EQ(stats.cache_evictions, 0) << name;
    ASSERT_EQ(stats.cache_peak_per_pe.size(),
              analytic.peak_per_pe.size());
    for (std::size_t pe = 0; pe < analytic.peak_per_pe.size(); ++pe) {
      EXPECT_EQ(stats.cache_peak_per_pe[pe], analytic.peak_per_pe[pe])
          << name << " PE" << pe;
    }
  }
}

TEST(ResidencyTest, RejectsInvalidArguments) {
  TaskGraph g("r5");
  g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
  KernelSchedule k;
  EXPECT_THROW(cache_residency(g, k, 1), ContractViolation);
}

}  // namespace
}  // namespace paraconv::alloc
