#include "alloc/knapsack.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generator.hpp"

namespace paraconv::alloc {
namespace {

/// Items detached from any real graph: edge ids index a synthetic graph
/// built to match.
struct Instance {
  graph::TaskGraph g{"knapsack"};
  std::vector<AllocationItem> items;

  explicit Instance(const std::vector<std::pair<std::int64_t, int>>&
                        size_profit_pairs) {
    // One hub node pair per item so edge ids are dense.
    const auto hub = g.add_task(
        graph::Task{"hub", graph::TaskKind::kConvolution, TimeUnits{1}});
    for (std::size_t i = 0; i < size_profit_pairs.size(); ++i) {
      const auto n = g.add_task(graph::Task{
          "n" + std::to_string(i), graph::TaskKind::kConvolution,
          TimeUnits{1}});
      const auto e = g.add_ipr(hub, n, Bytes{size_profit_pairs[i].first});
      items.push_back(AllocationItem{e, Bytes{size_profit_pairs[i].first},
                                     size_profit_pairs[i].second,
                                     TimeUnits{static_cast<std::int64_t>(i)}});
    }
  }
};

/// Exhaustive optimum for small instances.
int brute_force(const std::vector<AllocationItem>& items, Bytes capacity) {
  const std::size_t n = items.size();
  int best = 0;
  for (std::uint32_t mask = 0; mask < (1U << n); ++mask) {
    Bytes used{};
    int profit = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1U << i)) {
        used += items[i].size;
        profit += items[i].profit;
      }
    }
    if (used <= capacity) best = std::max(best, profit);
  }
  return best;
}

TEST(KnapsackTest, HandInstance) {
  // Classic: capacity 10, items (size, profit): (5,1) (4,2) (6,2) (3,1).
  const Instance inst({{5, 1}, {4, 2}, {6, 2}, {3, 1}});
  const KnapsackOptions options{Bytes{10}, 1};
  EXPECT_EQ(knapsack_profit(inst.items, options), 4);  // {4,2} + {6,2}
  const AllocationResult r = knapsack_allocate(inst.g, inst.items, options);
  EXPECT_EQ(r.total_profit, 4);
  EXPECT_LE(r.cache_bytes_used, Bytes{10});
  EXPECT_EQ(r.cached_count, 2U);
}

TEST(KnapsackTest, ZeroCapacitySelectsNothing) {
  const Instance inst({{5, 1}, {4, 2}});
  const KnapsackOptions options{Bytes{0}, 1};
  EXPECT_EQ(knapsack_profit(inst.items, options), 0);
  const AllocationResult r = knapsack_allocate(inst.g, inst.items, options);
  EXPECT_EQ(r.cached_count, 0U);
  for (const pim::AllocSite s : r.site) {
    EXPECT_EQ(s, pim::AllocSite::kEdram);
  }
}

TEST(KnapsackTest, EverythingFitsWhenCapacityAmple) {
  const Instance inst({{5, 1}, {4, 2}, {6, 2}});
  const KnapsackOptions options{Bytes{100}, 1};
  const AllocationResult r = knapsack_allocate(inst.g, inst.items, options);
  EXPECT_EQ(r.total_profit, 5);
  EXPECT_EQ(r.cached_count, 3U);
}

TEST(KnapsackTest, EmptyItemListIsFine) {
  const Instance inst({});
  const KnapsackOptions options{Bytes{10}, 1};
  EXPECT_EQ(knapsack_profit(inst.items, options), 0);
  const AllocationResult r = knapsack_allocate(inst.g, inst.items, options);
  EXPECT_EQ(r.cached_count, 0U);
}

class KnapsackRandomTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackRandomTest, MatchesBruteForceAtUnitQuantum) {
  Rng rng(GetParam());
  std::vector<std::pair<std::int64_t, int>> spec;
  const int n = static_cast<int>(rng.uniform_int(1, 14));
  for (int i = 0; i < n; ++i) {
    spec.emplace_back(rng.uniform_int(1, 30),
                      static_cast<int>(rng.uniform_int(1, 2)));
  }
  const Instance inst(spec);
  const Bytes capacity{rng.uniform_int(0, 80)};
  const KnapsackOptions options{capacity, 1};
  EXPECT_EQ(knapsack_profit(inst.items, options),
            brute_force(inst.items, capacity));
  const AllocationResult r = knapsack_allocate(inst.g, inst.items, options);
  EXPECT_EQ(r.total_profit, brute_force(inst.items, capacity));
  EXPECT_LE(r.cache_bytes_used, capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackRandomTest,
                         testing::Range<std::uint64_t>(1, 25));

TEST(KnapsackTest, CoarseQuantumNeverOvercommits) {
  Rng rng(99);
  std::vector<std::pair<std::int64_t, int>> spec;
  for (int i = 0; i < 40; ++i) {
    spec.emplace_back(rng.uniform_int(100, 9000),
                      static_cast<int>(rng.uniform_int(1, 2)));
  }
  const Instance inst(spec);
  for (const std::int64_t quantum : {1LL, 64LL, 256LL, 1024LL}) {
    const KnapsackOptions options{Bytes{32 * 1024}, quantum};
    const AllocationResult r = knapsack_allocate(inst.g, inst.items, options);
    EXPECT_LE(r.cache_bytes_used, options.capacity) << "quantum " << quantum;
  }
}

TEST(KnapsackTest, QuantumBoundarySemantics) {
  // Non-aligned capacity: 300 B at quantum 256 floors to exactly one cell.
  // Weights ceil, so a 257-B item needs two cells and is rejected even
  // though 257 <= 300 in raw bytes, while a 200-B item (one cell) fits.
  const KnapsackOptions options{Bytes{300}, 256};

  const Instance too_big({{257, 5}});
  EXPECT_EQ(knapsack_profit(too_big.items, options), 0);
  EXPECT_EQ(knapsack_allocate(too_big.g, too_big.items, options).cached_count,
            0U);

  const Instance fits({{200, 5}});
  EXPECT_EQ(knapsack_profit(fits.items, options), 5);
  const AllocationResult r = knapsack_allocate(fits.g, fits.items, options);
  EXPECT_EQ(r.cached_count, 1U);
  EXPECT_EQ(r.cache_bytes_used, Bytes{200});

  // An exactly-one-quantum item also fits: ceil(256/256) == floor(300/256).
  const Instance exact({{256, 3}});
  EXPECT_EQ(knapsack_profit(exact.items, options), 3);

  // Two one-cell items need two cells; the floored capacity holds one.
  const Instance pair({{200, 3}, {200, 3}});
  EXPECT_EQ(knapsack_profit(pair.items, options), 3);

  // Sub-quantum capacity floors to zero cells: nothing ever fits.
  const KnapsackOptions tiny{Bytes{255}, 256};
  EXPECT_EQ(knapsack_profit(fits.items, tiny), 0);
}

TEST(KnapsackTest, CoarserQuantumOnlyLosesProfit) {
  Rng rng(7);
  std::vector<std::pair<std::int64_t, int>> spec;
  for (int i = 0; i < 30; ++i) {
    spec.emplace_back(rng.uniform_int(100, 5000),
                      static_cast<int>(rng.uniform_int(1, 2)));
  }
  const Instance inst(spec);
  int prev = std::numeric_limits<int>::max();
  for (const std::int64_t quantum : {1LL, 256LL, 4096LL}) {
    const int profit = knapsack_profit(
        inst.items, KnapsackOptions{Bytes{20 * 1024}, quantum});
    EXPECT_LE(profit, prev);
    prev = profit;
  }
}

TEST(KnapsackTest, ProfitQueryMatchesFullTableAllocation) {
  // knapsack_profit uses a rolling row; knapsack_allocate the full table.
  // They must agree on every instance.
  Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::pair<std::int64_t, int>> spec;
    const int n = static_cast<int>(rng.uniform_int(0, 25));
    for (int i = 0; i < n; ++i) {
      spec.emplace_back(rng.uniform_int(1, 500),
                        static_cast<int>(rng.uniform_int(1, 2)));
    }
    const Instance inst(spec);
    const KnapsackOptions options{Bytes{rng.uniform_int(0, 2000)},
                                  rng.uniform_int(1, 64)};
    EXPECT_EQ(knapsack_profit(inst.items, options),
              knapsack_allocate(inst.g, inst.items, options).total_profit)
        << "trial " << trial;
  }
}

TEST(KnapsackTest, RejectsInvalidOptions) {
  const Instance inst({{5, 1}});
  EXPECT_THROW(knapsack_profit(inst.items, KnapsackOptions{Bytes{10}, 0}),
               ContractViolation);
  EXPECT_THROW(knapsack_profit(inst.items, KnapsackOptions{Bytes{-1}, 1}),
               ContractViolation);
}

TEST(KnapsackTest, RejectsNonPositiveProfitItems) {
  Instance inst({{5, 1}});
  inst.items[0].profit = 0;
  EXPECT_THROW(knapsack_profit(inst.items, KnapsackOptions{Bytes{10}, 1}),
               ContractViolation);
}

}  // namespace
}  // namespace paraconv::alloc
