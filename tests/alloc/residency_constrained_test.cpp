#include "alloc/residency_constrained.hpp"

#include <gtest/gtest.h>

#include "alloc/residency.hpp"
#include "common/check.hpp"
#include "core/para_conv.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/machine.hpp"
#include "sched/packer.hpp"

namespace paraconv::alloc {
namespace {

struct Prepared {
  graph::TaskGraph g;
  pim::PimConfig config;
  sched::Packing packing;
  std::vector<retiming::EdgeDelta> deltas;
  std::vector<AllocationItem> items;

  explicit Prepared(const char* bench, int pes)
      : g(graph::build_paper_benchmark(graph::paper_benchmark(bench))),
        config(pim::PimConfig::neurocube(pes)),
        packing(sched::pack_topological(g, pes)),
        deltas(retiming::compute_edge_deltas(g, packing.placement,
                                             packing.period, config)),
        items(build_items(g, packing.placement, deltas)) {}
};

class ResidencyConstrainedTest : public testing::TestWithParam<const char*> {
};

TEST_P(ResidencyConstrainedTest, EveryPeFitsItsCache) {
  const Prepared p(GetParam(), 32);
  const AllocationResult r = residency_constrained_allocate(
      p.g, p.packing.placement, p.packing.period, p.deltas, p.items,
      p.config.pe_count, p.config.pe_cache_bytes);

  // Rebuild the kernel exactly as the allocator does and verify the
  // resulting per-PE peaks.
  core::ParaConvOptions options;
  options.allocator = core::AllocatorKind::kResidencyConstrained;
  const core::ParaConvResult full =
      core::ParaConv(p.config, options).schedule(p.g);
  const ResidencyProfile profile =
      cache_residency(p.g, full.kernel, p.config.pe_count);
  if (full.metrics.cached_iprs > 0) {
    EXPECT_LE(profile.peak, p.config.pe_cache_bytes);
  }
  EXPECT_EQ(full.metrics.cached_iprs, r.cached_count);
}

TEST_P(ResidencyConstrainedTest, MachineReplayFallbackFree) {
  const Prepared p(GetParam(), 32);
  core::ParaConvOptions options;
  options.allocator = core::AllocatorKind::kResidencyConstrained;
  const core::ParaConvResult r =
      core::ParaConv(p.config, options).schedule(p.g);
  pim::Machine machine(p.config);
  const pim::MachineStats stats =
      machine.run(p.g, r.kernel, {.iterations = r.metrics.r_max + 8});
  EXPECT_EQ(stats.cache_fallbacks, 0);
  EXPECT_EQ(stats.cache_evictions, 0);
}

TEST_P(ResidencyConstrainedTest, CachesAtLeastAsMuchAsShrinkLoop) {
  // The per-PE-aware repair is never cruder than the global capacity
  // shrinking loop: both end fallback-free, but the constrained allocator
  // prunes per offending PE instead of starving every PE at once.
  const Prepared p(GetParam(), 32);

  core::ParaConvOptions constrained;
  constrained.allocator = core::AllocatorKind::kResidencyConstrained;
  const auto direct = core::ParaConv(p.config, constrained).schedule(p.g);

  core::ParaConvOptions shrink;
  shrink.residency_aware = true;
  const auto loop = core::ParaConv(p.config, shrink).schedule(p.g);

  EXPECT_GE(direct.metrics.cached_iprs, loop.metrics.cached_iprs);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ResidencyConstrainedTest,
                         testing::Values("flower", "character-2",
                                         "stock-predict", "shortest-path"),
                         [](const testing::TestParamInfo<const char*>& pi) {
                           std::string name = pi.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(ResidencyConstrainedTest, GenerousCacheKeepsEverything) {
  Prepared p("cat", 16);
  p.config.pe_cache_bytes = 4_MiB;
  const AllocationResult r = residency_constrained_allocate(
      p.g, p.packing.placement, p.packing.period, p.deltas, p.items,
      p.config.pe_count, p.config.pe_cache_bytes);
  EXPECT_EQ(r.cached_count, p.items.size());
}

TEST(ResidencyConstrainedTest, TrailingIdlePesDoNotShrinkTheArray) {
  // Regression: the allocator used to infer the PE count from the highest
  // PE referenced by the placement, so an array whose trailing PEs were
  // idle was modelled as a smaller array. The configured count must win.
  const Prepared p("cat", 4);
  const AllocationResult on_four = residency_constrained_allocate(
      p.g, p.packing.placement, p.packing.period, p.deltas, p.items,
      /*pe_count=*/4, p.config.pe_cache_bytes);
  // Same packing on a 16-PE array: PEs 4..15 are idle and must not change
  // the outcome.
  const AllocationResult on_sixteen = residency_constrained_allocate(
      p.g, p.packing.placement, p.packing.period, p.deltas, p.items,
      /*pe_count=*/16, p.config.pe_cache_bytes);
  EXPECT_EQ(on_four.cached_count, on_sixteen.cached_count);
  EXPECT_EQ(on_four.site, on_sixteen.site);
}

TEST(ResidencyConstrainedTest, PlacementOutsideConfiguredArrayIsRejected) {
  const Prepared p("cat", 4);
  // "cat" packed on 4 PEs references PEs beyond a 2-PE array.
  EXPECT_THROW(residency_constrained_allocate(
                   p.g, p.packing.placement, p.packing.period, p.deltas,
                   p.items, /*pe_count=*/2, p.config.pe_cache_bytes),
               ContractViolation);
  EXPECT_THROW(residency_constrained_allocate(
                   p.g, p.packing.placement, p.packing.period, p.deltas,
                   p.items, /*pe_count=*/0, p.config.pe_cache_bytes),
               ContractViolation);
}

TEST(ResidencyConstrainedTest, ZeroCapacityEvictsEverything) {
  const Prepared p("cat", 16);
  const AllocationResult r = residency_constrained_allocate(
      p.g, p.packing.placement, p.packing.period, p.deltas, p.items,
      p.config.pe_count, Bytes{0});
  EXPECT_EQ(r.cached_count, 0U);
}

}  // namespace
}  // namespace paraconv::alloc
