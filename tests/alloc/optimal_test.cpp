#include "alloc/optimal.hpp"

#include <gtest/gtest.h>

#include "alloc/critical_path.hpp"
#include "alloc/knapsack.hpp"
#include "graph/generator.hpp"
#include "pim/config.hpp"
#include "sched/packer.hpp"

namespace paraconv::alloc {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

/// Instance where the ΔR-sum proxy is misleading: caching two profit-1
/// edges on *different* paths leaves a (1,2) edge on the critical path,
/// while the optimum spends everything on the single critical chain.
struct ProxyGapFixture {
  TaskGraph g{"proxy-gap"};
  std::vector<retiming::EdgeDelta> deltas;
  std::vector<AllocationItem> items;

  ProxyGapFixture() {
    // Chain x -> y -> z (deltas (0,2) each, big sizes) plus a cheap side
    // edge a -> b with (1,2) and tiny size.
    const NodeId x = g.add_task(Task{"x", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId y = g.add_task(Task{"y", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId z = g.add_task(Task{"z", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
    const auto e0 = g.add_ipr(x, y, 6_KiB);
    const auto e1 = g.add_ipr(y, z, 6_KiB);
    const auto e2 = g.add_ipr(a, b, 1_KiB);
    deltas = {{0, 2}, {0, 2}, {1, 2}};
    items = {AllocationItem{e0, 6_KiB, 2, TimeUnits{0}},
             AllocationItem{e1, 6_KiB, 2, TimeUnits{1}},
             AllocationItem{e2, 1_KiB, 1, TimeUnits{2}}};
  }
};

TEST(OptimalTest, FindsTrueMinimumRmax) {
  const ProxyGapFixture f;
  // Capacity fits the whole chain (12 KiB) but then not the side edge.
  const OptimalResult best = optimal_r_max_allocate(
      f.g, f.deltas, f.items, OptimalOptions{.capacity = 12_KiB});
  // Caching the chain: chain R_max = 0, side edge eDRAM = 2 -> R_max 2.
  // Caching chain + side impossible (13 KiB). Any other subset leaves a
  // (0,2) chain edge: R_max >= 2. Optimum is 2.
  EXPECT_EQ(best.r_max, 2);
  EXPECT_LE(best.allocation.cache_bytes_used, 12_KiB);
}

TEST(OptimalTest, NeverWorseThanHeuristics) {
  graph::GeneratorConfig gen;
  gen.vertices = 24;
  gen.edges = 60;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    gen.seed = seed;
    const TaskGraph g = graph::generate_layered_dag(gen);
    const pim::PimConfig cfg = pim::PimConfig::neurocube(8);
    const sched::Packing packing = sched::pack_topological(g, 8);
    const auto deltas = retiming::compute_edge_deltas(
        g, packing.placement, packing.period, cfg);
    const auto items = build_items(g, packing.placement, deltas);
    if (items.size() > 18) continue;  // keep the exhaustive search small

    const Bytes capacity{32 * 1024};
    const OptimalResult best = optimal_r_max_allocate(
        g, deltas, items, OptimalOptions{.capacity = capacity});

    const AllocationResult dp = knapsack_allocate(
        g, items, KnapsackOptions{capacity, 64});
    const AllocationResult cp =
        critical_path_allocate(g, deltas, items, capacity);

    EXPECT_LE(best.r_max, realized_r_max(g, deltas, dp.site)) << seed;
    EXPECT_LE(best.r_max, realized_r_max(g, deltas, cp.site)) << seed;
  }
}

TEST(OptimalTest, ProxyGapExistsOnAdversarialInstance) {
  // Capacity for one chain edge + the side edge: the ΔR-sum optimum may
  // prefer {chain edge (ΔR 2), side (ΔR 1)} = 3, but R_max stays 2 either
  // way; with capacity for only the side edge the proxies diverge.
  const ProxyGapFixture f;
  const Bytes capacity = 7_KiB;  // one chain edge + side edge
  const AllocationResult dp =
      knapsack_allocate(f.g, f.items, KnapsackOptions{capacity, 1});
  const OptimalResult best = optimal_r_max_allocate(
      f.g, f.deltas, f.items, OptimalOptions{.capacity = capacity});
  // The true objective can never be beaten by the proxy solution.
  EXPECT_LE(best.r_max, realized_r_max(f.g, f.deltas, dp.site));
}

TEST(OptimalTest, RejectsOversizedInstances) {
  const ProxyGapFixture f;
  OptimalOptions options;
  options.capacity = 1_KiB;
  options.max_items = 2;
  EXPECT_THROW(optimal_r_max_allocate(f.g, f.deltas, f.items, options),
               ContractViolation);
}

TEST(OptimalTest, EmptyItemsGiveAllEdramRmax) {
  const ProxyGapFixture f;
  const OptimalResult best = optimal_r_max_allocate(
      f.g, f.deltas, {}, OptimalOptions{.capacity = 1_MiB});
  EXPECT_EQ(best.r_max, 4);  // the (0,2)+(0,2) chain in eDRAM
  EXPECT_EQ(best.allocation.cached_count, 0U);
}

}  // namespace
}  // namespace paraconv::alloc
