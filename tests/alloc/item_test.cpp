#include "alloc/item.hpp"

#include <gtest/gtest.h>

namespace paraconv::alloc {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

/// A -> B, A -> C, B -> C with hand-chosen deltas and placements.
struct Fixture {
  TaskGraph g{"items"};
  std::vector<sched::TaskPlacement> placement;
  std::vector<retiming::EdgeDelta> deltas;

  Fixture() {
    const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId c = g.add_task(Task{"C", TaskKind::kConvolution, TimeUnits{1}});
    g.add_ipr(a, b, 2_KiB);  // edge 0: consumer B @5, dR = 1
    g.add_ipr(a, c, 4_KiB);  // edge 1: consumer C @2, dR = 0 (excluded)
    g.add_ipr(b, c, 8_KiB);  // edge 2: consumer C @2, dR = 2
    placement = {{0, TimeUnits{0}}, {1, TimeUnits{5}}, {2, TimeUnits{2}}};
    deltas = {{0, 1}, {1, 1}, {0, 2}};
  }
};

TEST(BuildItemsTest, ExcludesInsensitiveEdgesAndSortsByDeadline) {
  const Fixture f;
  const auto items = build_items(f.g, f.placement, f.deltas);
  ASSERT_EQ(items.size(), 2U);
  // Edge 2's consumer starts at 2 (earlier deadline), edge 0's at 5.
  EXPECT_EQ(items[0].edge.value, 2U);
  EXPECT_EQ(items[0].deadline.value, 2);
  EXPECT_EQ(items[0].profit, 2);
  EXPECT_EQ(items[0].size, 8_KiB);
  EXPECT_EQ(items[1].edge.value, 0U);
  EXPECT_EQ(items[1].deadline.value, 5);
  EXPECT_EQ(items[1].profit, 1);
}

TEST(BuildItemsTest, DeadlineTiesBreakOnEdgeId) {
  Fixture f;
  f.placement[1].start = TimeUnits{2};  // B and C both start at 2
  const auto items = build_items(f.g, f.placement, f.deltas);
  ASSERT_EQ(items.size(), 2U);
  EXPECT_EQ(items[0].edge.value, 0U);
  EXPECT_EQ(items[1].edge.value, 2U);
}

TEST(BuildItemsTest, AllInsensitiveYieldsEmpty) {
  Fixture f;
  f.deltas = {{0, 0}, {1, 1}, {2, 2}};
  EXPECT_TRUE(build_items(f.g, f.placement, f.deltas).empty());
}

TEST(MaterializeTest, ChosenGoCacheRestGoEdram) {
  const Fixture f;
  const auto items = build_items(f.g, f.placement, f.deltas);
  const AllocationResult r = materialize(f.g, items, {true, false});
  ASSERT_EQ(r.site.size(), 3U);
  EXPECT_EQ(r.site[2], pim::AllocSite::kCache);   // chosen item 0 = edge 2
  EXPECT_EQ(r.site[0], pim::AllocSite::kEdram);   // unchosen item
  EXPECT_EQ(r.site[1], pim::AllocSite::kEdram);   // insensitive edge
  EXPECT_EQ(r.total_profit, 2);
  EXPECT_EQ(r.cache_bytes_used, 8_KiB);
  EXPECT_EQ(r.cached_count, 1U);
}

TEST(MaterializeTest, ArityMismatchThrows) {
  const Fixture f;
  const auto items = build_items(f.g, f.placement, f.deltas);
  EXPECT_THROW(materialize(f.g, items, {true}), ContractViolation);
}

TEST(BuildItemsTest, ArityMismatchThrows) {
  const Fixture f;
  EXPECT_THROW(build_items(f.g, {}, f.deltas), ContractViolation);
  EXPECT_THROW(build_items(f.g, f.placement, {}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::alloc
