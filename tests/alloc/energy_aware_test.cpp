#include "alloc/energy_aware.hpp"

#include <gtest/gtest.h>

#include "alloc/critical_path.hpp"
#include "graph/paper_benchmarks.hpp"
#include "pim/config.hpp"
#include "sched/packer.hpp"

namespace paraconv::alloc {
namespace {

struct Prepared {
  graph::TaskGraph g;
  std::vector<retiming::EdgeDelta> deltas;
  std::vector<AllocationItem> items;
  Bytes capacity;

  explicit Prepared(const std::string& bench, int pes)
      : g(graph::build_paper_benchmark(graph::paper_benchmark(bench))) {
    const pim::PimConfig cfg = pim::PimConfig::neurocube(pes);
    const sched::Packing packing = sched::pack_topological(g, pes);
    deltas = retiming::compute_edge_deltas(g, packing.placement,
                                           packing.period, cfg);
    items = build_items(g, packing.placement, deltas);
    capacity = cfg.total_cache_bytes();
  }
};

TEST(EnergyAwareTest, MatchesCriticalPathRmax) {
  for (const char* bench : {"flower", "character-2", "stock-predict"}) {
    const Prepared p(bench, 32);
    const AllocationResult base =
        critical_path_allocate(p.g, p.deltas, p.items, p.capacity);
    const AllocationResult energy =
        energy_aware_allocate(p.g, p.deltas, p.items, p.capacity);
    EXPECT_EQ(realized_r_max(p.g, p.deltas, energy.site),
              realized_r_max(p.g, p.deltas, base.site))
        << bench;
  }
}

TEST(EnergyAwareTest, CachesStrictlyMoreTrafficWhenCapacityRemains) {
  const Prepared p("character-2", 32);
  const AllocationResult base =
      critical_path_allocate(p.g, p.deltas, p.items, p.capacity);
  const AllocationResult energy =
      energy_aware_allocate(p.g, p.deltas, p.items, p.capacity);
  EXPECT_GE(energy.cached_count, base.cached_count);
  EXPECT_GE(energy.cache_bytes_used, base.cache_bytes_used);
  // Capacity large relative to the sensitive set: the energy phase must
  // have used the slack.
  if (base.cache_bytes_used + Bytes{16 * 1024} < p.capacity) {
    EXPECT_GT(energy.cache_bytes_used, base.cache_bytes_used);
  }
}

TEST(EnergyAwareTest, RespectsCapacity) {
  for (const std::int64_t kib : {1LL, 8LL, 64LL, 512LL}) {
    const Prepared p("stock-predict", 16);
    const Bytes capacity{kib * 1024};
    const AllocationResult r =
        energy_aware_allocate(p.g, p.deltas, p.items, capacity);
    EXPECT_LE(r.cache_bytes_used, capacity);
  }
}

TEST(EnergyAwareTest, InsensitiveEdgesParticipate) {
  // With capacity exceeding the total IPR volume, every edge gets cached —
  // including the ΔR = 0 ones the throughput allocators ignore.
  const Prepared p("cat", 16);
  const AllocationResult r =
      energy_aware_allocate(p.g, p.deltas, p.items, Bytes{64 * 1024 * 1024});
  EXPECT_EQ(r.cached_count, p.g.edge_count());
  EXPECT_EQ(r.cache_bytes_used, p.g.total_ipr_bytes());
}

TEST(EnergyAwareTest, ZeroCapacityCachesNothing) {
  const Prepared p("cat", 16);
  const AllocationResult r =
      energy_aware_allocate(p.g, p.deltas, p.items, Bytes{0});
  EXPECT_EQ(r.cached_count, 0U);
}

}  // namespace
}  // namespace paraconv::alloc
