#include "alloc/greedy.hpp"

#include <gtest/gtest.h>

#include "alloc/knapsack.hpp"
#include "common/rng.hpp"

namespace paraconv::alloc {
namespace {

struct Instance {
  graph::TaskGraph g{"greedy"};
  std::vector<AllocationItem> items;

  explicit Instance(
      const std::vector<std::pair<std::int64_t, int>>& size_profit) {
    const auto hub = g.add_task(
        graph::Task{"hub", graph::TaskKind::kConvolution, TimeUnits{1}});
    for (std::size_t i = 0; i < size_profit.size(); ++i) {
      const auto n = g.add_task(graph::Task{
          "n" + std::to_string(i), graph::TaskKind::kConvolution,
          TimeUnits{1}});
      const auto e = g.add_ipr(hub, n, Bytes{size_profit[i].first});
      items.push_back(AllocationItem{e, Bytes{size_profit[i].first},
                                     size_profit[i].second,
                                     TimeUnits{static_cast<std::int64_t>(i)}});
    }
  }
};

TEST(GreedyDensityTest, PrefersProfitPerByte) {
  // (10, 1) density 0.1; (4, 2) density 0.5; (5, 1) density 0.2.
  const Instance inst({{10, 1}, {4, 2}, {5, 1}});
  const AllocationResult r =
      greedy_density_allocate(inst.g, inst.items, Bytes{9});
  // Takes (4,2) then (5,1); (10,1) does not fit.
  EXPECT_EQ(r.total_profit, 3);
  EXPECT_EQ(r.cached_count, 2U);
  EXPECT_EQ(r.site[1], pim::AllocSite::kCache);
  EXPECT_EQ(r.site[2], pim::AllocSite::kCache);
  EXPECT_EQ(r.site[0], pim::AllocSite::kEdram);
}

TEST(GreedyDensityTest, CanBeSuboptimal) {
  // Density greedy grabs the small dense item and blocks the better pair.
  const Instance inst({{6, 3}, {5, 2}, {5, 2}});
  const AllocationResult greedy =
      greedy_density_allocate(inst.g, inst.items, Bytes{10});
  const int optimal = knapsack_profit(inst.items, KnapsackOptions{Bytes{10}, 1});
  EXPECT_EQ(optimal, 4);           // the two (5,2) items
  EXPECT_EQ(greedy.total_profit, 3);  // (6,3) then nothing fits
}

TEST(GreedyDeadlineTest, TakesInGivenOrderWhileFitting) {
  const Instance inst({{4, 1}, {5, 2}, {2, 2}});
  const AllocationResult r =
      greedy_deadline_allocate(inst.g, inst.items, Bytes{7});
  // Deadline order: item0 (4) fits, item1 (5) does not, item2 (2) fits.
  EXPECT_EQ(r.cached_count, 2U);
  EXPECT_EQ(r.total_profit, 3);
  EXPECT_EQ(r.site[0], pim::AllocSite::kCache);
  EXPECT_EQ(r.site[1], pim::AllocSite::kEdram);
  EXPECT_EQ(r.site[2], pim::AllocSite::kCache);
}

class GreedyBoundTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyBoundTest, NeverExceedsOptimumOrCapacity) {
  Rng rng(GetParam());
  std::vector<std::pair<std::int64_t, int>> spec;
  const int n = static_cast<int>(rng.uniform_int(1, 20));
  for (int i = 0; i < n; ++i) {
    spec.emplace_back(rng.uniform_int(1, 40),
                      static_cast<int>(rng.uniform_int(1, 2)));
  }
  const Instance inst(spec);
  const Bytes capacity{rng.uniform_int(0, 120)};
  const int optimal = knapsack_profit(inst.items, KnapsackOptions{capacity, 1});

  using AllocFn = AllocationResult (*)(const graph::TaskGraph&,
                                       const std::vector<AllocationItem>&,
                                       Bytes);
  for (const AllocFn allocate :
       {AllocFn{greedy_density_allocate}, AllocFn{greedy_deadline_allocate}}) {
    const AllocationResult r = allocate(inst.g, inst.items, capacity);
    EXPECT_LE(r.total_profit, optimal);
    EXPECT_LE(r.cache_bytes_used, capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyBoundTest,
                         testing::Range<std::uint64_t>(1, 16));

TEST(GreedyTest, EmptyItems) {
  const Instance inst({});
  EXPECT_EQ(greedy_density_allocate(inst.g, inst.items, Bytes{10}).cached_count,
            0U);
  EXPECT_EQ(
      greedy_deadline_allocate(inst.g, inst.items, Bytes{10}).cached_count,
      0U);
}

}  // namespace
}  // namespace paraconv::alloc
