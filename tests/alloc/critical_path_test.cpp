#include "alloc/critical_path.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "pim/config.hpp"
#include "retiming/delta.hpp"
#include "sched/packer.hpp"

namespace paraconv::alloc {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

/// Chain a -> b -> c where both edges are case 5 (cache 1, eDRAM 2).
struct ChainFixture {
  TaskGraph g{"cp"};
  std::vector<retiming::EdgeDelta> deltas;
  std::vector<AllocationItem> items;

  ChainFixture() {
    const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId c = g.add_task(Task{"c", TaskKind::kConvolution, TimeUnits{1}});
    const auto e0 = g.add_ipr(a, b, 4_KiB);
    const auto e1 = g.add_ipr(b, c, 4_KiB);
    deltas = {{1, 2}, {1, 2}};
    items = {AllocationItem{e0, 4_KiB, 1, TimeUnits{0}},
             AllocationItem{e1, 4_KiB, 1, TimeUnits{1}}};
  }
};

TEST(RealizedRMaxTest, MatchesAllocationSites) {
  const ChainFixture f;
  EXPECT_EQ(realized_r_max(f.g, f.deltas,
                           {pim::AllocSite::kEdram, pim::AllocSite::kEdram}),
            4);
  EXPECT_EQ(realized_r_max(f.g, f.deltas,
                           {pim::AllocSite::kCache, pim::AllocSite::kEdram}),
            3);
  EXPECT_EQ(realized_r_max(f.g, f.deltas,
                           {pim::AllocSite::kCache, pim::AllocSite::kCache}),
            2);
}

TEST(CriticalPathAllocateTest, CachesWholeChainWhenCapacityAllows) {
  const ChainFixture f;
  const AllocationResult r =
      critical_path_allocate(f.g, f.deltas, f.items, 16_KiB);
  EXPECT_EQ(r.cached_count, 2U);
  EXPECT_EQ(realized_r_max(f.g, f.deltas, r.site), 2);
}

TEST(CriticalPathAllocateTest, StopsAtCapacity) {
  const ChainFixture f;
  const AllocationResult r =
      critical_path_allocate(f.g, f.deltas, f.items, 4_KiB);
  EXPECT_EQ(r.cached_count, 1U);
  EXPECT_LE(r.cache_bytes_used, 4_KiB);
  EXPECT_EQ(realized_r_max(f.g, f.deltas, r.site), 3);
}

TEST(CriticalPathAllocateTest, SpendsOnlyWhereItHelps) {
  // Two parallel chains; one is longer (the critical one). With capacity
  // for one item, it must be spent on the long chain.
  TaskGraph g("two-chains");
  const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId c = g.add_task(Task{"c", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId x = g.add_task(Task{"x", TaskKind::kConvolution, TimeUnits{1}});
  const NodeId y = g.add_task(Task{"y", TaskKind::kConvolution, TimeUnits{1}});
  const auto long1 = g.add_ipr(a, b, 4_KiB);
  const auto long2 = g.add_ipr(b, c, 4_KiB);
  const auto shorte = g.add_ipr(x, y, 4_KiB);
  const std::vector<retiming::EdgeDelta> deltas{{0, 2}, {0, 2}, {0, 2}};
  const std::vector<AllocationItem> items{
      AllocationItem{long1, 4_KiB, 2, TimeUnits{0}},
      AllocationItem{long2, 4_KiB, 2, TimeUnits{1}},
      AllocationItem{shorte, 4_KiB, 2, TimeUnits{2}}};

  const AllocationResult r = critical_path_allocate(g, deltas, items, 8_KiB);
  // All-eDRAM: long chain R_max = 4, short chain 2. Caching both long
  // edges drops R_max to 2; the short edge is left in eDRAM.
  EXPECT_EQ(r.site[long1.value], pim::AllocSite::kCache);
  EXPECT_EQ(r.site[long2.value], pim::AllocSite::kCache);
  EXPECT_EQ(r.site[shorte.value], pim::AllocSite::kEdram);
  EXPECT_EQ(realized_r_max(g, deltas, r.site), 2);
}

TEST(CriticalPathAllocateTest, NeverWorseThanAllEdram) {
  graph::GeneratorConfig gen;
  gen.vertices = 60;
  gen.edges = 160;
  gen.seed = 21;
  const graph::TaskGraph g = graph::generate_layered_dag(gen);
  const pim::PimConfig cfg = pim::PimConfig::neurocube(16);
  const sched::Packing packing = sched::pack_topological(g, 16);
  const auto deltas = retiming::compute_edge_deltas(
      g, packing.placement, packing.period, cfg);
  std::vector<AllocationItem> items;
  for (const graph::EdgeId e : g.edges()) {
    const int profit = deltas[e.value].edram - deltas[e.value].cache;
    if (profit > 0) {
      items.push_back(AllocationItem{e, g.ipr(e).size, profit, TimeUnits{0}});
    }
  }
  const std::vector<pim::AllocSite> all_edram(g.edge_count(),
                                              pim::AllocSite::kEdram);
  const AllocationResult r =
      critical_path_allocate(g, deltas, items, cfg.total_cache_bytes());
  EXPECT_LE(realized_r_max(g, deltas, r.site),
            realized_r_max(g, deltas, all_edram));
  EXPECT_LE(r.cache_bytes_used, cfg.total_cache_bytes());
}

TEST(CriticalPathAllocateTest, ZeroCapacityAllocatesNothing) {
  const ChainFixture f;
  const AllocationResult r =
      critical_path_allocate(f.g, f.deltas, f.items, Bytes{0});
  EXPECT_EQ(r.cached_count, 0U);
}

}  // namespace
}  // namespace paraconv::alloc
