// The workload zoo (docs/WORKLOADS.md): catalog stability, byte-identity
// between the embedded zoo text and the `workloads/*.tsv` interchange files,
// parser directive/diagnostic coverage, and the batch-replication semantics
// of lower_workload.
#include "cnn/workload.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "graph/algorithms.hpp"

namespace paraconv::cnn {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Captures the ContractViolation message of `body`, empty when it does
/// not throw — lets each case pin its typed `[workload-*]` diagnostic.
template <typename Fn>
std::string violation_message(Fn&& body) {
  try {
    std::forward<Fn>(body)();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

std::int64_t total_task_weight_bytes(const graph::TaskGraph& g) {
  std::int64_t total = 0;
  for (const graph::NodeId id : g.nodes()) {
    total += g.task(id).weights.value;
  }
  return total;
}

TEST(WorkloadZooTest, CatalogOrderIsStable) {
  const std::vector<std::string> names = zoo_workload_names();
  const std::vector<std::string> expected = {
      "alexnet", "vgg16", "resnet18_basic", "mobilenet_v1", "deepbench_conv"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : names) {
    EXPECT_TRUE(is_zoo_workload(name)) << name;
  }
  EXPECT_FALSE(is_zoo_workload("lenet5"));
  EXPECT_FALSE(is_zoo_workload(""));
}

TEST(WorkloadZooTest, UnknownNameIsTypedDiagnostic) {
  const std::string message =
      violation_message([] { zoo_workload_text("lenet5"); });
  EXPECT_NE(message.find("[workload-unknown]"), std::string::npos) << message;
  EXPECT_NE(message.find("lenet5"), std::string::npos) << message;
}

// The embedded zoo text is the same bytes as the on-disk interchange copy;
// a drift here means workloads/*.tsv and src/cnn/workload.cpp were edited
// independently.
TEST(WorkloadZooTest, EmbeddedTextMatchesWorkloadFiles) {
  for (const std::string& name : zoo_workload_names()) {
    const std::string path =
        std::string(PARACONV_WORKLOADS_DIR) + "/" + name + ".tsv";
    EXPECT_EQ(read_file(path), zoo_workload_text(name)) << name;
  }
}

TEST(WorkloadZooTest, FileLoaderAgreesWithEmbeddedZoo) {
  for (const std::string& name : zoo_workload_names()) {
    const Workload from_file = load_workload_file(
        std::string(PARACONV_WORKLOADS_DIR) + "/" + name + ".tsv");
    const Workload embedded = zoo_workload(name);
    EXPECT_EQ(from_file.net.name(), embedded.net.name());
    EXPECT_EQ(from_file.source, embedded.source);
    EXPECT_EQ(from_file.default_batch, embedded.default_batch);
    EXPECT_EQ(from_file.net.layer_count(), embedded.net.layer_count());
    EXPECT_EQ(from_file.net.total_macs(), embedded.net.total_macs());
    EXPECT_EQ(from_file.net.total_weights(), embedded.net.total_weights());
  }
}

TEST(WorkloadZooTest, EveryEntryHasProvenanceAndWork) {
  for (const std::string& name : zoo_workload_names()) {
    const Workload workload = zoo_workload(name);
    EXPECT_EQ(workload.net.name(), name);
    EXPECT_FALSE(workload.source.empty()) << name;
    EXPECT_GE(workload.default_batch, 1) << name;
    EXPECT_GT(workload.net.total_macs(), 0) << name;
    EXPECT_GT(workload.net.total_weights(), 0) << name;
  }
}

// Acceptance gate of the zoo: every shipped entry lowers into a valid,
// acyclic task graph at batch 1 and batch 4, and batching replicates the
// per-image graph exactly.
TEST(WorkloadZooTest, EveryEntryLowersCleanlyAtBatchOneAndFour) {
  for (const std::string& name : zoo_workload_names()) {
    const Workload workload = zoo_workload(name);
    const graph::TaskGraph b1 = lower_workload(workload, 1);
    const graph::TaskGraph b4 = lower_workload(workload, 4);
    EXPECT_NO_THROW(b1.validate()) << name;
    EXPECT_NO_THROW(b4.validate()) << name;
    EXPECT_TRUE(graph::is_acyclic(b1)) << name;
    EXPECT_TRUE(graph::is_acyclic(b4)) << name;
    EXPECT_EQ(b4.node_count(), 4 * b1.node_count()) << name;
    EXPECT_GE(b4.edge_count(), 4 * b1.edge_count()) << name;
    // Filter weights live on the image-0 replicas only: batching must not
    // multiply the weight footprint.
    EXPECT_EQ(total_task_weight_bytes(b4), total_task_weight_bytes(b1))
        << name;
  }
}

TEST(WorkloadZooTest, ResnetEntryKeepsResidualAdds) {
  const graph::TaskGraph g = lower_workload(zoo_workload("resnet18_basic"), 1);
  bool saw_add = false;
  for (const graph::NodeId id : g.nodes()) {
    if (g.task(id).name == "b1_add") {
      saw_add = true;
      EXPECT_EQ(g.task(id).kind, graph::TaskKind::kOther);
    }
  }
  EXPECT_TRUE(saw_add);
}

constexpr const char* kTinyWorkload =
    "# comment line\n"
    "workload\ttiny\n"
    "source\tsynthetic fixture for workload_test\n"
    "batch\t2\n"
    "input\tdata\t3\t8\t8\n"
    "conv\tc1\tdata\t4\t3\t1\t1\n"
    "pool\tp1\tc1\tmax\t2\t2\t0\n"
    "fc\tout\tp1\t10\n";

TEST(WorkloadParseTest, DirectivesRoundTrip) {
  const Workload workload = parse_workload(kTinyWorkload);
  EXPECT_EQ(workload.net.name(), "tiny");
  EXPECT_EQ(workload.source, "synthetic fixture for workload_test");
  EXPECT_EQ(workload.default_batch, 2);
  EXPECT_EQ(workload.net.layer_count(), 4u);
}

TEST(WorkloadParseTest, GroupsColumnDrivesDepthwiseWeights) {
  const Workload workload = parse_workload(
      "workload\tdw\n"
      "input\tdata\t8\t16\t16\n"
      "conv\tdw1\tdata\t8\t3\t1\t1\t8\n");
  // Depthwise 3x3 over 8 channels: 8 * (8/8) * 9 filter weights.
  EXPECT_EQ(workload.net.weight_count(LayerId{1}), 8 * 9);
}

TEST(WorkloadLoweringTest, BatchReplicatesWithSharedWeightEdges) {
  const Workload workload = parse_workload(kTinyWorkload);
  const graph::TaskGraph b1 = lower_workload(workload, 1);
  // Input layers are elided: c1, p1, out.
  ASSERT_EQ(b1.node_count(), 3u);
  ASSERT_EQ(b1.edge_count(), 2u);

  // lower_workload honors its explicit batch, not the file directive...
  const graph::TaskGraph b2 = lower_workload(workload, 2);
  EXPECT_EQ(b2.node_count(), 6u);
  // ...replicating every edge per image plus one shared-weight edge per
  // weight-carrying task (c1 and out; the pool is weightless).
  EXPECT_EQ(b2.edge_count(), 2u * 2u + 2u);

  std::int64_t replica_weight_bytes = 0;
  bool saw_replica = false;
  for (const graph::NodeId id : b2.nodes()) {
    if (b2.task(id).name.find("@b") != std::string::npos) {
      saw_replica = true;
      replica_weight_bytes += b2.task(id).weights.value;
    }
  }
  EXPECT_TRUE(saw_replica);
  EXPECT_EQ(replica_weight_bytes, 0);
  EXPECT_EQ(total_task_weight_bytes(b2), total_task_weight_bytes(b1));
}

TEST(WorkloadLoweringTest, DefaultBatchComesFromDirective) {
  const Workload workload = parse_workload(kTinyWorkload);
  const graph::TaskGraph g = lower_workload(workload, workload.default_batch);
  EXPECT_EQ(g.node_count(), 6u);
}

TEST(WorkloadLoweringTest, RejectsNonPositiveBatch) {
  const Workload workload = parse_workload(kTinyWorkload);
  EXPECT_THROW(lower_workload(workload, 0), ContractViolation);
  EXPECT_THROW(lower_workload(workload, -3), ContractViolation);
}

struct DiagnosticCase {
  const char* label;
  const char* text;
  const char* expected;
};

class WorkloadDiagnosticTest : public testing::TestWithParam<DiagnosticCase> {
};

TEST_P(WorkloadDiagnosticTest, MalformedInputIsTypedAndLineNumbered) {
  const std::string message =
      violation_message([&] { parse_workload(GetParam().text); });
  EXPECT_NE(message.find(GetParam().expected), std::string::npos)
      << "expected " << GetParam().expected << " in: " << message;
  EXPECT_NE(message.find("(line "), std::string::npos) << message;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, WorkloadDiagnosticTest,
    testing::Values(
        DiagnosticCase{"layer_before_directive",
                       "input\tdata\t3\t8\t8\n",
                       "[workload-missing-name]"},
        DiagnosticCase{"bad_batch",
                       "workload\tt\nbatch\t0\n",
                       "[workload-bad-batch]"},
        DiagnosticCase{"unknown_op",
                       "workload\tt\nrelu\tr\tdata\n",
                       "[workload-unknown-op]"},
        DiagnosticCase{"duplicate_layer",
                       "workload\tt\ninput\ta\t1\t4\t4\ninput\ta\t1\t4\t4\n",
                       "[workload-duplicate-layer]"},
        DiagnosticCase{"unknown_input",
                       "workload\tt\nconv\tc\tmissing\t4\t3\t1\t1\n",
                       "[workload-unknown-input]"},
        DiagnosticCase{"conv_arity",
                       "workload\tt\ninput\td\t1\t4\t4\nconv\tc\td\t4\t3\n",
                       "[workload-parse]"},
        DiagnosticCase{"bad_pool_mode",
                       "workload\tt\ninput\td\t1\t8\t8\n"
                       "pool\tp\td\tmedian\t2\t2\t0\n",
                       "[workload-parse]"},
        DiagnosticCase{"non_integer_field",
                       "workload\tt\ninput\td\t1\t4x\t4\n",
                       "[workload-parse]"}),
    [](const testing::TestParamInfo<DiagnosticCase>& param_info) {
      return param_info.param.label;
    });

TEST(WorkloadParseTest, EmptyTextIsMissingName) {
  const std::string message =
      violation_message([] { parse_workload("# only comments\n\n"); });
  EXPECT_NE(message.find("[workload-missing-name]"), std::string::npos)
      << message;
}

TEST(WorkloadParseTest, InvalidLayerGeometryCarriesCnnDiagnostic) {
  // Geometry errors surface the cnn/layer typed diagnostic, so the fix
  // points at the layer line, not the parser.
  const std::string message = violation_message([] {
    parse_workload(
        "workload\tt\ninput\td\t1\t8\t8\nconv\tc\td\t4\t3\t1\t3\n");
  });
  EXPECT_NE(message.find("[cnn-pad-too-large]"), std::string::npos) << message;
}

TEST(WorkloadFileTest, MissingFileIsTypedDiagnostic) {
  const std::string message = violation_message(
      [] { load_workload_file("/nonexistent/paraconv_workload.tsv"); });
  EXPECT_NE(message.find("[workload-file-missing]"), std::string::npos)
      << message;
}

}  // namespace
}  // namespace paraconv::cnn
