#include "cnn/network.hpp"

#include <gtest/gtest.h>

namespace paraconv::cnn {
namespace {

Network tiny() {
  Network net("tiny");
  const LayerId in = net.add_input("in", Shape{1, 8, 8});
  const LayerId c = net.add_conv("c", in, ConvParams{4, 3, 1, 1});
  const LayerId p = net.add_pool("p", c, PoolParams{PoolMode::kMax, 2, 2, 0});
  net.add_fc("out", p, FcParams{10});
  return net;
}

TEST(NetworkTest, LayerCountAndNames) {
  const Network net = tiny();
  EXPECT_EQ(net.layer_count(), 4U);
  EXPECT_EQ(net.layer(LayerId{0}).name, "in");
  EXPECT_EQ(net.layer(LayerId{3}).name, "out");
  EXPECT_EQ(net.name(), "tiny");
}

TEST(NetworkTest, ShapesInferredAtInsertion) {
  const Network net = tiny();
  EXPECT_EQ(net.output_shape(LayerId{0}), (Shape{1, 8, 8}));
  EXPECT_EQ(net.output_shape(LayerId{1}), (Shape{4, 8, 8}));
  EXPECT_EQ(net.output_shape(LayerId{2}), (Shape{4, 4, 4}));
  EXPECT_EQ(net.output_shape(LayerId{3}), (Shape{10, 1, 1}));
}

TEST(NetworkTest, PerLayerCosts) {
  const Network net = tiny();
  EXPECT_EQ(net.macs(LayerId{0}), 0);
  EXPECT_EQ(net.macs(LayerId{1}), 4LL * 8 * 8 * 1 * 9);
  EXPECT_EQ(net.macs(LayerId{2}), 4LL * 4 * 4 * 4);
  EXPECT_EQ(net.macs(LayerId{3}), 4LL * 4 * 4 * 10);
  EXPECT_EQ(net.weight_count(LayerId{1}), 4LL * 1 * 9);
  EXPECT_EQ(net.weight_count(LayerId{3}), 4LL * 16 * 10);
}

TEST(NetworkTest, TotalsAreSums) {
  const Network net = tiny();
  std::int64_t macs = 0;
  std::int64_t weights = 0;
  for (std::uint32_t i = 0; i < net.layer_count(); ++i) {
    macs += net.macs(LayerId{i});
    weights += net.weight_count(LayerId{i});
  }
  EXPECT_EQ(net.total_macs(), macs);
  EXPECT_EQ(net.total_weights(), weights);
}

TEST(NetworkTest, OutputsAreConsumerless) {
  const Network net = tiny();
  const auto outs = net.outputs();
  ASSERT_EQ(outs.size(), 1U);
  EXPECT_EQ(outs[0].value, 3U);
}

TEST(NetworkTest, ConcatJoinsBranches) {
  Network net("branchy");
  const LayerId in = net.add_input("in", Shape{8, 16, 16});
  const LayerId b1 = net.add_conv("b1", in, ConvParams{4, 1, 1, 0});
  const LayerId b2 = net.add_conv("b2", in, ConvParams{12, 3, 1, 1});
  const LayerId cat = net.add_concat("cat", {b1, b2});
  EXPECT_EQ(net.output_shape(cat), (Shape{16, 16, 16}));
  EXPECT_EQ(net.outputs().size(), 1U);
}

TEST(NetworkTest, ForwardReferenceThrows) {
  Network net;
  EXPECT_THROW(net.add_conv("c", LayerId{0}, ConvParams{4, 3, 1, 1}),
               ContractViolation);
}

TEST(NetworkTest, InvalidLayerIdThrows) {
  const Network net = tiny();
  EXPECT_THROW(net.layer(LayerId{99}), ContractViolation);
  EXPECT_THROW(net.output_shape(LayerId{99}), ContractViolation);
}

}  // namespace
}  // namespace paraconv::cnn
