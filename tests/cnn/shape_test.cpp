#include "cnn/shape.hpp"

#include <gtest/gtest.h>

namespace paraconv::cnn {
namespace {

TEST(ShapeTest, ElementsAndBytes) {
  const Shape s{3, 224, 224};
  EXPECT_EQ(s.elements(), 3LL * 224 * 224);
  EXPECT_EQ(s.bytes().value, 3LL * 224 * 224 * 2);   // fp16 default
  EXPECT_EQ(s.bytes(4).value, 3LL * 224 * 224 * 4);  // fp32
}

TEST(ShapeTest, Validity) {
  EXPECT_TRUE((Shape{1, 1, 1}.valid()));
  EXPECT_FALSE((Shape{0, 5, 5}.valid()));
  EXPECT_FALSE((Shape{5, 0, 5}.valid()));
  EXPECT_FALSE((Shape{5, 5, 0}.valid()));
  EXPECT_FALSE(Shape{}.valid());
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ((Shape{1, 2, 3}), (Shape{1, 2, 3}));
  EXPECT_NE((Shape{1, 2, 3}), (Shape{3, 2, 1}));
}

struct ExtentCase {
  int in, kernel, stride, pad, expected;
};

class ConvOutExtentTest : public testing::TestWithParam<ExtentCase> {};

TEST_P(ConvOutExtentTest, MatchesFormula) {
  const auto& c = GetParam();
  EXPECT_EQ(conv_out_extent(c.in, c.kernel, c.stride, c.pad), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    KnownLayers, ConvOutExtentTest,
    testing::Values(
        ExtentCase{224, 7, 2, 3, 112},  // GoogLeNet conv1
        ExtentCase{112, 3, 2, 1, 56},   // GoogLeNet pool1 (pad 1)
        ExtentCase{56, 3, 1, 1, 56},    // 3x3 same
        ExtentCase{28, 5, 1, 2, 28},    // 5x5 same
        ExtentCase{32, 5, 1, 0, 28},    // LeNet c1
        ExtentCase{28, 2, 2, 0, 14},    // LeNet s2
        ExtentCase{7, 7, 1, 0, 1},      // global average pool
        ExtentCase{1, 1, 1, 0, 1}));

}  // namespace
}  // namespace paraconv::cnn
