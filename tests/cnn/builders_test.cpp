#include "cnn/builders.hpp"

#include <gtest/gtest.h>

namespace paraconv::cnn {
namespace {

TEST(GoogLeNetTest, ClassifierOutputsThousandClasses) {
  const Network net = make_googlenet();
  const auto outs = net.outputs();
  ASSERT_EQ(outs.size(), 1U);
  EXPECT_EQ(net.output_shape(outs[0]), (Shape{1000, 1, 1}));
}

TEST(GoogLeNetTest, StageShapesMatchPaper) {
  const Network net = make_googlenet();
  // Walk by name to the well-known stage boundaries of Szegedy et al.
  const auto shape_of = [&](const std::string& name) -> Shape {
    for (std::uint32_t i = 0; i < net.layer_count(); ++i) {
      if (net.layer(LayerId{i}).name == name) {
        return net.output_shape(LayerId{i});
      }
    }
    ADD_FAILURE() << "layer not found: " << name;
    return {};
  };
  EXPECT_EQ(shape_of("conv1/7x7_s2"), (Shape{64, 112, 112}));
  EXPECT_EQ(shape_of("pool2/3x3_s2"), (Shape{192, 28, 28}));
  EXPECT_EQ(shape_of("inception_3a/output"), (Shape{256, 28, 28}));
  EXPECT_EQ(shape_of("inception_3b/output"), (Shape{480, 28, 28}));
  EXPECT_EQ(shape_of("inception_4a/output"), (Shape{512, 14, 14}));
  EXPECT_EQ(shape_of("inception_4e/output"), (Shape{832, 14, 14}));
  EXPECT_EQ(shape_of("inception_5b/output"), (Shape{1024, 7, 7}));
  EXPECT_EQ(shape_of("pool5/7x7_s1"), (Shape{1024, 1, 1}));
}

TEST(GoogLeNetTest, WeightCountNearPublishedSevenMillion) {
  const Network net = make_googlenet();
  // ~6.99M parameters (weights; biases not modelled) for inference-time
  // GoogLeNet v1 without auxiliary classifiers.
  EXPECT_GT(net.total_weights(), 5'500'000);
  EXPECT_LT(net.total_weights(), 7'500'000);
}

TEST(GoogLeNetTest, MacCountNearPublishedOnePointFiveBillion) {
  const Network net = make_googlenet();
  // The paper's source [16] reports ~1.5G multiply-adds per 224x224 image.
  EXPECT_GT(net.total_macs(), 1'000'000'000);
  EXPECT_LT(net.total_macs(), 2'200'000'000);
}

TEST(GoogLeNetTest, NineInceptionModules) {
  const Network net = make_googlenet();
  std::size_t concats = 0;
  for (std::uint32_t i = 0; i < net.layer_count(); ++i) {
    if (std::holds_alternative<ConcatParams>(net.layer(LayerId{i}).params)) {
      ++concats;
    }
  }
  EXPECT_EQ(concats, 9U);
}

TEST(InceptionModuleTest, OutputChannelsAreBranchSum) {
  const Network net =
      make_inception_module(Shape{192, 28, 28}, 64, 96, 128, 16, 32, 32);
  const auto outs = net.outputs();
  ASSERT_EQ(outs.size(), 1U);
  EXPECT_EQ(net.output_shape(outs[0]), (Shape{64 + 128 + 32 + 32, 28, 28}));
}

TEST(LeNetTest, ClassicShapes) {
  const Network net = make_lenet5();
  EXPECT_EQ(net.output_shape(LayerId{1}), (Shape{6, 28, 28}));    // c1
  EXPECT_EQ(net.output_shape(LayerId{2}), (Shape{6, 14, 14}));    // s2
  EXPECT_EQ(net.output_shape(LayerId{3}), (Shape{16, 10, 10}));   // c3
  EXPECT_EQ(net.output_shape(LayerId{4}), (Shape{16, 5, 5}));     // s4
  EXPECT_EQ(net.output_shape(LayerId{5}), (Shape{120, 1, 1}));    // c5
  EXPECT_EQ(net.output_shape(LayerId{6}), (Shape{84, 1, 1}));     // f6
  const auto outs = net.outputs();
  ASSERT_EQ(outs.size(), 1U);
  EXPECT_EQ(net.output_shape(outs[0]), (Shape{10, 1, 1}));
}

TEST(LeNetTest, ClassicWeightCount) {
  // c1 150 + c3 2400 + c5 48000 + f6 10080 + out 840 = 61470 (weights only,
  // full-connectivity c3 variant).
  EXPECT_EQ(make_lenet5().total_weights(), 61470);
}

}  // namespace
}  // namespace paraconv::cnn
