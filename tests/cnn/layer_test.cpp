#include "cnn/layer.hpp"

#include <gtest/gtest.h>

namespace paraconv::cnn {
namespace {

TEST(InferShapeTest, InputPassesThrough) {
  const Shape s = infer_output_shape(InputParams{Shape{3, 8, 8}}, {});
  EXPECT_EQ(s, (Shape{3, 8, 8}));
}

TEST(InferShapeTest, InputRejectsInputs) {
  EXPECT_THROW(infer_output_shape(InputParams{Shape{1, 1, 1}}, {{1, 1, 1}}),
               ContractViolation);
}

TEST(InferShapeTest, ConvComputesOutput) {
  const Shape s =
      infer_output_shape(ConvParams{16, 3, 1, 1}, {Shape{8, 28, 28}});
  EXPECT_EQ(s, (Shape{16, 28, 28}));
}

TEST(InferShapeTest, ConvStrideShrinks) {
  const Shape s =
      infer_output_shape(ConvParams{64, 7, 2, 3}, {Shape{3, 224, 224}});
  EXPECT_EQ(s, (Shape{64, 112, 112}));
}

TEST(InferShapeTest, ConvRejectsCollapsedOutput) {
  EXPECT_THROW(infer_output_shape(ConvParams{4, 9, 1, 0}, {Shape{1, 5, 5}}),
               ContractViolation);
}

TEST(InferShapeTest, ConvRequiresSingleInput) {
  EXPECT_THROW(infer_output_shape(ConvParams{4, 3, 1, 1}, {}),
               ContractViolation);
  EXPECT_THROW(infer_output_shape(ConvParams{4, 3, 1, 1},
                                  {Shape{1, 8, 8}, Shape{1, 8, 8}}),
               ContractViolation);
}

TEST(InferShapeTest, PoolPreservesChannels) {
  const Shape s = infer_output_shape(PoolParams{PoolMode::kMax, 2, 2, 0},
                                     {Shape{6, 28, 28}});
  EXPECT_EQ(s, (Shape{6, 14, 14}));
}

TEST(InferShapeTest, FcFlattens) {
  const Shape s = infer_output_shape(FcParams{10}, {Shape{16, 5, 5}});
  EXPECT_EQ(s, (Shape{10, 1, 1}));
}

TEST(InferShapeTest, ConcatSumsChannels) {
  const Shape s = infer_output_shape(
      ConcatParams{}, {Shape{64, 28, 28}, Shape{128, 28, 28},
                       Shape{32, 28, 28}, Shape{32, 28, 28}});
  EXPECT_EQ(s, (Shape{256, 28, 28}));
}

TEST(InferShapeTest, ConcatRejectsSpatialMismatch) {
  EXPECT_THROW(infer_output_shape(ConcatParams{},
                                  {Shape{4, 28, 28}, Shape{4, 14, 14}}),
               ContractViolation);
}

TEST(InferShapeTest, ConcatRequiresTwoInputs) {
  EXPECT_THROW(infer_output_shape(ConcatParams{}, {Shape{4, 8, 8}}),
               ContractViolation);
}

TEST(LayerMacsTest, ConvFormula) {
  // out 16x28x28, each output needs in_c(8) * 3 * 3 MACs.
  const std::int64_t macs =
      layer_macs(ConvParams{16, 3, 1, 1}, {Shape{8, 28, 28}});
  EXPECT_EQ(macs, 16LL * 28 * 28 * 8 * 9);
}

TEST(LayerMacsTest, PoolCountsWindowOps) {
  const std::int64_t macs =
      layer_macs(PoolParams{PoolMode::kAverage, 2, 2, 0}, {Shape{6, 28, 28}});
  EXPECT_EQ(macs, 6LL * 14 * 14 * 4);
}

TEST(LayerMacsTest, FcIsDenseProduct) {
  EXPECT_EQ(layer_macs(FcParams{10}, {Shape{16, 5, 5}}), 16LL * 5 * 5 * 10);
}

TEST(LayerMacsTest, InputAndConcatAreFree) {
  EXPECT_EQ(layer_macs(InputParams{Shape{3, 8, 8}}, {}), 0);
  EXPECT_EQ(layer_macs(ConcatParams{}, {Shape{2, 4, 4}, Shape{2, 4, 4}}), 0);
}

TEST(LayerWeightsTest, ConvAndFc) {
  EXPECT_EQ(layer_weight_count(ConvParams{16, 3, 1, 1}, {Shape{8, 28, 28}}),
            16LL * 8 * 9);
  EXPECT_EQ(layer_weight_count(FcParams{10}, {Shape{16, 5, 5}}),
            16LL * 25 * 10);
  EXPECT_EQ(layer_weight_count(PoolParams{}, {Shape{4, 8, 8}}), 0);
}

TEST(LayerKindNameTest, AllVariants) {
  EXPECT_STREQ(layer_kind_name(InputParams{}), "input");
  EXPECT_STREQ(layer_kind_name(ConvParams{}), "conv");
  EXPECT_STREQ(layer_kind_name(PoolParams{}), "pool");
  EXPECT_STREQ(layer_kind_name(FcParams{}), "fc");
  EXPECT_STREQ(layer_kind_name(ConcatParams{}), "concat");
  EXPECT_STREQ(layer_kind_name(EltwiseParams{}), "eltwise");
}

/// Captures the ContractViolation message of `body`, empty when it does
/// not throw — lets each case pin its typed `[cnn-*]` diagnostic.
template <typename Fn>
std::string violation_message(Fn&& body) {
  try {
    std::forward<Fn>(body)();
  } catch (const ContractViolation& e) {
    return e.what();
  }
  return {};
}

TEST(LayerValidationTest, TypedWindowDiagnostics) {
  const Shape in{8, 28, 28};
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 0, 1, 0}, {in});
            }).find("[cnn-bad-kernel]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 3, 0, 1}, {in});
            }).find("[cnn-bad-stride]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 3, -2, 1}, {in});
            }).find("[cnn-bad-stride]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 3, 1, -1}, {in});
            }).find("[cnn-bad-pad]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 3, 1, 3}, {in});
            }).find("[cnn-pad-too-large]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(PoolParams{PoolMode::kMax, 2, 0, 0}, {in});
            }).find("[cnn-bad-stride]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{0, 3, 1, 1}, {in});
            }).find("[cnn-bad-channels]"),
            std::string::npos);
  EXPECT_NE(violation_message([&] { infer_output_shape(FcParams{0}, {in}); })
                .find("[cnn-bad-channels]"),
            std::string::npos);
}

TEST(LayerValidationTest, TypedGroupDiagnostics) {
  const Shape in{8, 28, 28};
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 3, 1, 1, 0}, {in});
            }).find("[cnn-bad-groups]"),
            std::string::npos);
  // 8 input channels do not split into 3 groups.
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{16, 3, 1, 1, 3}, {in});
            }).find("[cnn-groups-indivisible]"),
            std::string::npos);
  // Output channels must divide too.
  EXPECT_NE(violation_message([&] {
              infer_output_shape(ConvParams{6, 3, 1, 1, 4}, {in});
            }).find("[cnn-groups-indivisible]"),
            std::string::npos);
}

TEST(LayerGroupsTest, DepthwiseScalesMacsAndWeights) {
  const Shape in{8, 28, 28};
  // groups == in == out channels: a depthwise conv — each output channel
  // sees 1 input channel.
  EXPECT_EQ(layer_macs(ConvParams{8, 3, 1, 1, 8}, {in}), 8LL * 28 * 28 * 9);
  EXPECT_EQ(layer_weight_count(ConvParams{8, 3, 1, 1, 8}, {in}), 8LL * 9);
  // Default groups stays the dense formula.
  EXPECT_EQ(layer_macs(ConvParams{8, 3, 1, 1}, {in}), 8LL * 28 * 28 * 8 * 9);
}

TEST(LayerEltwiseTest, SumKeepsShapeAndCountsAdds) {
  const Shape s{4, 8, 8};
  EXPECT_EQ(infer_output_shape(EltwiseParams{}, {s, s}), s);
  EXPECT_EQ(infer_output_shape(EltwiseParams{}, {s, s, s}), s);
  // n-way sum: (n - 1) adds per output element, no filter weights.
  EXPECT_EQ(layer_macs(EltwiseParams{}, {s, s, s}), 4LL * 8 * 8 * 2);
  EXPECT_EQ(layer_weight_count(EltwiseParams{}, {s, s}), 0);
}

TEST(LayerEltwiseTest, RejectsMismatchedOrMissingInputs) {
  const Shape s{4, 8, 8};
  EXPECT_THROW(infer_output_shape(EltwiseParams{}, {s}), ContractViolation);
  EXPECT_NE(violation_message([&] {
              infer_output_shape(EltwiseParams{}, {s, Shape{4, 8, 4}});
            }).find("[cnn-eltwise-shape-mismatch]"),
            std::string::npos);
}

}  // namespace
}  // namespace paraconv::cnn
