#include "cnn/layer.hpp"

#include <gtest/gtest.h>

namespace paraconv::cnn {
namespace {

TEST(InferShapeTest, InputPassesThrough) {
  const Shape s = infer_output_shape(InputParams{Shape{3, 8, 8}}, {});
  EXPECT_EQ(s, (Shape{3, 8, 8}));
}

TEST(InferShapeTest, InputRejectsInputs) {
  EXPECT_THROW(infer_output_shape(InputParams{Shape{1, 1, 1}}, {{1, 1, 1}}),
               ContractViolation);
}

TEST(InferShapeTest, ConvComputesOutput) {
  const Shape s =
      infer_output_shape(ConvParams{16, 3, 1, 1}, {Shape{8, 28, 28}});
  EXPECT_EQ(s, (Shape{16, 28, 28}));
}

TEST(InferShapeTest, ConvStrideShrinks) {
  const Shape s =
      infer_output_shape(ConvParams{64, 7, 2, 3}, {Shape{3, 224, 224}});
  EXPECT_EQ(s, (Shape{64, 112, 112}));
}

TEST(InferShapeTest, ConvRejectsCollapsedOutput) {
  EXPECT_THROW(infer_output_shape(ConvParams{4, 9, 1, 0}, {Shape{1, 5, 5}}),
               ContractViolation);
}

TEST(InferShapeTest, ConvRequiresSingleInput) {
  EXPECT_THROW(infer_output_shape(ConvParams{4, 3, 1, 1}, {}),
               ContractViolation);
  EXPECT_THROW(infer_output_shape(ConvParams{4, 3, 1, 1},
                                  {Shape{1, 8, 8}, Shape{1, 8, 8}}),
               ContractViolation);
}

TEST(InferShapeTest, PoolPreservesChannels) {
  const Shape s = infer_output_shape(PoolParams{PoolMode::kMax, 2, 2, 0},
                                     {Shape{6, 28, 28}});
  EXPECT_EQ(s, (Shape{6, 14, 14}));
}

TEST(InferShapeTest, FcFlattens) {
  const Shape s = infer_output_shape(FcParams{10}, {Shape{16, 5, 5}});
  EXPECT_EQ(s, (Shape{10, 1, 1}));
}

TEST(InferShapeTest, ConcatSumsChannels) {
  const Shape s = infer_output_shape(
      ConcatParams{}, {Shape{64, 28, 28}, Shape{128, 28, 28},
                       Shape{32, 28, 28}, Shape{32, 28, 28}});
  EXPECT_EQ(s, (Shape{256, 28, 28}));
}

TEST(InferShapeTest, ConcatRejectsSpatialMismatch) {
  EXPECT_THROW(infer_output_shape(ConcatParams{},
                                  {Shape{4, 28, 28}, Shape{4, 14, 14}}),
               ContractViolation);
}

TEST(InferShapeTest, ConcatRequiresTwoInputs) {
  EXPECT_THROW(infer_output_shape(ConcatParams{}, {Shape{4, 8, 8}}),
               ContractViolation);
}

TEST(LayerMacsTest, ConvFormula) {
  // out 16x28x28, each output needs in_c(8) * 3 * 3 MACs.
  const std::int64_t macs =
      layer_macs(ConvParams{16, 3, 1, 1}, {Shape{8, 28, 28}});
  EXPECT_EQ(macs, 16LL * 28 * 28 * 8 * 9);
}

TEST(LayerMacsTest, PoolCountsWindowOps) {
  const std::int64_t macs =
      layer_macs(PoolParams{PoolMode::kAverage, 2, 2, 0}, {Shape{6, 28, 28}});
  EXPECT_EQ(macs, 6LL * 14 * 14 * 4);
}

TEST(LayerMacsTest, FcIsDenseProduct) {
  EXPECT_EQ(layer_macs(FcParams{10}, {Shape{16, 5, 5}}), 16LL * 5 * 5 * 10);
}

TEST(LayerMacsTest, InputAndConcatAreFree) {
  EXPECT_EQ(layer_macs(InputParams{Shape{3, 8, 8}}, {}), 0);
  EXPECT_EQ(layer_macs(ConcatParams{}, {Shape{2, 4, 4}, Shape{2, 4, 4}}), 0);
}

TEST(LayerWeightsTest, ConvAndFc) {
  EXPECT_EQ(layer_weight_count(ConvParams{16, 3, 1, 1}, {Shape{8, 28, 28}}),
            16LL * 8 * 9);
  EXPECT_EQ(layer_weight_count(FcParams{10}, {Shape{16, 5, 5}}),
            16LL * 25 * 10);
  EXPECT_EQ(layer_weight_count(PoolParams{}, {Shape{4, 8, 8}}), 0);
}

TEST(LayerKindNameTest, AllVariants) {
  EXPECT_STREQ(layer_kind_name(InputParams{}), "input");
  EXPECT_STREQ(layer_kind_name(ConvParams{}), "conv");
  EXPECT_STREQ(layer_kind_name(PoolParams{}), "pool");
  EXPECT_STREQ(layer_kind_name(FcParams{}), "fc");
  EXPECT_STREQ(layer_kind_name(ConcatParams{}), "concat");
}

}  // namespace
}  // namespace paraconv::cnn
