#include "cnn/reference_ops.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace paraconv::cnn {
namespace {

TEST(TensorTest, IndexingAndPadding) {
  Tensor t(Shape{2, 3, 3});
  t.at(1, 2, 0) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2, 0), 5.0f);
  EXPECT_FLOAT_EQ(t.at_padded(1, 2, 0), 5.0f);
  EXPECT_FLOAT_EQ(t.at_padded(0, -1, 0), 0.0f);
  EXPECT_FLOAT_EQ(t.at_padded(0, 0, 3), 0.0f);
  EXPECT_THROW(t.at(2, 0, 0), ContractViolation);
  EXPECT_THROW(Tensor(Shape{0, 1, 1}), ContractViolation);
}

TEST(Conv2dTest, IdentityKernelCopiesInput) {
  Tensor in(Shape{1, 3, 3});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) in.at(0, y, x) = static_cast<float>(y * 3 + x);
  }
  const ConvParams params{1, 1, 1, 0};
  ConvWeights w;
  w.filters = {1.0f};
  w.bias = {0.0f};
  const Tensor out = conv2d(in, params, w);
  ASSERT_EQ(out.shape(), in.shape());
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_FLOAT_EQ(out.at(0, y, x), in.at(0, y, x));
    }
  }
}

TEST(Conv2dTest, SumKernelWithPadding) {
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 2;
  in.at(0, 1, 0) = 3;
  in.at(0, 1, 1) = 4;
  const ConvParams params{1, 3, 1, 1};
  ConvWeights w;
  w.filters.assign(9, 1.0f);  // 3x3 all-ones
  w.bias = {0.0f};
  const Tensor out = conv2d(in, params, w);
  // Center of each padded window sums the in-bounds values.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 2 + 3 + 4);  // whole image in window
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 1 + 2 + 3 + 4);
}

TEST(Conv2dTest, BiasIsAdded) {
  Tensor in(Shape{1, 1, 1});
  in.at(0, 0, 0) = 2.0f;
  ConvWeights w;
  w.filters = {3.0f};
  w.bias = {10.0f};
  const Tensor out = conv2d(in, ConvParams{1, 1, 1, 0}, w);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 16.0f);
}

TEST(Conv2dTest, ExecutedMacsMatchLayerAccounting) {
  const ConvParams params{4, 3, 1, 1};
  const Shape in_shape{3, 8, 8};
  Tensor in(in_shape);
  const ConvWeights w = make_test_conv_weights(params, in_shape.channels, 1);
  std::int64_t macs = 0;
  conv2d(in, params, w, &macs);
  EXPECT_EQ(macs, layer_macs(params, {in_shape}));
}

TEST(Conv2dTest, MismatchedWeightsThrow) {
  Tensor in(Shape{2, 4, 4});
  ConvWeights w;
  w.filters.assign(5, 0.0f);  // wrong size
  w.bias = {0.0f};
  EXPECT_THROW(conv2d(in, ConvParams{1, 1, 1, 0}, w), ContractViolation);
}

TEST(Im2colTest, MatrixLayoutForKnownInput) {
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 2;
  in.at(0, 1, 0) = 3;
  in.at(0, 1, 1) = 4;
  // 2x2 kernel, stride 1, no pad: single output position; the column is
  // the flattened window.
  const auto matrix = im2col(in, ConvParams{1, 2, 1, 0});
  ASSERT_EQ(matrix.size(), 4U);
  EXPECT_FLOAT_EQ(matrix[0], 1);
  EXPECT_FLOAT_EQ(matrix[1], 2);
  EXPECT_FLOAT_EQ(matrix[2], 3);
  EXPECT_FLOAT_EQ(matrix[3], 4);
}

TEST(Im2colTest, PaddingFillsZeros) {
  Tensor in(Shape{1, 1, 1});
  in.at(0, 0, 0) = 7;
  // 3x3 kernel with pad 1: nine positions, center is the value.
  const auto matrix = im2col(in, ConvParams{1, 3, 1, 1});
  ASSERT_EQ(matrix.size(), 9U);
  EXPECT_FLOAT_EQ(matrix[4], 7);
  float sum = 0;
  for (const float v : matrix) sum += v;
  EXPECT_FLOAT_EQ(sum, 7);
}

struct ConvCase {
  int in_c, h, w, out_c, kernel, stride, pad;
};

class Im2colEquivalenceTest : public testing::TestWithParam<ConvCase> {};

TEST_P(Im2colEquivalenceTest, MatchesDirectConvolution) {
  const auto& c = GetParam();
  const Shape in_shape{c.in_c, c.h, c.w};
  const ConvParams params{c.out_c, c.kernel, c.stride, c.pad};

  Tensor in(in_shape);
  Rng rng(77);
  for (float& v : in.data()) {
    v = static_cast<float>(rng.uniform_real() * 2.0 - 1.0);
  }
  const ConvWeights w = make_test_conv_weights(params, c.in_c, 5);

  const Tensor direct = conv2d(in, params, w);
  const Tensor gemm = conv2d_im2col(in, params, w);
  ASSERT_EQ(direct.shape(), gemm.shape());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], gemm.data()[i], 1e-4f) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colEquivalenceTest,
    testing::Values(ConvCase{1, 5, 5, 1, 3, 1, 1}, ConvCase{3, 8, 8, 4, 3, 1, 1},
                    ConvCase{2, 9, 9, 3, 3, 2, 1}, ConvCase{4, 7, 7, 2, 5, 1, 2},
                    ConvCase{3, 12, 12, 8, 1, 1, 0},
                    ConvCase{2, 11, 13, 3, 7, 2, 3}));

TEST(Pool2dTest, MaxPick) {
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = 1;
  in.at(0, 0, 1) = 9;
  in.at(0, 1, 0) = -3;
  in.at(0, 1, 1) = 4;
  const Tensor out = pool2d(in, PoolParams{PoolMode::kMax, 2, 2, 0});
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 9.0f);
}

TEST(Pool2dTest, AverageIncludesPadZeros) {
  Tensor in(Shape{1, 2, 2});
  in.at(0, 0, 0) = 4;
  in.at(0, 0, 1) = 4;
  in.at(0, 1, 0) = 4;
  in.at(0, 1, 1) = 4;
  const Tensor out = pool2d(in, PoolParams{PoolMode::kAverage, 2, 2, 0});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
}

TEST(Pool2dTest, ChannelsIndependent) {
  Tensor in(Shape{2, 2, 2});
  in.at(0, 0, 0) = 7;
  in.at(1, 0, 0) = -7;
  const Tensor out = pool2d(in, PoolParams{PoolMode::kMax, 2, 2, 0});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 7.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 0.0f);  // max of {-7, 0, 0, 0}
}

TEST(FullyConnectedTest, HandComputedProduct) {
  Tensor in(Shape{2, 1, 1});
  in.at(0, 0, 0) = 1.0f;
  in.at(1, 0, 0) = 2.0f;
  FcWeights w;
  w.matrix = {1.0f, 2.0f,   // out0
              3.0f, 4.0f};  // out1
  w.bias = {0.5f, -0.5f};
  const Tensor out = fully_connected(in, FcParams{2}, w);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1 + 4 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 3 + 8 - 0.5f);
}

TEST(FullyConnectedTest, MismatchedMatrixThrows) {
  Tensor in(Shape{2, 1, 1});
  FcWeights w;
  w.matrix = {1.0f};
  w.bias = {0.0f};
  EXPECT_THROW(fully_connected(in, FcParams{1}, w), ContractViolation);
}

TEST(ConcatTest, ChannelLayoutPreserved) {
  Tensor a(Shape{1, 2, 2});
  a.at(0, 0, 0) = 1;
  Tensor b(Shape{2, 2, 2});
  b.at(0, 1, 1) = 2;
  b.at(1, 0, 1) = 3;
  const Tensor out = concat({a, b});
  ASSERT_EQ(out.shape(), (Shape{3, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 1), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0, 1), 3.0f);
}

TEST(ReluTest, ClampsNegatives) {
  Tensor t(Shape{1, 1, 2});
  t.at(0, 0, 0) = -1.5f;
  t.at(0, 0, 1) = 2.5f;
  const Tensor out = relu(t);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 2.5f);
}

TEST(TestWeightsTest, DeterministicBySeed) {
  const ConvParams params{2, 3, 1, 1};
  const ConvWeights a = make_test_conv_weights(params, 3, 42);
  const ConvWeights b = make_test_conv_weights(params, 3, 42);
  EXPECT_EQ(a.filters, b.filters);
  EXPECT_EQ(a.bias, b.bias);
  const ConvWeights c = make_test_conv_weights(params, 3, 43);
  EXPECT_NE(a.filters, c.filters);
}

}  // namespace
}  // namespace paraconv::cnn
