#include "cnn/lowering.hpp"

#include <gtest/gtest.h>

#include "cnn/builders.hpp"
#include "graph/algorithms.hpp"

namespace paraconv::cnn {
namespace {

Network chain() {
  Network net("chain");
  const LayerId in = net.add_input("in", Shape{1, 16, 16});
  const LayerId c1 = net.add_conv("c1", in, ConvParams{8, 3, 1, 1});
  const LayerId p1 =
      net.add_pool("p1", c1, PoolParams{PoolMode::kMax, 2, 2, 0});
  net.add_conv("c2", p1, ConvParams{16, 3, 1, 1});
  return net;
}

TEST(LoweringTest, SingleGroupChain) {
  const graph::TaskGraph g = lower_to_task_graph(chain(), LoweringOptions{});
  // Input elided: three tasks, two edges.
  EXPECT_EQ(g.node_count(), 3U);
  EXPECT_EQ(g.edge_count(), 2U);
  EXPECT_TRUE(graph::is_acyclic(g));
}

TEST(LoweringTest, TaskKindsFollowLayers) {
  const graph::TaskGraph g = lower_to_task_graph(chain(), LoweringOptions{});
  EXPECT_EQ(g.task(graph::NodeId{0}).kind, graph::TaskKind::kConvolution);
  EXPECT_EQ(g.task(graph::NodeId{1}).kind, graph::TaskKind::kPooling);
  EXPECT_EQ(g.task(graph::NodeId{2}).kind, graph::TaskKind::kConvolution);
}

TEST(LoweringTest, EdgeBytesAreProducerFeatureMap) {
  LoweringOptions options;
  options.element_bytes = 2;
  const graph::TaskGraph g = lower_to_task_graph(chain(), options);
  // c1 output: 8x16x16 fp16 = 4096 B; p1 output: 8x8x8 fp16 = 1024 B.
  EXPECT_EQ(g.ipr(graph::EdgeId{0}).size.value, 8 * 16 * 16 * 2);
  EXPECT_EQ(g.ipr(graph::EdgeId{1}).size.value, 8 * 8 * 8 * 2);
}

TEST(LoweringTest, ChannelGroupsSplitLayers) {
  LoweringOptions options;
  options.channel_groups = 4;
  const graph::TaskGraph g = lower_to_task_graph(chain(), options);
  // Each of the three layers splits into 4 tasks.
  EXPECT_EQ(g.node_count(), 12U);
  // conv->pool is channelwise one-to-one (4 edges); pool->conv is
  // all-to-all (16 edges).
  EXPECT_EQ(g.edge_count(), 20U);
  EXPECT_TRUE(graph::is_acyclic(g));
}

TEST(LoweringTest, GroupCountCappedByChannels) {
  Network net("narrow");
  const LayerId in = net.add_input("in", Shape{1, 8, 8});
  net.add_conv("c", in, ConvParams{2, 3, 1, 1});  // only 2 channels
  LoweringOptions options;
  options.channel_groups = 8;
  const graph::TaskGraph g = lower_to_task_graph(net, options);
  EXPECT_EQ(g.node_count(), 2U);
}

TEST(LoweringTest, ExecTimeScalesWithMacsAndFloorsAtOne) {
  Network net("wide");
  const LayerId in = net.add_input("in", Shape{64, 56, 56});
  net.add_conv("c", in, ConvParams{64, 3, 1, 1});
  LoweringOptions coarse;
  coarse.macs_per_time_unit = 1'000'000;
  const graph::TaskGraph heavy = lower_to_task_graph(net, coarse);
  const std::int64_t macs = 64LL * 56 * 56 * 64 * 9;
  EXPECT_EQ(heavy.task(graph::NodeId{0}).exec_time.value,
            (macs + 999'999) / 1'000'000);

  LoweringOptions generous;
  generous.macs_per_time_unit = macs * 10;
  const graph::TaskGraph light = lower_to_task_graph(net, generous);
  EXPECT_EQ(light.task(graph::NodeId{0}).exec_time.value, 1);
}

TEST(LoweringTest, InceptionModuleBranches) {
  const Network net =
      make_inception_module(Shape{192, 28, 28}, 64, 96, 128, 16, 32, 32);
  const graph::TaskGraph g = lower_to_task_graph(net, LoweringOptions{});
  // 7 branch layers + concat = 8 tasks; edges: concat gets 4 inputs,
  // 3x3 and 5x5 reducers chain, pool chain; input elided.
  EXPECT_EQ(g.node_count(), 8U);
  EXPECT_EQ(g.edge_count(), 7U);
  const auto sinks = graph::sinks(g);
  ASSERT_EQ(sinks.size(), 1U);
  EXPECT_EQ(g.task(sinks[0]).kind, graph::TaskKind::kOther);  // concat
}

TEST(LoweringTest, GoogLeNetLowersToValidatedGraph) {
  LoweringOptions options;
  options.channel_groups = 2;
  const graph::TaskGraph g =
      lower_to_task_graph(make_googlenet(), options);
  EXPECT_GT(g.node_count(), 100U);
  EXPECT_TRUE(graph::is_acyclic(g));
  // Every non-source task consumes at least one IPR.
  for (const graph::NodeId v : g.nodes()) {
    if (g.in_edges(v).empty()) {
      // Sources must correspond to the stem fed by the elided input.
      EXPECT_NE(g.task(v).name.find("conv1"), std::string::npos);
    }
  }
}

TEST(LoweringTest, InvalidOptionsThrow) {
  LoweringOptions bad;
  bad.channel_groups = 0;
  EXPECT_THROW(lower_to_task_graph(chain(), bad), ContractViolation);
  bad = {};
  bad.macs_per_time_unit = 0;
  EXPECT_THROW(lower_to_task_graph(chain(), bad), ContractViolation);
  bad = {};
  bad.element_bytes = 0;
  EXPECT_THROW(lower_to_task_graph(chain(), bad), ContractViolation);
}

}  // namespace
}  // namespace paraconv::cnn
