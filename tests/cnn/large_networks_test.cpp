// AlexNet and VGG-16: the intro-scale networks (paper Sec. 1: "several
// hundreds of megabytes for filter weight storage and 30K-600K operations
// per input pixel").
#include <gtest/gtest.h>

#include "cnn/builders.hpp"
#include "cnn/lowering.hpp"
#include "graph/algorithms.hpp"

namespace paraconv::cnn {
namespace {

TEST(AlexNetTest, ClassicStageShapes) {
  const Network net = make_alexnet();
  EXPECT_EQ(net.output_shape(LayerId{1}), (Shape{96, 55, 55}));   // conv1
  EXPECT_EQ(net.output_shape(LayerId{2}), (Shape{96, 27, 27}));   // pool1
  EXPECT_EQ(net.output_shape(LayerId{3}), (Shape{256, 27, 27}));  // conv2
  EXPECT_EQ(net.output_shape(LayerId{4}), (Shape{256, 13, 13}));  // pool2
  EXPECT_EQ(net.output_shape(LayerId{7}), (Shape{256, 13, 13}));  // conv5
  EXPECT_EQ(net.output_shape(LayerId{8}), (Shape{256, 6, 6}));    // pool5
  const auto outs = net.outputs();
  ASSERT_EQ(outs.size(), 1U);
  EXPECT_EQ(net.output_shape(outs[0]), (Shape{1000, 1, 1}));
}

TEST(AlexNetTest, PublishedWeightCount) {
  // ~61M parameters (weights only; single-tower Caffe variant).
  const std::int64_t weights = make_alexnet().total_weights();
  EXPECT_GT(weights, 58'000'000);
  EXPECT_LT(weights, 63'000'000);
}

TEST(AlexNetTest, PublishedMacCount) {
  // ~0.7G multiply-adds per 227x227 image.
  const std::int64_t macs = make_alexnet().total_macs();
  EXPECT_GT(macs, 600'000'000);
  EXPECT_LT(macs, 1'300'000'000);
}

TEST(Vgg16Test, ClassicStageShapes) {
  const Network net = make_vgg16();
  const auto shape_of = [&](const std::string& name) -> Shape {
    for (std::uint32_t i = 0; i < net.layer_count(); ++i) {
      if (net.layer(LayerId{i}).name == name) {
        return net.output_shape(LayerId{i});
      }
    }
    ADD_FAILURE() << "layer not found: " << name;
    return {};
  };
  EXPECT_EQ(shape_of("conv1_2"), (Shape{64, 224, 224}));
  EXPECT_EQ(shape_of("pool1"), (Shape{64, 112, 112}));
  EXPECT_EQ(shape_of("conv3_3"), (Shape{256, 56, 56}));
  EXPECT_EQ(shape_of("pool5"), (Shape{512, 7, 7}));
  EXPECT_EQ(shape_of("fc8"), (Shape{1000, 1, 1}));
}

TEST(Vgg16Test, PublishedWeightCount) {
  // ~138M parameters.
  const std::int64_t weights = make_vgg16().total_weights();
  EXPECT_GT(weights, 134'000'000);
  EXPECT_LT(weights, 141'000'000);
}

TEST(Vgg16Test, PublishedMacCount) {
  // ~15.5G multiply-adds per 224x224 image.
  const std::int64_t macs = make_vgg16().total_macs();
  EXPECT_GT(macs, 14'000'000'000);
  EXPECT_LT(macs, 16'500'000'000);
}

TEST(Vgg16Test, WeightStorageIsHundredsOfMegabytes) {
  // The paper's intro claim, at fp16: 138M weights ~= 276 MB.
  const std::int64_t bytes = make_vgg16().total_weights() * 2;
  EXPECT_GT(bytes, 200'000'000);
}

TEST(LargeNetworksTest, LowerToSchedulableGraphs) {
  for (const Network& net : {make_alexnet(), make_vgg16()}) {
    LoweringOptions options;
    options.channel_groups = 4;
    options.macs_per_time_unit = 50'000'000;
    const graph::TaskGraph g = lower_to_task_graph(net, options);
    EXPECT_TRUE(graph::is_acyclic(g));
    EXPECT_GT(g.node_count(), 20U);
    EXPECT_GT(g.total_work().value, 0);
  }
}

}  // namespace
}  // namespace paraconv::cnn
