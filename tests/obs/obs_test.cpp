#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "core/para_conv.hpp"
#include "dse/frontier.hpp"
#include "dse/sweep.hpp"
#include "graph/paper_benchmarks.hpp"
#include "obs/writer.hpp"

namespace paraconv::obs {
namespace {

std::set<std::string> span_names(const Registry& registry) {
  std::set<std::string> names;
  for (const SpanRecord& span : registry.spans()) names.insert(span.name);
  return names;
}

TEST(ObsTest, RegistryRecordsSpansAndCounters) {
  Registry registry;
  {
    const ScopedRegistry scoped(&registry);
    {
      const ScopedSpan span("stage", "variant-a");
    }
    count("widgets", 2);
    count("widgets");
  }
  const auto spans = registry.spans();
  ASSERT_EQ(spans.size(), 1U);
  EXPECT_EQ(spans[0].name, "stage");
  EXPECT_EQ(spans[0].detail, "variant-a");
  EXPECT_GE(spans[0].start_ns, 0);
  EXPECT_GE(spans[0].duration_ns, 0);
  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 1U);
  EXPECT_EQ(counters.at("widgets"), 3);
}

TEST(ObsTest, NullSinkRecordsNothing) {
  ASSERT_EQ(active_registry(), nullptr);
  Registry registry;
  {
    const ScopedRegistry scoped(&registry);
    const ScopedSpan span("recorded");
  }
  // Observability is now disabled again: these must all be no-ops.
  {
    const ScopedSpan span("dropped", "detail");
    count("dropped.counter", 5);
  }
  EXPECT_EQ(registry.spans().size(), 1U);
  EXPECT_TRUE(registry.counters().empty());
}

TEST(ObsTest, ScopedRegistryRestoresThePreviousRegistry) {
  Registry outer;
  Registry inner;
  const ScopedRegistry outer_scope(&outer);
  EXPECT_EQ(active_registry(), &outer);
  {
    const ScopedRegistry inner_scope(&inner);
    EXPECT_EQ(active_registry(), &inner);
  }
  EXPECT_EQ(active_registry(), &outer);
}

TEST(ObsTest, SpanRecordsIntoTheRegistryActiveAtConstruction) {
  Registry registry;
  std::optional<ScopedSpan> span;
  {
    const ScopedRegistry scoped(&registry);
    span.emplace("captured");
  }
  // The registry was uninstalled before the span ended; the record still
  // lands in the registry that was active when timing started.
  span.reset();
  ASSERT_EQ(registry.spans().size(), 1U);
  EXPECT_EQ(registry.spans()[0].name, "captured");
}

TEST(ObsTest, ThreadIdIsStablePerThread) {
  EXPECT_EQ(thread_id(), thread_id());
}

TEST(ObsTest, ClearEmptiesTheRegistry) {
  Registry registry;
  const ScopedRegistry scoped(&registry);
  { const ScopedSpan span("stage"); }
  count("c");
  registry.clear();
  EXPECT_TRUE(registry.spans().empty());
  EXPECT_TRUE(registry.counters().empty());
}

TEST(ObsWriterTest, ChromeTraceContainsSpansAndCounters) {
  Registry registry;
  {
    const ScopedRegistry scoped(&registry);
    { const ScopedSpan span("pack", "flower"); }
    count("memo.hits", 7);
  }
  const std::string json = to_chrome_trace_json(registry);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_NE(json.find("pack"), std::string::npos);
  EXPECT_NE(json.find("flower"), std::string::npos);
  EXPECT_NE(json.find("memo.hits"), std::string::npos);
  // One complete event and one counter event.
  EXPECT_NE(json.find("\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"C\""), std::string::npos);
}

TEST(ObsWriterTest, SummaryAggregatesByStageName) {
  Registry registry;
  {
    const ScopedRegistry scoped(&registry);
    { const ScopedSpan span("pack"); }
    { const ScopedSpan span("pack"); }
    { const ScopedSpan span("validate"); }
    count("validate.diagnostics", 3);
  }
  const std::string summary = render_summary(registry);
  EXPECT_NE(summary.find("pack"), std::string::npos);
  EXPECT_NE(summary.find("validate"), std::string::npos);
  EXPECT_NE(summary.find("validate.diagnostics"), std::string::npos);
  EXPECT_NE(summary.find("2"), std::string::npos);  // pack span count
}

TEST(ObsIntegrationTest, PipelineEmitsOneSpanPerStage) {
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("flower"));
  Registry registry;
  {
    const ScopedRegistry scoped(&registry);
    core::ParaConv(pim::PimConfig::neurocube(8)).schedule(g);
  }
  const std::set<std::string> names = span_names(registry);
  for (const char* stage :
       {"pack", "packer", "schedule_packed", "retime", "allocate",
        "validate"}) {
    EXPECT_TRUE(names.count(stage)) << "missing stage span: " << stage;
  }
}

TEST(ObsIntegrationTest, SweepResultsAreIdenticalWithTracingOnAndOff) {
  dse::GridSpec spec;
  spec.cases.push_back(dse::SweepCase{
      "flower", graph::build_paper_benchmark(graph::paper_benchmark("flower"))});
  spec.configs = {pim::PimConfig::neurocube(8)};
  spec.iterations = 50;

  const auto to_csv = [](const dse::SweepResult& sweep) {
    std::ostringstream os;
    dse::write_sweep_csv(os, sweep);
    return os.str();
  };

  dse::SweepOptions options;
  options.jobs = 2;
  const std::string untraced = to_csv(dse::run_sweep(spec, options));

  Registry registry;
  std::string traced;
  {
    const ScopedRegistry scoped(&registry);
    traced = to_csv(dse::run_sweep(spec, options));
  }

  // Tracing is diagnostics-only: the data stream must be byte-identical.
  EXPECT_EQ(traced, untraced);
  // And the traced run actually observed the sweep.
  EXPECT_TRUE(span_names(registry).count("cell"));
  const auto counters = registry.counters();
  ASSERT_TRUE(counters.count("dse.cells"));
  EXPECT_EQ(counters.at("dse.cells"),
            static_cast<std::int64_t>(spec.cell_count()));
  EXPECT_TRUE(counters.count("dse.pool.executed"));
}

}  // namespace
}  // namespace paraconv::obs
