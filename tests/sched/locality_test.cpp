#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "graph/generator.hpp"
#include "graph/paper_benchmarks.hpp"
#include "sched/packer.hpp"
#include "sched/validator.hpp"

namespace paraconv::sched {
namespace {

graph::TaskGraph bench(const char* name) {
  return graph::build_paper_benchmark(graph::paper_benchmark(name));
}

pim::PimConfig mesh_config(int pes) {
  pim::PimConfig config = pim::PimConfig::neurocube(pes);
  config.topology = pim::NocTopology::kMesh2D;
  config.noc_hop_units = 2;
  return config;
}

std::int64_t total_hops(const graph::TaskGraph& g, const Packing& packing,
                        const pim::PimConfig& config) {
  std::int64_t hops = 0;
  for (const graph::EdgeId e : g.edges()) {
    hops += config.hop_count(packing.placement[g.ipr(e).src.value].pe,
                             packing.placement[g.ipr(e).dst.value].pe);
  }
  return hops;
}

TEST(LocalityPackerTest, ReducesMeshHopsVsPlainTopological) {
  for (const char* name : {"character-1", "stock-predict", "shortest-path"}) {
    const graph::TaskGraph g = bench(name);
    const pim::PimConfig config = mesh_config(16);
    const Packing plain = pack_topological(g, 16);
    const Packing local = pack_locality(g, config);
    EXPECT_LT(total_hops(g, local, config), total_hops(g, plain, config))
        << name;
  }
}

TEST(LocalityPackerTest, PeriodWithinSlackOfBalancedPacking) {
  const graph::TaskGraph g = bench("string-matching");
  const pim::PimConfig config = mesh_config(16);
  const Packing plain = pack_topological(g, 16);
  const Packing local = pack_locality(g, config);
  EXPECT_LE(local.period.value,
            plain.period.value + 2 * g.max_exec_time().value);
}

TEST(LocalityPackerTest, TasksFitTheWindow) {
  const graph::TaskGraph g = bench("character-2");
  const pim::PimConfig config = mesh_config(32);
  const Packing p = pack_locality(g, config);
  for (const graph::NodeId v : g.nodes()) {
    EXPECT_GE(p.placement[v.value].start, TimeUnits{0});
    EXPECT_LE(p.placement[v.value].start + g.task(v).exec_time, p.period);
  }
}

TEST(LocalityPackerTest, EndToEndOnMeshIsValidAndHelpsPrologue) {
  const graph::TaskGraph g = bench("stock-predict");
  const pim::PimConfig config = mesh_config(32);

  core::ParaConvOptions topo;
  topo.packer = core::PackerKind::kTopological;
  const auto plain = core::ParaConv(config, topo).schedule(g);

  core::ParaConvOptions locality;
  locality.packer = core::PackerKind::kLocality;
  const auto local = core::ParaConv(config, locality).schedule(g);

  EXPECT_TRUE(sched::is_valid_kernel_schedule(g, local.kernel, config,
                                              config.total_cache_bytes()));
  // Fewer hops -> smaller hand-off latencies -> no more total retiming
  // pressure than the placement-agnostic packer, within the period slack
  // the locality packer trades away.
  EXPECT_LE(local.metrics.prologue_time.value,
            plain.metrics.prologue_time.value +
                2 * g.max_exec_time().value * plain.metrics.r_max);
}

TEST(LocalityPackerTest, CrossbarDegeneratesGracefully) {
  // On a crossbar all remote PEs cost the same hop count, so the packer
  // still produces a balanced, feasible packing.
  const graph::TaskGraph g = bench("flower");
  pim::PimConfig config = pim::PimConfig::neurocube(16);
  const Packing p = pack_locality(g, config);
  EXPECT_LE(p.period.value,
            ceil_div(g.total_work().value, 16) + 2 * g.max_exec_time().value);
}

}  // namespace
}  // namespace paraconv::sched
