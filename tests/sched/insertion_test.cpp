#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "sched/packer.hpp"

namespace paraconv::sched {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

graph::TaskGraph random_graph(std::size_t v, std::size_t e,
                              std::uint64_t seed) {
  graph::GeneratorConfig config;
  config.vertices = v;
  config.edges = e;
  config.seed = seed;
  return graph::generate_layered_dag(config);
}

void expect_dependency_safe(const graph::TaskGraph& g,
                            const ListScheduleResult& r,
                            const std::vector<TimeUnits>& transfer) {
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const TaskPlacement& prod = r.placement[ipr.src.value];
    const TaskPlacement& cons = r.placement[ipr.dst.value];
    const TimeUnits hand_off =
        prod.pe == cons.pe ? TimeUnits{0} : transfer[e.value];
    EXPECT_LE(prod.start + g.task(ipr.src).exec_time + hand_off, cons.start);
  }
}

void expect_no_overlap(const graph::TaskGraph& g,
                       const ListScheduleResult& r) {
  for (const graph::NodeId a : g.nodes()) {
    for (const graph::NodeId b : g.nodes()) {
      if (a.value >= b.value) continue;
      if (r.placement[a.value].pe != r.placement[b.value].pe) continue;
      const TimeUnits a_end =
          r.placement[a.value].start + g.task(a).exec_time;
      const TimeUnits b_end =
          r.placement[b.value].start + g.task(b).exec_time;
      EXPECT_TRUE(a_end <= r.placement[b.value].start ||
                  b_end <= r.placement[a.value].start)
          << "tasks " << a.value << " and " << b.value << " overlap";
    }
  }
}

class InsertionPropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(InsertionPropertyTest, ValidAndNeverWorseThanAppendOnly) {
  const graph::TaskGraph g = random_graph(60, 150, GetParam());
  std::vector<TimeUnits> transfer(g.edge_count());
  for (std::size_t e = 0; e < transfer.size(); ++e) {
    transfer[e] = TimeUnits{1 + static_cast<std::int64_t>(e % 4)};
  }
  const ListScheduleResult append = list_schedule(g, 8, transfer);
  const ListScheduleResult insert = list_schedule_insertion(g, 8, transfer);

  expect_dependency_safe(g, insert, transfer);
  expect_no_overlap(g, insert);
  // Insertion considers every slot append-only considers, plus gaps, with
  // identical priorities — per-task EFT is never worse, and with this
  // deterministic tie-breaking neither is the final makespan in practice.
  EXPECT_LE(insert.makespan.value, append.makespan.value * 11 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InsertionPropertyTest,
                         testing::Range<std::uint64_t>(1, 9));

TEST(InsertionTest, FillsGapThatAppendOnlyWastes) {
  // Two long independent tasks, then a short task whose dependency delays
  // it, leaving a gap the insertion policy can reuse for a later-priority
  // independent task.
  TaskGraph g("gap");
  const NodeId head =
      g.add_task(Task{"head", TaskKind::kConvolution, TimeUnits{4}});
  const NodeId mid =
      g.add_task(Task{"mid", TaskKind::kConvolution, TimeUnits{4}});
  const NodeId tail =
      g.add_task(Task{"tail", TaskKind::kConvolution, TimeUnits{4}});
  g.add_ipr(head, mid, 1_KiB);
  g.add_ipr(mid, tail, 1_KiB);
  g.add_task(Task{"small", TaskKind::kConvolution, TimeUnits{2}});

  const std::vector<TimeUnits> transfer(2, TimeUnits{3});
  const ListScheduleResult insert = list_schedule_insertion(g, 1, transfer);
  // Single PE: chain head(0-4), mid(4-8), tail(8-12); 'small' has lowest
  // rank and must append at 12 (no gap exists on one PE).
  EXPECT_EQ(insert.makespan.value, 14);

  // With 2 PEs the chain stays on PE0 and 'small' runs concurrently.
  const ListScheduleResult wide = list_schedule_insertion(g, 2, transfer);
  EXPECT_EQ(wide.makespan.value, 12);
}

TEST(InsertionTest, RejectsInvalidArguments) {
  const graph::TaskGraph g = random_graph(10, 20, 3);
  EXPECT_THROW(list_schedule_insertion(g, 0, {}), ContractViolation);
  EXPECT_THROW(
      list_schedule_insertion(g, 2, std::vector<TimeUnits>(3, TimeUnits{1})),
      ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
