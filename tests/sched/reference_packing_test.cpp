// Packer quality against the exhaustive optimum on tiny instances: greedy
// load balancing is not optimal in general, but must stay within its
// theoretical bound of the brute-force minimal period.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "sched/packer.hpp"

namespace paraconv::sched {
namespace {

/// Minimal makespan over all PE assignments (precedence-free packing).
TimeUnits brute_force_min_period(const graph::TaskGraph& g, int pe_count) {
  const std::size_t n = g.node_count();
  std::vector<TimeUnits> load(static_cast<std::size_t>(pe_count),
                              TimeUnits{0});
  TimeUnits best{std::numeric_limits<std::int64_t>::max()};
  std::function<void(std::size_t)> assign = [&](std::size_t v) {
    if (v == n) {
      TimeUnits makespan{0};
      for (const TimeUnits l : load) makespan = std::max(makespan, l);
      best = std::min(best, makespan);
      return;
    }
    for (int pe = 0; pe < pe_count; ++pe) {
      load[static_cast<std::size_t>(pe)] +=
          g.task(graph::NodeId{static_cast<std::uint32_t>(v)}).exec_time;
      assign(v + 1);
      load[static_cast<std::size_t>(pe)] = load[static_cast<std::size_t>(pe)] -
          g.task(graph::NodeId{static_cast<std::uint32_t>(v)}).exec_time;
    }
  };
  assign(0);
  return best;
}

class ReferencePackingTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferencePackingTest, PackersWithinBoundsOfOptimum) {
  Rng rng(GetParam());
  graph::GeneratorConfig config;
  config.vertices = static_cast<std::size_t>(rng.uniform_int(3, 9));
  config.edges = config.vertices;
  config.seed = GetParam() * 31;
  config.min_exec = 1;
  config.max_exec = 9;
  const graph::TaskGraph g = graph::generate_layered_dag(config);
  const int pe_count = static_cast<int>(rng.uniform_int(2, 3));

  const TimeUnits optimum = brute_force_min_period(g, pe_count);
  const TimeUnits lpt = pack_ignore_dependencies(g, pe_count).period;
  const TimeUnits topo = pack_topological(g, pe_count).period;

  EXPECT_GE(lpt, optimum);
  EXPECT_GE(topo, optimum);
  // LPT's 4/3 - 1/(3m) approximation guarantee for makespan scheduling.
  EXPECT_LE(3 * lpt.value, 4 * optimum.value + g.max_exec_time().value);
  // Greedy (non-sorted) guarantee: within max task time of the optimum's
  // balance bound.
  EXPECT_LE(topo.value, optimum.value + g.max_exec_time().value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferencePackingTest,
                         testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace paraconv::sched
