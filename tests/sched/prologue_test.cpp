#include "sched/prologue.hpp"

#include <gtest/gtest.h>

namespace paraconv::sched {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

/// Chain A -> B -> C with retiming 2, 1, 0; period 3; all exec 1.
struct Fixture {
  TaskGraph g{"prologue"};
  KernelSchedule kernel;

  Fixture() {
    const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId c = g.add_task(Task{"C", TaskKind::kConvolution, TimeUnits{1}});
    g.add_ipr(a, b, 1_KiB);
    g.add_ipr(b, c, 1_KiB);
    kernel.period = TimeUnits{3};
    kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{1, TimeUnits{0}},
                        TaskPlacement{2, TimeUnits{0}}};
    kernel.retiming = {2, 1, 0};
    kernel.distance = {1, 1};
    kernel.allocation = {pim::AllocSite::kCache, pim::AllocSite::kCache};
  }
};

TEST(PrologueTest, ProfileRampsUp) {
  const Fixture f;
  const auto profile = prologue_profile(f.g, f.kernel, 3);
  ASSERT_EQ(profile.size(), 3U);  // R_max + 1 windows
  EXPECT_EQ(profile[0].active_tasks, 1U);  // only A (r=2)
  EXPECT_EQ(profile[1].active_tasks, 2U);  // A, B
  EXPECT_EQ(profile[2].active_tasks, 3U);  // steady state
}

TEST(PrologueTest, UtilizationMonotoneAndBounded) {
  const Fixture f;
  const auto profile = prologue_profile(f.g, f.kernel, 3);
  double prev = 0.0;
  for (const WindowProfile& w : profile) {
    EXPECT_GE(w.utilization, prev);
    EXPECT_LE(w.utilization, 1.0 + 1e-9);
    prev = w.utilization;
  }
  // Steady state: 3 unit-time tasks over 3 PEs x 3 time units.
  EXPECT_NEAR(profile.back().utilization, 3.0 / 9.0, 1e-9);
}

TEST(PrologueTest, PrologueTimeIsRmaxTimesPeriod) {
  const Fixture f;
  EXPECT_EQ(prologue_time(f.kernel).value, 6);
}

TEST(PrologueTest, NoRetimingMeansSingleSteadyWindow) {
  Fixture f;
  f.kernel.retiming = {0, 0, 0};
  f.kernel.distance = {0, 0};
  const auto profile = prologue_profile(f.g, f.kernel, 3);
  ASSERT_EQ(profile.size(), 1U);
  EXPECT_EQ(profile[0].active_tasks, 3U);
  EXPECT_EQ(prologue_time(f.kernel).value, 0);
}

TEST(PrologueTest, RejectsInvalidArguments) {
  const Fixture f;
  EXPECT_THROW(prologue_profile(f.g, f.kernel, 0), ContractViolation);
  KernelSchedule broken = f.kernel;
  broken.retiming.clear();
  EXPECT_THROW(prologue_profile(f.g, broken, 3), ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
