#include "sched/packer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/units.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"

namespace paraconv::sched {
namespace {

graph::TaskGraph random_graph(std::size_t v, std::size_t e,
                              std::uint64_t seed) {
  graph::GeneratorConfig config;
  config.vertices = v;
  config.edges = e;
  config.seed = seed;
  return graph::generate_layered_dag(config);
}

/// No two tasks on the same PE overlap, and every task fits in [0, period].
void expect_resource_feasible(const graph::TaskGraph& g, const Packing& p,
                              int pe_count) {
  ASSERT_EQ(p.placement.size(), g.node_count());
  std::vector<graph::NodeId> order = g.nodes();
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              if (p.placement[a.value].pe != p.placement[b.value].pe) {
                return p.placement[a.value].pe < p.placement[b.value].pe;
              }
              return p.placement[a.value].start < p.placement[b.value].start;
            });
  for (std::size_t i = 0; i < order.size(); ++i) {
    const TaskPlacement& place = p.placement[order[i].value];
    EXPECT_GE(place.pe, 0);
    EXPECT_LT(place.pe, pe_count);
    EXPECT_GE(place.start, TimeUnits{0});
    EXPECT_LE(place.start + g.task(order[i]).exec_time, p.period);
    if (i > 0) {
      const graph::NodeId prev = order[i - 1];
      if (p.placement[prev.value].pe == place.pe) {
        EXPECT_LE(p.placement[prev.value].start + g.task(prev).exec_time,
                  place.start);
      }
    }
  }
}

struct PackCase {
  std::size_t vertices;
  std::size_t edges;
  int pe_count;
  std::uint64_t seed;
};

class PackerPropertyTest : public testing::TestWithParam<PackCase> {};

TEST_P(PackerPropertyTest, LptPackingIsFeasibleAndTight) {
  const auto& c = GetParam();
  const graph::TaskGraph g = random_graph(c.vertices, c.edges, c.seed);
  const Packing p = pack_ignore_dependencies(g, c.pe_count);
  expect_resource_feasible(g, p, c.pe_count);

  // Lower bounds: max task time and mean load. Upper bound: LPT guarantee.
  const std::int64_t work = g.total_work().value;
  const std::int64_t lower =
      std::max(g.max_exec_time().value, ceil_div(work, c.pe_count));
  EXPECT_GE(p.period.value, lower);
  EXPECT_LE(p.period.value,
            ceil_div(work, c.pe_count) + g.max_exec_time().value);
}

TEST_P(PackerPropertyTest, TopologicalPackingIsFeasibleAndOrdersProducers) {
  const auto& c = GetParam();
  const graph::TaskGraph g = random_graph(c.vertices, c.edges, c.seed);
  const Packing p = pack_topological(g, c.pe_count);
  expect_resource_feasible(g, p, c.pe_count);
  EXPECT_LE(p.period.value, ceil_div(g.total_work().value, c.pe_count) +
                                g.max_exec_time().value);

  // Producers never start after consumers (starts are monotone in
  // topological position under least-loaded assignment).
  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    EXPECT_LE(p.placement[ipr.src.value].start,
              p.placement[ipr.dst.value].start);
  }
}

TEST_P(PackerPropertyTest, ListScheduleRespectsDependencies) {
  const auto& c = GetParam();
  const graph::TaskGraph g = random_graph(c.vertices, c.edges, c.seed);
  std::vector<TimeUnits> transfer(g.edge_count(), TimeUnits{2});
  const ListScheduleResult r = list_schedule(g, c.pe_count, transfer);

  for (const graph::EdgeId e : g.edges()) {
    const graph::Ipr& ipr = g.ipr(e);
    const TaskPlacement& prod = r.placement[ipr.src.value];
    const TaskPlacement& cons = r.placement[ipr.dst.value];
    const TimeUnits hand_off =
        prod.pe == cons.pe ? TimeUnits{0} : transfer[e.value];
    EXPECT_LE(prod.start + g.task(ipr.src).exec_time + hand_off, cons.start);
  }
  EXPECT_GE(r.makespan, graph::critical_path_length(g));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, PackerPropertyTest,
    testing::Values(PackCase{9, 21, 4, 1}, PackCase{9, 21, 16, 2},
                    PackCase{50, 130, 8, 3}, PackCase{50, 130, 32, 4},
                    PackCase{100, 260, 16, 5}, PackCase{100, 260, 64, 6},
                    PackCase{200, 520, 64, 7}, PackCase{30, 100, 1, 8}));

TEST(PackerTest, SinglePeSerializesEverything) {
  const graph::TaskGraph g = random_graph(20, 50, 9);
  const Packing p = pack_ignore_dependencies(g, 1);
  EXPECT_EQ(p.period, g.total_work());
}

TEST(PackerTest, MorePesNeverIncreasePeriod) {
  const graph::TaskGraph g = random_graph(64, 160, 10);
  TimeUnits prev{std::numeric_limits<std::int64_t>::max()};
  for (const int pe : {1, 2, 4, 8, 16, 32}) {
    const Packing p = pack_ignore_dependencies(g, pe);
    EXPECT_LE(p.period, prev);
    prev = p.period;
  }
}

TEST(PackerTest, DeterministicPlacement) {
  const graph::TaskGraph g = random_graph(40, 100, 11);
  const Packing a = pack_ignore_dependencies(g, 8);
  const Packing b = pack_ignore_dependencies(g, 8);
  for (std::size_t i = 0; i < a.placement.size(); ++i) {
    EXPECT_EQ(a.placement[i].pe, b.placement[i].pe);
    EXPECT_EQ(a.placement[i].start, b.placement[i].start);
  }
}

TEST(PackerTest, RejectsInvalidArguments) {
  const graph::TaskGraph g = random_graph(10, 20, 12);
  EXPECT_THROW(pack_ignore_dependencies(g, 0), ContractViolation);
  EXPECT_THROW(pack_topological(g, 0), ContractViolation);
  EXPECT_THROW(list_schedule(g, 4, {}), ContractViolation);
}

TEST(ListScheduleTest, ChainOnManyPesPaysCriticalPath) {
  graph::TaskGraph g("chain");
  graph::NodeId prev = g.add_task(
      graph::Task{"t0", graph::TaskKind::kConvolution, TimeUnits{3}});
  for (int i = 1; i < 5; ++i) {
    const graph::NodeId cur = g.add_task(graph::Task{
        "t" + std::to_string(i), graph::TaskKind::kConvolution, TimeUnits{3}});
    g.add_ipr(prev, cur, 1_KiB);
    prev = cur;
  }
  const ListScheduleResult r =
      list_schedule(g, 16, std::vector<TimeUnits>(4, TimeUnits{5}));
  // EFT keeps the chain on one PE (no transfers): makespan = 15.
  EXPECT_EQ(r.makespan.value, 15);
}

}  // namespace
}  // namespace paraconv::sched
