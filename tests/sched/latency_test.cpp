#include "sched/latency.hpp"

#include <gtest/gtest.h>

#include "core/para_conv.hpp"
#include "core/sparta.hpp"
#include "graph/algorithms.hpp"
#include "graph/paper_benchmarks.hpp"

namespace paraconv::sched {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

/// Chain a->b->c, unit tasks, period 2, retiming 2/1/0 (fully pipelined).
struct Fixture {
  TaskGraph g{"latency"};
  KernelSchedule kernel;

  Fixture() {
    const NodeId a = g.add_task(Task{"a", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId b = g.add_task(Task{"b", TaskKind::kConvolution, TimeUnits{1}});
    const NodeId c = g.add_task(Task{"c", TaskKind::kConvolution, TimeUnits{1}});
    g.add_ipr(a, b, 1_KiB);
    g.add_ipr(b, c, 1_KiB);
    kernel.period = TimeUnits{2};
    kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{1, TimeUnits{0}},
                        TaskPlacement{2, TimeUnits{1}}};
    kernel.retiming = {2, 1, 0};
    kernel.distance = {1, 1};
    kernel.allocation = {pim::AllocSite::kCache, pim::AllocSite::kCache};
  }
};

TEST(LatencyTest, HandComputedChain) {
  const Fixture f;
  const LatencyReport report = iteration_latency(f.g, f.kernel);
  // a at window offset 0 (start 0); b window 1 (start 2); c window 2
  // (start 5, finish 6): latency 6, spanning 3 windows.
  EXPECT_EQ(report.iteration_latency.value, 6);
  EXPECT_EQ(report.windows_spanned, 3);
  EXPECT_EQ(report.period.value, 2);
}

TEST(LatencyTest, NoRetimingLatencyStaysInOneWindow) {
  Fixture f;
  f.kernel.period = TimeUnits{3};
  f.kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{0, TimeUnits{1}},
                        TaskPlacement{0, TimeUnits{2}}};
  f.kernel.retiming = {0, 0, 0};
  const LatencyReport report = iteration_latency(f.g, f.kernel);
  EXPECT_EQ(report.windows_spanned, 1);
  EXPECT_EQ(report.iteration_latency.value, 3);
}

TEST(LatencyTest, RetimingTradesLatencyForThroughput) {
  // Para-CONV's per-iteration completion interval (period) shrinks versus
  // the baseline, but single-iteration latency can only grow or match the
  // compacted window.
  for (const char* name : {"flower", "stock-predict", "shortest-path"}) {
    const graph::TaskGraph g =
        graph::build_paper_benchmark(graph::paper_benchmark(name));
    const pim::PimConfig config = pim::PimConfig::neurocube(32);
    const core::ParaConvResult ours = core::ParaConv(config).schedule(g);
    const LatencyReport report = iteration_latency(g, ours.kernel);

    EXPECT_GE(report.iteration_latency, ours.kernel.period) << name;
    EXPECT_EQ(report.windows_spanned, 1 + ours.metrics.r_max) << name;

    // Latency is bounded by the full pipeline depth.
    EXPECT_LE(report.iteration_latency.value,
              (ours.metrics.r_max + 1) * ours.kernel.period.value)
        << name;
  }
}

TEST(LatencyTest, LatencyAtLeastCriticalPath) {
  // No schedule can return one input's result faster than the dependency
  // chain allows.
  const graph::TaskGraph g =
      graph::build_paper_benchmark(graph::paper_benchmark("character-1"));
  const core::ParaConvResult r =
      core::ParaConv(pim::PimConfig::neurocube(64)).schedule(g);
  EXPECT_GE(iteration_latency(g, r.kernel).iteration_latency,
            graph::critical_path_length(g));
}

TEST(LatencyTest, RejectsInvalidArguments) {
  const Fixture f;
  KernelSchedule broken = f.kernel;
  broken.retiming.clear();
  EXPECT_THROW(iteration_latency(f.g, broken), ContractViolation);
  broken = f.kernel;
  broken.period = TimeUnits{0};
  EXPECT_THROW(iteration_latency(f.g, broken), ContractViolation);
}

}  // namespace
}  // namespace paraconv::sched
