#include "sched/validator.hpp"

#include <gtest/gtest.h>

namespace paraconv::sched {
namespace {

using graph::NodeId;
using graph::Task;
using graph::TaskGraph;
using graph::TaskKind;

pim::PimConfig config() {
  pim::PimConfig cfg;
  cfg.pe_count = 2;
  cfg.pe_cache_bytes = 4_KiB;
  cfg.cache_bytes_per_unit = 4 * 1024;  // 1 KiB -> 1 unit
  cfg.edram_bytes_per_unit = 512;       // 1 KiB -> 2 units
  cfg.validate();
  return cfg;
}

/// A(2)@PE0:0 -> B(2)@PE1:3, cached 1 KiB edge, period 5, no retiming.
struct Fixture {
  TaskGraph g{"validator"};
  KernelSchedule kernel;

  Fixture() {
    const NodeId a = g.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
    const NodeId b = g.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{2}});
    g.add_ipr(a, b, 1_KiB);
    kernel.period = TimeUnits{5};
    kernel.placement = {TaskPlacement{0, TimeUnits{0}},
                        TaskPlacement{1, TimeUnits{3}}};
    kernel.retiming = {0, 0};
    kernel.distance = {0};
    kernel.allocation = {pim::AllocSite::kCache};
  }
};

TEST(ValidatorTest, AcceptsValidSchedule) {
  const Fixture f;
  EXPECT_TRUE(is_valid_kernel_schedule(f.g, f.kernel, config(), 8_KiB));
}

struct MutationCase {
  const char* name;
  void (*mutate)(KernelSchedule&);
  /// The stable machine-readable code the mutation must trigger.
  DiagCode expected_code;
};

class ValidatorMutationTest : public testing::TestWithParam<MutationCase> {};

TEST_P(ValidatorMutationTest, Rejected) {
  Fixture f;
  GetParam().mutate(f.kernel);
  const auto issues =
      validate_kernel_schedule(f.g, f.kernel, config(), 8_KiB);
  ASSERT_FALSE(issues.empty()) << GetParam().name;
  EXPECT_TRUE(has_code(issues, GetParam().expected_code))
      << "expected [" << to_string(GetParam().expected_code)
      << "], first issue: " << issues.front();
  for (const Diagnostic& issue : issues) {
    EXPECT_EQ(issue.severity, DiagSeverity::kError);
    EXPECT_FALSE(issue.message.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, ValidatorMutationTest,
    testing::Values(
        MutationCase{"bad_pe",
                     [](KernelSchedule& k) { k.placement[0].pe = 7; },
                     DiagCode::kInvalidPe},
        MutationCase{"negative_pe",
                     [](KernelSchedule& k) { k.placement[1].pe = -1; },
                     DiagCode::kInvalidPe},
        MutationCase{"task_outside_window",
                     [](KernelSchedule& k) {
                       k.placement[1].start = TimeUnits{4};
                     },
                     DiagCode::kTaskOutsideWindow},
        MutationCase{"negative_retiming",
                     [](KernelSchedule& k) { k.retiming = {0, -1}; },
                     DiagCode::kNegativeRetiming},
        MutationCase{"overlap",
                     [](KernelSchedule& k) {
                       k.placement[1] = TaskPlacement{0, TimeUnits{1}};
                     },
                     DiagCode::kPeOverlap},
        MutationCase{"distance_not_realized",
                     [](KernelSchedule& k) { k.distance = {1}; },
                     DiagCode::kDistanceNotRealized},
        MutationCase{"data_not_ready",
                     [](KernelSchedule& k) {
                       k.placement[1].start = TimeUnits{2};
                     },
                     DiagCode::kDataNotReady},
        MutationCase{"zero_period",
                     [](KernelSchedule& k) { k.period = TimeUnits{0}; },
                     DiagCode::kNonPositivePeriod},
        MutationCase{"size_mismatch",
                     [](KernelSchedule& k) { k.distance.clear(); },
                     DiagCode::kDistanceSizeMismatch},
        MutationCase{"placement_size_mismatch",
                     [](KernelSchedule& k) { k.placement.clear(); },
                     DiagCode::kPlacementSizeMismatch},
        MutationCase{"retiming_size_mismatch",
                     [](KernelSchedule& k) { k.retiming.clear(); },
                     DiagCode::kRetimingSizeMismatch},
        MutationCase{"allocation_size_mismatch",
                     [](KernelSchedule& k) { k.allocation.clear(); },
                     DiagCode::kAllocationSizeMismatch},
        MutationCase{"negative_distance",
                     [](KernelSchedule& k) { k.distance = {-1}; },
                     DiagCode::kNegativeDistance}),
    [](const testing::TestParamInfo<MutationCase>& param_info) {
      return param_info.param.name;
    });

TEST(ValidatorTest, DiagnosticCarriesLocusAndStableRendering) {
  Fixture f;
  f.kernel.placement[1].start = TimeUnits{2};  // data-not-ready on edge 0
  const auto issues =
      validate_kernel_schedule(f.g, f.kernel, config(), 8_KiB);
  ASSERT_EQ(issues.size(), 1U);
  const Diagnostic& d = issues.front();
  EXPECT_EQ(d.code, DiagCode::kDataNotReady);
  ASSERT_TRUE(d.edge.has_value());
  EXPECT_EQ(d.edge->value, 0U);
  EXPECT_FALSE(d.node.has_value());
  // The rendering leads with the stable code so logs stay grep-able.
  EXPECT_NE(to_string(d).find("error [data-not-ready]"), std::string::npos);
}

TEST(ValidatorTest, CodeStringsAreStable) {
  // These strings are a published contract (docs/USAGE.md); renaming one is
  // a breaking change.
  EXPECT_STREQ(to_string(DiagCode::kInvalidPe), "invalid-pe");
  EXPECT_STREQ(to_string(DiagCode::kPeOverlap), "pe-overlap");
  EXPECT_STREQ(to_string(DiagCode::kDataNotReady), "data-not-ready");
  EXPECT_STREQ(to_string(DiagCode::kCacheOvercommitted),
               "cache-overcommitted");
  EXPECT_STREQ(to_string(DiagCode::kDistanceNotRealized),
               "distance-not-realized");
  EXPECT_STREQ(to_string(DiagCode::kNonPositivePeriod),
               "non-positive-period");
  EXPECT_STREQ(to_string(DiagCode::kResidencyOvercommit),
               "residency-overcommit");
}

TEST(ValidatorTest, HasErrorsIsSeverityAware) {
  std::vector<Diagnostic> issues;
  EXPECT_FALSE(has_errors(issues));

  Diagnostic warning;
  warning.code = DiagCode::kResidencyOvercommit;
  warning.severity = DiagSeverity::kWarning;
  warning.message = "advisory only";
  issues.push_back(warning);
  EXPECT_FALSE(has_errors(issues));

  Diagnostic error;
  error.code = DiagCode::kDataNotReady;
  error.severity = DiagSeverity::kError;
  error.message = "edge not ready";
  issues.push_back(error);
  EXPECT_TRUE(has_errors(issues));
}

TEST(ValidatorTest, RenderErrorsJoinsEveryErrorAndSkipsWarnings) {
  Diagnostic warning;
  warning.code = DiagCode::kResidencyOvercommit;
  warning.severity = DiagSeverity::kWarning;
  warning.message = "advisory";

  Diagnostic first;
  first.code = DiagCode::kDataNotReady;
  first.severity = DiagSeverity::kError;
  first.message = "first failure";

  Diagnostic second;
  second.code = DiagCode::kPeOverlap;
  second.severity = DiagSeverity::kError;
  second.message = "second failure";

  const std::string rendered = render_errors({warning, first, second});
  // Every error message survives (not just the first), warnings do not.
  EXPECT_NE(rendered.find("first failure"), std::string::npos);
  EXPECT_NE(rendered.find("second failure"), std::string::npos);
  EXPECT_NE(rendered.find("; "), std::string::npos);
  EXPECT_EQ(rendered.find("advisory"), std::string::npos);
}

TEST(ValidatorTest, SlowEdramTransferNeedsDistance) {
  Fixture f;
  f.kernel.allocation = {pim::AllocSite::kEdram};  // transfer now 2 units
  // 0 + 2 + 2 = 4 > 3: not ready within the same window.
  EXPECT_FALSE(is_valid_kernel_schedule(f.g, f.kernel, config(), 8_KiB));

  // One iteration of retiming fixes it: 4 <= 3 + 1*5.
  f.kernel.retiming = {1, 0};
  f.kernel.distance = {1};
  EXPECT_TRUE(is_valid_kernel_schedule(f.g, f.kernel, config(), 8_KiB));
}

TEST(ValidatorTest, CacheCapacityEnforced) {
  const Fixture f;
  const auto issues =
      validate_kernel_schedule(f.g, f.kernel, config(), Bytes{512});
  ASSERT_FALSE(issues.empty());
  EXPECT_TRUE(has_code(issues, DiagCode::kCacheOvercommitted));
  EXPECT_NE(issues.front().message.find("capacity"), std::string::npos);
}

TEST(ValidatorTest, TransferClampedToPeriod) {
  // A huge eDRAM transfer is clamped to one period, so distance 2 always
  // suffices (Theorem 3.1).
  Fixture f;
  TaskGraph g2{"clamp"};
  const NodeId a =
      g2.add_task(Task{"A", TaskKind::kConvolution, TimeUnits{2}});
  const NodeId b =
      g2.add_task(Task{"B", TaskKind::kConvolution, TimeUnits{2}});
  g2.add_ipr(a, b, 64_KiB);  // raw eDRAM transfer = 128 units >> period
  KernelSchedule k = f.kernel;
  k.allocation = {pim::AllocSite::kEdram};
  k.retiming = {2, 0};
  k.distance = {2};
  EXPECT_TRUE(is_valid_kernel_schedule(g2, k, config(), 8_KiB));
}

}  // namespace
}  // namespace paraconv::sched
